#include "g2g/core/experiment.hpp"

#include <gtest/gtest.h>

namespace g2g::core {
namespace {

// A reduced scenario so the experiment tests stay fast: fewer nodes, shorter
// window, sparser traffic.
Scenario small_scenario() {
  Scenario s = infocom05_scenario();
  s.trace_config.nodes = 16;
  s.trace_config.duration = Duration::days(2);
  s.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  return s;
}

ExperimentConfig small_config(Protocol p) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = small_scenario();
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(30.0);
  cfg.seed = 11;
  return cfg;
}

TEST(Experiment, DeterministicInSeed) {
  const ExperimentResult a = run_experiment(small_config(Protocol::G2GEpidemic));
  const ExperimentResult b = run_experiment(small_config(Protocol::G2GEpidemic));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_replicas, b.avg_replicas);
  EXPECT_EQ(a.deviants, b.deviants);
}

TEST(Experiment, SeedChangesOutcome) {
  auto cfg = small_config(Protocol::Epidemic);
  const ExperimentResult a = run_experiment(cfg);
  cfg.seed = 12;
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_NE(a.generated, 0u);
  // Traffic schedules differ, so generated counts almost surely differ.
  EXPECT_TRUE(a.generated != b.generated || a.delivered != b.delivered);
}

TEST(Experiment, GeneratesTrafficOnlyInWindow) {
  const ExperimentResult r = run_experiment(small_config(Protocol::Epidemic));
  EXPECT_GT(r.generated, 50u);
  for (const auto& [id, rec] : r.collector.messages()) {
    EXPECT_LT(rec.created, TimePoint::zero() + Duration::hours(1));
  }
}

TEST(Experiment, DeviantSelectionRespectsCount) {
  auto cfg = small_config(Protocol::G2GEpidemic);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 5;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.deviants.size(), 5u);
  EXPECT_EQ(r.deviant_count, 5u);
  // Detection metrics only cover deviants.
  EXPECT_LE(r.detected_count, 5u);
}

TEST(Experiment, DeviantCountClampsToPopulation) {
  auto cfg = small_config(Protocol::Epidemic);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 10000;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.deviants.size(), 16u);
}

TEST(Experiment, Delta1OverrideShortensLifetime) {
  auto long_cfg = small_config(Protocol::Epidemic);
  auto short_cfg = long_cfg;
  short_cfg.delta1_override = Duration::minutes(3);
  const ExperimentResult long_r = run_experiment(long_cfg);
  const ExperimentResult short_r = run_experiment(short_cfg);
  EXPECT_LT(short_r.avg_replicas, long_r.avg_replicas);
  EXPECT_LE(short_r.success_rate, long_r.success_rate + 1e-9);
}

TEST(Experiment, ProtocolNamesAndPredicates) {
  EXPECT_STREQ(to_string(Protocol::Epidemic), "Epidemic");
  EXPECT_STREQ(to_string(Protocol::G2GDelegationLastContact), "G2G Dest Last Contact");
  EXPECT_TRUE(is_g2g(Protocol::G2GEpidemic));
  EXPECT_FALSE(is_g2g(Protocol::DelegationFrequency));
  EXPECT_TRUE(is_delegation(Protocol::DelegationLastContact));
  EXPECT_FALSE(is_delegation(Protocol::Epidemic));
}

TEST(Experiment, RunRepeatedAggregates) {
  auto cfg = small_config(Protocol::Epidemic);
  const AggregateResult agg = run_repeated(cfg, 3);
  EXPECT_EQ(agg.success_rate.count(), 3u);
  EXPECT_GT(agg.success_rate.mean(), 0.0);
  EXPECT_LE(agg.success_rate.max(), 1.0);
}

TEST(Experiment, PresetsMatchPaperTimings) {
  const Scenario inf = infocom05_scenario();
  EXPECT_EQ(inf.epidemic_delta1, Duration::minutes(30));
  EXPECT_EQ(inf.delegation_delta1, Duration::minutes(45));
  EXPECT_EQ(inf.quality_frame, Duration::minutes(34));
  const Scenario cam = cambridge06_scenario();
  EXPECT_EQ(cam.epidemic_delta1, Duration::minutes(35));
  EXPECT_EQ(cam.delegation_delta1, Duration::minutes(75));
  EXPECT_EQ(cam.trace_config.nodes, 36u);
}

TEST(Experiment, PayoffPositiveForParticipantsZeroForEvicted) {
  auto cfg = small_config(Protocol::G2GEpidemic);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 4;
  const ExperimentResult r = run_experiment(cfg);
  for (std::uint32_t i = 0; i < 16; ++i) {
    const double p = node_payoff(r, NodeId(i));
    if (r.collector.evictions().contains(NodeId(i))) {
      EXPECT_EQ(p, 0.0);
    } else {
      EXPECT_GT(p, 0.0);
    }
  }
}

class ProtocolSmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolSmokeTest, RunsAndDeliversSomething) {
  const ExperimentResult r = run_experiment(small_config(GetParam()));
  EXPECT_GT(r.generated, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.success_rate, 0.0);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_GE(r.community_count, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSmokeTest,
                         ::testing::Values(Protocol::Epidemic, Protocol::G2GEpidemic,
                                           Protocol::DelegationFrequency,
                                           Protocol::DelegationLastContact,
                                           Protocol::G2GDelegationFrequency,
                                           Protocol::G2GDelegationLastContact),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace g2g::core
