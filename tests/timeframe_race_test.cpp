// Timeframe-boundary races in the quality-snapshot mechanism (DESIGN.md §5):
// the destination's liar check compares a declaration made in one frame
// against its own snapshot, possibly computed frames later. These tests walk
// the boundaries where the mechanism could go wrong — and must not.
#include <gtest/gtest.h>

#include "g2g/proto/quality.hpp"

namespace g2g::proto {
namespace {

TimePoint at_min(double m) { return TimePoint::from_seconds(m * 60.0); }

class TimeframeRace : public ::testing::TestWithParam<QualityKind> {
 protected:
  static constexpr double kFrame = 34.0;  // paper's timeframe, minutes
  QualityKind kind() const { return GetParam(); }
};

TEST_P(TimeframeRace, DeclarationJustBeforeFrameEndStillConsistent) {
  // B declares at the last instant of frame 1; D verifies early in frame 2.
  EncounterTable b(Duration::minutes(kFrame));
  EncounterTable d(Duration::minutes(kFrame));
  for (const double m : {5.0, 30.0, 40.0, 60.0}) {
    b.record(NodeId(9), at_min(m));
    d.record(NodeId(4), at_min(m));
  }
  const TimePoint declare_at = at_min(2 * kFrame - 0.001);  // end of frame 1
  const auto decl = b.declared(kind(), NodeId(9), declare_at);
  EXPECT_EQ(decl.frame, 0);  // frame 1 is still current at that instant

  const TimePoint verify_at = at_min(2 * kFrame + 1.0);
  const auto own = d.value_at_frame(kind(), NodeId(4), decl.frame, verify_at);
  ASSERT_TRUE(own.has_value());
  EXPECT_DOUBLE_EQ(*own, decl.value);
}

TEST_P(TimeframeRace, DeclarationRightAfterFrameRollConsistent) {
  // B declares right after the frame boundary: the just-completed frame's
  // snapshot includes everything before the boundary.
  EncounterTable b(Duration::minutes(kFrame));
  EncounterTable d(Duration::minutes(kFrame));
  b.record(NodeId(9), at_min(kFrame - 0.5));   // just inside frame 0
  d.record(NodeId(4), at_min(kFrame - 0.5));
  b.record(NodeId(9), at_min(kFrame + 0.5));   // just inside frame 1
  d.record(NodeId(4), at_min(kFrame + 0.5));

  const auto decl = b.declared(kind(), NodeId(9), at_min(kFrame + 1.0));
  EXPECT_EQ(decl.frame, 0);
  const auto own = d.value_at_frame(kind(), NodeId(4), 0, at_min(kFrame + 2.0));
  ASSERT_TRUE(own.has_value());
  EXPECT_DOUBLE_EQ(*own, decl.value);
  if (kind() == QualityKind::DestinationFrequency) {
    EXPECT_DOUBLE_EQ(decl.value, 1.0);  // only the pre-boundary encounter
  }
}

TEST_P(TimeframeRace, VerificationAtRetentionEdge) {
  // The declared frame is exactly the oldest retained one (current - 2):
  // still verifiable. One frame older: not.
  EncounterTable b(Duration::minutes(kFrame));
  EncounterTable d(Duration::minutes(kFrame));
  b.record(NodeId(9), at_min(10));
  d.record(NodeId(4), at_min(10));

  const auto decl = b.declared(kind(), NodeId(9), at_min(kFrame + 1.0));  // frame 0
  ASSERT_EQ(decl.frame, 0);

  // Verifier's clock inside frame 2: frame 0 == current-2 -> retained.
  EXPECT_TRUE(d.value_at_frame(kind(), NodeId(4), 0, at_min(2 * kFrame + 1.0)).has_value());
  // Verifier's clock inside frame 3: frame 0 dropped.
  EXPECT_FALSE(d.value_at_frame(kind(), NodeId(4), 0, at_min(3 * kFrame + 1.0)).has_value());
}

TEST_P(TimeframeRace, AsymmetricObservationWouldBeDetected) {
  // If the declarer's table genuinely differs from the verifier's (a lie, or
  // a fabricated encounter), the snapshot values diverge.
  EncounterTable b(Duration::minutes(kFrame));
  EncounterTable d(Duration::minutes(kFrame));
  b.record(NodeId(9), at_min(5));
  b.record(NodeId(9), at_min(10));  // claims two meetings
  d.record(NodeId(4), at_min(5));   // destination saw only one

  const auto decl = b.declared(kind(), NodeId(9), at_min(kFrame + 1.0));
  const auto own = d.value_at_frame(kind(), NodeId(4), decl.frame, at_min(kFrame + 2.0));
  ASSERT_TRUE(own.has_value());
  EXPECT_NE(*own, decl.value);
}

TEST_P(TimeframeRace, WarmupHistoryCrossesZeroBoundary) {
  // Encounters spanning the negative (warm-up) to positive (window) boundary
  // land in the right snapshots.
  EncounterTable t(Duration::minutes(kFrame));
  t.record(NodeId(1), TimePoint::from_seconds(-60.0));  // warm-up history
  t.record(NodeId(1), at_min(5));                       // inside frame 0

  const auto decl = t.declared(kind(), NodeId(1), at_min(kFrame + 1.0));
  EXPECT_EQ(decl.frame, 0);
  if (kind() == QualityKind::DestinationFrequency) {
    EXPECT_DOUBLE_EQ(decl.value, 2.0);  // both encounters precede the cutoff
  } else {
    EXPECT_DOUBLE_EQ(decl.value, 300.0);  // the later (in-window) one
  }
}

INSTANTIATE_TEST_SUITE_P(BothKinds, TimeframeRace,
                         ::testing::Values(QualityKind::DestinationFrequency,
                                           QualityKind::DestinationLastContact),
                         [](const auto& info) {
                           return info.param == QualityKind::DestinationFrequency
                                      ? std::string("Frequency")
                                      : std::string("LastContact");
                         });

}  // namespace
}  // namespace g2g::proto
