// G2G Delegation exercised under BOTH forwarding-quality kinds (the paper
// reports "G2G Delegation Last Contact and G2G Delegation Frequency perform
// the same" for detection) — parameterized versions of the core behaviours,
// plus decoy-destination inspection.
#include <gtest/gtest.h>

#include "g2g/proto/g2g_delegation.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

using G2GDWorld = World<G2GDelegationNode>;

constexpr double kD1 = 1800.0;

class KindFixture : public ::testing::TestWithParam<QualityKind> {
 protected:
  NetworkConfig config() const {
    auto cfg = G2GDWorld::default_config();
    cfg.node.quality_kind = GetParam();
    cfg.node.quality_frame = Duration::minutes(5);
    return cfg;
  }

  static trace::ContactTrace build(std::size_t nodes,
                                   std::vector<std::vector<Contact>> groups) {
    trace::ContactTrace t;
    for (const auto& g : groups) {
      for (const auto& c : g) {
        t.add(NodeId(c.a), NodeId(c.b), TimePoint::from_seconds(c.start_s),
              TimePoint::from_seconds(c.end_s));
      }
    }
    if (nodes >= 2) {
      t.add(NodeId(static_cast<std::uint32_t>(nodes - 2)),
            NodeId(static_cast<std::uint32_t>(nodes - 1)), TimePoint::from_seconds(9.0e8),
            TimePoint::from_seconds(9.0e8 + 1.0));
    }
    t.finalize();
    return t;
  }

  static std::vector<Contact> warm(std::uint32_t n, std::uint32_t dst, int count,
                                   double base) {
    std::vector<Contact> out;
    for (int i = 0; i < count; ++i) {
      out.push_back({n, dst, base + i * 20.0, base + i * 20.0 + 2.0});
    }
    return out;
  }
};

TEST_P(KindFixture, ForwardsToTheBetterCandidate) {
  // Node 1 has later/more encounters with dst 4 than node 2 has (none).
  G2GDWorld w(build(6, {warm(1, 4, 2, 100), {{0, 2, 2000, 2010}, {0, 1, 2100, 2110}}}),
              config());
  const MessageId id = w.send(0, 4, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);
  EXPECT_GT(w.node(1).buffered_bytes(), 0);
  EXPECT_EQ(w.node(2).buffered_bytes(), 0);
}

TEST_P(KindFixture, DropperCaught) {
  G2GDWorld w(build(5, {warm(1, 4, 2, 100),
                        {{0, 1, 2000, 2010}, {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              config(), {{}, {Behavior::Dropper, false}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  EXPECT_EQ(w.collector().detections()[0].method, metrics::DetectionMethod::TestBySender);
}

TEST_P(KindFixture, CheaterCaughtByChainCheck) {
  G2GDWorld w(build(6, {warm(1, 5, 2, 10), warm(2, 5, 1, 100),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2200, 2210},
                         {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              config(), {{}, {Behavior::Cheater, false}, {}, {}, {}, {}});
  w.send(0, 5, 1900);
  w.run();
  ASSERT_GE(w.collector().detections().size(), 1u);
  EXPECT_EQ(w.collector().detections()[0].method, metrics::DetectionMethod::ChainCheck);
}

TEST_P(KindFixture, LiarCaughtByDestination) {
  G2GDWorld w(build(6, {warm(1, 4, 3, 10), warm(2, 4, 2, 300),
                        {{0, 1, 2000, 2010}, {0, 2, 2100, 2110}, {2, 4, 2300, 2310}}}),
              config(), {{}, {Behavior::Liar, false}, {}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  EXPECT_EQ(w.collector().detections()[0].method,
            metrics::DetectionMethod::TestByDestination);
}

TEST_P(KindFixture, HonestRunCleanAcrossKinds) {
  G2GDWorld w(build(6, {warm(1, 5, 1, 10), warm(2, 5, 2, 100), warm(3, 5, 3, 200),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2200, 2210},
                         {1, 3, 2400, 2410},
                         {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              config());
  const MessageId id = w.send(0, 5, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 3u);
  EXPECT_TRUE(w.collector().detections().empty());
}

INSTANTIATE_TEST_SUITE_P(BothKinds, KindFixture,
                         ::testing::Values(QualityKind::DestinationFrequency,
                                           QualityKind::DestinationLastContact),
                         [](const auto& info) {
                           return info.param == QualityKind::DestinationFrequency
                                      ? std::string("Frequency")
                                      : std::string("LastContact");
                         });

TEST(G2GDelegationDecoy, DeliveryNeverRevealsDestinationBeforePor) {
  // When the taker IS the destination, the FQ_RQST must name a decoy D'
  // different from the taker; we verify via the PoR the source holds after a
  // direct delivery: declared_dst != taker and != real destination is legal.
  auto cfg = World<G2GDelegationNode>::default_config();
  cfg.node.quality_frame = Duration::minutes(5);
  World<G2GDelegationNode> w(make_trace(5, {{0, 1, 2000, 2010}}), cfg);
  const MessageId id = w.send(0, 1, 1900);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  // The delivery used one relay phase; the destination signed a PoR about a
  // decoy destination it could not distinguish from a real delegation.
  EXPECT_EQ(w.replicas(id), 1u);
  EXPECT_GE(w.collector().costs(NodeId(1)).signatures, 2u);  // FQ_RESP + PoR
}

}  // namespace
}  // namespace g2g::proto
