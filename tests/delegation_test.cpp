#include "g2g/proto/delegation.hpp"

#include <gtest/gtest.h>

#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

using DelegationWorld = World<DelegationNode>;

// Contacts that give node 1 a high frequency toward node 3 before traffic.
constexpr double kWarm = 10.0;

TEST(Delegation, DirectDeliveryIgnoresQuality) {
  DelegationWorld w(make_trace(4, {{0, 1, 100, 110}}));
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Delegation, ForwardsOnlyToBetterNodes) {
  // Node 1 met destination 3 twice (t=10, 20); node 2 never did. A message
  // 0 -> 3 must be delegated to 1 but not to 2.
  DelegationWorld w(make_trace(5, {{1, 3, kWarm, kWarm + 2},
                                   {1, 3, 20, 22},
                                   {0, 2, 1000, 1010},
                                   {0, 1, 1100, 1110}}));
  const MessageId id = w.send(0, 3, 900);
  w.run();
  EXPECT_FALSE(w.node(2).carries(MessageHash{}));  // structural: see buffer sizes
  EXPECT_EQ(w.node(2).buffer_size(), 0u);
  EXPECT_EQ(w.node(1).buffer_size(), 1u);
  EXPECT_EQ(w.replicas(id), 1u);
}

TEST(Delegation, QualityThresholdRises) {
  // After delegating to node 1 (quality 2 toward dst 4), an equal-quality
  // node 2 must NOT receive a replica (strictly better required).
  DelegationWorld w(make_trace(5, {{1, 4, 10, 12},
                                   {1, 4, 20, 22},
                                   {2, 4, 30, 32},
                                   {2, 4, 40, 42},
                                   {0, 1, 1000, 1010},
                                   {0, 2, 1100, 1110}}));
  const MessageId id = w.send(0, 4, 900);
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);  // only node 1
  EXPECT_EQ(w.node(2).buffer_size(), 0u);
}

TEST(Delegation, HigherQualityNodeStillAccepted) {
  // Node 2 has strictly higher quality (3 encounters) than node 1 (2): both
  // get replicas, in order.
  DelegationWorld w(make_trace(5, {{1, 4, 10, 12},
                                   {1, 4, 20, 22},
                                   {2, 4, 30, 32},
                                   {2, 4, 40, 42},
                                   {2, 4, 50, 52},
                                   {0, 1, 1000, 1010},
                                   {0, 2, 1100, 1110}}));
  const MessageId id = w.send(0, 4, 900);
  w.run();
  EXPECT_EQ(w.replicas(id), 2u);
}

TEST(Delegation, LastContactKindUsesRecency) {
  auto cfg = DelegationWorld::default_config();
  cfg.node.quality_kind = QualityKind::DestinationLastContact;
  // Node 1 met dst long ago; node 2 met dst recently. Source meets 1 first
  // (replica), then 2 (more recent: replica).
  DelegationWorld w(make_trace(5, {{1, 4, 10, 12},
                                   {2, 4, 500, 510},
                                   {0, 1, 1000, 1010},
                                   {0, 2, 1100, 1110}}),
                    cfg);
  const MessageId id = w.send(0, 4, 900);
  w.run();
  EXPECT_EQ(w.replicas(id), 2u);
}

TEST(Delegation, LiarNeverReceivesReplicas) {
  DelegationWorld w(make_trace(5, {{1, 3, 10, 12}, {1, 3, 20, 22}, {0, 1, 1000, 1010}}),
                    {{}, {Behavior::Liar, false}, {}, {}, {}});
  const MessageId id = w.send(0, 3, 900);
  w.run();
  EXPECT_EQ(w.replicas(id), 0u);
  EXPECT_EQ(w.node(1).buffer_size(), 0u);
}

TEST(Delegation, LiarStillGetsDirectDelivery) {
  DelegationWorld w(make_trace(4, {{0, 1, 100, 110}}), {{}, {Behavior::Liar, false}, {}, {}});
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Delegation, DropperAcceptsThenDiscards) {
  DelegationWorld w(make_trace(5, {{1, 3, 10, 12}, {0, 1, 1000, 1010}, {1, 3, 2000, 2010}}),
                    {{}, {Behavior::Dropper, false}, {}, {}, {}});
  const MessageId id = w.send(0, 3, 900);
  w.run();
  // The replica was handed to the dropper (cost paid) but never delivered.
  EXPECT_EQ(w.replicas(id), 1u);
  EXPECT_FALSE(w.delivered(id));
}

TEST(Delegation, DeclareQualityMatchesTable) {
  DelegationWorld w(make_trace(4, {{1, 2, 10, 12}, {1, 2, 20, 22}}));
  w.run();
  EXPECT_DOUBLE_EQ(w.node(1).declare_quality(NodeId(2), NodeId(0)), 2.0);
  EXPECT_DOUBLE_EQ(w.node(1).declare_quality(NodeId(3), NodeId(0)), 0.0);
  EXPECT_DOUBLE_EQ(w.node(1).table().current(QualityKind::DestinationFrequency, NodeId(2)),
                   2.0);
}

TEST(Delegation, MessageQualityInitializedFromSender) {
  // Source 0 already met dst 3 twice: its f_m = 2, so node 1 with a single
  // encounter must not receive a replica.
  DelegationWorld w(make_trace(5, {{0, 3, 10, 12},
                                   {0, 3, 20, 22},
                                   {1, 3, 30, 32},
                                   {0, 1, 1000, 1010}}));
  const MessageId id = w.send(0, 3, 900);
  w.run();
  EXPECT_EQ(w.replicas(id), 0u);
}

TEST(Delegation, TtlPurgesReplicas) {
  DelegationWorld w(make_trace(5, {{1, 3, 10, 12}, {0, 1, 1000, 1010}, {1, 3, 4000, 4010}}));
  const MessageId id = w.send(0, 3, 900);  // TTL 1800 => dead by 2700
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);
  EXPECT_FALSE(w.delivered(id));  // the 4000s meeting is past TTL
}

}  // namespace
}  // namespace g2g::proto
