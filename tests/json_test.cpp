#include "g2g/core/json.hpp"

#include <gtest/gtest.h>

namespace g2g::core {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ExperimentResultSerializes) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::G2GEpidemic;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 12;
  cfg.scenario.trace_config.duration = Duration::days(1);
  cfg.scenario.window_start = TimePoint::from_seconds(6.0 * 3600.0);
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(60.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 3;
  cfg.seed = 13;

  const ExperimentResult r = run_experiment(cfg);
  const std::string json = to_json(r);

  // Structural sanity (no JSON parser offline; check shape and key fields).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"generated\":" + std::to_string(r.generated)), std::string::npos);
  EXPECT_NE(json.find("\"deviants\":["), std::string::npos);
  EXPECT_NE(json.find("\"messages\":["), std::string::npos);
  EXPECT_NE(json.find("\"detections\":["), std::string::npos);
  // Balanced braces and brackets.
  long braces = 0;
  long brackets = 0;
  for (const char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // No NaN/inf leaks.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Json, DeterministicForSameRun) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::Epidemic;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 10;
  cfg.scenario.trace_config.duration = Duration::days(1);
  cfg.scenario.window_start = TimePoint::from_seconds(6.0 * 3600.0);
  cfg.sim_window = Duration::hours(1);
  cfg.traffic_window = Duration::hours(0.5);
  cfg.mean_interarrival = Duration::seconds(120.0);
  cfg.seed = 3;
  EXPECT_EQ(to_json(run_experiment(cfg)), to_json(run_experiment(cfg)));
}

TEST(Json, AggregateSerializes) {
  AggregateResult agg;
  agg.success_rate.add(0.5);
  agg.success_rate.add(0.7);
  agg.false_positives = 2;
  const std::string json = to_json(agg);
  EXPECT_NE(json.find("\"success_rate\":{\"count\":2,\"mean\":0.6"), std::string::npos);
  EXPECT_NE(json.find("\"false_positives\":2"), std::string::npos);
}

TEST(Json, EmptyStatsSerializeAsZeros) {
  const AggregateResult agg;
  const std::string json = to_json(agg);
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace g2g::core
