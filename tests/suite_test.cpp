#include "g2g/crypto/suite.hpp"

#include <gtest/gtest.h>

#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/crypto/sealed_box.hpp"

namespace g2g::crypto {
namespace {

// Parameterized over both suite implementations: the protocol layer must be
// able to run on either.
class SuiteTest : public ::testing::TestWithParam<const char*> {
 protected:
  SuitePtr make() const {
    if (std::string(GetParam()) == "schnorr") {
      return make_schnorr_suite(SchnorrGroup::small_group());
    }
    if (std::string(GetParam()) == "schnorr-rs") {
      return make_schnorr_rs_suite(SchnorrGroup::small_group());
    }
    return make_fast_suite(0x5eed);
  }
};

TEST_P(SuiteTest, SignVerifyRoundTrip) {
  const SuitePtr suite = make();
  Rng rng(1);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("hello");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  EXPECT_EQ(sig.size(), suite->signature_size());
  EXPECT_TRUE(suite->verify(kp.public_key, msg, sig));
}

TEST_P(SuiteTest, TamperedMessageRejected) {
  const SuitePtr suite = make();
  Rng rng(2);
  const KeyPair kp = suite->keygen(rng);
  Bytes msg = to_bytes("hello");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(suite->verify(kp.public_key, msg, sig));
}

TEST_P(SuiteTest, WrongKeyRejected) {
  const SuitePtr suite = make();
  Rng rng(3);
  const KeyPair a = suite->keygen(rng);
  const KeyPair b = suite->keygen(rng);
  const Bytes msg = to_bytes("hello");
  const Bytes sig = suite->sign(a.secret_key, msg);
  EXPECT_FALSE(suite->verify(b.public_key, msg, sig));
}

TEST_P(SuiteTest, TamperedSignatureRejected) {
  const SuitePtr suite = make();
  Rng rng(4);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("hello");
  Bytes sig = suite->sign(kp.secret_key, msg);
  sig[sig.size() / 2] ^= 0x40;
  EXPECT_FALSE(suite->verify(kp.public_key, msg, sig));
  EXPECT_FALSE(suite->verify(kp.public_key, msg, Bytes{}));  // wrong size
}

TEST_P(SuiteTest, SharedSecretSymmetric) {
  const SuitePtr suite = make();
  Rng rng(5);
  const KeyPair a = suite->keygen(rng);
  const KeyPair b = suite->keygen(rng);
  EXPECT_EQ(suite->shared_secret(a.secret_key, b.public_key),
            suite->shared_secret(b.secret_key, a.public_key));
}

TEST_P(SuiteTest, SharedSecretPairSpecific) {
  const SuitePtr suite = make();
  Rng rng(6);
  const KeyPair a = suite->keygen(rng);
  const KeyPair b = suite->keygen(rng);
  const KeyPair c = suite->keygen(rng);
  EXPECT_NE(suite->shared_secret(a.secret_key, b.public_key),
            suite->shared_secret(a.secret_key, c.public_key));
}

TEST_P(SuiteTest, SealedBoxRoundTrip) {
  const SuitePtr suite = make();
  Rng rng(7);
  const KeyPair recipient = suite->keygen(rng);
  const Bytes plain = to_bytes("S, msg_id, body — sealed to D");
  const SealedBox box = seal(*suite, rng, recipient.public_key, plain);
  EXPECT_NE(box.ciphertext, plain);
  EXPECT_EQ(seal_open(*suite, recipient.secret_key, box), plain);
}

TEST_P(SuiteTest, SealedBoxWrongRecipientGetsGarbage) {
  const SuitePtr suite = make();
  Rng rng(8);
  const KeyPair recipient = suite->keygen(rng);
  const KeyPair other = suite->keygen(rng);
  const Bytes plain = to_bytes("only for the destination");
  const SealedBox box = seal(*suite, rng, recipient.public_key, plain);
  EXPECT_NE(seal_open(*suite, other.secret_key, box), plain);
}

TEST_P(SuiteTest, DistinctKeygens) {
  const SuitePtr suite = make();
  Rng rng(9);
  const KeyPair a = suite->keygen(rng);
  const KeyPair b = suite->keygen(rng);
  EXPECT_NE(a.public_key, b.public_key);
  EXPECT_NE(a.secret_key, b.secret_key);
}

TEST_P(SuiteTest, ArtifactsAndVerdictsIdenticalWithMontgomeryOnAndOff) {
  // Every suite must produce bit-identical keys, signatures, shared secrets,
  // and accept/reject verdicts whether the Montgomery fast path answers the
  // arithmetic or the classic schoolbook oracle does.
  const SuitePtr suite = make();
  KeyPair kp[2];
  KeyPair peer[2];
  Bytes sig[2];
  Bytes secret[2];
  bool verdicts[2][3];
  const Bytes msg = to_bytes("relay proof, epoch 9");
  for (const bool mont : {true, false}) {
    const std::size_t side = mont ? 0 : 1;
    const FastPathScope scope(mont);
    Rng rng(11);  // same draws on both sides
    kp[side] = suite->keygen(rng);
    peer[side] = suite->keygen(rng);
    sig[side] = suite->sign(kp[side].secret_key, msg);
    secret[side] = suite->shared_secret(kp[side].secret_key, peer[side].public_key);
    Bytes tampered_sig = sig[side];
    tampered_sig[5] ^= 0x10;
    Bytes tampered_msg = msg;
    tampered_msg[0] ^= 0x01;
    const VerifyRequest reqs[] = {
        {BytesView(kp[side].public_key), BytesView(msg), BytesView(sig[side])},
        {BytesView(kp[side].public_key), BytesView(tampered_msg), BytesView(sig[side])},
        {BytesView(kp[side].public_key), BytesView(msg), BytesView(tampered_sig)},
    };
    suite->verify_batch(reqs, verdicts[side]);
  }
  EXPECT_EQ(kp[0].public_key, kp[1].public_key);
  EXPECT_EQ(kp[0].secret_key, kp[1].secret_key);
  EXPECT_EQ(sig[0], sig[1]);
  EXPECT_EQ(secret[0], secret[1]);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(verdicts[0][i], verdicts[1][i]) << "request " << i;
    EXPECT_EQ(verdicts[0][i], i == 0) << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuiteTest,
                         ::testing::Values("schnorr", "schnorr-rs", "fast"),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(FastSuite, DifferentSeedsCannotCrossVerify) {
  // A signature made under one suite seed must not verify under another:
  // the seed plays the role of the unforgeability assumption.
  const SuitePtr s1 = make_fast_suite(1);
  const SuitePtr s2 = make_fast_suite(2);
  Rng rng(10);
  const KeyPair kp = s1->keygen(rng);
  const Bytes sig = s1->sign(kp.secret_key, to_bytes("m"));
  EXPECT_FALSE(s2->verify(kp.public_key, to_bytes("m"), sig));
}

TEST(SessionKeys, DerivationBindsTranscript) {
  const SessionKeys k1 = derive_session_keys(to_bytes("secret"), to_bytes("transcript-a"));
  const SessionKeys k2 = derive_session_keys(to_bytes("secret"), to_bytes("transcript-b"));
  EXPECT_NE(k1.enc_key, k2.enc_key);
  const SessionKeys k3 = derive_session_keys(to_bytes("secret"), to_bytes("transcript-a"));
  EXPECT_EQ(k1.enc_key, k3.enc_key);
  EXPECT_EQ(k1.nonce, k3.nonce);
}

}  // namespace
}  // namespace g2g::crypto
