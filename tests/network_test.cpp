#include "g2g/proto/network.hpp"

#include <gtest/gtest.h>

#include "g2g/crypto/schnorr.hpp"
#include "g2g/proto/epidemic.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

TEST(Network, RequiresFinalizedTrace) {
  trace::ContactTrace t;
  t.add(NodeId(0), NodeId(1), TimePoint::zero(), TimePoint::from_seconds(1.0));
  metrics::Collector c;
  EXPECT_THROW(Network<EpidemicNode>(t, NetworkConfig{}, {}, c), std::invalid_argument);
}

TEST(Network, SessionsAreCountedPerContact) {
  World<EpidemicNode> w(make_trace(4, {{0, 1, 10, 20}, {0, 1, 100, 110}, {2, 3, 50, 60}}));
  w.run();
  EXPECT_EQ(w.collector().costs(NodeId(0)).sessions, 2u);
  // The fixture's node-universe pad contact lies beyond the horizon.
  EXPECT_EQ(w.collector().costs(NodeId(2)).sessions, 1u);
}

TEST(Network, EncountersRecordedSymmetrically) {
  World<G2GEpidemicNode> w(make_trace(4, {{0, 1, 10, 20}, {0, 1, 100, 110}}));
  w.run();
  // ProtocolNode base ignores encounters for epidemic; this checks they at
  // least do not crash. The Delegation override is covered elsewhere.
  SUCCEED();
}

TEST(Network, CertificatesDistributedToAllNodes) {
  World<EpidemicNode> w(make_trace(5, {{0, 1, 10, 20}}));
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NE(w.network().roster().find(NodeId(i)), nullptr);
  }
}

TEST(Network, WarmUpFeedsNegativeHistory) {
  World<G2GEpidemicNode> w(make_trace(4, {{0, 1, 10, 20}}));
  std::vector<trace::ContactEvent> history{
      {NodeId(0), NodeId(1), TimePoint::from_seconds(100.0), TimePoint::from_seconds(110.0)}};
  // Window starts at t=500: the event lands at -400s. Must not throw.
  w.network().warm_up(history, TimePoint::from_seconds(500.0));
  w.run();
  SUCCEED();
}

TEST(Network, MessageMetadataMapsToCollector) {
  World<EpidemicNode> w(make_trace(4, {{0, 2, 100, 110}}));
  const MessageId id = w.send(0, 2, 10);
  w.run();
  const auto& rec = w.collector().messages().at(id);
  EXPECT_EQ(rec.src, NodeId(0));
  EXPECT_EQ(rec.dst, NodeId(2));
  EXPECT_EQ(rec.created.to_seconds(), 10.0);
  ASSERT_TRUE(rec.delivered.has_value());
  EXPECT_EQ(rec.replicas, 1u);
}

TEST(Network, BlacklistedPairNeverSessions) {
  // Manually inject a blacklist via a PoM learned by node 0 about node 1 is
  // complex; instead check the public accepts_session_with gate directly.
  World<EpidemicNode> w(make_trace(4, {{0, 1, 100, 110}}));
  EXPECT_TRUE(w.node(0).accepts_session_with(NodeId(1)));
  w.run();
  EXPECT_TRUE(w.node(0).accepts_session_with(NodeId(1)));
}

TEST(Network, DefaultSuiteIsFastSuite) {
  World<EpidemicNode> w(make_trace(4, {{0, 1, 100, 110}}));
  EXPECT_EQ(w.network().config().suite->name(), "fast-hmac");
}

TEST(Network, RunsOnSchnorrSuiteEndToEnd) {
  auto cfg = World<G2GEpidemicNode>::default_config();
  cfg.suite = crypto::make_schnorr_suite(crypto::SchnorrGroup::small_group());
  World<G2GEpidemicNode> w(make_trace(4, {{0, 1, 100, 110}, {1, 2, 500, 510}}), cfg);
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_GT(w.collector().costs(NodeId(1)).signatures, 0u);
}

TEST(Network, OutsidersReflectsCommunityMap) {
  auto cfg = World<EpidemicNode>::default_config();
  cfg.communities =
      community::CommunityMap(4, {{NodeId(0), NodeId(1)}, {NodeId(2), NodeId(3)}});
  World<EpidemicNode> w(make_trace(4, {{0, 1, 10, 20}}), cfg);
  EXPECT_FALSE(w.network().outsiders(NodeId(0), NodeId(1)));
  EXPECT_TRUE(w.network().outsiders(NodeId(0), NodeId(2)));
}

}  // namespace
}  // namespace g2g::proto
