// Robustness of every decoder against malformed input: random bytes and
// random truncations/mutations of valid encodings must either decode or
// throw DecodeError — never crash, hang, or read out of bounds.
#include <gtest/gtest.h>

#include "g2g/crypto/identity.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/util/rng.hpp"

namespace g2g {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

template <typename Decode>
void expect_no_crash(Rng& rng, Decode&& decode, int rounds = 300) {
  for (int i = 0; i < rounds; ++i) {
    const Bytes junk = random_bytes(rng, rng.below(200));
    try {
      decode(junk);
    } catch (const DecodeError&) {
      // expected for malformed input
    }
  }
}

TEST(FuzzDecode, ProofOfRelaySurvivesJunk) {
  Rng rng(101);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::ProofOfRelay::decode(b); });
}

TEST(FuzzDecode, QualityDeclarationSurvivesJunk) {
  Rng rng(102);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::QualityDeclaration::decode(b); });
}

TEST(FuzzDecode, SealedMessageSurvivesJunk) {
  Rng rng(103);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::SealedMessage::decode(b); });
}

TEST(FuzzDecode, CertificateSurvivesJunk) {
  Rng rng(104);
  expect_no_crash(rng, [](const Bytes& b) { (void)crypto::Certificate::decode(b); });
}

TEST(FuzzDecode, SchnorrSignatureSurvivesJunk) {
  Rng rng(105);
  expect_no_crash(rng, [](const Bytes& b) { (void)crypto::SchnorrSignature::decode(b); });
}

TEST(FuzzDecode, TruncationsOfValidEncodings) {
  Rng rng(106);
  proto::ProofOfRelay por;
  por.h.fill(0x7c);
  por.giver = NodeId(1);
  por.taker = NodeId(2);
  por.delegation = true;
  por.taker_signature = random_bytes(rng, 64);
  const Bytes valid = por.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::ProofOfRelay::decode(truncated), DecodeError) << cut;
  }
  // The full encoding round-trips.
  const proto::ProofOfRelay decoded = proto::ProofOfRelay::decode(valid);
  EXPECT_EQ(decoded.h, por.h);
}

TEST(FuzzDecode, SingleByteMutationsNeverCrash) {
  Rng rng(107);
  proto::QualityDeclaration decl;
  decl.declarer = NodeId(3);
  decl.dst = NodeId(4);
  decl.value = 7.0;
  decl.frame = 2;
  decl.at = TimePoint::from_seconds(10.0);
  decl.signature = random_bytes(rng, 32);
  const Bytes valid = decl.encode();
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      Bytes mutated = valid;
      mutated[i] ^= flip;
      try {
        (void)proto::QualityDeclaration::decode(mutated);
      } catch (const DecodeError&) {
      }
    }
  }
}

TEST(FuzzDecode, ProofOfMisbehaviorSurvivesJunk) {
  Rng rng(110);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::ProofOfMisbehavior::decode(b); });
}

TEST(FuzzDecode, SchnorrRsSignatureSurvivesJunk) {
  Rng rng(111);
  expect_no_crash(rng, [](const Bytes& b) { (void)crypto::SchnorrSignatureRS::decode(b); });
}

TEST(FuzzDecode, PomTruncationsAndMutationsNeverCrash) {
  Rng rng(112);
  proto::ProofOfMisbehavior pom;
  pom.kind = proto::ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  proto::ProofOfRelay por;
  por.h.fill(0x2e);
  por.giver = NodeId(0);
  por.taker = NodeId(1);
  por.delegation = true;
  por.taker_signature = random_bytes(rng, 32);
  pom.evidence_accepted = por;
  por.giver = NodeId(1);
  por.taker = NodeId(2);
  pom.evidence_forwarded = por;
  const Bytes valid = pom.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::ProofOfMisbehavior::decode(truncated), DecodeError) << cut;
  }
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      Bytes mutated = valid;
      mutated[i] ^= flip;
      try {
        (void)proto::ProofOfMisbehavior::decode(mutated);
      } catch (const DecodeError&) {
      }
    }
  }
  // The untouched encoding round-trips.
  EXPECT_EQ(proto::ProofOfMisbehavior::decode(valid).encode(), valid);
}

TEST(FuzzDecode, EpidemicPorTruncationsNeverCrash) {
  // The non-delegation encoding omits the delegation-only fields; every
  // prefix must still be rejected cleanly.
  Rng rng(113);
  proto::ProofOfRelay por;
  por.h.fill(0x4b);
  por.giver = NodeId(5);
  por.taker = NodeId(6);
  por.delegation = false;
  por.taker_signature = random_bytes(rng, 32);
  const Bytes valid = por.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::ProofOfRelay::decode(truncated), DecodeError) << cut;
  }
  EXPECT_EQ(proto::ProofOfRelay::decode(valid).encode(), valid);
}

TEST(FuzzDecode, VerifyPomOnRandomEvidenceNeverAccepts) {
  // Random evidence must never produce a verifiable PoM (only properly
  // signed evidence does).
  Rng rng(108);
  const crypto::SuitePtr suite = crypto::make_fast_suite(0xF077);
  crypto::Authority authority(suite, rng);
  proto::Roster roster;
  std::vector<crypto::NodeIdentity> ids;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ids.emplace_back(suite, NodeId(i), authority, rng);
    roster.add(ids.back().certificate());
  }
  for (int round = 0; round < 100; ++round) {
    proto::ProofOfMisbehavior pom;
    pom.kind = static_cast<proto::ProofOfMisbehavior::Kind>(rng.below(3));
    pom.culprit = NodeId(static_cast<std::uint32_t>(rng.below(3)));
    pom.accuser = NodeId(static_cast<std::uint32_t>(rng.below(3)));
    proto::ProofOfRelay por;
    por.giver = pom.accuser;
    por.taker = pom.culprit;
    por.delegation = true;
    por.taker_signature = random_bytes(rng, 32);  // junk signature
    pom.evidence_accepted = por;
    pom.evidence_forwarded = por;
    proto::QualityDeclaration decl;
    decl.declarer = pom.culprit;
    decl.signature = random_bytes(rng, 32);
    pom.evidence_declaration = decl;
    EXPECT_FALSE(proto::verify_pom(*suite, roster, pom));
  }
}

TEST(FuzzDecode, RelayFramesSurviveJunk) {
  // Every handshake/audit frame decoder of the relay core against random
  // bytes: decode or DecodeError, nothing else.
  Rng rng(114);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::RelayRqstFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::RelayOkFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::RelayDataFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::KeyRevealFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::PorRqstFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::StoredRespFrame::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::relay::FqRqstFrame::decode(b); });
}

TEST(FuzzDecode, FixedSizeFrameTruncationsNeverCrash) {
  proto::relay::PorRqstFrame rqst;
  rqst.h.fill(0x31);
  rqst.seed.fill(0x9d);
  proto::relay::StoredRespFrame stored;
  stored.h.fill(0x32);
  stored.seed.fill(0x9e);
  stored.digest.fill(0x9f);
  proto::relay::FqRqstFrame fq;
  fq.h.fill(0x33);
  fq.dst = NodeId(12);
  const Bytes encodings[] = {proto::relay::RelayRqstFrame{rqst.h}.encode(),
                             proto::relay::RelayOkFrame{rqst.h, false}.encode(),
                             proto::relay::KeyRevealFrame{rqst.h, {}}.encode(),
                             rqst.encode(), stored.encode(), fq.encode()};
  const auto decoders = {
      +[](const Bytes& b) { (void)proto::relay::RelayRqstFrame::decode(b); },
      +[](const Bytes& b) { (void)proto::relay::RelayOkFrame::decode(b); },
      +[](const Bytes& b) { (void)proto::relay::KeyRevealFrame::decode(b); },
      +[](const Bytes& b) { (void)proto::relay::PorRqstFrame::decode(b); },
      +[](const Bytes& b) { (void)proto::relay::StoredRespFrame::decode(b); },
      +[](const Bytes& b) { (void)proto::relay::FqRqstFrame::decode(b); }};
  std::size_t which = 0;
  for (const auto& decode : decoders) {
    const Bytes& valid = encodings[which++];
    for (std::size_t cut = 0; cut < valid.size(); ++cut) {
      const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_THROW(decode(truncated), DecodeError) << which - 1 << ":" << cut;
    }
  }
}

TEST(FuzzDecode, RelayDataFrameTruncationsAndMutationsNeverCrash) {
  // The only variable-length frame: inner length prefix plus self-delimiting
  // message and declaration encodings. Every truncation must throw; every
  // single-byte mutation must decode or throw.
  Rng rng(115);
  const crypto::SuitePtr suite = crypto::make_fast_suite(0xF115);
  crypto::Authority authority(suite, rng);
  proto::Roster roster;
  std::vector<crypto::NodeIdentity> ids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ids.emplace_back(suite, NodeId(i), authority, rng);
    roster.add(ids.back().certificate());
  }
  proto::relay::RelayDataFrame frame;
  frame.msg = proto::make_message(ids[0], roster.get(NodeId(1)), MessageId(9),
                                  random_bytes(rng, 24), rng);
  frame.h = frame.msg.hash();
  proto::QualityDeclaration decl;
  decl.declarer = NodeId(1);
  decl.dst = NodeId(0);
  decl.value = 3.0;
  decl.signature = random_bytes(rng, 32);
  frame.attachments.push_back(decl);
  const Bytes valid = frame.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::relay::RelayDataFrame::decode(truncated), DecodeError) << cut;
  }
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      Bytes mutated = valid;
      mutated[i] ^= flip;
      try {
        (void)proto::relay::RelayDataFrame::decode(mutated);
      } catch (const DecodeError&) {
      }
    }
  }
  // The untouched encoding round-trips.
  EXPECT_EQ(proto::relay::RelayDataFrame::decode(valid).encode(), valid);
}

TEST(FuzzDecode, QualityDeclarationTruncationsNeverCrash) {
  Rng rng(116);
  proto::QualityDeclaration decl;
  decl.declarer = NodeId(3);
  decl.dst = NodeId(4);
  decl.value = 7.0;
  decl.frame = 2;
  decl.at = TimePoint::from_seconds(10.0);
  decl.signature = random_bytes(rng, 32);
  const Bytes valid = decl.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::QualityDeclaration::decode(truncated), DecodeError) << cut;
  }
  EXPECT_EQ(proto::QualityDeclaration::decode(valid).encode(), valid);
}

TEST(FuzzDecode, SealedMessageTruncationsNeverCrash) {
  Rng rng(117);
  const crypto::SuitePtr suite = crypto::make_fast_suite(0xF117);
  crypto::Authority authority(suite, rng);
  proto::Roster roster;
  std::vector<crypto::NodeIdentity> ids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ids.emplace_back(suite, NodeId(i), authority, rng);
    roster.add(ids.back().certificate());
  }
  const proto::SealedMessage msg = proto::make_message(
      ids[0], roster.get(NodeId(1)), MessageId(3), random_bytes(rng, 40), rng);
  const Bytes valid = msg.encode();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::SealedMessage::decode(truncated), DecodeError) << cut;
  }
  EXPECT_EQ(proto::SealedMessage::decode(valid).encode(), valid);
}

TEST(FuzzDecode, StrictDecodersRejectTrailingBytes) {
  // A whole-buffer decode must consume the buffer exactly: one stray byte
  // after a valid encoding is a framing error, not padding to ignore.
  Rng rng(118);
  proto::ProofOfRelay por;
  por.h.fill(0x5a);
  por.giver = NodeId(1);
  por.taker = NodeId(2);
  por.delegation = true;
  por.taker_signature = random_bytes(rng, 48);
  proto::QualityDeclaration decl;
  decl.declarer = NodeId(3);
  decl.signature = random_bytes(rng, 32);
  const crypto::SuitePtr suite = crypto::make_fast_suite(0xF118);
  crypto::Authority authority(suite, rng);
  proto::Roster roster;
  std::vector<crypto::NodeIdentity> ids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ids.emplace_back(suite, NodeId(i), authority, rng);
    roster.add(ids.back().certificate());
  }
  const proto::SealedMessage msg = proto::make_message(
      ids[0], roster.get(NodeId(1)), MessageId(5), random_bytes(rng, 16), rng);
  proto::ProofOfMisbehavior pom;
  pom.kind = proto::ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(2);
  pom.accuser = NodeId(1);
  pom.evidence_accepted = por;

  const auto reject_padded = [](const Bytes& valid, auto&& decode) {
    Bytes padded = valid;
    padded.push_back(0x00);
    EXPECT_THROW(decode(padded), DecodeError);
  };
  reject_padded(por.encode(), [](const Bytes& b) { (void)proto::ProofOfRelay::decode(b); });
  por.delegation = false;
  reject_padded(por.encode(), [](const Bytes& b) { (void)proto::ProofOfRelay::decode(b); });
  reject_padded(por.encode(),
                [](const Bytes& b) { (void)proto::ProofOfRelayView::decode(b); });
  reject_padded(decl.encode(),
                [](const Bytes& b) { (void)proto::QualityDeclaration::decode(b); });
  reject_padded(msg.encode(), [](const Bytes& b) { (void)proto::SealedMessage::decode(b); });
  reject_padded(msg.encode(),
                [](const Bytes& b) { (void)proto::SealedMessageView::decode(b); });
  reject_padded(pom.encode(),
                [](const Bytes& b) { (void)proto::ProofOfMisbehavior::decode(b); });
}

TEST(FuzzDecode, PomRejectsTrailingJunkInsideEvidence) {
  // An evidence blob whose length prefix covers more than the artefact's
  // canonical encoding smuggles unauthenticated bytes into a gossiped PoM;
  // the strict sub-decode must reject it.
  Rng rng(119);
  proto::ProofOfMisbehavior pom;
  pom.kind = proto::ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(2);
  pom.accuser = NodeId(1);
  proto::ProofOfRelay por;
  por.h.fill(0x66);
  por.giver = NodeId(1);
  por.taker = NodeId(2);
  por.delegation = false;
  por.taker_signature = random_bytes(rng, 32);
  pom.evidence_accepted = por;
  const Bytes valid = pom.encode();
  ASSERT_NO_THROW((void)proto::ProofOfMisbehavior::decode(valid));

  // Header: kind(1) + culprit(4) + accuser(4) + at(8) + presence flag(1),
  // then the u32 length prefix of the accepted-evidence blob.
  const std::size_t len_off = 1 + 4 + 4 + 8 + 1;
  const std::size_t blob_len = por.wire_size();
  Bytes tampered = valid;
  tampered.insert(tampered.begin() +
                      static_cast<std::ptrdiff_t>(len_off + 4 + blob_len),
                  std::uint8_t{0xAA});
  tampered[len_off] = static_cast<std::uint8_t>(blob_len + 1);  // small, no carry
  EXPECT_THROW((void)proto::ProofOfMisbehavior::decode(tampered), DecodeError);
}

TEST(FuzzDecode, DecodeViewsSurviveJunk) {
  // The non-owning view decoders walk the same grammar as the owning ones;
  // they must be exactly as robust against malformed input.
  Rng rng(120);
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::ProofOfRelayView::decode(b); });
  expect_no_crash(rng, [](const Bytes& b) { (void)proto::SealedMessageView::decode(b); });
  expect_no_crash(rng,
                  [](const Bytes& b) { (void)proto::relay::RelayDataFrameView::decode(b); });
}

TEST(FuzzDecode, DecodeViewsMatchOwningDecoders) {
  Rng rng(121);
  const crypto::SuitePtr suite = crypto::make_fast_suite(0xF121);
  crypto::Authority authority(suite, rng);
  proto::Roster roster;
  std::vector<crypto::NodeIdentity> ids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    ids.emplace_back(suite, NodeId(i), authority, rng);
    roster.add(ids.back().certificate());
  }
  proto::relay::RelayDataFrame frame;
  frame.msg = proto::make_message(ids[0], roster.get(NodeId(1)), MessageId(7),
                                  random_bytes(rng, 24), rng);
  frame.h = frame.msg.hash();
  proto::QualityDeclaration decl;
  decl.declarer = NodeId(1);
  decl.dst = NodeId(0);
  decl.value = 2.5;
  decl.signature = random_bytes(rng, 32);
  frame.attachments.push_back(decl);
  const Bytes valid = frame.encode();

  const proto::relay::RelayDataFrameView view = proto::relay::RelayDataFrameView::decode(valid);
  EXPECT_EQ(view.h, frame.h);
  EXPECT_EQ(view.msg.hash(), frame.msg.hash());
  EXPECT_EQ(view.msg.to_owned().encode(), frame.msg.encode());
  EXPECT_EQ(view.msg.wire_size(), frame.msg.wire_size());
  const std::vector<proto::QualityDeclaration> attachments = view.decode_attachments();
  ASSERT_EQ(attachments.size(), 1u);
  EXPECT_EQ(attachments[0].encode(), decl.encode());
  // Every truncation of the frame must be rejected by the view decoder too.
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::relay::RelayDataFrameView::decode(truncated), DecodeError)
        << cut;
  }

  proto::ProofOfRelay por;
  por.h.fill(0x3d);
  por.giver = NodeId(0);
  por.taker = NodeId(1);
  por.delegation = true;
  por.taker_signature = random_bytes(rng, 40);
  const Bytes por_wire = por.encode();
  const proto::ProofOfRelayView por_view = proto::ProofOfRelayView::decode(por_wire);
  EXPECT_EQ(por_view.to_owned().encode(), por_wire);
  EXPECT_EQ(por_view.wire_size(), por_wire.size());
  // The signed payload built through the view matches the owning one.
  EXPECT_EQ(por_view.signed_payload_size(), por.signed_payload_size());
  Bytes view_payload(por_view.signed_payload_size());
  SpanWriter w(view_payload);
  por_view.signed_payload_into(w);
  w.expect_full();
  EXPECT_EQ(view_payload, por.signed_payload());
  for (std::size_t cut = 0; cut < por_wire.size(); ++cut) {
    const Bytes truncated(por_wire.begin(),
                          por_wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)proto::ProofOfRelayView::decode(truncated), DecodeError) << cut;
  }
}

TEST(FuzzDecode, U256FromHexSurvivesJunkStrings) {
  Rng rng(109);
  const char alphabet[] = "0123456789abcdefXYZ -";
  for (int i = 0; i < 300; ++i) {
    std::string s;
    const std::size_t len = rng.below(80);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
    }
    try {
      (void)crypto::U256::from_hex(s);
    } catch (const DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace g2g
