// Shared fixtures for the protocol tests: a hand-built contact trace driving
// a typed Network, with helpers for injecting messages at specific times and
// interrogating nodes afterwards.
#pragma once

#include <initializer_list>
#include <memory>
#include <vector>

#include "g2g/metrics/collector.hpp"
#include "g2g/proto/network.hpp"
#include "g2g/trace/contact.hpp"

namespace g2g::proto::testutil {

struct Contact {
  std::uint32_t a;
  std::uint32_t b;
  double start_s;
  double end_s;
};

inline trace::ContactTrace make_trace(std::size_t node_count,
                                      std::initializer_list<Contact> contacts) {
  trace::ContactTrace t;
  for (const auto& c : contacts) {
    t.add(NodeId(c.a), NodeId(c.b), TimePoint::from_seconds(c.start_s),
          TimePoint::from_seconds(c.end_s));
  }
  // Pad the node universe: a contact of the last node far past any horizon.
  if (node_count >= 2) {
    t.add(NodeId(static_cast<std::uint32_t>(node_count - 2)),
          NodeId(static_cast<std::uint32_t>(node_count - 1)),
          TimePoint::from_seconds(9.0e8), TimePoint::from_seconds(9.0e8 + 1.0));
  }
  t.finalize();
  return t;
}

/// A small typed world: trace + network + collector, with message injection.
template <typename NodeT>
class World {
 public:
  World(trace::ContactTrace trace, NetworkConfig config,
        std::vector<BehaviorConfig> behaviors = {})
      : trace_(std::move(trace)),
        network_(std::make_unique<Network<NodeT>>(trace_, std::move(config),
                                                  std::move(behaviors), collector_)) {}

  explicit World(trace::ContactTrace trace, std::vector<BehaviorConfig> behaviors = {})
      : World(std::move(trace), default_config(), std::move(behaviors)) {}

  [[nodiscard]] static NetworkConfig default_config() {
    NetworkConfig cfg;
    cfg.node.delta1 = Duration::minutes(30);
    cfg.node.delta2 = Duration::minutes(60);
    cfg.node.heavy_hmac_iterations = 8;  // keep tests fast
    cfg.horizon = TimePoint::from_seconds(4.0 * 3600.0);
    return cfg;
  }

  /// Schedule one message src -> dst at time t.
  MessageId send(std::uint32_t src, std::uint32_t dst, double at_s, std::size_t body = 16) {
    const MessageId id(next_id_++);
    network_->schedule_traffic({sim::TrafficDemand{
        id, NodeId(src), NodeId(dst), TimePoint::from_seconds(at_s), body}});
    return id;
  }

  void run() { network_->run(); }

  [[nodiscard]] NodeT& node(std::uint32_t n) { return network_->node(NodeId(n)); }
  [[nodiscard]] Network<NodeT>& network() { return *network_; }
  [[nodiscard]] metrics::Collector& collector() { return collector_; }

  [[nodiscard]] bool delivered(MessageId id) const {
    return collector_.messages().at(id).delivered.has_value();
  }
  [[nodiscard]] std::uint32_t replicas(MessageId id) const {
    return collector_.messages().at(id).replicas;
  }

 private:
  trace::ContactTrace trace_;
  metrics::Collector collector_;
  std::unique_ptr<Network<NodeT>> network_;
  std::uint64_t next_id_ = 1;
};

}  // namespace g2g::proto::testutil
