// Regression tests for the bench harness CLI: the --trace-out/--json-out
// sinks are validated eagerly at option-parse time, and an unwritable path
// must fail the process (exit != 0) instead of silently dropping telemetry
// at the end of a long sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

// Exit code of a shell command, or -1 when the child did not exit normally.
int run(const std::string& command) {
  const int status = std::system((command + " >/dev/null 2>&1").c_str());
  if (status == -1) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const std::string kFig4 = G2G_BENCH_FIG4;

TEST(BenchCli, HelpExitsZero) { EXPECT_EQ(run(kFig4 + " --help"), 0); }

TEST(BenchCli, UnwritableTraceSinkFailsAtParseTime) {
  EXPECT_EQ(run(kFig4 + " --quick --trace-out /nonexistent-dir/x.jsonl"), 1);
}

TEST(BenchCli, UnwritableJsonSinkFailsAtParseTime) {
  EXPECT_EQ(run(kFig4 + " --quick --json-out /nonexistent-dir/x.json"), 1);
}

TEST(BenchCli, UnknownOptionFails) {
  EXPECT_NE(run(kFig4 + " --no-such-flag"), 0);
}

}  // namespace
