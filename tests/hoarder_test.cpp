// The hoarder deviation: stores everything, relays nothing, answers storage
// tests honestly. Undetectable by construction — the heavy HMAC is the
// counter-incentive (Section IV-C). These tests pin down both halves:
// no detection ever, and a strictly worse payoff than faithful behaviour.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"
#include "g2g/proto/epidemic.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

constexpr double kD1 = 1800.0;

TEST(Hoarder, NeverRelaysOthersMessages) {
  World<G2GEpidemicNode> w(make_trace(5, {{0, 1, 100, 110}, {1, 2, 300, 310}}),
                           {{}, {Behavior::Hoarder, false}, {}, {}, {}});
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 1u);  // only source -> hoarder
  EXPECT_TRUE(w.node(1).stores_message(MessageHash{}) == false);  // structural
  EXPECT_GT(w.node(1).buffered_bytes(), 0);  // but it does store the payload
}

TEST(Hoarder, PassesStorageTestUndetected) {
  World<G2GEpidemicNode> w(
      make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}),
      {{}, {Behavior::Hoarder, false}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  // The hoarder is never caught...
  EXPECT_TRUE(w.collector().detections().empty());
  EXPECT_TRUE(w.collector().evictions().empty());
  // ...but it paid the heavy HMAC for the test.
  EXPECT_GE(w.collector().costs(NodeId(1)).heavy_hmacs, 1u);
}

TEST(Hoarder, StillSpreadsItsOwnMessages) {
  World<G2GEpidemicNode> w(make_trace(5, {{1, 2, 100, 110}, {2, 3, 300, 310}}),
                           {{}, {Behavior::Hoarder, false}, {}, {}, {}});
  const MessageId id = w.send(1, 3, 50);  // the hoarder is the source
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Hoarder, VanillaEpidemicHoarderBlocksRelay) {
  World<EpidemicNode> w(make_trace(5, {{0, 1, 100, 110}, {1, 2, 300, 310}}),
                        {{}, {Behavior::Hoarder, false}, {}, {}, {}});
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
  // The hoarder accepted (and stores) the replica but never forwarded it.
  EXPECT_EQ(w.node(1).buffer_size(), 1u);
}

TEST(Hoarder, VanillaHoarderStillSendsOwnTraffic) {
  World<EpidemicNode> w(make_trace(5, {{1, 2, 100, 110}, {2, 3, 300, 310}}),
                        {{}, {Behavior::Hoarder, false}, {}, {}, {}});
  const MessageId id = w.send(1, 3, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Hoarder, WithOutsidersRelaysForInsiders) {
  auto cfg = World<G2GEpidemicNode>::default_config();
  cfg.communities =
      community::CommunityMap(5, {{NodeId(0), NodeId(1)}, {NodeId(2), NodeId(3), NodeId(4)}});
  World<G2GEpidemicNode> w(make_trace(5, {{0, 1, 100, 110}, {1, 2, 300, 310}}), cfg,
                           {{}, {Behavior::Hoarder, true}, {}, {}, {}});
  // Giver 0 is an insider of hoarder 1: the message is relayed onward.
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

}  // namespace
}  // namespace g2g::proto

namespace g2g::core {
namespace {

TEST(HoarderNash, HoardingDoesNotPayDespiteBeingUndetectable) {
  ExperimentConfig cfg;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 24;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.protocol = Protocol::G2GEpidemic;
  cfg.sim_window = Duration::hours(3);
  cfg.traffic_window = Duration::hours(2);
  cfg.mean_interarrival = Duration::seconds(12.0);
  cfg.deviation = proto::Behavior::Hoarder;
  cfg.deviant_count = 6;
  cfg.seed = 31;
  const ExperimentResult r = run_experiment(cfg);

  // Undetectable: no PoMs, no evictions.
  EXPECT_TRUE(r.collector.detections().empty());
  EXPECT_EQ(r.detected_count, 0u);

  // The heavy HMAC bill: hoarders answer storage tests, faithful relays
  // virtually never do ("the heavy HMAC is virtually never executed if no
  // node deviates" — Section IV-B).
  double hoarder_hmacs = 0.0;
  double faithful_hmacs = 0.0;
  double hoarder_payoff = 0.0;
  double faithful_payoff = 0.0;
  std::size_t nh = 0;
  std::size_t nf = 0;
  for (std::uint32_t i = 0; i < 24; ++i) {
    const bool hoarder =
        std::binary_search(r.deviants.begin(), r.deviants.end(), NodeId(i));
    const auto& costs = r.collector.costs(NodeId(i));
    if (hoarder) {
      hoarder_hmacs += static_cast<double>(costs.heavy_hmacs);
      hoarder_payoff += node_payoff(r, NodeId(i));
      ++nh;
    } else {
      // Sources verifying STORED responses also compute the HMAC; count
      // only prover-side responses by looking at non-source relays is hard
      // here, so compare per-group totals instead.
      faithful_hmacs += static_cast<double>(costs.heavy_hmacs);
      faithful_payoff += node_payoff(r, NodeId(i));
      ++nf;
    }
  }
  EXPECT_GT(hoarder_hmacs / static_cast<double>(nh), 0.0);
  EXPECT_LE(hoarder_payoff / static_cast<double>(nh),
            faithful_payoff / static_cast<double>(nf));
}

}  // namespace
}  // namespace g2g::core
