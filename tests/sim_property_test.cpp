// Property tests for the discrete-event core: the simulator's ordering
// contract ((t, seq) — equal timestamps fire in scheduling order), the
// horizon guarantee (schedule_trace never delivers a callback after the
// horizon), and whole-pipeline seed replay (the same config twice yields a
// byte-identical serialized result). These are the assumptions every other
// determinism test in the repo quietly leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "g2g/core/experiment.hpp"
#include "g2g/core/json.hpp"
#include "g2g/sim/simulator.hpp"
#include "g2g/trace/contact.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::sim {
namespace {

TEST(SimProperty, EqualTimestampsFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.at(TimePoint::from_seconds(5.0), [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(SimProperty, ExecutionIsAStableSortOfRandomSchedules) {
  // For many random schedules (with heavy timestamp collisions), the firing
  // order must equal the stable sort of the scheduling order by time —
  // regardless of how the underlying heap happens to arrange ties.
  Rng rng(0xD15C);
  for (int trial = 0; trial < 50; ++trial) {
    Simulator sim;
    std::vector<std::pair<double, int>> scheduled;  // (time, scheduling index)
    std::vector<int> fired;
    const int n = 3 + static_cast<int>(rng.next() % 60);
    for (int i = 0; i < n; ++i) {
      // Draw from a tiny set of instants so ties are the common case.
      const double t = static_cast<double>(rng.next() % 5);
      scheduled.emplace_back(t, i);
      sim.at(TimePoint::from_seconds(t), [&fired, i] { fired.push_back(i); });
    }
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(sim.run(), static_cast<std::size_t>(n)) << "trial " << trial;
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n)) << "trial " << trial;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(fired[static_cast<std::size_t>(i)], scheduled[static_cast<std::size_t>(i)].second)
          << "trial " << trial;
    }
  }
}

TEST(SimProperty, NestedSchedulingAtNowFiresAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> fired;
  sim.at(TimePoint::from_seconds(1.0), [&] {
    fired.push_back(0);
    // Scheduled mid-event at the current instant: runs after every event
    // already queued for t=1, because it gets a later seq.
    sim.at(sim.now(), [&fired] { fired.push_back(2); });
  });
  sim.at(TimePoint::from_seconds(1.0), [&fired] { fired.push_back(1); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

class RecordingListener final : public ContactListener {
 public:
  void on_contact_up(TimePoint t, NodeId a, NodeId b) override {
    events.emplace_back(t, true);
    (void)a;
    (void)b;
  }
  void on_contact_down(TimePoint t, NodeId a, NodeId b) override {
    events.emplace_back(t, false);
    (void)a;
    (void)b;
  }
  std::vector<std::pair<TimePoint, bool>> events;
};

TEST(SimProperty, ScheduledTraceNeverFiresPastTheHorizon) {
  Rng rng(0x40A1);
  for (int trial = 0; trial < 30; ++trial) {
    const TimePoint horizon = TimePoint::from_seconds(100.0);
    trace::ContactTrace trace;
    std::size_t within = 0;
    const int contacts = 5 + static_cast<int>(rng.next() % 40);
    for (int i = 0; i < contacts; ++i) {
      const auto a = NodeId(static_cast<std::uint32_t>(rng.next() % 8));
      auto b = NodeId(static_cast<std::uint32_t>(rng.next() % 8));
      if (a == b) b = NodeId((b.value() + 1) % 8);
      // Contacts deliberately straddle and overshoot the horizon.
      const double start = rng.uniform(0.0, 180.0);
      const double end = start + rng.uniform(0.1, 60.0);
      trace.add(a, b, TimePoint::from_seconds(start), TimePoint::from_seconds(end));
      if (start <= 100.0) ++within;
      if (end <= 100.0) ++within;
    }
    trace.finalize();

    Simulator sim(horizon);
    RecordingListener listener;
    schedule_trace(sim, trace, listener);
    sim.run();

    for (const auto& [t, up] : listener.events) {
      EXPECT_LE(t, horizon) << "trial " << trial << (up ? " up" : " down");
    }
    EXPECT_LE(sim.now(), horizon) << "trial " << trial;
    // finalize() may coalesce overlapping intervals, so `within` is only an
    // upper bound on the callbacks that survive the horizon cut.
    EXPECT_LE(listener.events.size(), static_cast<std::size_t>(2 * contacts))
        << "trial " << trial;
    EXPECT_LE(listener.events.size(), within) << "trial " << trial;
  }
}

core::ExperimentConfig replay_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.protocol = core::Protocol::G2GEpidemic;
  cfg.scenario = core::infocom05_scenario();
  cfg.scenario.trace_config.nodes = 14;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(45.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 3;
  cfg.seed = seed;
  return cfg;
}

TEST(SimProperty, SeedReplayIsByteIdentical) {
  for (const std::uint64_t seed : {7ULL, 21ULL}) {
    const std::string a = core::to_json(core::run_experiment(replay_config(seed)));
    const std::string b = core::to_json(core::run_experiment(replay_config(seed)));
    EXPECT_EQ(a, b) << "seed " << seed;
  }
  // Different seeds must not collide (the replay test would be vacuous if
  // the seed never reached the pipeline).
  const std::string a = core::to_json(core::run_experiment(replay_config(7)));
  const std::string c = core::to_json(core::run_experiment(replay_config(8)));
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace g2g::sim
