#include "g2g/crypto/uint256.hpp"

#include <gtest/gtest.h>

namespace g2g::crypto {
namespace {

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff0123456789abcdef");
  EXPECT_EQ(v.to_hex(), "deadbeef00112233445566778899aabbccddeeff0123456789abcdef");
  EXPECT_EQ(U256(0).to_hex(), "0");
  EXPECT_EQ(U256(255).to_hex(), "ff");
}

TEST(U256, HexRejectsBadInput) {
  EXPECT_THROW((void)U256::from_hex("xyz"), DecodeError);
  // 65 hex digits with a nonzero top nibble overflow.
  EXPECT_THROW((void)U256::from_hex(std::string(65, 'f')), DecodeError);
  // Leading zeros beyond 64 digits are fine.
  EXPECT_EQ(U256::from_hex("0" + std::string(64, '1')).to_hex(), std::string(64, '1'));
}

TEST(U256, BytesBeRoundTrip) {
  const U256 v = U256::from_hex("0102030405060708090a0b0c0d0e0f10");
  const Bytes b = v.to_bytes_be();
  ASSERT_EQ(b.size(), 32u);
  EXPECT_EQ(U256::from_bytes_be(b), v);
  EXPECT_EQ(b[31], 0x10);
  EXPECT_EQ(b[16], 0x01);
  EXPECT_EQ(b[0], 0x00);
}

TEST(U256, Comparisons) {
  const U256 small(5);
  const U256 big = U256::from_hex("100000000000000000");  // 2^68
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, U256(5));
  EXPECT_TRUE(U256(0).is_zero());
  EXPECT_FALSE(small.is_zero());
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256(0).bit_length(), 0u);
  EXPECT_EQ(U256(1).bit_length(), 1u);
  EXPECT_EQ(U256(255).bit_length(), 8u);
  EXPECT_EQ(U256(256).bit_length(), 9u);
  EXPECT_EQ(U256::from_hex(std::string(64, 'f')).bit_length(), 256u);
}

TEST(U256, AddWithCarryChains) {
  bool carry = false;
  // (2^64 - 1) + 1 = 2^64: carry propagates into limb 1.
  const U256 v = add(U256(~0ULL), U256(1), carry);
  EXPECT_FALSE(carry);
  EXPECT_EQ(v.to_hex(), "10000000000000000");

  const U256 max = U256::from_hex(std::string(64, 'f'));
  const U256 wrapped = add(max, U256(1), carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(wrapped.is_zero());
}

TEST(U256, SubWithBorrow) {
  bool borrow = false;
  const U256 v = sub(U256::from_hex("10000000000000000"), U256(1), borrow);
  EXPECT_FALSE(borrow);
  EXPECT_EQ(v, U256(~0ULL));

  const U256 w = sub(U256(0), U256(1), borrow);
  EXPECT_TRUE(borrow);
  EXPECT_EQ(w.to_hex(), std::string(64, 'f'));
}

TEST(U256, MulFullKnownProduct) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1: bit 0 set, bits 129..255 set.
  const U256 v = U256::from_hex(std::string(32, 'f'));
  const U512 p = mul_full(v, v);
  EXPECT_EQ(p.limb[0], 1ULL);
  EXPECT_EQ(p.limb[1], 0ULL);
  EXPECT_EQ(p.limb[2], ~0ULL - 1);  // 0xfffffffffffffffe (bit 128 clear)
  EXPECT_EQ(p.limb[3], ~0ULL);
  EXPECT_EQ(p.limb[4], 0ULL);
  EXPECT_EQ(p.limb[5], 0ULL);
  EXPECT_EQ(p.limb[6], 0ULL);
  EXPECT_EQ(p.limb[7], 0ULL);
}

TEST(U256, ModSmallCases) {
  EXPECT_EQ(mod(U256(100), U256(7)), U256(2));
  EXPECT_EQ(mod(U256(6), U256(7)), U256(6));
  EXPECT_EQ(mod(U256(7), U256(7)), U256(0));
  EXPECT_THROW((void)mod(U256(1), U256(0)), std::invalid_argument);
}

TEST(U256, MulModAgainstNativeIntegers) {
  // Cross-check against __int128 arithmetic for 64-bit operands.
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() >> 1;
    const std::uint64_t b = rng.next() >> 1;
    const std::uint64_t m = (rng.next() >> 8) | 1;
    const auto expect =
        static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
    EXPECT_EQ(mul_mod(U256(a), U256(b), U256(m)), U256(expect));
  }
}

TEST(U256, AddSubModIdentities) {
  Rng rng(77);
  const U256 m = U256::from_hex("ffffffffffffffffffffffffffffffff61");  // odd modulus
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_below(rng, m);
    const U256 b = random_below(rng, m);
    const U256 s = add_mod(a, b, m);
    EXPECT_LT(s, m);
    EXPECT_EQ(sub_mod(s, b, m), a);
    EXPECT_EQ(sub_mod(s, a, m), b);
    EXPECT_EQ(add_mod(a, U256(0), m), a);
  }
}

TEST(U256, PowModFermat) {
  // Fermat's little theorem on the Mersenne prime 2^61 - 1.
  const U256 p((1ULL << 61) - 1);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    bool borrow = false;
    const U256 a = add_mod(random_below(rng, sub(p, U256(1), borrow)), U256(1), p);
    EXPECT_EQ(pow_mod(a, sub(p, U256(1), borrow), p), U256(1));
  }
}

TEST(U256, PowModEdgeCases) {
  EXPECT_EQ(pow_mod(U256(5), U256(0), U256(7)), U256(1));
  EXPECT_EQ(pow_mod(U256(5), U256(1), U256(7)), U256(5));
  EXPECT_EQ(pow_mod(U256(2), U256(10), U256(1000000)), U256(1024));
  EXPECT_EQ(pow_mod(U256(9), U256(3), U256(1)), U256(0));  // mod 1
}

TEST(U256, PowModLargeExponentMatchesSquareChain) {
  // a^(2^k) by repeated squaring must agree with pow_mod.
  const U256 m = U256::from_hex("f0000000000000000000000000000001");
  U256 a(12345);
  U256 sq = a;
  for (int k = 1; k <= 100; ++k) sq = mul_mod(sq, sq, m);
  U256 exp;  // 2^100
  exp.limb[1] = 1ULL << 36;
  EXPECT_EQ(pow_mod(a, exp, m), sq);
}

TEST(U256, RandomBelowIsInRangeAndCoversLowValues) {
  Rng rng(5);
  const U256 n(10);
  bool seen[10] = {};
  for (int i = 0; i < 500; ++i) {
    const U256 v = random_below(rng, n);
    ASSERT_LT(v, n);
    seen[v.limb[0]] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_THROW((void)random_below(rng, U256(0)), std::invalid_argument);
}

TEST(PrimalityTest, KnownPrimes) {
  Rng rng(7);
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 7919ULL, (1ULL << 61) - 1}) {
    EXPECT_TRUE(is_probable_prime(U256(p), rng)) << p;
  }
  // 2^127 - 1 is a Mersenne prime.
  const U256 m127 = U256::from_hex("7fffffffffffffffffffffffffffffff");
  EXPECT_TRUE(is_probable_prime(m127, rng));
}

TEST(PrimalityTest, KnownComposites) {
  Rng rng(8);
  for (const std::uint64_t c :
       {1ULL, 4ULL, 91ULL, 561ULL /* Carmichael */, 6601ULL /* Carmichael */,
        1ULL << 40, 7919ULL * 7927ULL}) {
    EXPECT_FALSE(is_probable_prime(U256(c), rng)) << c;
  }
  // 2^67 - 1 = 193707721 * 761838257287 (Mersenne composite).
  EXPECT_FALSE(is_probable_prime(U256::from_hex("7ffffffffffffffff"), rng));
}

}  // namespace
}  // namespace g2g::crypto
