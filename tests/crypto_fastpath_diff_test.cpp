// Differential tests pinning the crypto fast path to its reference
// implementations. Every accelerated routine (SHA-NI compression, the
// precomputed-pad heavy HMAC chain, the fixed-base Schnorr tables, the
// per-run verification cache) must be bit-identical to the straight-line
// code it replaces: golden vectors anchor both sides to the standards, and
// randomized corpora compare fast vs reference over thousands of inputs.
// The final tests close the loop end to end: a full experiment serializes to
// byte-identical JSON with the fast path (and the cache) on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "g2g/core/experiment.hpp"
#include "g2g/core/json.hpp"
#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/hmac.hpp"
#include "g2g/crypto/montgomery.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/suite.hpp"
#include "g2g/crypto/uint256.hpp"
#include "g2g/crypto/verify_cache.hpp"

namespace g2g::crypto {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return out;
}

std::string hex(const Digest& d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (const std::uint8_t b : d) {
    out.push_back(k[b >> 4]);
    out.push_back(k[b & 0xf]);
  }
  return out;
}

// -- SHA-256 ------------------------------------------------------------------

TEST(FastPathDiff, Sha256GoldenVectorsHoldOnBothPaths) {
  const struct {
    const char* msg;
    const char* digest;
  } vectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (const bool fast : {true, false}) {
    const FastPathScope scope(fast);
    for (const auto& v : vectors) {
      EXPECT_EQ(hex(sha256(to_bytes(v.msg))), v.digest) << "fast=" << fast;
    }
  }
}

TEST(FastPathDiff, Sha256FastMatchesReferenceOnRandomCorpus) {
  Rng rng(0x5a5a5a);
  // Lengths chosen to hit every padding branch: empty, sub-block, the 55/56/
  // 63/64 one-vs-two-pad-block boundaries, multi-block, and long runs that
  // exercise the multi-block hardware loop.
  std::vector<std::size_t> lengths{0, 1, 3, 55, 56, 57, 63, 64, 65, 127, 128, 1000};
  for (int i = 0; i < 40; ++i) lengths.push_back(static_cast<std::size_t>(rng.next() % 4096));
  for (const std::size_t n : lengths) {
    const Bytes data = random_bytes(rng, n);
    Digest fast;
    Digest ref;
    {
      const FastPathScope scope(true);
      fast = sha256(data);
    }
    {
      const FastPathScope scope(false);
      ref = sha256(data);
    }
    EXPECT_EQ(fast, ref) << "length " << n;
  }
}

TEST(FastPathDiff, Sha256ChunkedUpdatesMatchOneShot) {
  Rng rng(0xC0FFEE);
  const Bytes data = random_bytes(rng, 3000);
  for (const bool fast : {true, false}) {
    const FastPathScope scope(fast);
    const Digest oneshot = sha256(data);
    for (int trial = 0; trial < 20; ++trial) {
      Sha256 ctx;
      std::size_t off = 0;
      while (off < data.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.next() % 257, data.size() - off);
        ctx.update(BytesView(data.data() + off, chunk));
        off += chunk;
      }
      EXPECT_EQ(ctx.finish(), oneshot) << "fast=" << fast << " trial " << trial;
    }
  }
}

// -- HMAC and the heavy HMAC chain --------------------------------------------

TEST(FastPathDiff, HmacRfc4231GoldenVectorHoldsOnBothPaths) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  for (const bool fast : {true, false}) {
    const FastPathScope scope(fast);
    EXPECT_EQ(hex(hmac_sha256(key, data)),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        << "fast=" << fast;
    EXPECT_EQ(HmacKey(key).mac(data), hmac_sha256(key, data)) << "fast=" << fast;
  }
}

TEST(FastPathDiff, HmacKeyMatchesOneShotOnRandomCorpus) {
  Rng rng(0x44AC);
  for (int i = 0; i < 60; ++i) {
    // Keys straddling the block size hit the hashed-key branch.
    const Bytes key = random_bytes(rng, rng.next() % 96);
    const Bytes a = random_bytes(rng, rng.next() % 300);
    const Bytes b = random_bytes(rng, rng.next() % 300);
    const HmacKey hk(key);
    EXPECT_EQ(hk.mac(a), hmac_sha256(key, a));
    Bytes ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(hk.mac(a, b), hmac_sha256(key, ab));
  }
}

TEST(FastPathDiff, HeavyHmacMatchesReference) {
  Rng rng(0x11EA);
  for (const std::uint32_t iterations : {1u, 2u, 3u, 64u, 257u, 1024u}) {
    const Bytes msg = random_bytes(rng, 1 + rng.next() % 700);
    const Bytes seed = random_bytes(rng, 1 + rng.next() % 48);
    const Digest ref = heavy_hmac_reference(msg, seed, iterations);
    {
      const FastPathScope scope(true);
      EXPECT_EQ(heavy_hmac(msg, seed, iterations), ref) << iterations;
    }
    {
      const FastPathScope scope(false);
      EXPECT_EQ(heavy_hmac(msg, seed, iterations), ref) << iterations;
    }
  }
}

// -- Multi-lane SHA-256 compression -------------------------------------------

TEST(FastPathDiff, MultiLaneCompressionBitIdenticalAcrossBackends) {
  // Every available backend must produce the same states as running the
  // scalar compression on each lane independently — for any lane count up to
  // kSha256MaxLanes and for multi-block runs.
  Rng rng(0x1a9e5);
  for (std::size_t lanes = 1; lanes <= kSha256MaxLanes; ++lanes) {
    for (std::size_t blocks_per_lane = 1; blocks_per_lane <= 3; ++blocks_per_lane) {
      std::vector<Bytes> data(lanes);
      std::vector<std::array<std::uint32_t, 8>> ref_states(lanes);
      for (std::size_t ln = 0; ln < lanes; ++ln) {
        data[ln] = random_bytes(rng, 64 * blocks_per_lane);
        ref_states[ln] = kSha256InitState;
        for (std::size_t i = 0; i < 8; ++i) ref_states[ln][i] += static_cast<std::uint32_t>(ln);
      }
      // Reference: one scalar call per lane.
      std::vector<std::array<std::uint32_t, 8>> expect = ref_states;
      for (std::size_t ln = 0; ln < lanes; ++ln) {
        std::uint32_t* state = expect[ln].data();
        const std::uint8_t* block = data[ln].data();
        sha256_compress_multi(&state, &block, 1, blocks_per_lane,
                              Sha256MultiBackend::kScalar);
      }
      for (const auto backend : {Sha256MultiBackend::kAuto, Sha256MultiBackend::kShaNi,
                                 Sha256MultiBackend::kAvx2, Sha256MultiBackend::kScalar}) {
        std::vector<std::array<std::uint32_t, 8>> got = ref_states;
        std::vector<std::uint32_t*> states;
        std::vector<const std::uint8_t*> blocks;
        for (std::size_t ln = 0; ln < lanes; ++ln) {
          states.push_back(got[ln].data());
          blocks.push_back(data[ln].data());
        }
        sha256_compress_multi(states.data(), blocks.data(), lanes, blocks_per_lane, backend);
        for (std::size_t ln = 0; ln < lanes; ++ln) {
          EXPECT_EQ(got[ln], expect[ln])
              << "backend " << static_cast<int>(backend) << ", lanes " << lanes
              << ", blocks " << blocks_per_lane << ", lane " << ln;
        }
      }
    }
  }
}

TEST(FastPathDiff, HeavyHmacBatchMatchesReferencePerJob) {
  // Job counts 1..7 cross the lane-group boundary; mixed iteration counts
  // make lanes retire at different times within a group.
  Rng rng(0xbadc0de);
  for (std::size_t jobs = 1; jobs <= 7; ++jobs) {
    std::vector<Bytes> msgs;
    std::vector<Bytes> seeds;
    std::vector<std::uint32_t> iters;
    std::vector<HeavyHmacJob> views;
    for (std::size_t j = 0; j < jobs; ++j) {
      msgs.push_back(random_bytes(rng, 1 + rng.next() % 500));
      seeds.push_back(random_bytes(rng, 1 + rng.next() % 80));
      iters.push_back(1 + static_cast<std::uint32_t>(rng.next() % 97));
    }
    for (std::size_t j = 0; j < jobs; ++j) {
      views.push_back(HeavyHmacJob{BytesView(msgs[j]), BytesView(seeds[j]), iters[j]});
    }
    for (const bool fast : {true, false}) {
      const FastPathScope scope(fast);
      const std::vector<Digest> got = heavy_hmac_batch(views);
      ASSERT_EQ(got.size(), jobs);
      for (std::size_t j = 0; j < jobs; ++j) {
        EXPECT_EQ(got[j], heavy_hmac_reference(msgs[j], seeds[j], iters[j]))
            << "jobs " << jobs << ", job " << j << ", fast=" << fast;
      }
    }
  }
}

TEST(FastPathDiff, HeavyHmacBatchBuilderPreservesAddOrder) {
  Rng rng(0x0b7a1a);
  HeavyHmacBatch batch;
  EXPECT_TRUE(batch.empty());
  std::vector<Bytes> msgs;
  std::vector<Bytes> seeds;
  for (std::size_t j = 0; j < 5; ++j) {
    msgs.push_back(random_bytes(rng, 64 + j));
    seeds.push_back(random_bytes(rng, 16));
    EXPECT_EQ(batch.add(msgs[j], seeds[j], 10 + static_cast<std::uint32_t>(j)), j);
  }
  EXPECT_EQ(batch.size(), 5u);
  const std::vector<Digest> out = batch.run();
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(out[j],
              heavy_hmac_reference(msgs[j], seeds[j], 10 + static_cast<std::uint32_t>(j)))
        << j;
  }
  EXPECT_TRUE(batch.empty());  // run() clears for reuse
}

// -- Schnorr: fixed-base tables and the engine --------------------------------

TEST(FastPathDiff, FixedBaseTableMatchesPowMod) {
  const SchnorrGroup& group = SchnorrGroup::small_group();
  const FixedBaseTable table(group.g, group.p, group.q.bit_length());
  Rng rng(0x7AB1E);
  for (int i = 0; i < 50; ++i) {
    const U256 e = random_below(rng, group.q);
    EXPECT_EQ(table.pow(e), pow_mod(group.g, e, group.p)) << e.to_hex();
  }
  // Edge exponents.
  EXPECT_EQ(table.pow(U256{}), pow_mod(group.g, U256{}, group.p));
  EXPECT_EQ(table.pow(U256(1)), mod(group.g, group.p));
}

TEST(FastPathDiff, SchnorrEngineMatchesFreeFunctions) {
  const SchnorrGroup& group = SchnorrGroup::small_group();
  const SchnorrEngine engine(group);
  const Bytes msg = to_bytes("proof of relay, hop 3");
  for (const bool fast : {true, false}) {
    const FastPathScope scope(fast);
    // Identical RNG draws => identical keys and signatures, bit for bit.
    Rng rng_a(42);
    Rng rng_b(42);
    const SchnorrKeyPair kp_engine = engine.keygen(rng_a);
    const SchnorrKeyPair kp_free = schnorr_keygen(group, rng_b);
    EXPECT_EQ(kp_engine.secret, kp_free.secret) << "fast=" << fast;
    EXPECT_EQ(kp_engine.public_key, kp_free.public_key) << "fast=" << fast;

    const SchnorrSignature sig_engine = engine.sign(kp_engine.secret, msg, rng_a);
    const SchnorrSignature sig_free = schnorr_sign(group, kp_free.secret, msg, rng_b);
    EXPECT_EQ(sig_engine.e, sig_free.e) << "fast=" << fast;
    EXPECT_EQ(sig_engine.s, sig_free.s) << "fast=" << fast;

    EXPECT_TRUE(engine.verify(kp_engine.public_key, msg, sig_engine));
    EXPECT_TRUE(schnorr_verify(group, kp_engine.public_key, msg, sig_engine));

    // Tampered inputs must fail identically through both routes.
    const Bytes other = to_bytes("proof of relay, hop 4");
    EXPECT_FALSE(engine.verify(kp_engine.public_key, other, sig_engine));
    EXPECT_FALSE(schnorr_verify(group, kp_engine.public_key, other, sig_engine));
    SchnorrSignature bad = sig_engine;
    bad.s.limb[0] ^= 1;
    EXPECT_EQ(engine.verify(kp_engine.public_key, msg, bad),
              schnorr_verify(group, kp_engine.public_key, msg, bad));
  }
}

TEST(FastPathDiff, SchnorrSuiteSignaturesIdenticalFastOnAndOff) {
  const SuitePtr suite = make_schnorr_suite(SchnorrGroup::small_group());
  Rng rng_on(9);
  Rng rng_off(9);
  KeyPair kp_on;
  KeyPair kp_off;
  Bytes sig_on;
  Bytes sig_off;
  const Bytes msg = to_bytes("por certificate");
  {
    const FastPathScope scope(true);
    kp_on = suite->keygen(rng_on);
    sig_on = suite->sign(kp_on.secret_key, msg);
  }
  {
    const FastPathScope scope(false);
    kp_off = suite->keygen(rng_off);
    sig_off = suite->sign(kp_off.secret_key, msg);
  }
  EXPECT_EQ(kp_on.public_key, kp_off.public_key);
  EXPECT_EQ(kp_on.secret_key, kp_off.secret_key);
  EXPECT_EQ(sig_on, sig_off);
  // Cross-verify: a signature made on one path verifies on the other.
  {
    const FastPathScope scope(false);
    EXPECT_TRUE(suite->verify(kp_on.public_key, msg, sig_on));
  }
  {
    const FastPathScope scope(true);
    EXPECT_TRUE(suite->verify(kp_off.public_key, msg, sig_off));
  }
}

TEST(FastPathDiff, SchnorrRsSuiteSignaturesIdenticalFastOnAndOff) {
  const SuitePtr suite = make_schnorr_rs_suite(SchnorrGroup::small_group());
  Rng rng_on(9);
  Rng rng_off(9);
  KeyPair kp_on;
  KeyPair kp_off;
  Bytes sig_on;
  Bytes sig_off;
  const Bytes msg = to_bytes("por certificate");
  {
    const FastPathScope scope(true);
    kp_on = suite->keygen(rng_on);
    sig_on = suite->sign(kp_on.secret_key, msg);
  }
  {
    const FastPathScope scope(false);
    kp_off = suite->keygen(rng_off);
    sig_off = suite->sign(kp_off.secret_key, msg);
  }
  EXPECT_EQ(kp_on.public_key, kp_off.public_key);
  EXPECT_EQ(sig_on, sig_off);
  {
    const FastPathScope scope(false);
    EXPECT_TRUE(suite->verify(kp_on.public_key, msg, sig_on));
  }
  {
    const FastPathScope scope(true);
    EXPECT_TRUE(suite->verify(kp_off.public_key, msg, sig_off));
  }
}

// -- Montgomery arithmetic vs the classic oracle ------------------------------
//
// Differential corpus for the modulus-taking routines in src/crypto — the
// mod-param-diff-coverage lint rule requires every such routine to be named
// here. Covered: mod, add_mod, sub_mod, mul_mod, pow_mod, pow_mod_fast,
// MontgomeryParams::for_modulus, mont_mul, to_mont, from_mont, mont_pow,
// FixedBaseTable, multi_exp. The classic schoolbook reducers in uint256.cpp
// are the oracle; the Montgomery kernels must match them bit for bit.

U256 random_u256(Rng& rng) {
  U256 out;
  for (auto& l : out.limb) l = rng.next();
  return out;
}

// Production moduli (both Schnorr groups' p and q), small odd moduli, and
// limb-boundary patterns (2^64-1 in various positions, the 2^256-1 maximum).
std::vector<U256> corpus_moduli() {
  const SchnorrGroup& small = SchnorrGroup::small_group();
  const SchnorrGroup& full = SchnorrGroup::default_group();
  return {
      full.p,
      full.q,
      small.p,
      small.q,
      U256(3),
      U256(0xffffffffffffffffULL),  // 2^64 - 1: all carries in limb 0
      U256::from_hex("ffffffffffffffff0000000000000001"),
      U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffff"
                     "ffffffffffffffff"),  // 2^256 - 1: the maximum modulus
  };
}

TEST(MontgomeryDiff, MontMulMatchesClassicMulModOnSeededRandomSweep) {
  Rng rng(0x3019A11);
  for (const U256& m : corpus_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    for (int i = 0; i < 25; ++i) {
      const U256 a = mod(random_u256(rng), m);
      const U256 b = mod(random_u256(rng), m);
      const U256 expect = mul_mod(a, b, m);
      // Full round trip: convert both operands, multiply, convert back.
      const U256 ab_mont = mont_mul(to_mont(a, params), to_mont(b, params), params);
      EXPECT_EQ(from_mont(ab_mont, params), expect) << m.to_hex();
      // One-conversion form (what SchnorrEngine::mul_p uses): the second
      // operand rides along unconverted.
      EXPECT_EQ(mont_mul(to_mont(a, params), b, params), expect) << m.to_hex();
    }
  }
}

TEST(MontgomeryDiff, MontMulDirectedEdgeOperands) {
  bool borrow = false;
  for (const U256& m : corpus_moduli()) {
    if (m == U256(3)) continue;  // m-2 below degenerates; covered by sweep
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    const U256 m_minus_1 = sub(m, U256(1), borrow);
    const U256 m_minus_2 = sub(m, U256(2), borrow);
    const U256 edges[] = {U256(0), U256(1), m_minus_2, m_minus_1};
    for (const U256& a : edges) {
      for (const U256& b : edges) {
        EXPECT_EQ(from_mont(mont_mul(to_mont(a, params), to_mont(b, params), params), params),
                  mul_mod(a, b, m))
            << a.to_hex() << " * " << b.to_hex() << " mod " << m.to_hex();
      }
    }
  }
}

TEST(MontgomeryDiff, ToMontReducesOperandsAtOrAboveTheModulus) {
  // The documented contract: to_mont accepts ANY U256 and folds x >= m down
  // to x mod m, so the round trip equals the classic reduction.
  Rng rng(0xF01DED);
  const U256 all_ones = U256::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  for (const U256& m : corpus_moduli()) {
    if (m == all_ones) continue;  // nothing exceeds the maximum modulus
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    bool carry = false;
    std::vector<U256> raws{m, add(m, U256(1), carry), all_ones};
    for (int i = 0; i < 10; ++i) raws.push_back(random_u256(rng));
    for (const U256& x : raws) {
      EXPECT_EQ(from_mont(to_mont(x, params), params), mod(x, m)) << x.to_hex();
    }
  }
}

TEST(MontgomeryDiff, ForModulusRejectsEvenAndTrivialModuli) {
  // gcd(m, 2^256) must be 1 and the ladder needs m > 1: everything else is a
  // contract violation, refused up front rather than computed wrong.
  EXPECT_THROW((void)MontgomeryParams::for_modulus(U256(0)), std::invalid_argument);
  EXPECT_THROW((void)MontgomeryParams::for_modulus(U256(1)), std::invalid_argument);
  EXPECT_THROW((void)MontgomeryParams::for_modulus(U256(2)), std::invalid_argument);
  EXPECT_THROW((void)MontgomeryParams::for_modulus(U256(0x100)), std::invalid_argument);
  EXPECT_THROW((void)MontgomeryParams::for_modulus(
                   U256::from_hex("fffffffffffffffffffffffffffffffe")),
               std::invalid_argument);
  EXPECT_NO_THROW((void)MontgomeryParams::for_modulus(U256(3)));
}

TEST(MontgomeryDiff, PowModFastMatchesClassicPowMod) {
  Rng rng(0x9D15C0);
  bool borrow = false;
  for (const U256& m : corpus_moduli()) {
    const U256 m_minus_1 = sub(m, U256(1), borrow);
    std::vector<U256> bases{U256(0), U256(1), U256(2), m_minus_1, random_u256(rng)};
    std::vector<U256> exps{U256(0), U256(1), U256(2), m_minus_1, random_below(rng, m)};
    for (const U256& base : bases) {
      for (const U256& e : exps) {
        const U256 expect = pow_mod(base, e, m);
        {
          const FastPathScope scope(true);  // Montgomery ladder
          EXPECT_EQ(pow_mod_fast(base, e, m), expect)
              << base.to_hex() << "^" << e.to_hex() << " mod " << m.to_hex();
        }
        {
          const FastPathScope scope(false);  // classic fallback
          EXPECT_EQ(pow_mod_fast(base, e, m), expect);
        }
      }
    }
  }
  // Even modulus: pow_mod_fast must fall back to the classic route even with
  // the fast path on (Montgomery requires an odd modulus).
  const U256 even = U256(1000);
  const FastPathScope scope(true);
  for (int i = 0; i < 5; ++i) {
    const U256 base = random_u256(rng);
    const U256 e = U256(rng.next() % 1000);
    EXPECT_EQ(pow_mod_fast(base, e, even), pow_mod(base, e, even));
  }
}

TEST(MontgomeryDiff, MontPowLadderMatchesClassicForGroupPrimes) {
  // Drive the ladder directly (not through the pow_mod_fast gate) over the
  // production moduli, including exponents with long zero runs — the branch
  // pattern the ladder exists to make uniform.
  Rng rng(0x1ADDE2);
  for (const U256& m : {SchnorrGroup::default_group().p, SchnorrGroup::default_group().q,
                        SchnorrGroup::small_group().p}) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    std::vector<U256> exps{U256(0), U256(1), U256::from_hex("10000000000000000")};
    for (int i = 0; i < 4; ++i) exps.push_back(random_below(rng, m));
    for (const U256& e : exps) {
      const U256 base = mod(random_u256(rng), m);
      EXPECT_EQ(from_mont(mont_pow(to_mont(base, params), e, params), params),
                pow_mod(base, e, m))
          << base.to_hex() << "^" << e.to_hex() << " mod " << m.to_hex();
    }
  }
}

TEST(MontgomeryDiff, ModularLinearityBridgesAddSubAndMont) {
  // add_mod / sub_mod act on residues, not representations, so they must
  // commute with the Montgomery map: (a ± b)~ == a~ ± b~.
  Rng rng(0xADD5);
  for (const U256& m : corpus_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    for (int i = 0; i < 10; ++i) {
      const U256 a = mod(random_u256(rng), m);
      const U256 b = mod(random_u256(rng), m);
      EXPECT_EQ(add_mod(to_mont(a, params), to_mont(b, params), m),
                to_mont(add_mod(a, b, m), params));
      EXPECT_EQ(sub_mod(to_mont(a, params), to_mont(b, params), m),
                to_mont(sub_mod(a, b, m), params));
    }
  }
}

TEST(MontgomeryDiff, MultiExpIdenticalFastOnAndOff) {
  // multi_exp picks the Montgomery chain internally when the fast path is on;
  // both routes must equal the folded pow_mod product.
  Rng rng(0x3017e);
  const SchnorrGroup& group = SchnorrGroup::small_group();
  for (const std::size_t count : {1u, 2u, 5u, 16u}) {
    std::vector<MultiExpTerm> terms(count);
    for (auto& t : terms) {
      t.base = random_below(rng, group.p);
      t.exponent = random_below(rng, group.q);
    }
    U256 expect(1);
    for (const auto& t : terms) {
      expect = mul_mod(expect, pow_mod(t.base, t.exponent, group.p), group.p);
    }
    U256 fast;
    U256 reference;
    {
      const FastPathScope scope(true);
      fast = multi_exp(terms, group.p);
    }
    {
      const FastPathScope scope(false);
      reference = multi_exp(terms, group.p);
    }
    EXPECT_EQ(fast, expect) << count;
    EXPECT_EQ(reference, expect) << count;
  }
}

TEST(MontgomeryDiff, FixedBaseTablePowIdenticalFastOnAndOff) {
  // The table keeps two window sets (classic + Montgomery mirror); the digit
  // chains must agree on every exponent either way.
  const SchnorrGroup& group = SchnorrGroup::small_group();
  const FixedBaseTable table(group.g, group.p, group.q.bit_length());
  Rng rng(0x7AB1E2);
  for (int i = 0; i < 20; ++i) {
    const U256 e = random_below(rng, group.q);
    U256 fast;
    U256 reference;
    {
      const FastPathScope scope(true);
      fast = table.pow(e);
    }
    {
      const FastPathScope scope(false);
      reference = table.pow(e);
    }
    EXPECT_EQ(fast, reference) << e.to_hex();
    EXPECT_EQ(fast, pow_mod(group.g, e, group.p)) << e.to_hex();
  }
}

// -- The verification cache ---------------------------------------------------

TEST(FastPathDiff, CachingSuiteVerdictsMatchInnerSuite) {
  const auto cached = make_caching_suite(make_fast_suite());
  const SuitePtr plain = make_fast_suite();
  Rng rng(31);
  const KeyPair kp = cached->keygen(rng);
  const Bytes msg = to_bytes("message body");
  const Bytes sig = cached->sign(kp.secret_key, msg);
  Bytes bad_sig = sig;
  bad_sig[0] ^= 1;

  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(cached->verify(kp.public_key, msg, sig));
    EXPECT_FALSE(cached->verify(kp.public_key, msg, bad_sig));
    EXPECT_EQ(cached->verify(kp.public_key, msg, sig),
              plain->verify(kp.public_key, msg, sig));
  }
  // Two distinct entries (good + bad) across 9 verify calls: 2 misses, the
  // other 7 answered from the memo.
  EXPECT_EQ(cached->stats().verify_misses, 2u);
  EXPECT_EQ(cached->stats().verify_hits, 7u);

  const KeyPair peer = cached->keygen(rng);
  const Bytes s1 = cached->shared_secret(kp.secret_key, peer.public_key);
  const Bytes s2 = cached->shared_secret(kp.secret_key, peer.public_key);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, plain->shared_secret(kp.secret_key, peer.public_key));
  EXPECT_EQ(cached->stats().secret_misses, 1u);
  EXPECT_EQ(cached->stats().secret_hits, 1u);
}

TEST(FastPathDiff, CachingSuiteBatchMatchesLoop) {
  const auto cached = make_caching_suite(make_fast_suite());
  const SuitePtr plain = make_fast_suite();
  Rng rng(77);
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;
  for (int i = 0; i < 12; ++i) {
    keys.push_back(cached->keygen(rng));
    msgs.push_back(random_bytes(rng, 40));
    Bytes sig = cached->sign(keys.back().secret_key, msgs.back());
    if (i % 4 == 3) sig[1] ^= 0x80;  // sprinkle invalid signatures
    sigs.push_back(std::move(sig));
  }
  // Mix of fresh entries and repeats (every request appears twice).
  std::vector<VerifyRequest> requests;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      requests.push_back({keys[i].public_key, msgs[i], sigs[i]});
    }
  }
  std::vector<char> batch(requests.size(), 0);
  cached->verify_batch(requests, reinterpret_cast<bool*>(batch.data()));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(batch[i]),
              plain->verify(requests[i].public_key, requests[i].message,
                            requests[i].signature))
        << i;
  }
  EXPECT_EQ(cached->stats().verify_misses, keys.size());
  EXPECT_EQ(cached->stats().verify_hits, keys.size());
}

// -- End to end: the serialized experiment is the oracle ----------------------

core::ExperimentConfig diff_config() {
  core::ExperimentConfig cfg;
  cfg.protocol = core::Protocol::G2GEpidemic;
  cfg.scenario = core::infocom05_scenario();
  cfg.scenario.trace_config.nodes = 16;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(30.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 4;
  cfg.seed = 11;
  return cfg;
}

TEST(FastPathDiff, ExperimentJsonBitIdenticalWithCacheOnAndOff) {
  core::ExperimentConfig with_cache = diff_config();
  with_cache.crypto_fast_path = true;
  core::ExperimentConfig without_cache = diff_config();
  without_cache.crypto_fast_path = false;
  const std::string a = core::to_json(core::run_experiment(with_cache));
  const std::string b = core::to_json(core::run_experiment(without_cache));
  EXPECT_EQ(a, b);
  // The cache counters exist in the obs registry but are excluded from the
  // result JSON precisely so this comparison stays byte-exact.
  EXPECT_EQ(a.find("fastpath."), std::string::npos);
}

TEST(FastPathDiff, ExperimentJsonBitIdenticalWithGlobalFastPathOnAndOff) {
  std::string fast;
  std::string reference;
  {
    const FastPathScope scope(true);
    fast = core::to_json(core::run_experiment(diff_config()));
  }
  {
    const FastPathScope scope(false);
    reference = core::to_json(core::run_experiment(diff_config()));
  }
  EXPECT_EQ(fast, reference);
}

TEST(FastPathDiff, ExperimentJsonBitIdenticalWithRsSuiteBatchOnAndOff) {
  // With the fast path on, the (R,s) suite folds every audit batch through
  // the randomized multi-exponentiation; off, each signature is checked
  // individually. The serialized experiment must not be able to tell.
  core::ExperimentConfig cfg = diff_config();
  cfg.suite = make_schnorr_rs_suite(SchnorrGroup::small_group());
  cfg.sim_window = Duration::hours(1);
  cfg.traffic_window = Duration::minutes(30.0);
  cfg.mean_interarrival = Duration::seconds(60.0);
  std::string batched;
  std::string per_signature;
  {
    const FastPathScope scope(true);
    batched = core::to_json(core::run_experiment(cfg));
  }
  {
    const FastPathScope scope(false);
    per_signature = core::to_json(core::run_experiment(cfg));
  }
  EXPECT_EQ(batched, per_signature);
}

}  // namespace
}  // namespace g2g::crypto
