// The relay core's accusation layer: PomLedger, the batched PoM gossip
// (dedup + one verify_batch re-verification per session), and the
// preverified learn path it drives.
#include <gtest/gtest.h>

#include "g2g/obs/context.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "g2g/proto/relay/pom.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::make_trace;
using G2GWorld = testutil::World<G2GEpidemicNode>;

constexpr double kD1 = 30.0 * 60.0;  // matches World::default_config delta1

/// A RelayFailure PoM that passes the structural checks (signature junk).
ProofOfMisbehavior relay_failure_pom(std::uint32_t culprit, std::uint32_t accuser) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(culprit);
  pom.accuser = NodeId(accuser);
  ProofOfRelay por;
  por.h.fill(0x5A);
  por.giver = NodeId(accuser);
  por.taker = NodeId(culprit);
  por.taker_signature = Bytes(32, 0x42);  // junk: fails re-verification
  pom.evidence_accepted = por;
  return pom;
}

TEST(PomGossipBatch, DropperRunReVerifiesGossipThroughTheBatch) {
  // Node 1 drops; the source detects it on re-meet and then gossips the PoM
  // to node 2. The gossip must flow through the batched verify_batch path:
  // the g2g.pom.batch_verified counter ticks and node 2 still learns/evicts.
  obs::ObsContext obs;
  NetworkConfig cfg = G2GWorld::default_config();
  cfg.obs = &obs;
  G2GWorld w(make_trace(4, {{0, 1, 100, 110},
                            {0, 1, 100 + kD1 + 60, 100 + kD1 + 70},
                            {0, 2, 100 + kD1 + 200, 100 + kD1 + 210}}),
             cfg, {{}, {Behavior::Dropper, false}, {}, {}});
  w.send(0, 3, 50);
  w.run();

  ASSERT_EQ(w.collector().detections().size(), 1u);
  EXPECT_GE(obs.counters.pom_batch_verified->value(), 1u);
  EXPECT_GE(obs.counters.poms_gossiped->value(), 1u);
  EXPECT_GE(obs.counters.poms_learned->value(), 1u);
  EXPECT_TRUE(w.node(2).blacklisted(NodeId(1)));
}

TEST(PomGossipBatch, DuplicateGossipIsDedupedBeforeReVerification) {
  // Two byte-identical PoMs in one session verify once. Duplicates can only
  // reach the batch when the culprit IS the receiver (a receiver never
  // blacklists itself, so the sequential path re-transfers such a PoM every
  // contact); any other culprit is suppressed after the first item exactly
  // like the receiver's blacklist would.
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  Network<G2GEpidemicNode>& net = w.network();
  const ProofOfMisbehavior pom = relay_failure_pom(/*culprit=*/1, /*accuser=*/0);
  w.node(0).pom_ledger().record(pom);
  w.node(0).pom_ledger().record(pom);

  relay::PomGossipBatch batch;
  batch.collect(w.node(0), w.node(1));
  batch.collect(w.node(1), w.node(0));
  ASSERT_EQ(batch.size(), 2u);

  obs::ObsContext& obs = net.obs();
  const bool all_ok =
      batch.verify(w.node(0).identity().suite(), net.roster(), obs.counters);
  // The junk signature fails re-verification, but a PoM naming the receiver
  // itself is never judged (learn_pom discards it first) — no fallback.
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(obs.counters.pom_gossip_dup->value(), 1u);
  EXPECT_EQ(obs.counters.pom_batch_verified->value(), 1u);  // one unique PoM

  Session s(net, w.node(0), w.node(1));
  batch.apply(s, obs);
  EXPECT_EQ(obs.counters.poms_gossiped->value(), 2u);  // both items accounted
  EXPECT_FALSE(w.node(1).blacklisted(NodeId(1)));      // self-culprit: ignored
}

TEST(PomGossipBatch, DistinctCulpritsSuppressLikeTheSequentialBlacklist) {
  // Two PoMs about the same (third-party) culprit: the second never enters
  // the batch, because the receiver would have blacklisted the culprit when
  // learning the first — the speculative blacklist mirrors that.
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  const ProofOfMisbehavior pom = relay_failure_pom(/*culprit=*/2, /*accuser=*/0);
  w.node(0).pom_ledger().record(pom);
  w.node(0).pom_ledger().record(pom);

  relay::PomGossipBatch batch;
  batch.collect(w.node(0), w.node(1));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(PomGossipBatch, FailedReVerificationOfAJudgedPomForcesFallback) {
  // A junk-signed PoM about a third party fails the batch re-verification,
  // and the receiver WOULD judge it — verify() must demand the sequential
  // fallback.
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  Network<G2GEpidemicNode>& net = w.network();
  w.node(0).pom_ledger().record(relay_failure_pom(/*culprit=*/2, /*accuser=*/0));

  relay::PomGossipBatch batch;
  batch.collect(w.node(0), w.node(1));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch.verify(w.node(0).identity().suite(), net.roster(), net.obs().counters));
}

TEST(ProtocolNode, PreverifiedVerdictGatesTheBlacklist) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  const ProofOfMisbehavior bad = relay_failure_pom(/*culprit=*/2, /*accuser=*/1);
  // A false verdict is recorded (trace) but never learned.
  EXPECT_FALSE(w.node(0).learn_pom_preverified(bad, false));
  EXPECT_FALSE(w.node(0).blacklisted(NodeId(2)));
  // A true verdict is trusted: the evidence is not re-checked here.
  EXPECT_TRUE(w.node(0).learn_pom_preverified(bad, true));
  EXPECT_TRUE(w.node(0).blacklisted(NodeId(2)));
  // Already blacklisted: nothing new to learn.
  EXPECT_FALSE(w.node(0).learn_pom_preverified(bad, true));
  // A node never learns accusations against itself.
  EXPECT_FALSE(w.node(0).learn_pom_preverified(relay_failure_pom(0, 1), true));
  EXPECT_FALSE(w.node(0).blacklisted(NodeId(0)));
}

TEST(PomLedger, RecordAndBlacklistAreIndependent) {
  relay::PomLedger ledger;
  EXPECT_FALSE(ledger.blacklisted(NodeId(3)));
  ledger.blacklist(NodeId(3));
  EXPECT_TRUE(ledger.blacklisted(NodeId(3)));
  EXPECT_TRUE(ledger.known().empty());
  const ProofOfMisbehavior& stored = ledger.record(relay_failure_pom(3, 1));
  EXPECT_EQ(stored.culprit, NodeId(3));
  EXPECT_EQ(ledger.known().size(), 1u);
}

}  // namespace
}  // namespace g2g::proto
