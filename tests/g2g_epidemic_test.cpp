#include "g2g/proto/g2g_epidemic.hpp"

#include <gtest/gtest.h>

#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

using G2GWorld = World<G2GEpidemicNode>;

// Default timing in the World fixture: Delta1 = 30 min, Delta2 = 60 min.
constexpr double kD1 = 1800.0;

TEST(G2GEpidemic, DirectDeliveryThroughRelayPhase) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 1u);
}

TEST(G2GEpidemic, MultiHopDelivery) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {1, 2, 500, 510}}));
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 2u);
}

TEST(G2GEpidemic, RelayStopsAtFanoutTwo) {
  // Node 1 receives at 100, then meets 2, 3, 4: only the first two get it.
  G2GWorld w(make_trace(6, {{0, 1, 100, 110},
                            {1, 2, 200, 210},
                            {1, 3, 300, 310},
                            {1, 4, 400, 410}}));
  const MessageId id = w.send(0, 5, 50);  // destination never met
  w.run();
  // Source relayed once (to 1); node 1 relayed to exactly 2 of {2,3,4}.
  EXPECT_EQ(w.replicas(id), 3u);
}

TEST(G2GEpidemic, SourceFanoutIsUnbounded) {
  // The source itself spreads to everyone it meets within Delta1.
  G2GWorld w(make_trace(6, {{0, 1, 100, 110},
                            {0, 2, 200, 210},
                            {0, 3, 300, 310},
                            {0, 4, 400, 410}}));
  const MessageId id = w.send(0, 5, 50);
  w.run();
  EXPECT_EQ(w.replicas(id), 4u);
}

TEST(G2GEpidemic, HolderDiscardsPayloadAfterTwoPors) {
  G2GWorld w(make_trace(6, {{0, 1, 100, 110}, {1, 2, 200, 210}, {1, 3, 300, 310}}));
  w.send(0, 5, 50);
  w.run();
  // After two relays node 1 holds PoRs but no payload.
  EXPECT_EQ(w.node(1).buffered_bytes(), 0);
}

TEST(G2GEpidemic, GlobalTtlStopsSpread) {
  // Node 1 receives at 100; message expires at 50 + 1800 = 1850; the 2000s
  // contact must not relay.
  G2GWorld w(make_trace(5, {{0, 1, 100, 110}, {1, 2, 2000, 2010}}));
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 1u);
}

TEST(G2GEpidemic, PerHolderTtlAblationKeepsSpreading) {
  // Message created at 50 expires globally at 1850; the relay received it at
  // 100, so under per-holder semantics its window lasts until 1900.
  auto cfg = G2GWorld::default_config();
  cfg.node.global_ttl = false;
  G2GWorld w(make_trace(5, {{0, 1, 100, 110}, {1, 2, 1860, 1870}}), cfg);
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));

  // The same contact schedule under global TTL does NOT deliver.
  G2GWorld g(make_trace(5, {{0, 1, 100, 110}, {1, 2, 1860, 1870}}));
  const MessageId gid = g.send(0, 2, 50);
  g.run();
  EXPECT_FALSE(g.delivered(gid));
}

TEST(G2GEpidemic, DeclinesAlreadyHandledMessages) {
  // 0 relays to 1; later 1 meets 0 again — 0 has handled its own message, so
  // no duplicate relay happens (and no extra replica is counted).
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 300, 310}}));
  const MessageId id = w.send(0, 3, 50);
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);
}

TEST(G2GEpidemic, HonestRelayWithTwoPorsPassesTest) {
  G2GWorld w(make_trace(6, {{0, 1, 100, 110},
                            {1, 2, 200, 210},
                            {1, 3, 300, 310},
                            {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}));
  w.send(0, 5, 50);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
  EXPECT_TRUE(w.collector().evictions().empty());
}

TEST(G2GEpidemic, HonestRelayWithoutRelaysPassesViaStorageProof) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}));
  w.send(0, 3, 50);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
  // Both sides computed the heavy HMAC (prover and verifier).
  EXPECT_EQ(w.collector().costs(NodeId(1)).heavy_hmacs, 1u);
  EXPECT_EQ(w.collector().costs(NodeId(0)).heavy_hmacs, 1u);
}

TEST(G2GEpidemic, DropperCaughtOnReMeet) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}),
             {{}, {Behavior::Dropper, false}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  const auto& d = w.collector().detections()[0];
  EXPECT_EQ(d.culprit, NodeId(1));
  EXPECT_EQ(d.detector, NodeId(0));
  EXPECT_EQ(d.method, metrics::DetectionMethod::TestBySender);
  // Detection latency: the re-meet happened 60s after Delta1 expired.
  EXPECT_NEAR(d.after_delta1.to_seconds(), 60.0, 1.0);
  EXPECT_TRUE(w.collector().evictions().contains(NodeId(1)));
}

TEST(G2GEpidemic, NoTestBeforeDelta1) {
  // Re-meet at Delta1 - 60: too early to test; dropper stays undetected.
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 - 60, 100 + kD1 - 50}}),
             {{}, {Behavior::Dropper, false}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GEpidemic, NoTestAfterDelta2) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + 2 * kD1 + 60, 100 + 2 * kD1 + 70}}),
             {{}, {Behavior::Dropper, false}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GEpidemic, IntermediateRelaysDoNotTest) {
  // Node 1 relays to node 2 (a dropper); node 1 is NOT the source, so when
  // they re-meet after Delta1 no test happens — only the source tests.
  G2GWorld w(make_trace(5, {{0, 1, 100, 110},
                            {1, 2, 200, 210},
                            {1, 2, 200 + kD1 + 60, 200 + kD1 + 70}}),
             {{}, {}, {Behavior::Dropper, false}, {}, {}});
  w.send(0, 4, 50);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GEpidemic, PomGossipEvictsAcrossNetwork) {
  // 0 detects dropper 1; later 0 meets 2 (gossip); then 2 refuses sessions
  // with 1, so the message 2 -> 3 never transits through 1.
  G2GWorld w(make_trace(5, {{0, 1, 100, 110},
                            {0, 1, 100 + kD1 + 60, 100 + kD1 + 70},  // detection
                            {0, 2, 100 + kD1 + 200, 100 + kD1 + 210},  // gossip
                            {1, 2, 100 + kD1 + 300, 100 + kD1 + 310}}),
             {{}, {Behavior::Dropper, false}, {}, {}, {}});
  w.send(0, 3, 50);
  const MessageId late = w.send(2, 3, kD1 + 350);
  w.run();
  EXPECT_EQ(w.collector().detections().size(), 1u);
  EXPECT_TRUE(w.node(2).blacklisted(NodeId(1)));
  // The 1-2 contact was refused: 1 never handled the late message.
  (void)late;
  EXPECT_FALSE(w.node(1).has_handled(MessageHash{}));
  EXPECT_EQ(w.collector().costs(NodeId(1)).sessions, 2u);  // only the first two
}

TEST(G2GEpidemic, DestinationStoresAndPassesStorageTest) {
  // Source relays directly to the destination, then tests it after Delta1:
  // the destination (indistinguishable from a relay) answers STORED.
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}));
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_TRUE(w.collector().detections().empty());
  EXPECT_GE(w.collector().costs(NodeId(1)).heavy_hmacs, 1u);
}

TEST(G2GEpidemic, DropperWithOutsidersSparesInsiders) {
  auto cfg = G2GWorld::default_config();
  cfg.communities = community::CommunityMap(4, {{NodeId(0), NodeId(1)}, {NodeId(2), NodeId(3)}});
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}),
             cfg, {{}, {Behavior::Dropper, true}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  // Giver 0 is an insider: node 1 behaved faithfully, so the test passes.
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GEpidemic, DropperWithOutsidersCaughtByOutsider) {
  auto cfg = G2GWorld::default_config();
  cfg.communities = community::CommunityMap(4, {{NodeId(0)}, {NodeId(1)}, {NodeId(2), NodeId(3)}});
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}),
             cfg, {{}, {Behavior::Dropper, true}, {}, {}});
  w.send(0, 3, 50);
  w.run();
  EXPECT_EQ(w.collector().detections().size(), 1u);
}

TEST(G2GEpidemic, SignatureAccountingPerRelayPhase) {
  G2GWorld w(make_trace(4, {{0, 1, 100, 110}}));
  w.send(0, 3, 50);
  w.run();
  // Giver signs RELAY_RQST, RELAY, KEY (3); taker signs RELAY_OK + PoR (2).
  EXPECT_GE(w.collector().costs(NodeId(0)).signatures, 3u);
  EXPECT_GE(w.collector().costs(NodeId(1)).signatures, 2u);
  EXPECT_GE(w.collector().costs(NodeId(1)).verifications, 3u);
}

}  // namespace
}  // namespace g2g::proto
