#include "g2g/crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace g2g::crypto {
namespace {

std::string hex_digest(BytesView data) { return to_hex(digest_view(sha256(data))); }

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, NistTwoBlockMessage) {
  EXPECT_EQ(hex_digest(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(digest_view(ctx.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(hex_digest(to_bytes("The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

class Sha256Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Chunking, IncrementalMatchesOneShot) {
  // Feed a 300-byte message in chunks of the parameterized size; every
  // chunking must produce the same digest as the one-shot call.
  Bytes msg(300);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i * 7 + 1);
  const Digest oneshot = sha256(msg);

  Sha256 ctx;
  const std::size_t chunk = GetParam();
  for (std::size_t pos = 0; pos < msg.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, msg.size() - pos);
    ctx.update(BytesView(msg.data() + pos, n));
  }
  EXPECT_EQ(ctx.finish(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256Chunking,
                         ::testing::Values(1, 3, 31, 32, 63, 64, 65, 127, 128, 300));

TEST(Sha256, TwoPartConvenienceOverload) {
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  EXPECT_EQ(sha256(a, b), sha256(to_bytes("hello world")));
}

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(to_bytes("garbage"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(to_bytes("abc"));
  EXPECT_EQ(to_hex(digest_view(ctx.finish())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, BoundaryLengths) {
  // 55/56/64 bytes straddle the padding boundary; just check self-consistency
  // of incremental vs one-shot and that digests differ.
  Digest prev{};
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const Bytes msg(len, 0x5a);
    const Digest d = sha256(msg);
    EXPECT_NE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace g2g::crypto
