#include "g2g/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace g2g {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(n), n);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanMatches) {
  // mean = alpha * xm / (alpha - 1) = 3 * 1 / 2 = 1.5
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.1);
}

TEST(Rng, LognormalUnitMeanConstruction) {
  // lognormal(-s^2/2, s) has mean 1.
  Rng rng(29);
  const double s = 0.8;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(-s * s / 2.0, s);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, ForkIndependence) {
  Rng parent(47);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next() == c2.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkStableAcrossRuns) {
  Rng p1(51);
  Rng p2(51);
  Rng a = p1.fork(9);
  Rng b = p2.fork(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Splitmix, KnownFirstOutput) {
  // splitmix64(0) first output is the well-known constant.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace g2g
