#include "g2g/util/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace g2g {
namespace {

TEST(Writer, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Writer, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Writer, BlobIsLengthPrefixed) {
  Writer w;
  w.blob(to_bytes("xyz"));
  EXPECT_EQ(w.size(), 4u + 3u);
  Reader r(w.bytes());
  EXPECT_EQ(r.blob(), to_bytes("xyz"));
}

TEST(Writer, RawHasNoPrefix) {
  Writer w;
  w.raw(to_bytes("xyz"));
  EXPECT_EQ(w.size(), 3u);
}

TEST(Writer, EmptyBlob) {
  Writer w;
  w.blob({});
  Reader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Writer, SpecialDoubles) {
  for (const double v : {0.0, -0.0, std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::lowest(), -1e18, 1e-300}) {
    Writer w;
    w.f64(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Reader, ThrowsOnTruncatedInput) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_THROW((void)r.u64(), DecodeError);
}

TEST(Reader, ThrowsOnTruncatedBlob) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.bytes());
  EXPECT_THROW((void)r.blob(), DecodeError);
}

TEST(Reader, RemainingTracksPosition) {
  Writer w;
  w.u64(1);
  w.u64(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u64();
  EXPECT_TRUE(r.done());
}

TEST(Hex, RoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Hex, Empty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW((void)from_hex("abc"), DecodeError);   // odd length
  EXPECT_THROW((void)from_hex("zz"), DecodeError);    // invalid digit
  EXPECT_THROW((void)from_hex("0 "), DecodeError);
}

TEST(Bytes, ToBytesPreservesContent) {
  const Bytes b = to_bytes("a\0b");  // string_view of literal stops at NUL here
  EXPECT_EQ(b.size(), 1u);           // "a" only: documents the gotcha
  const std::string s("a\0b", 3);
  EXPECT_EQ(to_bytes(s).size(), 3u);
}

}  // namespace
}  // namespace g2g
