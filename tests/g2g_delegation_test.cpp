#include "g2g/proto/g2g_delegation.hpp"

#include <gtest/gtest.h>

#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

using G2GDWorld = World<G2GDelegationNode>;

constexpr double kD1 = 1800.0;

// Give node `n` `count` encounters with `dst` before t=100 so its frequency
// quality is established (and lands in completed timeframes).
std::vector<Contact> warm(std::uint32_t n, std::uint32_t dst, int count, double base = 10) {
  std::vector<Contact> out;
  for (int i = 0; i < count; ++i) {
    out.push_back({n, dst, base + i * 20.0, base + i * 20.0 + 2.0});
  }
  return out;
}

trace::ContactTrace build(std::size_t nodes, std::vector<std::vector<Contact>> groups) {
  trace::ContactTrace t;
  for (const auto& g : groups) {
    for (const auto& c : g) {
      t.add(NodeId(c.a), NodeId(c.b), TimePoint::from_seconds(c.start_s),
            TimePoint::from_seconds(c.end_s));
    }
  }
  if (nodes >= 2) {
    t.add(NodeId(static_cast<std::uint32_t>(nodes - 2)),
          NodeId(static_cast<std::uint32_t>(nodes - 1)), TimePoint::from_seconds(9.0e8),
          TimePoint::from_seconds(9.0e8 + 1.0));
  }
  t.finalize();
  return t;
}

NetworkConfig fast_frames() {
  auto cfg = G2GDWorld::default_config();
  cfg.node.quality_frame = Duration::minutes(5);  // snapshots complete quickly
  return cfg;
}

TEST(G2GDelegation, ForwardsOnlyToBetterQuality) {
  // Node 1: 3 encounters with dst 4; node 2: none. Only node 1 gets a replica.
  G2GDWorld w(build(6, {warm(1, 4, 3), {{0, 2, 2000, 2010}, {0, 1, 2100, 2110}}}),
              fast_frames());
  const MessageId id = w.send(0, 4, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);
  EXPECT_TRUE(w.node(1).stores_message(MessageHash{}) || w.node(1).buffered_bytes() > 0);
  EXPECT_EQ(w.node(2).buffered_bytes(), 0);
}

TEST(G2GDelegation, DirectDeliveryUsesDecoyAndAlwaysForwards) {
  // Destination has zero quality toward anything; delivery must still happen.
  G2GDWorld w(build(4, {{{0, 1, 2000, 2010}}}), fast_frames());
  const MessageId id = w.send(0, 1, 1900);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(G2GDelegation, HonestChainPassesSenderTest) {
  // Source 0 -> relay 1 (quality 1); relay 1 -> 2 (quality 2) and -> 3
  // (quality 3); source re-meets 1 after Delta1 and verifies the chain.
  G2GDWorld w(build(6, {warm(1, 5, 1, 10), warm(2, 5, 2, 100), warm(3, 5, 3, 200),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2200, 2210},
                         {1, 3, 2400, 2410},
                         {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              fast_frames());
  const MessageId id = w.send(0, 5, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 3u);
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GDelegation, CheaterCaughtByChainCheck) {
  // Node 1 is a cheater: it zeroes f_m when relaying, so node 2 — whose
  // quality (1) is below the honest threshold (2) but above zero — accepts.
  // The source's chain check exposes the mismatch f1_m != f_AD.
  G2GDWorld w(build(6, {warm(1, 5, 2, 10), warm(2, 5, 1, 100),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2200, 2210},
                         {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              fast_frames(), {{}, {Behavior::Cheater, false}, {}, {}, {}, {}});
  w.send(0, 5, 1900);
  w.run();
  ASSERT_GE(w.collector().detections().size(), 1u);
  const auto& d = w.collector().detections()[0];
  EXPECT_EQ(d.culprit, NodeId(1));
  EXPECT_EQ(d.method, metrics::DetectionMethod::ChainCheck);
  EXPECT_TRUE(w.collector().evictions().contains(NodeId(1)));
}

TEST(G2GDelegation, CheaterWithNoRelaysEscapesViaStorageProof) {
  // A cheater that never found takers responds STORED like an honest node.
  G2GDWorld w(build(5, {warm(1, 4, 2, 10),
                        {{0, 1, 2000, 2010}, {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              fast_frames(), {{}, {Behavior::Cheater, false}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GDelegation, DropperCaughtBySenderTest) {
  G2GDWorld w(build(5, {warm(1, 4, 2, 10),
                        {{0, 1, 2000, 2010}, {0, 1, 2000 + kD1 + 60, 2000 + kD1 + 70}}}),
              fast_frames(), {{}, {Behavior::Dropper, false}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  EXPECT_EQ(w.collector().detections()[0].method, metrics::DetectionMethod::TestBySender);
}

TEST(G2GDelegation, LiarCaughtByDestination) {
  // Node 1 lies (declares 0) when the source asks; the source archives the
  // signed declaration and embeds it when relaying to the good relay 2; the
  // destination 4 — which met node 1 — catches the contradiction.
  G2GDWorld w(build(6, {warm(1, 4, 3, 10),  // node 1 genuinely knows dst 4
                        warm(2, 4, 2, 300),
                        {{0, 1, 2000, 2010},     // liar declares 0: failed candidate
                         {0, 2, 2100, 2110},     // good relay, declaration embedded
                         {2, 4, 2300, 2310}}}),  // delivery + test by destination
              fast_frames(), {{}, {Behavior::Liar, false}, {}, {}, {}, {}});
  const MessageId id = w.send(0, 4, 1900);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  ASSERT_EQ(w.collector().detections().size(), 1u);
  const auto& d = w.collector().detections()[0];
  EXPECT_EQ(d.culprit, NodeId(1));
  EXPECT_EQ(d.detector, NodeId(4));
  EXPECT_EQ(d.method, metrics::DetectionMethod::TestByDestination);
}

TEST(G2GDelegation, HonestDeclarationsNeverTriggerDestinationTest) {
  // Same topology, but node 1 is honest (and genuinely worse than the
  // message quality, so it is archived as a failed candidate): no detection.
  G2GDWorld w(build(6, {warm(0, 4, 4, 10),  // source itself has quality 4
                        warm(1, 4, 1, 200),
                        warm(2, 4, 5, 300),
                        {{0, 1, 2000, 2010}, {0, 2, 2100, 2110}, {2, 4, 2300, 2310}}}),
              fast_frames());
  const MessageId id = w.send(0, 4, 1900);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GDelegation, LiarUndetectableWhenDestinationNeverMetIt) {
  // The liar never met the destination, so "0" matches the destination's own
  // records: no PoM (and rightly so — the lie was vacuous).
  G2GDWorld w(build(6, {warm(2, 4, 2, 300),
                        {{0, 1, 2000, 2010}, {0, 2, 2100, 2110}, {2, 4, 2300, 2310}}}),
              fast_frames(), {{}, {Behavior::Liar, false}, {}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GDelegation, StaleFrameDeclarationIsUnverifiable) {
  // Declaration made early; delivery happens > 2 timeframes later: the
  // destination no longer retains the snapshot and cannot verify the lie.
  auto cfg = fast_frames();  // 5-minute frames: retention = 10 minutes
  G2GDWorld w(build(6, {warm(1, 4, 3, 10), warm(2, 4, 2, 300),
                        {{0, 1, 2000, 2010},
                         {0, 2, 2100, 2110},
                         {2, 4, 2100 + 1500, 2100 + 1510}}}),  // 25 min later
              cfg, {{}, {Behavior::Liar, false}, {}, {}, {}, {}});
  w.send(0, 4, 1900);
  w.run();
  EXPECT_TRUE(w.collector().detections().empty());
}

TEST(G2GDelegation, SourceEmbedsOnlyLastTwoFailedCandidates) {
  // Three liars fail in sequence; only the last two declarations are
  // embedded, so only those two can be caught by the destination.
  G2GDWorld w(build(8, {warm(1, 6, 2, 10), warm(2, 6, 2, 100), warm(3, 6, 2, 200),
                        warm(5, 6, 3, 300),
                        {{0, 1, 2000, 2010},
                         {0, 2, 2100, 2110},
                         {0, 3, 2200, 2210},
                         {0, 5, 2300, 2310},     // good relay
                         {5, 6, 2500, 2510}}}),  // delivery
              fast_frames(),
              {{},
               {Behavior::Liar, false},
               {Behavior::Liar, false},
               {Behavior::Liar, false},
               {},
               {},
               {},
               {}});
  w.send(0, 6, 1900);
  w.run();
  std::set<std::uint32_t> culprits;
  for (const auto& d : w.collector().detections()) culprits.insert(d.culprit.value());
  EXPECT_EQ(culprits, (std::set<std::uint32_t>{2, 3}));
}

TEST(G2GDelegation, FanoutCapAppliesToRelays) {
  // Relay 1 must stop after two onward relays even with more candidates.
  G2GDWorld w(build(8, {warm(1, 6, 1, 10), warm(2, 6, 2, 100), warm(3, 6, 3, 200),
                        warm(4, 6, 4, 300), warm(5, 6, 5, 400),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2100, 2110},
                         {1, 3, 2200, 2210},
                         {1, 4, 2300, 2310},
                         {1, 5, 2400, 2410}}}),
              fast_frames());
  const MessageId id = w.send(0, 6, 1900);
  w.run();
  // 1 replica to node 1, then exactly 2 onward (nodes 2 and 3).
  EXPECT_EQ(w.replicas(id), 3u);
}

TEST(G2GDelegation, QualityRelabelOnForward) {
  // After relaying to node 2 (quality 2), the relay's own copy carries f_m=2,
  // so the equal-quality node 3 is rejected.
  G2GDWorld w(build(7, {warm(1, 6, 1, 10), warm(2, 6, 2, 100), warm(3, 6, 2, 200),
                        warm(4, 6, 3, 300),
                        {{0, 1, 2000, 2010},
                         {1, 2, 2100, 2110},
                         {1, 3, 2200, 2210},    // equal quality: rejected
                         {1, 4, 2300, 2310}}}),  // strictly better: accepted
              fast_frames());
  const MessageId id = w.send(0, 6, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 3u);  // nodes 1, 2, 4
  EXPECT_EQ(w.node(3).buffered_bytes(), 0);
}

TEST(G2GDelegation, LiarWithOutsidersLiesOnlyToOutsiders) {
  auto cfg = fast_frames();
  cfg.communities =
      community::CommunityMap(6, {{NodeId(0), NodeId(1)}, {NodeId(2)}, {NodeId(3)},
                                  {NodeId(4)}, {NodeId(5)}});
  // Insider source 0 asks liar 1: honest answer (quality 3) -> replica.
  G2GDWorld w(build(6, {warm(1, 4, 3, 10), {{0, 1, 2000, 2010}}}), cfg,
              {{}, {Behavior::Liar, true}, {}, {}, {}, {}});
  const MessageId id = w.send(0, 4, 1900);
  w.run();
  EXPECT_EQ(w.replicas(id), 1u);
}

}  // namespace
}  // namespace g2g::proto
