#include "g2g/crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace g2g::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA256.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex(digest_view(d)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Digest d = hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(digest_view(d)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const Digest d = hmac_sha256(key, data);
  EXPECT_EQ(to_hex(digest_view(d)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Digest d = hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - "
                                             "Hash Key First"));
  EXPECT_EQ(to_hex(digest_view(d)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity) {
  const Bytes msg = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), msg), hmac_sha256(to_bytes("key2"), msg));
}

TEST(HeavyHmac, Deterministic) {
  const Bytes msg = to_bytes("the message body");
  const Bytes seed = to_bytes("seed");
  EXPECT_EQ(heavy_hmac(msg, seed, 100), heavy_hmac(msg, seed, 100));
}

TEST(HeavyHmac, IterationCountMatters) {
  const Bytes msg = to_bytes("m");
  const Bytes seed = to_bytes("s");
  EXPECT_NE(heavy_hmac(msg, seed, 10), heavy_hmac(msg, seed, 11));
  EXPECT_NE(heavy_hmac(msg, seed, 0), heavy_hmac(msg, seed, 1));
}

TEST(HeavyHmac, SeedAndMessageSensitivity) {
  EXPECT_NE(heavy_hmac(to_bytes("m1"), to_bytes("s"), 16),
            heavy_hmac(to_bytes("m2"), to_bytes("s"), 16));
  EXPECT_NE(heavy_hmac(to_bytes("m"), to_bytes("s1"), 16),
            heavy_hmac(to_bytes("m"), to_bytes("s2"), 16));
}

TEST(HeavyHmac, ZeroIterationsIsPlainHmac) {
  const Bytes msg = to_bytes("m");
  const Bytes seed = to_bytes("s");
  EXPECT_EQ(heavy_hmac(msg, seed, 0), hmac_sha256(seed, msg));
}

TEST(DigestEqual, ExactComparison) {
  Digest a{};
  Digest b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
  b[31] = 0;
  b[0] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace g2g::crypto
