// Bandwidth-limited contacts (extension): a contact can carry at most
// duration * bandwidth bytes, so short meetings cannot complete transfers.
// The paper assumes unlimited bandwidth; the default config preserves that.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"
#include "g2g/proto/epidemic.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

TEST(Bandwidth, UnlimitedByDefault) {
  World<EpidemicNode> w(make_trace(4, {{0, 1, 100, 100.5}}));  // very short contact
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Bandwidth, ShortContactCannotCarryTheMessage) {
  auto cfg = World<EpidemicNode>::default_config();
  cfg.bandwidth_bytes_per_s = 100.0;  // 100 B/s
  // 1-second contact: ~100 bytes of budget; the certificates alone eat it.
  World<EpidemicNode> w(make_trace(4, {{0, 1, 100, 101}}), cfg);
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
}

TEST(Bandwidth, LongContactCarriesIt) {
  auto cfg = World<EpidemicNode>::default_config();
  cfg.bandwidth_bytes_per_s = 100.0;
  // 60-second contact: 6000 bytes — plenty for auth + one message.
  World<EpidemicNode> w(make_trace(4, {{0, 1, 100, 160}}), cfg);
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Bandwidth, BudgetLimitsMessagesPerContact) {
  auto cfg = World<EpidemicNode>::default_config();
  cfg.bandwidth_bytes_per_s = 100.0;
  // Node 0 holds five ~120-byte messages; a 5-second contact at 100 B/s
  // (500-byte budget) carries the auth handshake plus only a few of them.
  World<EpidemicNode> w(make_trace(6, {{0, 1, 1000, 1005}}), cfg);
  for (std::uint32_t i = 0; i < 5; ++i) w.send(0, 5, 50 + i * 10);
  w.run();
  std::size_t transferred = 0;
  for (const auto& [id, rec] : w.collector().messages()) transferred += rec.replicas;
  EXPECT_GE(transferred, 1u);
  EXPECT_LT(transferred, 5u);
}

TEST(Bandwidth, G2GHandshakeRespectsBudget) {
  auto cfg = World<G2GEpidemicNode>::default_config();
  cfg.bandwidth_bytes_per_s = 50.0;
  World<G2GEpidemicNode> w(make_trace(4, {{0, 1, 100, 102}}), cfg);  // ~100B budget
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 0u);
}

}  // namespace
}  // namespace g2g::proto

namespace g2g::core {
namespace {

TEST(BandwidthExperiment, ThroughputDegradesGracefully) {
  ExperimentConfig cfg;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.protocol = Protocol::Epidemic;
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(10.0);
  cfg.seed = 8;

  // Unlimited is plumbed through ExperimentConfig via NetworkConfig default;
  // check the knob end to end using a direct Network.
  const ExperimentResult unlimited = run_experiment(cfg);
  EXPECT_GT(unlimited.success_rate, 0.15);
}

}  // namespace
}  // namespace g2g::core
