// Adversarial batch-verification tests for the (R,s)-form Schnorr suite.
//
// The randomized-linear-combination check folds a whole batch into one
// multi-exponentiation; these tests pin the two properties the protocol
// layer depends on:
//  * a batch containing any forged signature must reject, and the
//    per-signature fallback must localize the exact bad index;
//  * the (R,s) suite's verdicts must agree with the classic (e,s) suite on
//    the same corpora (same keys, same nonces, same corruption pattern).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/crypto/suite.hpp"
#include "g2g/crypto/verify_cache.hpp"

namespace g2g::crypto {
namespace {

struct SignedItem {
  KeyPair kp;
  Bytes msg;
  Bytes sig;
};

std::vector<SignedItem> make_corpus(const Suite& suite, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SignedItem> out;
  for (std::size_t i = 0; i < n; ++i) {
    SignedItem item;
    item.kp = suite.keygen(rng);
    Writer w;
    w.str("por-audit-payload");
    w.u32(static_cast<std::uint32_t>(i));
    item.msg = std::move(w).take();
    item.sig = suite.sign(item.kp.secret_key, item.msg);
    out.push_back(std::move(item));
  }
  return out;
}

std::vector<VerifyRequest> requests_of(const std::vector<SignedItem>& corpus) {
  std::vector<VerifyRequest> reqs;
  for (const auto& c : corpus) {
    reqs.push_back(VerifyRequest{BytesView(c.kp.public_key), BytesView(c.msg),
                                 BytesView(c.sig)});
  }
  return reqs;
}

class RsBatchSuite : public ::testing::Test {
 protected:
  SuitePtr suite_ = make_schnorr_rs_suite(SchnorrGroup::small_group());
};

TEST_F(RsBatchSuite, AllValidBatchAcceptsEveryIndex) {
  const auto corpus = make_corpus(*suite_, 16, 1);
  const auto reqs = requests_of(corpus);
  bool verdicts[16];
  const FastPathScope scope(true);
  suite_->verify_batch(reqs, verdicts);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(verdicts[i]) << "index " << i;
  }
}

TEST_F(RsBatchSuite, ForgedSignatureLocalizedToExactIndex) {
  // One forged signature anywhere in the batch: the combined equation
  // rejects, the fallback re-checks each item, and only the forged index
  // reads false.
  for (std::size_t bad = 0; bad < 8; ++bad) {
    auto corpus = make_corpus(*suite_, 8, 2);
    corpus[bad].sig[40] ^= 0x01;
    const auto reqs = requests_of(corpus);
    bool verdicts[8];
    const FastPathScope scope(true);
    suite_->verify_batch(reqs, verdicts);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(verdicts[i], i != bad) << "forged " << bad << ", index " << i;
    }
  }
}

TEST_F(RsBatchSuite, SignatureReplayAcrossMessagesLocalized) {
  auto corpus = make_corpus(*suite_, 6, 3);
  corpus[2].sig = corpus[4].sig;  // valid signature, wrong message/key
  const auto reqs = requests_of(corpus);
  bool verdicts[6];
  const FastPathScope scope(true);
  suite_->verify_batch(reqs, verdicts);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 2) << "index " << i;
  }
}

TEST_F(RsBatchSuite, MalformedLengthsLocalizedWithoutDerailingBatch) {
  auto corpus = make_corpus(*suite_, 5, 4);
  corpus[1].sig.pop_back();               // wrong signature size
  corpus[3].kp.public_key.push_back(0);   // wrong public-key size
  const auto reqs = requests_of(corpus);
  bool verdicts[5];
  const FastPathScope scope(true);
  suite_->verify_batch(reqs, verdicts);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 1 && i != 3) << "index " << i;
  }
}

TEST_F(RsBatchSuite, FastPathOffMatchesFastPathOn) {
  for (std::size_t bad : {std::size_t{0}, std::size_t{5}}) {
    auto corpus = make_corpus(*suite_, 6, 5);
    corpus[bad].sig[10] ^= 0x80;
    const auto reqs = requests_of(corpus);
    bool fast[6];
    bool slow[6];
    {
      const FastPathScope scope(true);
      suite_->verify_batch(reqs, fast);
    }
    {
      const FastPathScope scope(false);
      suite_->verify_batch(reqs, slow);
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(fast[i], slow[i]) << "bad " << bad << ", index " << i;
      EXPECT_EQ(fast[i], i != bad);
    }
  }
}

TEST_F(RsBatchSuite, CachingWrapperComposesWithRsBatch) {
  // The caching suite forwards distinct misses in one inner verify_batch
  // call, which for the RS suite is the folded equation; repeats come from
  // the memo. Verdicts must be identical either way.
  const CachingSuite cached(suite_);
  auto corpus = make_corpus(*suite_, 6, 6);
  corpus[4].sig[8] ^= 0x04;
  auto reqs = requests_of(corpus);
  reqs.push_back(reqs[0]);  // repeat: second round answered from the memo
  reqs.push_back(reqs[4]);
  bool verdicts[8];
  const FastPathScope scope(true);
  cached.verify_batch(reqs, verdicts);
  cached.verify_batch(reqs, verdicts);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 4 && i != 7) << "index " << i;
  }
  EXPECT_GT(cached.stats().verify_hits, 0u);
}

TEST_F(RsBatchSuite, AdversarialMatrixIdenticalWithMontgomeryOnAndOff) {
  // The full adversarial matrix (forge at every index, replay, truncation)
  // with the Montgomery fast path forced on vs forced off: the verdict
  // vectors must be identical element for element. FastPathScope(true) takes
  // the Montgomery multi-exp/ladder route; false takes the schoolbook oracle.
  enum class Tamper { kForge, kReplay, kTruncate };
  for (const Tamper tamper : {Tamper::kForge, Tamper::kReplay, Tamper::kTruncate}) {
    for (std::size_t bad = 0; bad < 6; ++bad) {
      auto corpus = make_corpus(*suite_, 6, 20 + bad);
      switch (tamper) {
        case Tamper::kForge:
          corpus[bad].sig[17] ^= 0x20;
          break;
        case Tamper::kReplay:
          corpus[bad].sig = corpus[(bad + 1) % 6].sig;
          break;
        case Tamper::kTruncate:
          corpus[bad].sig.pop_back();
          break;
      }
      const auto reqs = requests_of(corpus);
      bool mont_on[6];
      bool mont_off[6];
      {
        const FastPathScope scope(true);
        suite_->verify_batch(reqs, mont_on);
      }
      {
        const FastPathScope scope(false);
        suite_->verify_batch(reqs, mont_off);
      }
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(mont_on[i], mont_off[i])
            << "tamper " << static_cast<int>(tamper) << ", bad " << bad << ", index " << i;
        EXPECT_EQ(mont_on[i], i != bad)
            << "tamper " << static_cast<int>(tamper) << ", bad " << bad << ", index " << i;
      }
    }
  }
}

TEST_F(RsBatchSuite, CacheCounterSemanticsIdenticalWithMontgomeryOnAndOff) {
  // The fastpath.* obs counters are flushed from CachingSuite stats at the
  // end of a run; identical request streams must produce identical hit/miss
  // accounting whichever arithmetic backend answered the misses.
  CachingSuite::Stats stats_on;
  CachingSuite::Stats stats_off;
  for (const bool mont : {true, false}) {
    const FastPathScope scope(mont);
    const CachingSuite cached(suite_);
    auto corpus = make_corpus(*suite_, 6, 30);
    corpus[3].sig[12] ^= 0x08;
    auto reqs = requests_of(corpus);
    reqs.push_back(reqs[1]);  // intra-batch repeat: dedup accounting
    bool verdicts[7];
    cached.verify_batch(reqs, verdicts);
    cached.verify_batch(reqs, verdicts);  // second round answered by the memo
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(verdicts[i], i != 3) << "mont=" << mont << ", index " << i;
    }
    Rng rng(31);
    const KeyPair kp = cached.keygen(rng);
    const KeyPair peer = cached.keygen(rng);
    (void)cached.shared_secret(kp.secret_key, peer.public_key);
    (void)cached.shared_secret(kp.secret_key, peer.public_key);
    (mont ? stats_on : stats_off) = cached.stats();
  }
  EXPECT_EQ(stats_on.verify_hits, stats_off.verify_hits);
  EXPECT_EQ(stats_on.verify_misses, stats_off.verify_misses);
  EXPECT_EQ(stats_on.secret_hits, stats_off.secret_hits);
  EXPECT_EQ(stats_on.secret_misses, stats_off.secret_misses);
  EXPECT_GT(stats_on.verify_hits, 0u);
  EXPECT_GT(stats_on.secret_hits, 0u);
}

// Cross-suite differential: the (R,s) and (e,s) suites share keygen and the
// deterministic nonce derivation, so on the same corpus they must agree on
// every verdict — including under corruption.
TEST(CrossSuiteDifferential, VerdictsAgreeOnSameCorpora) {
  const SuitePtr es = make_schnorr_suite(SchnorrGroup::small_group());
  const SuitePtr rs = make_schnorr_rs_suite(SchnorrGroup::small_group());
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    auto corpus_es = make_corpus(*es, 8, seed);
    auto corpus_rs = make_corpus(*rs, 8, seed);
    for (std::size_t i = 0; i < 8; ++i) {
      // Same seed -> same keys and messages in both corpora.
      ASSERT_EQ(corpus_es[i].kp.public_key, corpus_rs[i].kp.public_key);
      ASSERT_EQ(corpus_es[i].msg, corpus_rs[i].msg);
    }
    // Corrupt the same subset of messages in both corpora.
    Rng corrupt(seed * 97);
    std::vector<bool> bad(8, false);
    for (std::size_t i = 0; i < 8; ++i) {
      if (corrupt.next() % 3 == 0) {
        bad[i] = true;
        corpus_es[i].msg[0] ^= 0x55;
        corpus_rs[i].msg[0] ^= 0x55;
      }
    }
    const auto reqs_es = requests_of(corpus_es);
    const auto reqs_rs = requests_of(corpus_rs);
    bool verdict_es[8];
    bool verdict_rs[8];
    es->verify_batch(reqs_es, verdict_es);
    rs->verify_batch(reqs_rs, verdict_rs);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(verdict_es[i], verdict_rs[i]) << "seed " << seed << ", index " << i;
      EXPECT_EQ(verdict_rs[i], !bad[i]) << "seed " << seed << ", index " << i;
    }
  }
}

TEST(CrossSuiteDifferential, VerdictsAgreeWithMontgomeryOnAndOff) {
  // The cross-suite matrix again, under both arithmetic backends: all four
  // verdict vectors — (e,s) and (R,s), Montgomery on and off — must agree.
  const SuitePtr es = make_schnorr_suite(SchnorrGroup::small_group());
  const SuitePtr rs = make_schnorr_rs_suite(SchnorrGroup::small_group());
  auto corpus_es = make_corpus(*es, 8, 50);
  auto corpus_rs = make_corpus(*rs, 8, 50);
  for (const std::size_t i : {std::size_t{1}, std::size_t{6}}) {
    corpus_es[i].msg[0] ^= 0x55;
    corpus_rs[i].msg[0] ^= 0x55;
  }
  const auto reqs_es = requests_of(corpus_es);
  const auto reqs_rs = requests_of(corpus_rs);
  bool es_on[8];
  bool es_off[8];
  bool rs_on[8];
  bool rs_off[8];
  {
    const FastPathScope scope(true);
    es->verify_batch(reqs_es, es_on);
    rs->verify_batch(reqs_rs, rs_on);
  }
  {
    const FastPathScope scope(false);
    es->verify_batch(reqs_es, es_off);
    rs->verify_batch(reqs_rs, rs_off);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(es_on[i], es_off[i]) << "index " << i;
    EXPECT_EQ(rs_on[i], rs_off[i]) << "index " << i;
    EXPECT_EQ(es_on[i], rs_on[i]) << "index " << i;
    EXPECT_EQ(es_on[i], i != 1 && i != 6) << "index " << i;
  }
}

TEST(CrossSuiteDifferential, SameTripleDifferentEncoding) {
  // With identical secrets and messages the two forms sign the very same
  // (k, e, s) triple; each suite accepts its own encoding and rejects the
  // other's (the transmitted halves differ).
  const SuitePtr es = make_schnorr_suite(SchnorrGroup::small_group());
  const SuitePtr rs = make_schnorr_rs_suite(SchnorrGroup::small_group());
  Rng rng_a(42);
  Rng rng_b(42);
  const KeyPair kp_es = es->keygen(rng_a);
  const KeyPair kp_rs = rs->keygen(rng_b);
  ASSERT_EQ(kp_es.public_key, kp_rs.public_key);
  const Bytes msg = to_bytes("same triple");
  const Bytes sig_es = es->sign(kp_es.secret_key, msg);
  const Bytes sig_rs = rs->sign(kp_rs.secret_key, msg);
  EXPECT_NE(sig_es, sig_rs);
  // s (second 32 bytes of both encodings) is shared between the two forms.
  EXPECT_TRUE(std::equal(sig_es.begin() + 32, sig_es.end(), sig_rs.begin() + 32));
  EXPECT_TRUE(es->verify(kp_es.public_key, msg, sig_es));
  EXPECT_TRUE(rs->verify(kp_rs.public_key, msg, sig_rs));
  EXPECT_FALSE(es->verify(kp_es.public_key, msg, sig_rs));
  EXPECT_FALSE(rs->verify(kp_rs.public_key, msg, sig_es));
}

TEST(RsSuiteMeta, NameAndSizes) {
  const SuitePtr rs = make_schnorr_rs_suite(SchnorrGroup::small_group());
  EXPECT_EQ(rs->name(), "schnorr-zp-rs");
  EXPECT_EQ(rs->signature_size(), 64u);
}

}  // namespace
}  // namespace g2g::crypto
