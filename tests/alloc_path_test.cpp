// Arena + SpanWriter semantics, arena/owning encode equality, and the
// allocation-count pins for the zero-copy wire path: with warm arena chunks,
// the full 5-step handshake frame-codec sequence performs zero heap
// allocations (this binary links g2g_alloc_probe, which replaces global
// operator new/delete with counting wrappers).
#include <gtest/gtest.h>

#include <span>

#include "g2g/crypto/identity.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/util/alloc_probe.hpp"
#include "g2g/util/arena.hpp"
#include "g2g/util/bytes.hpp"
#include "g2g/util/rng.hpp"

namespace g2g {
namespace {

TEST(Arena, AllocatesDistinctSpansAndResetsInPlace) {
  Arena arena(64);
  const std::span<std::uint8_t> a = arena.alloc(10);
  const std::span<std::uint8_t> b = arena.alloc(20);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 20u);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(arena.bytes_in_use(), 30u);
  const std::size_t chunks = arena.chunk_allocations();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Warm reuse: the same demand after a reset allocates no new chunks.
  (void)arena.alloc(10);
  (void)arena.alloc(20);
  EXPECT_EQ(arena.chunk_allocations(), chunks);
}

TEST(Arena, GrowsAndKeepsCapacityAcrossReset) {
  Arena arena(16);
  (void)arena.alloc(16);
  (void)arena.alloc(100);  // exceeds the first chunk: a second one is made
  EXPECT_GE(arena.capacity(), 116u);
  EXPECT_GE(arena.chunk_allocations(), 2u);
  const std::size_t cap = arena.capacity();
  const std::size_t chunks = arena.chunk_allocations();
  arena.reset();
  EXPECT_EQ(arena.capacity(), cap);
  (void)arena.alloc(16);
  (void)arena.alloc(100);
  EXPECT_EQ(arena.chunk_allocations(), chunks);
}

TEST(SpanWriter, ProducesWriterIdenticalBytes) {
  Writer w;
  w.u8(0x7f);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.5);
  w.str("abc");
  w.blob(Bytes{9, 8, 7});
  const Bytes owned = std::move(w).take();

  Bytes out(owned.size());
  SpanWriter sw(out);
  sw.u8(0x7f);
  sw.u16(0x1234);
  sw.u32(0xdeadbeef);
  sw.u64(0x0123456789abcdefULL);
  sw.i64(-42);
  sw.f64(3.5);
  sw.str("abc");
  sw.blob(Bytes{9, 8, 7});
  sw.expect_full();
  EXPECT_EQ(out, owned);
}

TEST(SpanWriter, OverflowAndUnderfillThrowEncodeError) {
  Bytes small(4);
  SpanWriter w(small);
  EXPECT_THROW(w.u64(1), EncodeError);  // 8 bytes into a 4-byte span
  Bytes buf(8);
  SpanWriter u(buf);
  u.u32(5);
  EXPECT_THROW(u.expect_full(), EncodeError);  // 4 of 8 bytes written
}

// ---------------------------------------------------------------------------
// Arena encodes must be byte-identical to the owning encodes, and every
// encode() must fill exactly wire_size() bytes (the SpanWriter seam enforces
// it; these pins keep the two paths from drifting).
// ---------------------------------------------------------------------------

struct WireFixture {
  WireFixture() : rng(7), suite(crypto::make_fast_suite(0xA110)), authority(suite, rng) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      ids.emplace_back(suite, NodeId(i), authority, rng);
      roster.add(ids.back().certificate());
    }
    msg = proto::make_message(ids[0], roster.get(NodeId(1)), MessageId(1), Bytes(64, 0x42),
                              rng);
    h = msg.hash();
    por.h = h;
    por.giver = NodeId(0);
    por.taker = NodeId(1);
    por.at = TimePoint::from_seconds(5.0);
    por.taker_signature = ids[1].sign(por.signed_payload());
    decl.declarer = NodeId(1);
    decl.dst = NodeId(0);
    decl.value = 2.5;
    decl.frame = 3;
    decl.at = TimePoint::from_seconds(9.0);
    decl.signature = ids[1].sign(decl.signed_payload());
  }

  Rng rng;
  crypto::SuitePtr suite;
  crypto::Authority authority;
  std::vector<crypto::NodeIdentity> ids;
  proto::Roster roster;
  proto::SealedMessage msg;
  proto::MessageHash h{};
  proto::ProofOfRelay por;
  proto::QualityDeclaration decl;
};

TEST(ArenaEncode, MatchesOwningEncodeForEveryWireType) {
  WireFixture f;
  Arena arena;
  const auto check = [&](const auto& v) {
    const Bytes owned = v.encode();
    EXPECT_EQ(owned.size(), v.wire_size());
    const BytesView b = arena_encode(arena, v);
    EXPECT_EQ(Bytes(b.begin(), b.end()), owned);
  };
  check(proto::relay::RelayRqstFrame{f.h});
  check(proto::relay::RelayOkFrame{f.h, true});
  check(proto::relay::RelayOkFrame{f.h, false});
  proto::relay::KeyRevealFrame key;
  key.h = f.h;
  key.key.fill(0x07);
  check(key);
  proto::relay::PorRqstFrame rqst;
  rqst.h = f.h;
  rqst.seed.fill(0x0B);
  check(rqst);
  proto::relay::StoredRespFrame stored;
  stored.h = f.h;
  stored.seed.fill(0x0C);
  stored.digest.fill(0x0D);
  check(stored);
  proto::relay::FqRqstFrame fq;
  fq.h = f.h;
  fq.dst = NodeId(1);
  check(fq);
  check(f.msg);
  check(f.decl);
  check(f.por);
  proto::ProofOfRelay delegated = f.por;
  delegated.delegation = true;
  delegated.declared_dst = NodeId(1);
  delegated.msg_quality = 1.5;
  delegated.taker_quality = 2.0;
  check(delegated);
  proto::ProofOfMisbehavior pom;
  pom.kind = proto::ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = f.por;
  check(pom);
}

TEST(ArenaEncode, RelayDataBorrowedPartsMatchFrameEncode) {
  WireFixture f;
  Arena arena;
  proto::relay::RelayDataFrame frame;
  frame.h = f.h;
  frame.msg = f.msg;
  frame.attachments.push_back(f.decl);
  const Bytes owned = frame.encode();
  const std::span<const proto::QualityDeclaration> attachments(frame.attachments);
  EXPECT_EQ(proto::relay::relay_data_wire_size(frame.msg, attachments), frame.wire_size());
  const BytesView b = proto::relay::arena_relay_data(arena, frame.h, frame.msg, attachments);
  EXPECT_EQ(Bytes(b.begin(), b.end()), owned);
}

// ---------------------------------------------------------------------------
// Allocation pins (the point of this binary).
// ---------------------------------------------------------------------------

TEST(AllocProbe, CountsOperatorNew) {
  // Sanity: the probe is actually linked — otherwise every zero-allocation
  // assertion below would pass vacuously.
  const std::size_t before = heap_alloc_count();
  auto* p = new Bytes(256, 0x11);
  delete p;
  EXPECT_GT(heap_alloc_count(), before);
}

TEST(AllocPath, SteadyStateHandshakeCodecsAllocationFree) {
  WireFixture f;
  Arena arena;

  // The exact frame-codec sequence of one 5-step relay handshake, encoded
  // into the arena and decoded through non-owning views — what giver_pass
  // runs per attempt, minus signatures and the Hold materialisation.
  const auto run_once = [&] {
    arena.reset();
    std::size_t sink = 0;
    // Step 1: RELAY_RQST.
    const BytesView rqst = arena_encode(arena, proto::relay::RelayRqstFrame{f.h});
    sink += proto::relay::RelayRqstFrame::decode(rqst).h[0];
    // Step 2: RELAY_OK.
    const BytesView ok = arena_encode(arena, proto::relay::RelayOkFrame{f.h, true});
    sink += proto::relay::RelayOkFrame::decode(ok).accept ? 1u : 0u;
    // Step 3: RELAY_DATA from borrowed parts; message read back as a view,
    // H(m) computed over the wire bytes without re-encoding.
    const BytesView data = proto::relay::arena_relay_data(arena, f.h, f.msg, {});
    const proto::relay::RelayDataFrameView view =
        proto::relay::RelayDataFrameView::decode(data);
    sink += view.msg.hash()[0];
    sink += view.decode_attachments().size();
    // Step 4: PoR — signed payload and wire encoding both in the arena.
    const std::span<std::uint8_t> payload = arena.alloc(f.por.signed_payload_size());
    SpanWriter pw(payload);
    f.por.signed_payload_into(pw);
    pw.expect_full();
    const BytesView por_wire = arena_encode(arena, f.por);
    sink += proto::ProofOfRelayView::decode(por_wire).taker_signature.size();
    // Step 5: KEY reveal.
    proto::relay::KeyRevealFrame key;
    key.h = f.h;
    const BytesView key_wire = arena_encode(arena, key);
    sink += proto::relay::KeyRevealFrame::decode(key_wire).key[0];
    return sink;
  };

  const std::size_t first = run_once();  // warms the arena chunks
  (void)run_once();
  const std::size_t chunks = arena.chunk_allocations();
  const std::size_t before = heap_alloc_count();
  const std::size_t again = run_once();
  EXPECT_EQ(heap_alloc_count() - before, 0u)
      << "steady-state handshake codec path hit the heap";
  EXPECT_EQ(arena.chunk_allocations(), chunks);
  EXPECT_EQ(again, first);
}

}  // namespace
}  // namespace g2g
