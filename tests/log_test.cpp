#include "g2g/util/log.hpp"

#include <gtest/gtest.h>

#include "g2g/util/ids.hpp"

namespace g2g {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST(Log, EmitsWithoutCrashingAtEveryLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);  // keep test output clean
  log_debug("debug ", 42);
  log_info("info ", 3.14, " mixed ", std::string("types"));
  log_warn("warn");
  log_error("error ", to_string(NodeId(7)));
}

TEST(Log, DefaultLevelSuppressesInfo) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  // Nothing observable to assert without capturing stderr; this documents the
  // contract: messages below the threshold are discarded before formatting.
  log(LogLevel::Info, "discarded");
  SUCCEED();
}

class FixedClock final : public LogClock {
 public:
  explicit FixedClock(std::int64_t us) : us_(us) {}
  [[nodiscard]] std::int64_t now_micros() const override { return us_; }

 private:
  std::int64_t us_;
};

TEST(Log, ClockInstallAndScopedRestore) {
  EXPECT_EQ(log_clock(), nullptr);
  const FixedClock outer(1000000);
  const FixedClock inner(2000000);
  {
    const ScopedLogClock a(&outer);
    EXPECT_EQ(log_clock(), &outer);
    {
      const ScopedLogClock b(&inner);
      EXPECT_EQ(log_clock(), &inner);
    }
    EXPECT_EQ(log_clock(), &outer);  // restored, not cleared
  }
  EXPECT_EQ(log_clock(), nullptr);
}

TEST(Log, EmitsWithClockInstalled) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);  // formatting path only, no output
  const FixedClock clock(3723500000);  // 1h02m03.5s
  const ScopedLogClock scoped(&clock);
  log_error("prefixed line");
  SUCCEED();
}

TEST(Ids, StringsAndHashing) {
  EXPECT_EQ(to_string(NodeId(3)), "n3");
  EXPECT_EQ(to_string(MessageId(9)), "m9");
  EXPECT_TRUE(NodeId().valid() == false);
  EXPECT_FALSE(MessageId::invalid().valid());
  EXPECT_EQ(std::hash<NodeId>{}(NodeId(5)), std::hash<NodeId>{}(NodeId(5)));
  EXPECT_EQ(std::hash<MessageId>{}(MessageId(5)), std::hash<MessageId>{}(MessageId(5)));
}

}  // namespace
}  // namespace g2g
