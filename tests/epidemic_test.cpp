#include "g2g/proto/epidemic.hpp"

#include <gtest/gtest.h>

#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

using EpidemicWorld = World<EpidemicNode>;

TEST(Epidemic, DirectDelivery) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}}));
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 1u);
  const auto& rec = w.collector().messages().at(id);
  EXPECT_EQ(rec.delivered->to_seconds(), 100.0);
}

TEST(Epidemic, MultiHopDelivery) {
  // 0 -> 1 at t=100, 1 -> 2 at t=500; message 0 -> 2 created at t=50.
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {1, 2, 500, 510}}));
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 2u);
  EXPECT_EQ(w.collector().messages().at(id).delivered->to_seconds(), 500.0);
}

TEST(Epidemic, TtlExpiryBlocksDelivery) {
  // Relay at t=100; next contact at t=100 + >Delta1: the relay purged the copy.
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {1, 2, 2200, 2210}}));
  const MessageId id = w.send(0, 2, 50);  // expires at 50 + 1800 = 1850
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.node(1).buffer_size(), 0u);  // purged at TTL
}

TEST(Epidemic, NoReReceptionOnRepeatedContacts) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 1, 200, 210}, {0, 1, 300, 310}}));
  const MessageId id = w.send(0, 3, 50);  // dst never met: stays replicated once
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.replicas(id), 1u);
}

TEST(Epidemic, FloodsEveryContact) {
  // A star of contacts around node 0: everyone gets a replica.
  EpidemicWorld w(make_trace(6,
                             {{0, 1, 100, 110}, {0, 2, 120, 130}, {0, 3, 140, 150},
                              {0, 4, 160, 170}}));
  const MessageId id = w.send(0, 5, 50);  // destination never met
  w.run();
  EXPECT_EQ(w.replicas(id), 4u);
}

TEST(Epidemic, DropperBlocksRelayPath) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {1, 2, 500, 510}}),
                  {{}, {Behavior::Dropper, false}, {}, {}});
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_FALSE(w.delivered(id));
  EXPECT_EQ(w.node(1).buffer_size(), 0u);
}

TEST(Epidemic, DropperStillReceivesOwnMessages) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}}), {{}, {Behavior::Dropper, false}, {}, {}});
  const MessageId id = w.send(0, 1, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
}

TEST(Epidemic, DropperWithOutsidersSparesOwnCommunity) {
  auto cfg = EpidemicWorld::default_config();
  cfg.communities = community::CommunityMap(
      4, {{NodeId(0), NodeId(1)}, {NodeId(2), NodeId(3)}});
  // Node 1 is a dropper-with-outsiders; node 0 is in its community, node 2 not.
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {1, 3, 500, 510}, {2, 1, 600, 610},
                                 {1, 0, 620, 625}}),
                  cfg, {{}, {Behavior::Dropper, true}, {}, {}});
  // Message from 0 (insider): node 1 keeps and relays it onward to 3.
  const MessageId from_insider = w.send(0, 3, 50);
  w.run();
  EXPECT_TRUE(w.delivered(from_insider));
}

TEST(Epidemic, DeliveryRecordedOnceDespiteMultiplePaths) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}, {0, 2, 150, 160}, {1, 2, 200, 210}}));
  const MessageId id = w.send(0, 2, 50);
  w.run();
  EXPECT_TRUE(w.delivered(id));
  // Delivered directly at 150; 1->2 path at 200 is suppressed by `seen_`.
  EXPECT_EQ(w.collector().messages().at(id).delivered->to_seconds(), 150.0);
  EXPECT_EQ(w.replicas(id), 2u);
}

TEST(Epidemic, CostAccountingTracksBytes) {
  EpidemicWorld w(make_trace(4, {{0, 1, 100, 110}}));
  w.send(0, 3, 50);
  w.run();
  const auto& src_costs = w.collector().costs(NodeId(0));
  const auto& relay_costs = w.collector().costs(NodeId(1));
  EXPECT_GT(src_costs.bytes_sent, 0u);
  EXPECT_GT(relay_costs.bytes_received, 0u);
  EXPECT_GT(relay_costs.memory_byte_seconds, 0.0);
  EXPECT_EQ(src_costs.sessions, 1u);
}

}  // namespace
}  // namespace g2g::proto
