// Empirical validation of the paper's Nash-equilibrium claims (Theorems 1-2):
// under both G2G protocols, every implemented rational deviation yields an
// expected payoff no better than faithful behaviour, because deviants are
// detected with high probability and evicted (payoff -> 0), while faithful
// nodes never are.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"

namespace g2g::core {
namespace {

Scenario nash_scenario() {
  Scenario s = infocom05_scenario();
  s.trace_config.nodes = 24;
  s.trace_config.duration = Duration::days(2);
  s.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  return s;
}

ExperimentConfig nash_config(Protocol p, proto::Behavior b, std::size_t deviants) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = nash_scenario();
  cfg.sim_window = Duration::hours(3);
  cfg.traffic_window = Duration::hours(2);
  cfg.mean_interarrival = Duration::seconds(12.0);
  cfg.deviation = b;
  cfg.deviant_count = deviants;
  cfg.seed = 21;
  return cfg;
}

/// Mean payoff of the deviant set vs the faithful set in one run.
struct PayoffSplit {
  double deviant_mean = 0.0;
  double faithful_mean = 0.0;
};

PayoffSplit payoff_split(const ExperimentResult& r, std::size_t node_count) {
  PayoffSplit out;
  std::size_t nd = 0;
  std::size_t nf = 0;
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const double p = node_payoff(r, NodeId(i));
    const bool is_deviant =
        std::binary_search(r.deviants.begin(), r.deviants.end(), NodeId(i));
    if (is_deviant) {
      out.deviant_mean += p;
      ++nd;
    } else {
      out.faithful_mean += p;
      ++nf;
    }
  }
  if (nd > 0) out.deviant_mean /= static_cast<double>(nd);
  if (nf > 0) out.faithful_mean /= static_cast<double>(nf);
  return out;
}

struct Deviation {
  Protocol protocol;
  proto::Behavior behavior;
  const char* name;
};

class NashProperty : public ::testing::TestWithParam<Deviation> {};

TEST_P(NashProperty, DeviationDoesNotPay) {
  const auto& d = GetParam();
  const ExperimentResult r = run_experiment(nash_config(d.protocol, d.behavior, 6));
  ASSERT_EQ(r.deviant_count, 6u);
  // No honest node is ever accused.
  EXPECT_EQ(r.false_positives, 0u);
  // Deviants are detected with non-negligible probability...
  EXPECT_GT(r.detection_rate, 0.5);
  // ...so their expected payoff cannot beat the faithful strategy.
  const PayoffSplit split = payoff_split(r, 24);
  EXPECT_LE(split.deviant_mean, split.faithful_mean);
}

INSTANTIATE_TEST_SUITE_P(
    AllDeviations, NashProperty,
    ::testing::Values(
        Deviation{Protocol::G2GEpidemic, proto::Behavior::Dropper, "EpidemicDropper"},
        Deviation{Protocol::G2GDelegationFrequency, proto::Behavior::Dropper,
                  "DelegationFreqDropper"},
        Deviation{Protocol::G2GDelegationLastContact, proto::Behavior::Dropper,
                  "DelegationLcDropper"},
        Deviation{Protocol::G2GDelegationLastContact, proto::Behavior::Liar, "DelegationLiar"},
        Deviation{Protocol::G2GDelegationLastContact, proto::Behavior::Cheater,
                  "DelegationCheater"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(NashProperty, FaithfulRunHasNoDetectionsAtAll) {
  for (const Protocol p : {Protocol::G2GEpidemic, Protocol::G2GDelegationFrequency,
                           Protocol::G2GDelegationLastContact}) {
    const ExperimentResult r = run_experiment(nash_config(p, proto::Behavior::Faithful, 0));
    EXPECT_TRUE(r.collector.detections().empty()) << to_string(p);
    EXPECT_TRUE(r.collector.evictions().empty()) << to_string(p);
  }
}

TEST(NashProperty, HeavyHmacCostExceedsStorageSavings) {
  // The incentive argument of Section IV-C: the energy of the storage-proof
  // HMAC must exceed the energy a node saves by hoarding instead of relaying.
  // With default weights, one heavy HMAC (2000) dwarfs the per-message relay
  // cost (~ message bytes * 2 * 0.001 + a handful of signatures).
  const metrics::NodeCosts relaying{.bytes_sent = 2000,
                                    .bytes_received = 2000,
                                    .signatures = 10,
                                    .verifications = 10,
                                    .heavy_hmacs = 0,
                                    .sessions = 0,
                                    .memory_byte_seconds = 0};
  metrics::NodeCosts hoarding;
  hoarding.heavy_hmacs = 1;
  EXPECT_GT(hoarding.energy(), relaying.energy());
}

TEST(NashProperty, DroppersWithOutsidersAlsoLose) {
  auto cfg = nash_config(Protocol::G2GEpidemic, proto::Behavior::Dropper, 6);
  cfg.with_outsiders = true;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.false_positives, 0u);
  // Outsider-droppers deviate less often, but still get caught.
  EXPECT_GT(r.detection_rate, 0.3);
  const PayoffSplit split = payoff_split(r, 24);
  EXPECT_LE(split.deviant_mean, split.faithful_mean * 1.001);
}

}  // namespace
}  // namespace g2g::core
