#include "g2g/core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace g2g::core {
namespace {

ExperimentConfig tiny(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 12;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(60.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Parallel, MatchesSequentialResults) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) configs.push_back(tiny(Protocol::G2GEpidemic, s));

  const auto parallel = run_parallel(configs, 4);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ExperimentResult seq = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].generated, seq.generated) << i;
    EXPECT_EQ(parallel[i].delivered, seq.delivered) << i;
    EXPECT_DOUBLE_EQ(parallel[i].avg_replicas, seq.avg_replicas) << i;
  }
}

TEST(Parallel, PreservesInputOrder) {
  std::vector<ExperimentConfig> configs{tiny(Protocol::Epidemic, 1),
                                        tiny(Protocol::G2GEpidemic, 1)};
  const auto results = run_parallel(configs, 2);
  // G2G spends signatures; vanilla epidemic does not sign relay handshakes.
  std::uint64_t epi_sigs = 0;
  std::uint64_t g2g_sigs = 0;
  for (std::uint32_t n = 0; n < 12; ++n) {
    epi_sigs += results[0].collector.costs(NodeId(n)).signatures;
    g2g_sigs += results[1].collector.costs(NodeId(n)).signatures;
  }
  EXPECT_EQ(epi_sigs, 0u);
  EXPECT_GT(g2g_sigs, 0u);
}

TEST(Parallel, SingleThreadAndEmptyInput) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
  const auto one = run_parallel({tiny(Protocol::Epidemic, 3)}, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_GT(one[0].generated, 0u);
}

TEST(Parallel, PropagatesExceptions) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid
  EXPECT_THROW((void)run_parallel({bad}, 2), std::invalid_argument);
}

// Regression: a failing config must not poison its neighbours. The old pool
// set a shared failure flag that let workers claim an index via fetch_add and
// then return without running it, leaving default-constructed results for
// innocent configs; and "first error wins" depended on thread timing.
TEST(Parallel, FailingConfigDoesNotAbandonOtherIndices) {
  std::atomic<int> executed{0};
  EXPECT_THROW(sharded_for(16, 4,
                           [&executed](std::size_t i) {
                             executed.fetch_add(1);
                             if (i % 5 == 2) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Every index ran, including the ones after a failure in the same shard.
  EXPECT_EQ(executed.load(), 16);
}

TEST(Parallel, LowestIndexErrorIsRethrownDeterministically) {
  for (int trial = 0; trial < 10; ++trial) {
    try {
      sharded_for(12, 4, [](std::size_t i) {
        if (i == 3 || i == 7 || i == 11) {
          throw std::runtime_error("fail at " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      // No matter which worker finishes first, index 3's error surfaces.
      EXPECT_STREQ(e.what(), "fail at 3");
    }
  }
}

TEST(Parallel, SweepMatchesPerCellRepeatedRuns) {
  std::vector<SweepCell> cells;
  cells.push_back({tiny(Protocol::Epidemic, 5), 2});
  cells.push_back({tiny(Protocol::G2GEpidemic, 5), 3});
  cells.push_back({tiny(Protocol::G2GEpidemic, 9), 1});
  const std::vector<AggregateResult> sweep = run_sweep(cells, 4);
  ASSERT_EQ(sweep.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const AggregateResult seq = run_repeated(cells[i].config, cells[i].runs);
    EXPECT_EQ(sweep[i].success_rate.count(), seq.success_rate.count()) << i;
    EXPECT_NEAR(sweep[i].success_rate.mean(), seq.success_rate.mean(), 1e-12) << i;
    EXPECT_NEAR(sweep[i].avg_replicas.mean(), seq.avg_replicas.mean(), 1e-12) << i;
    EXPECT_EQ(sweep[i].false_positives, seq.false_positives) << i;
  }
}

TEST(Parallel, SweepPropagatesLowestCellError) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid
  const std::vector<SweepCell> cells{{tiny(Protocol::Epidemic, 2), 1},
                                     {bad, 2},
                                     {tiny(Protocol::Epidemic, 3), 1}};
  EXPECT_THROW((void)run_sweep(cells, 3), std::invalid_argument);
}

// TSan-targeted contention stress (ISSUE 5): thousands of near-empty work
// items force the owned shards to drain almost immediately, so most of the
// run is workers racing through the steal path — victim scans, cursor
// fetch_adds, lost claim races — while failures land under the error mutex.
// The pool contract must survive untouched: every index executes exactly
// once (drain-all), and the lowest-index error is the one rethrown no matter
// which worker hit its failure first. Runs in the normal suite too; under
// `tools/check.sh --tsan` the same interleavings are race-checked.
TEST(Parallel, ContentionStressDrainsAllAndRethrowsLowest) {
  constexpr std::size_t kIndices = 4096;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kFirstFailure = 41;
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<std::atomic<std::uint8_t>> executions(kIndices);
    try {
      sharded_for(kIndices, kThreads, [&executions](std::size_t i) {
        executions[i].fetch_add(1);
        // Uneven spin: make some cells slower so shard drain rates diverge
        // and thieves pile onto the loaded shards.
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < (i % 7) * 50; ++k) sink += k;
        if (i % 97 == kFirstFailure % 97 && i >= kFirstFailure) {
          throw std::runtime_error("fail at " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw (trial " << trial << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail at 41") << "trial " << trial;
    }
    for (std::size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(executions[i].load(), 1u) << "index " << i << " trial " << trial;
    }
  }
}

// The same contract one layer up: a run_sweep whose flattened index space
// carries several failing cells interleaved with healthy ones, pushed wide
// enough that completions race. The error of the lowest flat index — the
// first run of the first bad cell — must surface every time, and healthy
// cells must still aggregate exactly like their sequential counterparts.
TEST(Parallel, SweepContentionRacingExceptionsStayDeterministic) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid: throws in run_experiment
  std::vector<SweepCell> cells;
  for (std::uint64_t s = 0; s < 6; ++s) {
    cells.push_back({tiny(Protocol::Epidemic, 20 + s), 2});
  }
  cells.insert(cells.begin() + 2, {bad, 2});  // flat indices 4..5 fail first
  cells.push_back({bad, 1});                  // and a racing failure at the tail
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_THROW((void)run_sweep(cells, 8), std::invalid_argument) << trial;
  }
}

TEST(Parallel, RepeatedParallelMatchesSequentialAggregate) {
  const ExperimentConfig base = tiny(Protocol::G2GEpidemic, 9);
  const AggregateResult par = run_repeated_parallel(base, 4, 4);
  const AggregateResult seq = run_repeated(base, 4);
  EXPECT_EQ(par.success_rate.count(), seq.success_rate.count());
  EXPECT_NEAR(par.success_rate.mean(), seq.success_rate.mean(), 1e-12);
  EXPECT_NEAR(par.avg_replicas.mean(), seq.avg_replicas.mean(), 1e-12);
}

}  // namespace
}  // namespace g2g::core
