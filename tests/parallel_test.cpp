#include "g2g/core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace g2g::core {
namespace {

ExperimentConfig tiny(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 12;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(60.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Parallel, MatchesSequentialResults) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) configs.push_back(tiny(Protocol::G2GEpidemic, s));

  const auto parallel = run_parallel(configs, 4);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ExperimentResult seq = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].generated, seq.generated) << i;
    EXPECT_EQ(parallel[i].delivered, seq.delivered) << i;
    EXPECT_DOUBLE_EQ(parallel[i].avg_replicas, seq.avg_replicas) << i;
  }
}

TEST(Parallel, PreservesInputOrder) {
  std::vector<ExperimentConfig> configs{tiny(Protocol::Epidemic, 1),
                                        tiny(Protocol::G2GEpidemic, 1)};
  const auto results = run_parallel(configs, 2);
  // G2G spends signatures; vanilla epidemic does not sign relay handshakes.
  std::uint64_t epi_sigs = 0;
  std::uint64_t g2g_sigs = 0;
  for (std::uint32_t n = 0; n < 12; ++n) {
    epi_sigs += results[0].collector.costs(NodeId(n)).signatures;
    g2g_sigs += results[1].collector.costs(NodeId(n)).signatures;
  }
  EXPECT_EQ(epi_sigs, 0u);
  EXPECT_GT(g2g_sigs, 0u);
}

TEST(Parallel, SingleThreadAndEmptyInput) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
  const auto one = run_parallel({tiny(Protocol::Epidemic, 3)}, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_GT(one[0].generated, 0u);
}

TEST(Parallel, PropagatesExceptions) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid
  EXPECT_THROW((void)run_parallel({bad}, 2), std::invalid_argument);
}

// Regression: a failing config must not poison its neighbours. The old pool
// set a shared failure flag that let workers claim an index via fetch_add and
// then return without running it, leaving default-constructed results for
// innocent configs; and "first error wins" depended on thread timing.
TEST(Parallel, FailingConfigDoesNotAbandonOtherIndices) {
  std::atomic<int> executed{0};
  EXPECT_THROW(sharded_for(16, 4,
                           [&executed](std::size_t i) {
                             executed.fetch_add(1);
                             if (i % 5 == 2) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Every index ran, including the ones after a failure in the same shard.
  EXPECT_EQ(executed.load(), 16);
}

TEST(Parallel, LowestIndexErrorIsRethrownDeterministically) {
  for (int trial = 0; trial < 10; ++trial) {
    try {
      sharded_for(12, 4, [](std::size_t i) {
        if (i == 3 || i == 7 || i == 11) {
          throw std::runtime_error("fail at " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      // No matter which worker finishes first, index 3's error surfaces.
      EXPECT_STREQ(e.what(), "fail at 3");
    }
  }
}

TEST(Parallel, SweepMatchesPerCellRepeatedRuns) {
  std::vector<SweepCell> cells;
  cells.push_back({tiny(Protocol::Epidemic, 5), 2});
  cells.push_back({tiny(Protocol::G2GEpidemic, 5), 3});
  cells.push_back({tiny(Protocol::G2GEpidemic, 9), 1});
  const std::vector<AggregateResult> sweep = run_sweep(cells, 4);
  ASSERT_EQ(sweep.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const AggregateResult seq = run_repeated(cells[i].config, cells[i].runs);
    EXPECT_EQ(sweep[i].success_rate.count(), seq.success_rate.count()) << i;
    EXPECT_NEAR(sweep[i].success_rate.mean(), seq.success_rate.mean(), 1e-12) << i;
    EXPECT_NEAR(sweep[i].avg_replicas.mean(), seq.avg_replicas.mean(), 1e-12) << i;
    EXPECT_EQ(sweep[i].false_positives, seq.false_positives) << i;
  }
}

TEST(Parallel, SweepPropagatesLowestCellError) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid
  const std::vector<SweepCell> cells{{tiny(Protocol::Epidemic, 2), 1},
                                     {bad, 2},
                                     {tiny(Protocol::Epidemic, 3), 1}};
  EXPECT_THROW((void)run_sweep(cells, 3), std::invalid_argument);
}

TEST(Parallel, RepeatedParallelMatchesSequentialAggregate) {
  const ExperimentConfig base = tiny(Protocol::G2GEpidemic, 9);
  const AggregateResult par = run_repeated_parallel(base, 4, 4);
  const AggregateResult seq = run_repeated(base, 4);
  EXPECT_EQ(par.success_rate.count(), seq.success_rate.count());
  EXPECT_NEAR(par.success_rate.mean(), seq.success_rate.mean(), 1e-12);
  EXPECT_NEAR(par.avg_replicas.mean(), seq.avg_replicas.mean(), 1e-12);
}

}  // namespace
}  // namespace g2g::core
