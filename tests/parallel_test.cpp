#include "g2g/core/parallel.hpp"

#include <gtest/gtest.h>

namespace g2g::core {
namespace {

ExperimentConfig tiny(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 12;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(60.0);
  cfg.seed = seed;
  return cfg;
}

TEST(Parallel, MatchesSequentialResults) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) configs.push_back(tiny(Protocol::G2GEpidemic, s));

  const auto parallel = run_parallel(configs, 4);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const ExperimentResult seq = run_experiment(configs[i]);
    EXPECT_EQ(parallel[i].generated, seq.generated) << i;
    EXPECT_EQ(parallel[i].delivered, seq.delivered) << i;
    EXPECT_DOUBLE_EQ(parallel[i].avg_replicas, seq.avg_replicas) << i;
  }
}

TEST(Parallel, PreservesInputOrder) {
  std::vector<ExperimentConfig> configs{tiny(Protocol::Epidemic, 1),
                                        tiny(Protocol::G2GEpidemic, 1)};
  const auto results = run_parallel(configs, 2);
  // G2G spends signatures; vanilla epidemic does not sign relay handshakes.
  std::uint64_t epi_sigs = 0;
  std::uint64_t g2g_sigs = 0;
  for (std::uint32_t n = 0; n < 12; ++n) {
    epi_sigs += results[0].collector.costs(NodeId(n)).signatures;
    g2g_sigs += results[1].collector.costs(NodeId(n)).signatures;
  }
  EXPECT_EQ(epi_sigs, 0u);
  EXPECT_GT(g2g_sigs, 0u);
}

TEST(Parallel, SingleThreadAndEmptyInput) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
  const auto one = run_parallel({tiny(Protocol::Epidemic, 3)}, 1);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_GT(one[0].generated, 0u);
}

TEST(Parallel, PropagatesExceptions) {
  ExperimentConfig bad = tiny(Protocol::Epidemic, 1);
  bad.scenario.trace_config.nodes = 1;  // invalid
  EXPECT_THROW((void)run_parallel({bad}, 2), std::invalid_argument);
}

TEST(Parallel, RepeatedParallelMatchesSequentialAggregate) {
  const ExperimentConfig base = tiny(Protocol::G2GEpidemic, 9);
  const AggregateResult par = run_repeated_parallel(base, 4, 4);
  const AggregateResult seq = run_repeated(base, 4);
  EXPECT_EQ(par.success_rate.count(), seq.success_rate.count());
  EXPECT_NEAR(par.success_rate.mean(), seq.success_rate.mean(), 1e-12);
  EXPECT_NEAR(par.avg_replicas.mean(), seq.avg_replicas.mean(), 1e-12);
}

}  // namespace
}  // namespace g2g::core
