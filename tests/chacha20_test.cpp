#include "g2g/crypto/chacha20.hpp"

#include <gtest/gtest.h>

namespace g2g::crypto {
namespace {

ChaChaKey test_key(std::uint8_t fill = 0x42) {
  ChaChaKey k{};
  for (std::size_t i = 0; i < k.size(); ++i) k[i] = static_cast<std::uint8_t>(fill + i);
  return k;
}

ChaChaNonce test_nonce(std::uint8_t fill = 0x07) {
  ChaChaNonce n{};
  for (std::size_t i = 0; i < n.size(); ++i) n[i] = static_cast<std::uint8_t>(fill + i);
  return n;
}

TEST(ChaCha20, EncryptDecryptIsInvolution) {
  const Bytes plain = to_bytes("attack at dawn, bring proofs of relay");
  const Bytes cipher = chacha20_xor(test_key(), test_nonce(), plain);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(chacha20_xor(test_key(), test_nonce(), cipher), plain);
}

TEST(ChaCha20, EmptyInput) {
  EXPECT_TRUE(chacha20_xor(test_key(), test_nonce(), {}).empty());
}

TEST(ChaCha20, MultiBlockMessages) {
  // Cross the 64-byte block boundary and check involution at various sizes.
  for (const std::size_t len : {1u, 63u, 64u, 65u, 128u, 1000u}) {
    Bytes plain(len);
    for (std::size_t i = 0; i < len; ++i) plain[i] = static_cast<std::uint8_t>(i);
    const Bytes cipher = chacha20_xor(test_key(), test_nonce(), plain);
    EXPECT_EQ(chacha20_xor(test_key(), test_nonce(), cipher), plain) << len;
  }
}

TEST(ChaCha20, KeySensitivity) {
  const Bytes plain(100, 0);
  const Bytes c1 = chacha20_xor(test_key(1), test_nonce(), plain);
  const Bytes c2 = chacha20_xor(test_key(2), test_nonce(), plain);
  EXPECT_NE(c1, c2);
}

TEST(ChaCha20, NonceSensitivity) {
  const Bytes plain(100, 0);
  const Bytes c1 = chacha20_xor(test_key(), test_nonce(1), plain);
  const Bytes c2 = chacha20_xor(test_key(), test_nonce(2), plain);
  EXPECT_NE(c1, c2);
}

TEST(ChaCha20, CounterOffsetsKeystream) {
  // Encrypting with initial counter 1 must equal encrypting 64 zero bytes at
  // counter 0 and discarding the first block: keystream is block-sequential.
  const Bytes plain(64, 0);
  const Bytes at1 = chacha20_xor(test_key(), test_nonce(), plain, 1);
  const Bytes two_blocks = chacha20_xor(test_key(), test_nonce(), Bytes(128, 0), 0);
  const Bytes tail(two_blocks.begin() + 64, two_blocks.end());
  EXPECT_EQ(at1, tail);
}

TEST(ChaCha20, KeystreamLooksBalanced) {
  // Weak statistical sanity: about half the bits of a long keystream are set.
  const Bytes stream = chacha20_xor(test_key(), test_nonce(), Bytes(1 << 14, 0));
  std::size_t ones = 0;
  for (const std::uint8_t b : stream) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double fraction = static_cast<double>(ones) / (8.0 * static_cast<double>(stream.size()));
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(ChaChaKdf, DerivationIsDeterministicAndDomainSeparated) {
  const Bytes material = to_bytes("shared secret bytes");
  EXPECT_EQ(derive_chacha_key(material), derive_chacha_key(material));
  EXPECT_EQ(derive_chacha_nonce(material), derive_chacha_nonce(material));
  // Key and nonce derivations are domain-separated: different prefixes.
  const ChaChaKey key = derive_chacha_key(material);
  const ChaChaNonce nonce = derive_chacha_nonce(material);
  EXPECT_FALSE(std::equal(nonce.begin(), nonce.end(), key.begin()));
  EXPECT_NE(derive_chacha_key(to_bytes("a")), derive_chacha_key(to_bytes("b")));
}

}  // namespace
}  // namespace g2g::crypto
