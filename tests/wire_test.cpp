#include "g2g/proto/wire.hpp"

#include <gtest/gtest.h>

namespace g2g::proto {
namespace {

class WireTest : public ::testing::Test {
 protected:
  WireTest() : authority_(suite_, rng_) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      identities_.emplace_back(suite_, NodeId(i), authority_, rng_);
      roster_.add(identities_.back().certificate());
    }
  }

  [[nodiscard]] ProofOfRelay make_por(std::uint32_t giver, std::uint32_t taker,
                                      bool delegation = false, double fm = 0.0,
                                      double fq = 0.0, std::uint32_t dprime = 1) {
    ProofOfRelay por;
    por.h.fill(0x5a);
    por.giver = NodeId(giver);
    por.taker = NodeId(taker);
    por.at = TimePoint::from_seconds(100.0);
    por.delegation = delegation;
    por.declared_dst = NodeId(dprime);
    por.msg_quality = fm;
    por.taker_quality = fq;
    por.quality_frame = 3;
    por.taker_signature = identities_[taker].sign(por.signed_payload());
    return por;
  }

  [[nodiscard]] QualityDeclaration make_decl(std::uint32_t declarer, std::uint32_t dst,
                                             double value) {
    QualityDeclaration d;
    d.declarer = NodeId(declarer);
    d.dst = NodeId(dst);
    d.value = value;
    d.frame = 2;
    d.at = TimePoint::from_seconds(50.0);
    d.signature = identities_[declarer].sign(d.signed_payload());
    return d;
  }

  crypto::SuitePtr suite_ = crypto::make_fast_suite(0x3117e);
  Rng rng_{5};
  crypto::Authority authority_;
  std::vector<crypto::NodeIdentity> identities_;
  Roster roster_;
};

TEST_F(WireTest, PorEncodingRoundTrip) {
  const ProofOfRelay por = make_por(0, 1, true, 2.0, 5.0);
  const ProofOfRelay decoded = ProofOfRelay::decode(por.encode());
  EXPECT_EQ(decoded.h, por.h);
  EXPECT_EQ(decoded.giver, por.giver);
  EXPECT_EQ(decoded.taker, por.taker);
  EXPECT_EQ(decoded.at, por.at);
  EXPECT_EQ(decoded.delegation, por.delegation);
  EXPECT_EQ(decoded.declared_dst, por.declared_dst);
  EXPECT_DOUBLE_EQ(decoded.msg_quality, por.msg_quality);
  EXPECT_DOUBLE_EQ(decoded.taker_quality, por.taker_quality);
  EXPECT_EQ(decoded.quality_frame, por.quality_frame);
  EXPECT_EQ(decoded.taker_signature, por.taker_signature);
}

TEST_F(WireTest, DeclarationEncodingRoundTrip) {
  const QualityDeclaration d = make_decl(2, 3, 7.5);
  const QualityDeclaration decoded = QualityDeclaration::decode(d.encode());
  EXPECT_EQ(decoded.declarer, d.declarer);
  EXPECT_EQ(decoded.dst, d.dst);
  EXPECT_DOUBLE_EQ(decoded.value, d.value);
  EXPECT_EQ(decoded.frame, d.frame);
  EXPECT_EQ(decoded.at, d.at);
  EXPECT_EQ(decoded.signature, d.signature);
}

TEST_F(WireTest, SignedPayloadExcludesSignature) {
  ProofOfRelay por = make_por(0, 1);
  const Bytes payload = por.signed_payload();
  por.taker_signature[0] ^= 1;
  EXPECT_EQ(por.signed_payload(), payload);
}

TEST_F(WireTest, RelayFailurePomVerifies) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(0, 1);
  EXPECT_TRUE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, RelayFailurePomRejectsForgery) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);

  // No evidence at all.
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Evidence signed by someone else (culprit mismatch).
  pom.evidence_accepted = make_por(0, 2);
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Accuser was not the giver of the PoR.
  pom.evidence_accepted = make_por(3, 1);
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Tampered signature.
  auto por = make_por(0, 1);
  por.taker_signature[3] ^= 1;
  pom.evidence_accepted = por;
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Tampered signed content (the timestamp is covered by the signature).
  por = make_por(0, 1);
  por.at = por.at + Duration::seconds(1.0);
  pom.evidence_accepted = por;
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, QualityLiePomVerifies) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::QualityLie;
  pom.culprit = NodeId(2);
  pom.accuser = NodeId(3);
  pom.evidence_declaration = make_decl(2, 3, 0.0);
  EXPECT_TRUE(verify_pom(*suite_, roster_, pom));

  // Declarer mismatch.
  pom.evidence_declaration = make_decl(1, 3, 0.0);
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Tampered value.
  auto decl = make_decl(2, 3, 0.0);
  decl.value = 9.0;
  pom.evidence_declaration = decl;
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, ChainCheatPomVerifies) {
  // Node 1 accepted from node 0 at declared quality 5 (the incoming PoR,
  // signed by node 1), then forwarded claiming f_m = 0 (outgoing PoR signed
  // by node 2): the mismatch is the cheat.
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(0, 1, true, 2.0, 5.0);   // f_AD = 5
  pom.evidence_forwarded = make_por(1, 2, true, 0.0, 7.0);  // f1_m = 0 != 5
  EXPECT_TRUE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, ChainCheatPomRejectsConsistentChain) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(0, 1, true, 2.0, 5.0);
  pom.evidence_forwarded = make_por(1, 2, true, 5.0, 7.0);  // f1_m == f_AD: honest
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, ChainCheatPomRejectsUnrelatedEvidence) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);

  // Culprit not involved in the incoming PoR.
  pom.evidence_accepted = make_por(2, 3, true, 2.0, 5.0);
  pom.evidence_forwarded = make_por(1, 2, true, 0.0, 7.0);
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Different message hashes.
  auto in = make_por(0, 1, true, 2.0, 5.0);
  auto out = make_por(1, 2, true, 0.0, 7.0);
  out.h.fill(0x11);
  out.taker_signature = identities_[2].sign(out.signed_payload());
  pom.evidence_accepted = in;
  pom.evidence_forwarded = out;
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));

  // Epidemic (non-delegation) PoRs carry no chain.
  pom.evidence_accepted = make_por(0, 1, false);
  pom.evidence_forwarded = make_por(1, 2, false);
  EXPECT_FALSE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, ChainCheatAcceptsCulpritOutgoingEstablisher) {
  // Second-hop cheat: both PoRs are outgoing PoRs of the culprit.
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(1, 2, true, 5.0, 8.0);   // established f_m = 8
  pom.evidence_forwarded = make_por(1, 3, true, 2.0, 9.0);  // attached 2 != 8
  EXPECT_TRUE(verify_pom(*suite_, roster_, pom));
}

TEST_F(WireTest, PomEncodingProducesReasonableSizes) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(0, 1, true);
  pom.evidence_forwarded = make_por(1, 2, true);
  EXPECT_EQ(pom.wire_size(), pom.encode().size());
  EXPECT_GT(pom.wire_size(), 2 * 64u);
  EXPECT_LT(pom.wire_size(), 1024u);
}

TEST_F(WireTest, WireSizeMatchesEncodedSizeForAllArtefacts) {
  // wire_size() is computed arithmetically (no throwaway encode); it must
  // agree with the actual encoding for every artefact shape.
  const QualityDeclaration decl = make_decl(2, 3, 7.5);
  EXPECT_EQ(decl.wire_size(), decl.encode().size());

  for (const bool delegation : {false, true}) {
    const ProofOfRelay por = make_por(0, 1, delegation, 2.0, 5.0);
    EXPECT_EQ(por.wire_size(), por.encode().size()) << "delegation=" << delegation;
  }

  ProofOfMisbehavior relay_failure;
  relay_failure.kind = ProofOfMisbehavior::Kind::RelayFailure;
  relay_failure.culprit = NodeId(1);
  relay_failure.accuser = NodeId(0);
  relay_failure.evidence_accepted = make_por(0, 1);
  EXPECT_EQ(relay_failure.wire_size(), relay_failure.encode().size());

  ProofOfMisbehavior quality_lie;
  quality_lie.kind = ProofOfMisbehavior::Kind::QualityLie;
  quality_lie.culprit = NodeId(2);
  quality_lie.accuser = NodeId(3);
  quality_lie.evidence_declaration = make_decl(2, 3, 0.0);
  EXPECT_EQ(quality_lie.wire_size(), quality_lie.encode().size());

  ProofOfMisbehavior chain_cheat;
  chain_cheat.kind = ProofOfMisbehavior::Kind::ChainCheat;
  chain_cheat.culprit = NodeId(1);
  chain_cheat.accuser = NodeId(0);
  chain_cheat.evidence_accepted = make_por(0, 1, true, 2.0, 5.0);
  chain_cheat.evidence_forwarded = make_por(1, 2, true, 0.0, 7.0);
  EXPECT_EQ(chain_cheat.wire_size(), chain_cheat.encode().size());
}

TEST_F(WireTest, PorWireSizeConditionalOnDelegation) {
  // Regression: epidemic PoRs must not pay for the delegation-only fields
  // (declared_dst, msg_quality, taker_quality, quality_frame). With the
  // 32-byte fast-suite signature the two shapes pin to exact sizes.
  const ProofOfRelay epidemic = make_por(0, 1, false);
  const ProofOfRelay delegation = make_por(0, 1, true, 2.0, 5.0);
  ASSERT_EQ(epidemic.taker_signature.size(), 32u);
  EXPECT_EQ(epidemic.encode().size(), 85u);
  EXPECT_EQ(delegation.encode().size(), 113u);
  EXPECT_EQ(delegation.encode().size() - epidemic.encode().size(), 4u + 8u + 8u + 8u);
}

TEST_F(WireTest, EpidemicPorRoundTripDropsNoFields) {
  const ProofOfRelay por = make_por(2, 3, false);
  const ProofOfRelay decoded = ProofOfRelay::decode(por.encode());
  EXPECT_EQ(decoded.h, por.h);
  EXPECT_EQ(decoded.giver, por.giver);
  EXPECT_EQ(decoded.taker, por.taker);
  EXPECT_EQ(decoded.at, por.at);
  EXPECT_FALSE(decoded.delegation);
  EXPECT_EQ(decoded.taker_signature, por.taker_signature);
  // Delegation-only fields come back as their defaults.
  EXPECT_EQ(decoded.declared_dst, NodeId());
  EXPECT_DOUBLE_EQ(decoded.msg_quality, 0.0);
  EXPECT_DOUBLE_EQ(decoded.taker_quality, 0.0);
  EXPECT_EQ(decoded.quality_frame, -1);
  // The signature still verifies after the round trip.
  EXPECT_TRUE(suite_->verify(identities_[3].certificate().public_key,
                             decoded.signed_payload(), decoded.taker_signature));
}

TEST_F(WireTest, PomDecodeRoundTripsAllKinds) {
  ProofOfMisbehavior relay_failure;
  relay_failure.kind = ProofOfMisbehavior::Kind::RelayFailure;
  relay_failure.culprit = NodeId(1);
  relay_failure.accuser = NodeId(0);
  relay_failure.at = TimePoint::from_seconds(123.0);
  relay_failure.evidence_accepted = make_por(0, 1);

  ProofOfMisbehavior quality_lie;
  quality_lie.kind = ProofOfMisbehavior::Kind::QualityLie;
  quality_lie.culprit = NodeId(2);
  quality_lie.accuser = NodeId(3);
  quality_lie.evidence_declaration = make_decl(2, 3, 0.0);

  ProofOfMisbehavior chain_cheat;
  chain_cheat.kind = ProofOfMisbehavior::Kind::ChainCheat;
  chain_cheat.culprit = NodeId(1);
  chain_cheat.accuser = NodeId(0);
  chain_cheat.evidence_accepted = make_por(0, 1, true, 2.0, 5.0);
  chain_cheat.evidence_forwarded = make_por(1, 2, true, 0.0, 7.0);

  for (const auto* pom : {&relay_failure, &quality_lie, &chain_cheat}) {
    const ProofOfMisbehavior decoded = ProofOfMisbehavior::decode(pom->encode());
    EXPECT_EQ(decoded.kind, pom->kind);
    EXPECT_EQ(decoded.culprit, pom->culprit);
    EXPECT_EQ(decoded.accuser, pom->accuser);
    EXPECT_EQ(decoded.at, pom->at);
    EXPECT_EQ(decoded.encode(), pom->encode());
    // Decoded accusations still verify: decode loses no signed material.
    EXPECT_EQ(verify_pom(*suite_, roster_, decoded), verify_pom(*suite_, roster_, *pom));
  }
}

TEST_F(WireTest, PomDecodeRejectsMalformedAccusations) {
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  pom.evidence_accepted = make_por(0, 1);
  const Bytes good = pom.encode();
  ASSERT_NO_THROW((void)ProofOfMisbehavior::decode(good));

  // Unknown kind byte.
  Bytes bad = good;
  bad[0] = 3;
  EXPECT_THROW((void)ProofOfMisbehavior::decode(bad), DecodeError);

  // Evidence presence flag that is neither 0 nor 1 (offset 17: after
  // kind + culprit + accuser + at).
  bad = good;
  bad[17] = 2;
  EXPECT_THROW((void)ProofOfMisbehavior::decode(bad), DecodeError);

  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  EXPECT_THROW((void)ProofOfMisbehavior::decode(bad), DecodeError);

  // Evidence shape not matching the kind: a RelayFailure accusation must
  // carry exactly the accepted PoR.
  ProofOfMisbehavior wrong_shape = pom;
  wrong_shape.evidence_declaration = make_decl(2, 3, 0.0);
  EXPECT_THROW((void)ProofOfMisbehavior::decode(wrong_shape.encode()), DecodeError);

  ProofOfMisbehavior missing_evidence;
  missing_evidence.kind = ProofOfMisbehavior::Kind::ChainCheat;
  missing_evidence.culprit = NodeId(1);
  missing_evidence.accuser = NodeId(0);
  missing_evidence.evidence_accepted = make_por(0, 1, true);
  // ChainCheat without the forwarded PoR.
  EXPECT_THROW((void)ProofOfMisbehavior::decode(missing_evidence.encode()), DecodeError);
}

TEST_F(WireTest, MinQualityOrdering) {
  EXPECT_EQ(min_quality(QualityKind::DestinationFrequency), 0.0);
  EXPECT_EQ(min_quality(QualityKind::DestinationLastContact), kNeverMet);
  EXPECT_LT(min_quality(QualityKind::DestinationLastContact), -1e17);
}

}  // namespace
}  // namespace g2g::proto
