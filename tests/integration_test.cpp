// Cross-module integration: paper-scale scenarios exercising the full
// pipeline (synthetic trace -> k-clique communities -> network -> metrics)
// and asserting the qualitative shapes the paper reports.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"

namespace g2g::core {
namespace {

ExperimentConfig paper_config(Protocol p, const Scenario& s) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = s;
  cfg.seed = 4;
  // Paper workload, thinned 4x to keep the suite quick but statistically
  // meaningful (~450 messages).
  cfg.mean_interarrival = Duration::seconds(16.0);
  return cfg;
}

TEST(Integration, EpidemicDeliversMostMessagesOnBothTraces) {
  for (const auto& scen : {infocom05_scenario(), cambridge06_scenario()}) {
    const ExperimentResult r = run_experiment(paper_config(Protocol::Epidemic, scen));
    EXPECT_GT(r.success_rate, 0.55) << scen.name;
    EXPECT_GT(r.generated, 300u);
  }
}

TEST(Integration, DroppersCollapseEpidemicDelivery) {
  const Scenario scen = infocom05_scenario();
  auto cfg = paper_config(Protocol::Epidemic, scen);
  const double baseline = run_experiment(cfg).success_rate;

  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = scen.trace_config.nodes;  // everyone drops
  const double floor = run_experiment(cfg).success_rate;
  EXPECT_LT(floor, baseline * 0.6);  // "drops to unacceptably low" (Fig. 3)
  EXPECT_GT(floor, 0.0);             // direct src->dst meetings still deliver
}

TEST(Integration, OutsiderDroppersHurtLess) {
  const Scenario scen = cambridge06_scenario();
  auto cfg = paper_config(Protocol::Epidemic, scen);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = scen.trace_config.nodes;
  const double plain = run_experiment(cfg).success_rate;
  cfg.with_outsiders = true;
  const double outsiders = run_experiment(cfg).success_rate;
  EXPECT_GT(outsiders, plain);  // intra-community forwarding survives
}

TEST(Integration, G2GEpidemicCostsLessThanEpidemic) {
  const Scenario scen = infocom05_scenario();
  const ExperimentResult epi = run_experiment(paper_config(Protocol::Epidemic, scen));
  const ExperimentResult g2g = run_experiment(paper_config(Protocol::G2GEpidemic, scen));
  // The two-relay cap cuts replicas (paper: ~20%); delivery stays comparable.
  EXPECT_LT(g2g.avg_replicas, epi.avg_replicas);
  EXPECT_GT(g2g.success_rate, epi.success_rate * 0.6);
}

TEST(Integration, G2GDelegationCostsLessThanDelegation) {
  const Scenario scen = cambridge06_scenario();
  const ExperimentResult vanilla =
      run_experiment(paper_config(Protocol::DelegationLastContact, scen));
  const ExperimentResult g2g =
      run_experiment(paper_config(Protocol::G2GDelegationLastContact, scen));
  EXPECT_LT(g2g.avg_replicas, vanilla.avg_replicas);
  EXPECT_GT(g2g.success_rate, vanilla.success_rate * 0.75);
}

TEST(Integration, DelegationCheaperThanEpidemic) {
  const Scenario scen = infocom05_scenario();
  const ExperimentResult epi = run_experiment(paper_config(Protocol::Epidemic, scen));
  const ExperimentResult del =
      run_experiment(paper_config(Protocol::DelegationFrequency, scen));
  EXPECT_LT(del.avg_replicas, epi.avg_replicas * 0.5);
}

TEST(Integration, DropperDetectionFastAndReliable) {
  const Scenario scen = infocom05_scenario();
  auto cfg = paper_config(Protocol::G2GEpidemic, scen);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 10;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GE(r.detection_rate, 0.8);  // paper: 94.7%
  EXPECT_EQ(r.false_positives, 0u);
  // "deviations are detected very quickly (on the order of minutes)"
  EXPECT_LT(r.detection_minutes_after_delta1.mean(), 45.0);
}

TEST(Integration, DelegationDetectionCoversAllDeviations) {
  const Scenario scen = infocom05_scenario();
  for (const proto::Behavior b :
       {proto::Behavior::Dropper, proto::Behavior::Liar, proto::Behavior::Cheater}) {
    auto cfg = paper_config(Protocol::G2GDelegationLastContact, scen);
    cfg.deviation = b;
    cfg.deviant_count = 10;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_GE(r.detection_rate, 0.5) << proto::to_string(b);
    EXPECT_EQ(r.false_positives, 0u) << proto::to_string(b);
  }
}

TEST(Integration, DetectionTimeIndependentOfDeviantCount) {
  // Fig. 4 / Fig. 7: detection time does not grow with the number of
  // deviants. Compare few vs many droppers.
  const Scenario scen = infocom05_scenario();
  auto cfg = paper_config(Protocol::G2GEpidemic, scen);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 5;
  const double few = run_experiment(cfg).detection_minutes_after_delta1.mean();
  cfg.deviant_count = 25;
  cfg.seed = 5;
  const double many = run_experiment(cfg).detection_minutes_after_delta1.mean();
  EXPECT_GT(few, 0.0);
  EXPECT_GT(many, 0.0);
  EXPECT_LT(many, few * 4.0);
  EXPECT_LT(few, many * 4.0);
}

TEST(Integration, CommunityDetectionFindsMultipleGroups) {
  const ExperimentResult inf =
      run_experiment(paper_config(Protocol::Epidemic, infocom05_scenario()));
  EXPECT_GE(inf.community_count, 2u);
  const ExperimentResult cam =
      run_experiment(paper_config(Protocol::Epidemic, cambridge06_scenario()));
  EXPECT_GE(cam.community_count, 2u);
}

TEST(Integration, MemoryAccountingWithinConstantFactor) {
  // Section VIII: "the memory used by the G2G version ... is within a
  // constant factor from their original counterpart."
  const Scenario scen = infocom05_scenario();
  const ExperimentResult epi = run_experiment(paper_config(Protocol::Epidemic, scen));
  const ExperimentResult g2g = run_experiment(paper_config(Protocol::G2GEpidemic, scen));
  double epi_mem = 0.0;
  double g2g_mem = 0.0;
  for (std::uint32_t i = 0; i < scen.trace_config.nodes; ++i) {
    epi_mem += epi.collector.costs(NodeId(i)).memory_byte_seconds;
    g2g_mem += g2g.collector.costs(NodeId(i)).memory_byte_seconds;
  }
  ASSERT_GT(epi_mem, 0.0);
  EXPECT_LT(g2g_mem / epi_mem, 4.0);
  EXPECT_GT(g2g_mem / epi_mem, 0.05);
}

}  // namespace
}  // namespace g2g::core
