#include "g2g/crypto/schnorr.hpp"

#include <gtest/gtest.h>

namespace g2g::crypto {
namespace {

// Tests run on the small group (128-bit p) to stay fast; a few also exercise
// the default 256-bit group.

TEST(SchnorrGroup, SmallGroupIsValid) {
  Rng rng(1);
  EXPECT_TRUE(SchnorrGroup::small_group().valid(rng));
}

TEST(SchnorrGroup, DefaultGroupIsValid) {
  Rng rng(2);
  const SchnorrGroup& g = SchnorrGroup::default_group();
  EXPECT_TRUE(g.valid(rng));
  EXPECT_EQ(g.p.bit_length(), 256u);
  EXPECT_EQ(g.q.bit_length(), 160u);
}

TEST(SchnorrGroup, GenerationIsDeterministic) {
  const SchnorrGroup a = SchnorrGroup::generate(128, 96, 555);
  const SchnorrGroup b = SchnorrGroup::generate(128, 96, 555);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.g, b.g);
}

TEST(SchnorrGroup, DifferentSeedsGiveDifferentGroups) {
  const SchnorrGroup a = SchnorrGroup::generate(128, 96, 1);
  const SchnorrGroup b = SchnorrGroup::generate(128, 96, 2);
  EXPECT_NE(a.p, b.p);
}

TEST(SchnorrGroup, RejectsBadSizes) {
  EXPECT_THROW((void)SchnorrGroup::generate(300, 96, 1), std::invalid_argument);
  EXPECT_THROW((void)SchnorrGroup::generate(128, 127, 1), std::invalid_argument);
}

class SchnorrSmall : public ::testing::Test {
 protected:
  const SchnorrGroup& group_ = SchnorrGroup::small_group();
  Rng rng_{42};
};

TEST_F(SchnorrSmall, SignVerifyRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("proof of relay for H(m)");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  EXPECT_TRUE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, TamperedMessageRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  Bytes msg = to_bytes("original");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  msg[0] ^= 1;
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, WrongKeyRejected) {
  const SchnorrKeyPair kp1 = schnorr_keygen(group_, rng_);
  const SchnorrKeyPair kp2 = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  const SchnorrSignature sig = schnorr_sign(group_, kp1.secret, msg, rng_);
  EXPECT_FALSE(schnorr_verify(group_, kp2.public_key, msg, sig));
}

TEST_F(SchnorrSmall, TamperedSignatureComponentsRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  SchnorrSignature bad_e = sig;
  bad_e.e = add_mod(bad_e.e, U256(1), group_.q);
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, bad_e));
  SchnorrSignature bad_s = sig;
  bad_s.s = add_mod(bad_s.s, U256(1), group_.q);
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, bad_s));
}

TEST_F(SchnorrSmall, OutOfRangeSignatureRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  sig.s = group_.q;  // == q is out of range
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, SignatureEncodingRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  const SchnorrSignature decoded = SchnorrSignature::decode(sig.encode());
  EXPECT_EQ(decoded.e, sig.e);
  EXPECT_EQ(decoded.s, sig.s);
  EXPECT_THROW((void)SchnorrSignature::decode(Bytes(63, 0)), DecodeError);
}

TEST_F(SchnorrSmall, KeysLieInTheSubgroup) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  EXPECT_FALSE(kp.secret.is_zero());
  EXPECT_LT(kp.secret, group_.q);
  // Public key has order dividing q: y^q == 1.
  EXPECT_EQ(pow_mod(kp.public_key, group_.q, group_.p), U256(1));
}

TEST_F(SchnorrSmall, ManyKeysManyMessages) {
  for (int i = 0; i < 10; ++i) {
    const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const SchnorrSignature sig = schnorr_sign(group_, kp.secret, w.bytes(), rng_);
    EXPECT_TRUE(schnorr_verify(group_, kp.public_key, w.bytes(), sig));
  }
}

TEST(SchnorrDh, SharedSecretIsSymmetric) {
  const SchnorrGroup& g = SchnorrGroup::small_group();
  Rng rng(9);
  const SchnorrKeyPair a = schnorr_keygen(g, rng);
  const SchnorrKeyPair b = schnorr_keygen(g, rng);
  EXPECT_EQ(dh_shared_secret(g, a.secret, b.public_key),
            dh_shared_secret(g, b.secret, a.public_key));
}

TEST(SchnorrDh, DistinctPairsDistinctSecrets) {
  const SchnorrGroup& g = SchnorrGroup::small_group();
  Rng rng(10);
  const SchnorrKeyPair a = schnorr_keygen(g, rng);
  const SchnorrKeyPair b = schnorr_keygen(g, rng);
  const SchnorrKeyPair c = schnorr_keygen(g, rng);
  EXPECT_NE(dh_shared_secret(g, a.secret, b.public_key),
            dh_shared_secret(g, a.secret, c.public_key));
}

TEST_F(SchnorrSmall, RsSignVerifyRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("(R,s)-form proof of relay");
  const SchnorrSignatureRS sig = schnorr_rs_sign(group_, kp.secret, msg, rng_);
  EXPECT_TRUE(schnorr_rs_verify(group_, kp.public_key, msg, sig));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, tampered, sig));
}

TEST_F(SchnorrSmall, RsAndClassicFormsShareTheTriple) {
  // Same secret and same nonce draws: the (R,s) signature is the same
  // (k, e, s) triple as the (e,s) one — R reconstructed from (e,s) must match
  // the transmitted R, and the hashes of R must match the transmitted e.
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("one triple, two encodings");
  Rng nonce_a(77);
  Rng nonce_b(77);
  const SchnorrSignature es = schnorr_sign(group_, kp.secret, msg, nonce_a);
  const SchnorrSignatureRS rs = schnorr_rs_sign(group_, kp.secret, msg, nonce_b);
  EXPECT_EQ(es.s, rs.s);
  const U256 r_from_es = mul_mod(pow_mod(group_.g, es.s, group_.p),
                                 pow_mod(kp.public_key, es.e, group_.p), group_.p);
  EXPECT_EQ(r_from_es, rs.r);
}

TEST_F(SchnorrSmall, RsTamperedAndOutOfRangeRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  const SchnorrSignatureRS sig = schnorr_rs_sign(group_, kp.secret, msg, rng_);
  SchnorrSignatureRS bad_r = sig;
  bad_r.r = mul_mod(bad_r.r, group_.g, group_.p);
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, msg, bad_r));
  SchnorrSignatureRS bad_s = sig;
  bad_s.s = add_mod(bad_s.s, U256(1), group_.q);
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, msg, bad_s));
  SchnorrSignatureRS oor = sig;
  oor.s = group_.q;
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, msg, oor));
  oor = sig;
  oor.r = group_.p;
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, msg, oor));
  oor = sig;
  oor.r = U256(0);
  EXPECT_FALSE(schnorr_rs_verify(group_, kp.public_key, msg, oor));
}

TEST_F(SchnorrSmall, RsEncodingRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const SchnorrSignatureRS sig = schnorr_rs_sign(group_, kp.secret, to_bytes("x"), rng_);
  const Bytes enc = sig.encode();
  EXPECT_EQ(enc.size(), 64u);
  const SchnorrSignatureRS dec = SchnorrSignatureRS::decode(enc);
  EXPECT_EQ(dec.r, sig.r);
  EXPECT_EQ(dec.s, sig.s);
  EXPECT_THROW((void)SchnorrSignatureRS::decode(Bytes(65, 0)), DecodeError);
}

TEST_F(SchnorrSmall, MultiExpMatchesPowModProducts) {
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<MultiExpTerm> terms;
    U256 expect(1);
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 5);
    for (std::size_t i = 0; i < n; ++i) {
      const U256 base = add_mod(random_below(rng_, sub_mod(group_.p, U256(2), group_.p)),
                                U256(2), group_.p);
      const U256 exp = random_below(rng_, group_.q);
      terms.push_back(MultiExpTerm{base, exp});
      expect = mul_mod(expect, pow_mod(base, exp, group_.p), group_.p);
    }
    EXPECT_EQ(multi_exp(terms, group_.p), expect);
  }
}

TEST_F(SchnorrSmall, MultiExpEdgeCases) {
  EXPECT_EQ(multi_exp({}, group_.p), U256(1));
  const std::vector<MultiExpTerm> zero_exp = {{group_.g, U256(0)}};
  EXPECT_EQ(multi_exp(zero_exp, group_.p), U256(1));
  const std::vector<MultiExpTerm> one = {{group_.g, U256(1)}};
  EXPECT_EQ(multi_exp(one, group_.p), group_.g);
}

TEST_F(SchnorrSmall, EngineRsMatchesFreeFunctions) {
  const SchnorrEngine engine(group_);
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("engine vs free fn");
  Rng nonce_a(5);
  Rng nonce_b(5);
  const SchnorrSignatureRS a = schnorr_rs_sign(group_, kp.secret, msg, nonce_a);
  const SchnorrSignatureRS b = engine.sign_rs(kp.secret, msg, nonce_b);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.s, b.s);
  EXPECT_TRUE(engine.verify_rs(kp.public_key, msg, a));
}

class SchnorrRsBatch : public ::testing::Test {
 protected:
  struct Signed {
    SchnorrKeyPair kp;
    Bytes msg;
    SchnorrSignatureRS sig;
  };

  std::vector<Signed> make_corpus(std::size_t n) {
    std::vector<Signed> out;
    for (std::size_t i = 0; i < n; ++i) {
      Signed item;
      item.kp = schnorr_keygen(group_, rng_);
      Writer w;
      w.str("batch-msg");
      w.u32(static_cast<std::uint32_t>(i));
      item.msg = std::move(w).take();
      item.sig = schnorr_rs_sign(group_, item.kp.secret, item.msg, rng_);
      out.push_back(std::move(item));
    }
    return out;
  }

  static std::vector<SchnorrRSVerifyItem> views(const std::vector<Signed>& corpus) {
    std::vector<SchnorrRSVerifyItem> items;
    for (const auto& c : corpus) {
      items.push_back(SchnorrRSVerifyItem{c.kp.public_key, BytesView(c.msg), c.sig});
    }
    return items;
  }

  const SchnorrGroup& group_ = SchnorrGroup::small_group();
  SchnorrEngine engine_{group_};
  Rng rng_{0xba7c4};
};

TEST_F(SchnorrRsBatch, AllValidBatchesVerify) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{16}}) {
    const auto corpus = make_corpus(n);
    EXPECT_TRUE(engine_.verify_batch_rs(views(corpus))) << "n=" << n;
  }
}

TEST_F(SchnorrRsBatch, AnySingleForgeryRejectsTheBatch) {
  const auto corpus = make_corpus(6);
  for (std::size_t bad = 0; bad < corpus.size(); ++bad) {
    auto items = views(corpus);
    SchnorrSignatureRS forged = items[bad].sig;
    forged.s = add_mod(forged.s, U256(1), group_.q);
    items[bad].sig = forged;
    EXPECT_FALSE(engine_.verify_batch_rs(items)) << "forged index " << bad;
  }
}

TEST_F(SchnorrRsBatch, SwappedMessagesRejectTheBatch) {
  auto corpus = make_corpus(4);
  auto items = views(corpus);
  std::swap(items[1].message, items[2].message);
  EXPECT_FALSE(engine_.verify_batch_rs(items));
}

TEST_F(SchnorrRsBatch, StructurallyInvalidItemsRejectTheBatch) {
  auto corpus = make_corpus(3);
  {
    auto items = views(corpus);
    items[1].sig.s = group_.q;
    EXPECT_FALSE(engine_.verify_batch_rs(items));
  }
  {
    auto items = views(corpus);
    items[2].sig.r = U256(0);
    EXPECT_FALSE(engine_.verify_batch_rs(items));
  }
  {
    auto items = views(corpus);
    items[0].public_key = U256(0);
    EXPECT_FALSE(engine_.verify_batch_rs(items));
  }
}

TEST_F(SchnorrRsBatch, BatchVerdictMatchesPerSignatureOnRandomCorpora) {
  // Randomly corrupt some items; the batch must accept iff every item
  // verifies individually.
  for (int trial = 0; trial < 10; ++trial) {
    auto corpus = make_corpus(5);
    bool all_valid = true;
    for (auto& c : corpus) {
      if (rng_.next() % 3 == 0) {
        c.sig.s = add_mod(c.sig.s, U256(1 + rng_.next() % 5), group_.q);
        all_valid = false;
      }
    }
    bool per_sig = true;
    for (const auto& c : corpus) {
      per_sig = per_sig && schnorr_rs_verify(group_, c.kp.public_key, c.msg, c.sig);
    }
    EXPECT_EQ(per_sig, all_valid);
    EXPECT_EQ(engine_.verify_batch_rs(views(corpus)), all_valid) << "trial " << trial;
  }
}

TEST(SchnorrDefaultGroup, SignVerifyOnDefaultGroup) {
  const SchnorrGroup& g = SchnorrGroup::default_group();
  Rng rng(11);
  const SchnorrKeyPair kp = schnorr_keygen(g, rng);
  const Bytes msg = to_bytes("full-size group check");
  const SchnorrSignature sig = schnorr_sign(g, kp.secret, msg, rng);
  EXPECT_TRUE(schnorr_verify(g, kp.public_key, msg, sig));
  Bytes tampered = msg;
  tampered.back() ^= 0x80;
  EXPECT_FALSE(schnorr_verify(g, kp.public_key, tampered, sig));
}

}  // namespace
}  // namespace g2g::crypto
