#include "g2g/crypto/schnorr.hpp"

#include <gtest/gtest.h>

namespace g2g::crypto {
namespace {

// Tests run on the small group (128-bit p) to stay fast; a few also exercise
// the default 256-bit group.

TEST(SchnorrGroup, SmallGroupIsValid) {
  Rng rng(1);
  EXPECT_TRUE(SchnorrGroup::small_group().valid(rng));
}

TEST(SchnorrGroup, DefaultGroupIsValid) {
  Rng rng(2);
  const SchnorrGroup& g = SchnorrGroup::default_group();
  EXPECT_TRUE(g.valid(rng));
  EXPECT_EQ(g.p.bit_length(), 256u);
  EXPECT_EQ(g.q.bit_length(), 160u);
}

TEST(SchnorrGroup, GenerationIsDeterministic) {
  const SchnorrGroup a = SchnorrGroup::generate(128, 96, 555);
  const SchnorrGroup b = SchnorrGroup::generate(128, 96, 555);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.g, b.g);
}

TEST(SchnorrGroup, DifferentSeedsGiveDifferentGroups) {
  const SchnorrGroup a = SchnorrGroup::generate(128, 96, 1);
  const SchnorrGroup b = SchnorrGroup::generate(128, 96, 2);
  EXPECT_NE(a.p, b.p);
}

TEST(SchnorrGroup, RejectsBadSizes) {
  EXPECT_THROW((void)SchnorrGroup::generate(300, 96, 1), std::invalid_argument);
  EXPECT_THROW((void)SchnorrGroup::generate(128, 127, 1), std::invalid_argument);
}

class SchnorrSmall : public ::testing::Test {
 protected:
  const SchnorrGroup& group_ = SchnorrGroup::small_group();
  Rng rng_{42};
};

TEST_F(SchnorrSmall, SignVerifyRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("proof of relay for H(m)");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  EXPECT_TRUE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, TamperedMessageRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  Bytes msg = to_bytes("original");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  msg[0] ^= 1;
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, WrongKeyRejected) {
  const SchnorrKeyPair kp1 = schnorr_keygen(group_, rng_);
  const SchnorrKeyPair kp2 = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  const SchnorrSignature sig = schnorr_sign(group_, kp1.secret, msg, rng_);
  EXPECT_FALSE(schnorr_verify(group_, kp2.public_key, msg, sig));
}

TEST_F(SchnorrSmall, TamperedSignatureComponentsRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  SchnorrSignature bad_e = sig;
  bad_e.e = add_mod(bad_e.e, U256(1), group_.q);
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, bad_e));
  SchnorrSignature bad_s = sig;
  bad_s.s = add_mod(bad_s.s, U256(1), group_.q);
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, bad_s));
}

TEST_F(SchnorrSmall, OutOfRangeSignatureRejected) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  sig.s = group_.q;  // == q is out of range
  EXPECT_FALSE(schnorr_verify(group_, kp.public_key, msg, sig));
}

TEST_F(SchnorrSmall, SignatureEncodingRoundTrip) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  const Bytes msg = to_bytes("msg");
  const SchnorrSignature sig = schnorr_sign(group_, kp.secret, msg, rng_);
  const SchnorrSignature decoded = SchnorrSignature::decode(sig.encode());
  EXPECT_EQ(decoded.e, sig.e);
  EXPECT_EQ(decoded.s, sig.s);
  EXPECT_THROW((void)SchnorrSignature::decode(Bytes(63, 0)), DecodeError);
}

TEST_F(SchnorrSmall, KeysLieInTheSubgroup) {
  const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
  EXPECT_FALSE(kp.secret.is_zero());
  EXPECT_LT(kp.secret, group_.q);
  // Public key has order dividing q: y^q == 1.
  EXPECT_EQ(pow_mod(kp.public_key, group_.q, group_.p), U256(1));
}

TEST_F(SchnorrSmall, ManyKeysManyMessages) {
  for (int i = 0; i < 10; ++i) {
    const SchnorrKeyPair kp = schnorr_keygen(group_, rng_);
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const SchnorrSignature sig = schnorr_sign(group_, kp.secret, w.bytes(), rng_);
    EXPECT_TRUE(schnorr_verify(group_, kp.public_key, w.bytes(), sig));
  }
}

TEST(SchnorrDh, SharedSecretIsSymmetric) {
  const SchnorrGroup& g = SchnorrGroup::small_group();
  Rng rng(9);
  const SchnorrKeyPair a = schnorr_keygen(g, rng);
  const SchnorrKeyPair b = schnorr_keygen(g, rng);
  EXPECT_EQ(dh_shared_secret(g, a.secret, b.public_key),
            dh_shared_secret(g, b.secret, a.public_key));
}

TEST(SchnorrDh, DistinctPairsDistinctSecrets) {
  const SchnorrGroup& g = SchnorrGroup::small_group();
  Rng rng(10);
  const SchnorrKeyPair a = schnorr_keygen(g, rng);
  const SchnorrKeyPair b = schnorr_keygen(g, rng);
  const SchnorrKeyPair c = schnorr_keygen(g, rng);
  EXPECT_NE(dh_shared_secret(g, a.secret, b.public_key),
            dh_shared_secret(g, a.secret, c.public_key));
}

TEST(SchnorrDefaultGroup, SignVerifyOnDefaultGroup) {
  const SchnorrGroup& g = SchnorrGroup::default_group();
  Rng rng(11);
  const SchnorrKeyPair kp = schnorr_keygen(g, rng);
  const Bytes msg = to_bytes("full-size group check");
  const SchnorrSignature sig = schnorr_sign(g, kp.secret, msg, rng);
  EXPECT_TRUE(schnorr_verify(g, kp.public_key, msg, sig));
  Bytes tampered = msg;
  tampered.back() ^= 0x80;
  EXPECT_FALSE(schnorr_verify(g, kp.public_key, tampered, sig));
}

}  // namespace
}  // namespace g2g::crypto
