#include "g2g/trace/contact.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "g2g/trace/parser.hpp"
#include "g2g/trace/stats.hpp"

namespace g2g::trace {
namespace {

TimePoint at(double s) { return TimePoint::from_seconds(s); }

TEST(ContactTrace, AddNormalizesOrder) {
  ContactTrace t;
  t.add(NodeId(5), NodeId(2), at(0), at(10));
  t.finalize();
  EXPECT_EQ(t.events()[0].a, NodeId(2));
  EXPECT_EQ(t.events()[0].b, NodeId(5));
  EXPECT_EQ(t.node_count(), 6u);
}

TEST(ContactTrace, RejectsDegenerateContacts) {
  ContactTrace t;
  EXPECT_THROW(t.add(NodeId(1), NodeId(1), at(0), at(1)), std::invalid_argument);
  EXPECT_THROW(t.add(NodeId(1), NodeId(2), at(5), at(5)), std::invalid_argument);
  EXPECT_THROW(t.add(NodeId(1), NodeId(2), at(5), at(4)), std::invalid_argument);
  EXPECT_THROW(t.add(NodeId::invalid(), NodeId(2), at(0), at(1)), std::invalid_argument);
}

TEST(ContactTrace, FinalizeSortsByStart) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(100), at(110));
  t.add(NodeId(2), NodeId(3), at(50), at(60));
  t.add(NodeId(0), NodeId(2), at(75), at(80));
  t.finalize();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].start, at(50));
  EXPECT_EQ(t.events()[1].start, at(75));
  EXPECT_EQ(t.events()[2].start, at(100));
}

TEST(ContactTrace, FinalizeCoalescesOverlaps) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(0), at(10));
  t.add(NodeId(0), NodeId(1), at(5), at(20));   // overlaps
  t.add(NodeId(0), NodeId(1), at(20), at(30));  // touches
  t.add(NodeId(0), NodeId(1), at(40), at(50));  // separate
  t.add(NodeId(0), NodeId(2), at(5), at(15));   // other pair untouched
  t.finalize();
  ASSERT_EQ(t.size(), 3u);
  const auto& merged = t.events()[0];
  EXPECT_EQ(merged.start, at(0));
  EXPECT_EQ(merged.end, at(30));
}

TEST(ContactTrace, StartEndTimes) {
  ContactTrace t;
  EXPECT_EQ(t.end_time(), TimePoint::zero());
  t.add(NodeId(0), NodeId(1), at(10), at(20));
  t.add(NodeId(0), NodeId(1), at(50), at(60));
  t.finalize();
  EXPECT_EQ(t.start_time(), at(10));
  EXPECT_EQ(t.end_time(), at(60));
}

TEST(ContactTrace, SliceClipsAndRebases) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(0), at(100));    // spans the window start
  t.add(NodeId(0), NodeId(2), at(150), at(160));  // inside
  t.add(NodeId(1), NodeId(2), at(300), at(400));  // after
  t.finalize();

  const ContactTrace w = t.slice(at(50), at(200));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.events()[0].start, at(0));   // clipped + rebased
  EXPECT_EQ(w.events()[0].end, at(50));
  EXPECT_EQ(w.events()[1].start, at(100));
  EXPECT_EQ(w.events()[1].end, at(110));
  EXPECT_EQ(w.node_count(), t.node_count());  // node universe preserved
  EXPECT_THROW((void)t.slice(at(10), at(10)), std::invalid_argument);
}

TEST(ContactEvent, Helpers) {
  const ContactEvent e{NodeId(1), NodeId(2), at(0), at(5)};
  EXPECT_EQ(e.duration(), Duration::seconds(5.0));
  EXPECT_TRUE(e.involves(NodeId(1)));
  EXPECT_FALSE(e.involves(NodeId(3)));
  EXPECT_EQ(e.peer_of(NodeId(1)), NodeId(2));
  EXPECT_EQ(e.peer_of(NodeId(2)), NodeId(1));
}

TEST(Parser, RoundTrip) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(1.5), at(2.5));
  t.add(NodeId(3), NodeId(2), at(10), at(20));
  t.finalize();

  std::ostringstream out;
  write_trace(out, t);
  std::istringstream in(out.str());
  const ContactTrace parsed = read_trace(in);
  ASSERT_EQ(parsed.size(), t.size());
  EXPECT_EQ(parsed.events()[0], t.events()[0]);
  EXPECT_EQ(parsed.events()[1], t.events()[1]);
}

TEST(Parser, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n0 1 0.0 5.0\n   # indented comment\n2 3 1.0 2.0\n");
  const ContactTrace t = read_trace(in);
  EXPECT_EQ(t.size(), 2u);
}

TEST(Parser, ThrowsOnMalformedLine) {
  std::istringstream in("0 1 0.0 5.0\n0 oops 1 2\n");
  EXPECT_THROW((void)read_trace(in), std::runtime_error);
}

TEST(Parser, ThrowsOnMissingFile) {
  EXPECT_THROW((void)load_trace("/nonexistent/path/to/trace.txt"), std::runtime_error);
}

TEST(TraceStats, RequiresFinalizedTrace) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(0), at(1));
  EXPECT_THROW(TraceStats s(t), std::invalid_argument);
}

TEST(TraceStats, InterContactGaps) {
  ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(0), at(10));
  t.add(NodeId(0), NodeId(1), at(70), at(80));    // gap 60
  t.add(NodeId(0), NodeId(1), at(200), at(210));  // gap 120
  t.finalize();
  const TraceStats s(t);
  EXPECT_EQ(s.contact_count(), 3u);
  EXPECT_EQ(s.pair_count(), 1u);
  EXPECT_EQ(s.inter_contact_times().count(), 2u);
  EXPECT_DOUBLE_EQ(s.inter_contact_times().mean(), 90.0);
  EXPECT_DOUBLE_EQ(s.contact_durations().mean(), 10.0);
}

TEST(TraceStats, RemeetProbabilityCountsCensoring) {
  ContactTrace t;
  // Pair (0,1): re-meets after 60s. Pair (2,3): never re-meets, with 1000s of
  // observable tail. Pair (4,5): last contact right at the end (short tail,
  // excluded from the at-risk set for large windows).
  t.add(NodeId(0), NodeId(1), at(0), at(10));
  t.add(NodeId(0), NodeId(1), at(70), at(80));
  t.add(NodeId(2), NodeId(3), at(0), at(10));
  t.add(NodeId(4), NodeId(5), at(1000), at(1010));
  t.finalize();
  // Window 100s: pair01 observed remeet (60 <= 100); pair23 censored with
  // tail 1000 >= 100 counts as a miss; pair01's second contact tail is 930
  // >= 100, a miss; pair45 tail 0 < 100 not at risk.
  EXPECT_NEAR(t.end_time().to_seconds(), 1010.0, 1e-9);
  const TraceStats s(t);
  EXPECT_NEAR(s.remeet_probability(Duration::seconds(100.0)), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace g2g::trace
