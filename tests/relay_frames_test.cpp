// The relay core's wire frames: canonical round-trips, byte-size identity
// with the wire:: cost helpers (the refactor's bit-identity hinges on it),
// and strict rejection of foreign tags and trailing bytes.
#include <gtest/gtest.h>

#include "g2g/crypto/identity.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::proto::relay {
namespace {

MessageHash hash_of(std::uint8_t fill) {
  MessageHash h;
  h.fill(fill);
  return h;
}

class RelayFrames : public ::testing::Test {
 protected:
  RelayFrames() : suite_(crypto::make_fast_suite(0xF4)), rng_(99), authority_(suite_, rng_) {
    for (std::uint32_t i = 0; i < 2; ++i) {
      ids_.emplace_back(suite_, NodeId(i), authority_, rng_);
      roster_.add(ids_.back().certificate());
    }
  }

  [[nodiscard]] SealedMessage message() {
    return make_message(ids_[0], roster_.get(NodeId(1)), MessageId(7), Bytes{1, 2, 3, 4},
                        rng_);
  }

  [[nodiscard]] QualityDeclaration declaration(std::uint32_t declarer, double value) {
    QualityDeclaration decl;
    decl.declarer = NodeId(declarer);
    decl.dst = NodeId(1);
    decl.value = value;
    decl.frame = 3;
    decl.at = TimePoint::from_seconds(42.0);
    decl.signature = ids_[declarer].sign(decl.signed_payload());
    return decl;
  }

  crypto::SuitePtr suite_;
  Rng rng_;
  crypto::Authority authority_;
  std::vector<crypto::NodeIdentity> ids_;
  Roster roster_;
};

TEST_F(RelayFrames, RelayRqstRoundTripAndSizeIdentity) {
  const RelayRqstFrame f{hash_of(0x11)};
  const Bytes b = f.encode();
  // The frame plus the control signature must cost exactly what the old
  // size-arithmetic path charged.
  EXPECT_EQ(b.size() + 64, wire::relay_rqst(64));
  EXPECT_EQ(f.wire_size(), b.size());
  const RelayRqstFrame d = RelayRqstFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
}

TEST_F(RelayFrames, RelayOkCarriesAcceptBitInTheTag) {
  const RelayOkFrame ok{hash_of(0x22), true};
  const RelayOkFrame no{hash_of(0x22), false};
  const Bytes ok_b = ok.encode();
  const Bytes no_b = no.encode();
  EXPECT_EQ(ok_b.size(), no_b.size());  // accept and decline cost the same
  EXPECT_EQ(ok_b.size() + 64, wire::relay_ok(64));
  EXPECT_NE(ok_b[0], no_b[0]);
  EXPECT_TRUE(RelayOkFrame::decode(ok_b).accept);
  EXPECT_FALSE(RelayOkFrame::decode(no_b).accept);
  EXPECT_EQ(RelayOkFrame::decode(no_b).h, no.h);
}

TEST_F(RelayFrames, RelayDataRoundTripWithAttachments) {
  RelayDataFrame f;
  f.msg = message();
  f.h = f.msg.hash();
  f.attachments.push_back(declaration(0, 2.5));
  f.attachments.push_back(declaration(1, 7.0));

  std::size_t attach_bytes = 0;
  for (const auto& a : f.attachments) attach_bytes += a.wire_size();
  const Bytes b = f.encode();
  EXPECT_EQ(b.size() + 64, wire::relay_data(64, f.msg.wire_size() + attach_bytes));

  const RelayDataFrame d = RelayDataFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
  EXPECT_EQ(d.msg.hash(), f.msg.hash());
  ASSERT_EQ(d.attachments.size(), 2u);
  EXPECT_EQ(d.attachments[0].encode(), f.attachments[0].encode());
  EXPECT_EQ(d.attachments[1].encode(), f.attachments[1].encode());
  EXPECT_EQ(d.encode(), b);
}

TEST_F(RelayFrames, RelayDataWithoutAttachmentsRoundTrips) {
  RelayDataFrame f;
  f.msg = message();
  f.h = f.msg.hash();
  const Bytes b = f.encode();
  EXPECT_EQ(b.size() + 32, wire::relay_data(32, f.msg.wire_size()));
  const RelayDataFrame d = RelayDataFrame::decode(b);
  EXPECT_TRUE(d.attachments.empty());
  EXPECT_EQ(d.msg.encode(), f.msg.encode());
}

TEST_F(RelayFrames, KeyRevealRoundTripAndSizeIdentity) {
  KeyRevealFrame f;
  f.h = hash_of(0x33);
  for (std::size_t i = 0; i < f.key.size(); ++i) f.key[i] = static_cast<std::uint8_t>(i);
  const Bytes b = f.encode();
  EXPECT_EQ(b.size() + 64, wire::key_reveal(64));
  const KeyRevealFrame d = KeyRevealFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
  EXPECT_EQ(d.key, f.key);
}

TEST_F(RelayFrames, PorRqstRoundTripAndSizeIdentity) {
  PorRqstFrame f;
  f.h = hash_of(0x44);
  f.seed.fill(0xAB);
  const Bytes b = f.encode();
  EXPECT_EQ(b.size() + 64, wire::por_rqst(64));
  const PorRqstFrame d = PorRqstFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
  EXPECT_EQ(d.seed, f.seed);
}

TEST_F(RelayFrames, StoredRespRoundTripAndSizeIdentity) {
  StoredRespFrame f;
  f.h = hash_of(0x55);
  f.seed.fill(0x01);
  f.digest.fill(0xEE);
  const Bytes b = f.encode();
  EXPECT_EQ(b.size(), StoredRespFrame::kWireBytes);
  EXPECT_EQ(b.size() + 64, wire::stored_resp(64));
  const StoredRespFrame d = StoredRespFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
  EXPECT_EQ(d.seed, f.seed);
  EXPECT_EQ(d.digest, f.digest);
}

TEST_F(RelayFrames, FqRqstRoundTripAndSizeIdentity) {
  const FqRqstFrame f{hash_of(0x66), NodeId(321)};
  const Bytes b = f.encode();
  EXPECT_EQ(b.size() + 64, wire::fq_rqst(64));
  const FqRqstFrame d = FqRqstFrame::decode(b);
  EXPECT_EQ(d.h, f.h);
  EXPECT_EQ(d.dst, f.dst);
}

// The codec-triple invariant g2g-lint enforces statically (wire-encode-triple)
// pinned dynamically: every frame's arithmetic wire_size() is exactly its
// encoded size, including the variable-length RelayData payload.
TEST_F(RelayFrames, WireSizeMatchesEncodedSizeForEveryFrame) {
  const MessageHash h = hash_of(0x99);
  EXPECT_EQ(RelayRqstFrame{h}.wire_size(), RelayRqstFrame{h}.encode().size());
  EXPECT_EQ((RelayOkFrame{h, true}).wire_size(), (RelayOkFrame{h, true}).encode().size());
  EXPECT_EQ((RelayOkFrame{h, false}).wire_size(),
            (RelayOkFrame{h, false}).encode().size());
  KeyRevealFrame key;
  key.h = h;
  EXPECT_EQ(key.wire_size(), key.encode().size());
  PorRqstFrame por;
  por.h = h;
  EXPECT_EQ(por.wire_size(), por.encode().size());
  StoredRespFrame stored;
  stored.h = h;
  EXPECT_EQ(stored.wire_size(), stored.encode().size());
  EXPECT_EQ(stored.wire_size(), StoredRespFrame::kWireBytes);
  const FqRqstFrame fq{h, NodeId(7)};
  EXPECT_EQ(fq.wire_size(), fq.encode().size());

  RelayDataFrame data;
  data.msg = message();
  data.h = data.msg.hash();
  EXPECT_EQ(data.wire_size(), data.encode().size());  // no attachments
  data.attachments.push_back(declaration(0, 1.5));
  data.attachments.push_back(declaration(1, 4.0));
  EXPECT_EQ(data.wire_size(), data.encode().size());  // with attachments
}

TEST_F(RelayFrames, ForeignTagsAreRejected) {
  const Bytes rqst = RelayRqstFrame{hash_of(0x77)}.encode();
  EXPECT_THROW((void)KeyRevealFrame::decode(rqst), DecodeError);
  EXPECT_THROW((void)RelayOkFrame::decode(rqst), DecodeError);
  const Bytes fq = FqRqstFrame{hash_of(0x77), NodeId(2)}.encode();
  EXPECT_THROW((void)RelayRqstFrame::decode(fq), DecodeError);
}

TEST_F(RelayFrames, TrailingBytesAreRejected) {
  Bytes b = RelayRqstFrame{hash_of(0x88)}.encode();
  b.push_back(0x00);
  EXPECT_THROW((void)RelayRqstFrame::decode(b), DecodeError);

  RelayDataFrame f;
  f.msg = message();
  f.h = f.msg.hash();
  Bytes db = f.encode();
  db.push_back(0x00);
  EXPECT_THROW((void)RelayDataFrame::decode(db), DecodeError);
}

TEST_F(RelayFrames, RelayDataPayloadLengthIsBoundsChecked) {
  RelayDataFrame f;
  f.msg = message();
  f.h = f.msg.hash();
  Bytes b = f.encode();
  // Inflate the inner length field (bytes 33..40) past the buffer.
  b[33] = 0xFF;
  b[34] = 0xFF;
  EXPECT_THROW((void)RelayDataFrame::decode(b), DecodeError);
}

}  // namespace
}  // namespace g2g::proto::relay
