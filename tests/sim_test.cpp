#include "g2g/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "g2g/sim/traffic.hpp"

namespace g2g::sim {
namespace {

TimePoint at(double s) { return TimePoint::from_seconds(s); }

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(at(30), [&] { order.push_back(3); });
  sim.at(at(10), [&] { order.push_back(1); });
  sim.at(at(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), at(30));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(at(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<double> fired;
  sim.at(at(1), [&] {
    fired.push_back(sim.now().to_seconds());
    sim.after(Duration::seconds(2.0), [&] { fired.push_back(sim.now().to_seconds()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 3.0}));
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.at(at(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(at(5), [] {}), std::invalid_argument);
}

TEST(Simulator, HorizonDropsLateEvents) {
  Simulator sim(at(100));
  int fired = 0;
  sim.at(at(50), [&] { ++fired; });
  sim.at(at(150), [&] { ++fired; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsImmediately) {
  Simulator sim;
  int fired = 0;
  sim.at(at(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.at(at(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  // A second run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

class RecordingListener final : public ContactListener {
 public:
  struct Event {
    bool up;
    TimePoint t;
    NodeId a;
    NodeId b;
  };
  std::vector<Event> events;

  void on_contact_up(TimePoint t, NodeId a, NodeId b) override {
    events.push_back({true, t, a, b});
  }
  void on_contact_down(TimePoint t, NodeId a, NodeId b) override {
    events.push_back({false, t, a, b});
  }
};

TEST(ScheduleTrace, DeliversUpDownPairs) {
  trace::ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(10), at(20));
  t.add(NodeId(1), NodeId(2), at(15), at(25));
  t.finalize();

  Simulator sim;
  RecordingListener listener;
  schedule_trace(sim, t, listener);
  sim.run();

  ASSERT_EQ(listener.events.size(), 4u);
  EXPECT_TRUE(listener.events[0].up);
  EXPECT_EQ(listener.events[0].t, at(10));
  EXPECT_TRUE(listener.events[1].up);
  EXPECT_EQ(listener.events[1].t, at(15));
  EXPECT_FALSE(listener.events[2].up);  // down of (0,1) at 20
  EXPECT_EQ(listener.events[2].t, at(20));
  EXPECT_FALSE(listener.events[3].up);
}

TEST(ScheduleTrace, RequiresFinalizedTrace) {
  trace::ContactTrace t;
  t.add(NodeId(0), NodeId(1), at(0), at(1));
  Simulator sim;
  RecordingListener listener;
  EXPECT_THROW(schedule_trace(sim, t, listener), std::invalid_argument);
}

TEST(Traffic, WindowAndEndpointInvariants) {
  TrafficConfig cfg;
  cfg.start = at(100);
  cfg.end = at(500);
  cfg.mean_interarrival = Duration::seconds(2.0);
  const auto demands = generate_traffic(cfg, 10);
  EXPECT_GT(demands.size(), 100u);  // ~200 expected
  std::set<std::uint64_t> ids;
  for (const auto& d : demands) {
    EXPECT_GE(d.at, cfg.start);
    EXPECT_LT(d.at, cfg.end);
    EXPECT_NE(d.src, d.dst);
    EXPECT_LT(d.src.value(), 10u);
    EXPECT_LT(d.dst.value(), 10u);
    ids.insert(d.id.value());
  }
  EXPECT_EQ(ids.size(), demands.size());  // unique message ids
}

TEST(Traffic, PoissonMeanApproximatelyCorrect) {
  TrafficConfig cfg;
  cfg.start = TimePoint::zero();
  cfg.end = at(40000);
  cfg.mean_interarrival = Duration::seconds(4.0);
  const auto demands = generate_traffic(cfg, 5);
  EXPECT_NEAR(static_cast<double>(demands.size()), 10000.0, 300.0);
}

TEST(Traffic, DeterministicInSeed) {
  TrafficConfig cfg;
  cfg.end = at(1000);
  const auto a = generate_traffic(cfg, 8);
  const auto b = generate_traffic(cfg, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(Traffic, SourcesRoughlyUniform) {
  TrafficConfig cfg;
  cfg.end = at(40000);
  cfg.mean_interarrival = Duration::seconds(1.0);
  const auto demands = generate_traffic(cfg, 4);
  std::array<std::size_t, 4> counts{};
  for (const auto& d : demands) ++counts[d.src.value()];
  for (const std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), static_cast<double>(demands.size()) / 4.0,
                static_cast<double>(demands.size()) * 0.05);
  }
}

TEST(Traffic, RejectsBadConfigs) {
  TrafficConfig cfg;
  EXPECT_THROW((void)generate_traffic(cfg, 1), std::invalid_argument);
  cfg.end = cfg.start;
  EXPECT_THROW((void)generate_traffic(cfg, 5), std::invalid_argument);
  cfg = TrafficConfig{};
  cfg.mean_interarrival = Duration::zero();
  EXPECT_THROW((void)generate_traffic(cfg, 5), std::invalid_argument);
}

}  // namespace
}  // namespace g2g::sim
