#include "g2g/trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "g2g/trace/stats.hpp"

namespace g2g::trace {
namespace {

SyntheticConfig tiny_config() {
  SyntheticConfig cfg;
  cfg.nodes = 12;
  cfg.duration = Duration::hours(12);
  cfg.communities = 3;
  cfg.intra_mean_gap_s = 900.0;
  cfg.inter_mean_gap_s = 14400.0;
  cfg.seed = 7;
  return cfg;
}

TEST(Synthetic, DeterministicInSeed) {
  const SyntheticTrace a = generate_trace(tiny_config());
  const SyntheticTrace b = generate_trace(tiny_config());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace.events(), b.trace.events());
  EXPECT_EQ(a.communities, b.communities);
}

TEST(Synthetic, SeedChangesTrace) {
  SyntheticConfig cfg = tiny_config();
  const SyntheticTrace a = generate_trace(cfg);
  cfg.seed = 8;
  const SyntheticTrace b = generate_trace(cfg);
  EXPECT_NE(a.trace.events(), b.trace.events());
}

TEST(Synthetic, RespectsDurationAndNodeBounds) {
  const SyntheticConfig cfg = tiny_config();
  const SyntheticTrace t = generate_trace(cfg);
  EXPECT_LE(t.trace.node_count(), cfg.nodes);
  EXPECT_LE(t.trace.end_time(), TimePoint::zero() + cfg.duration);
  EXPECT_GT(t.trace.size(), 0u);
  EXPECT_TRUE(t.trace.finalized());
}

TEST(Synthetic, EveryNodeInSomeCommunity) {
  const SyntheticConfig cfg = tiny_config();
  const SyntheticTrace t = generate_trace(cfg);
  ASSERT_EQ(t.communities.size(), cfg.communities);
  std::vector<bool> covered(cfg.nodes, false);
  for (const auto& c : t.communities) {
    for (const NodeId n : c) covered[n.value()] = true;
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(Synthetic, TravelersJoinTwoCommunities) {
  SyntheticConfig cfg = tiny_config();
  cfg.traveler_fraction = 0.25;
  const SyntheticTrace t = generate_trace(cfg);
  std::map<std::uint32_t, int> membership;
  for (const auto& c : t.communities) {
    for (const NodeId n : c) ++membership[n.value()];
  }
  int travelers = 0;
  for (const auto& [n, count] : membership) {
    EXPECT_LE(count, 2);
    if (count == 2) ++travelers;
  }
  EXPECT_EQ(travelers, 3);  // 12 * 0.25
}

TEST(Synthetic, IntraCommunityPairsMeetMoreOften) {
  SyntheticConfig cfg = tiny_config();
  cfg.traveler_fraction = 0.0;
  cfg.rate_heterogeneity_sigma = 0.0;
  const SyntheticTrace t = generate_trace(cfg);
  const TraceStats stats(t.trace);

  const auto same_comm = [&](NodeId a, NodeId b) {
    for (const auto& c : t.communities) {
      bool ha = false;
      bool hb = false;
      for (const NodeId n : c) {
        ha |= n == a;
        hb |= n == b;
      }
      if (ha && hb) return true;
    }
    return false;
  };

  double intra = 0.0;
  double inter = 0.0;
  std::size_t intra_pairs = 0;
  std::size_t inter_pairs = 0;
  for (std::uint32_t a = 0; a < cfg.nodes; ++a) {
    for (std::uint32_t b = a + 1; b < cfg.nodes; ++b) {
      const auto it = stats.per_pair_contacts().find(make_pair_key(NodeId(a), NodeId(b)));
      const double count =
          it == stats.per_pair_contacts().end() ? 0.0 : static_cast<double>(it->second);
      if (same_comm(NodeId(a), NodeId(b))) {
        intra += count;
        ++intra_pairs;
      } else {
        inter += count;
        ++inter_pairs;
      }
    }
  }
  ASSERT_GT(intra_pairs, 0u);
  ASSERT_GT(inter_pairs, 0u);
  EXPECT_GT(intra / static_cast<double>(intra_pairs),
            4.0 * inter / static_cast<double>(inter_pairs));
}

TEST(Synthetic, DiurnalThinningReducesNightContacts) {
  SyntheticConfig cfg = tiny_config();
  cfg.duration = Duration::days(4);
  cfg.diurnal = true;
  cfg.night_activity = 0.05;
  const SyntheticTrace t = generate_trace(cfg);

  std::size_t day = 0;
  std::size_t night = 0;
  for (const auto& e : t.trace.events()) {
    const double hour = std::fmod(e.start.to_seconds() / 3600.0, 24.0);
    if (hour >= cfg.day_start_hour && hour < cfg.day_end_hour) {
      ++day;
    } else {
      ++night;
    }
  }
  // Day window is 14 of 24 hours; with 5% night activity the day share must
  // be overwhelming.
  EXPECT_GT(day, night * 4);
}

TEST(Synthetic, NodeActivityHeterogeneitySpreadsDegrees) {
  SyntheticConfig hom = tiny_config();
  hom.node_activity_sigma = 0.0;
  SyntheticConfig het = tiny_config();
  het.node_activity_sigma = 1.2;

  const auto contact_counts = [](const SyntheticTrace& t, std::uint32_t nodes) {
    std::vector<double> counts(nodes, 0.0);
    for (const auto& e : t.trace.events()) {
      counts[e.a.value()] += 1.0;
      counts[e.b.value()] += 1.0;
    }
    return counts;
  };
  const auto cv = [](const std::vector<double>& v) {  // coefficient of variation
    double mean = 0.0;
    for (const double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (const double x : v) var += (x - mean) * (x - mean);
    return std::sqrt(var / static_cast<double>(v.size())) / mean;
  };

  const double cv_hom = cv(contact_counts(generate_trace(hom), hom.nodes));
  const double cv_het = cv(contact_counts(generate_trace(het), het.nodes));
  EXPECT_GT(cv_het, cv_hom * 1.5);
}

TEST(Synthetic, RejectsBadConfigs) {
  SyntheticConfig cfg = tiny_config();
  cfg.nodes = 1;
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.communities = 0;
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.communities = 100;
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.pareto_alpha = 1.0;
  EXPECT_THROW((void)generate_trace(cfg), std::invalid_argument);
}

class PresetTest : public ::testing::TestWithParam<const char*> {
 protected:
  SyntheticConfig config() const {
    return std::string(GetParam()) == "infocom05" ? infocom05() : cambridge06();
  }
};

TEST_P(PresetTest, MatchesPaperPopulationAndSpan) {
  const SyntheticConfig cfg = config();
  const SyntheticTrace t = generate_trace(cfg);
  if (std::string(GetParam()) == "infocom05") {
    EXPECT_EQ(cfg.nodes, 41u);
    EXPECT_EQ(cfg.duration, Duration::days(3));
  } else {
    EXPECT_EQ(cfg.nodes, 36u);
    EXPECT_EQ(cfg.duration, Duration::days(11));
  }
  EXPECT_EQ(t.trace.node_count(), cfg.nodes);
  EXPECT_GT(t.trace.size(), 1000u);  // a usable amount of contacts
}

TEST_P(PresetTest, PairsRemeetWithinTestWindow) {
  // The paper's Delta2 choice leans on pairs re-meeting soon; the stand-in
  // traces must reproduce that (Section IV-B: "re-encounters between pairs
  // of nodes happen soon enough with high probability").
  const SyntheticTrace t = generate_trace(config());
  const trace::TraceStats stats(t.trace);
  EXPECT_GT(stats.remeet_probability(Duration::hours(1.5)), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Presets, PresetTest, ::testing::Values("infocom05", "cambridge06"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace g2g::trace
