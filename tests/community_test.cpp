#include "g2g/community/kclique.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "g2g/trace/synthetic.hpp"

namespace g2g::community {
namespace {

ContactGraph graph_from_edges(std::size_t n,
                              std::initializer_list<std::pair<int, int>> edges) {
  ContactGraph g(n);
  for (const auto& [a, b] : edges) {
    g.add_edge(NodeId(static_cast<std::uint32_t>(a)), NodeId(static_cast<std::uint32_t>(b)));
  }
  return g;
}

TEST(ContactGraph, BasicOperations) {
  ContactGraph g(4);
  g.add_edge(NodeId(0), NodeId(1));
  g.add_edge(NodeId(1), NodeId(0));  // duplicate, no-op
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(g.has_edge(NodeId(1), NodeId(0)));
  EXPECT_FALSE(g.has_edge(NodeId(0), NodeId(2)));
  EXPECT_EQ(g.degree(NodeId(0)), 1u);
  EXPECT_EQ(g.neighbors(NodeId(1)), std::vector<NodeId>{NodeId(0)});
  EXPECT_THROW(g.add_edge(NodeId(0), NodeId(0)), std::invalid_argument);
  EXPECT_THROW(g.add_edge(NodeId(0), NodeId(9)), std::out_of_range);
}

TEST(ContactGraph, BuildFromTraceThresholds) {
  trace::ContactTrace t;
  const auto at = [](double s) { return TimePoint::from_seconds(s); };
  // Pair (0,1): 3 short contacts -> qualifies by count.
  for (int i = 0; i < 3; ++i) {
    t.add(NodeId(0), NodeId(1), at(i * 100.0), at(i * 100.0 + 5.0));
  }
  // Pair (2,3): single very long contact -> qualifies by duration.
  t.add(NodeId(2), NodeId(3), at(0), at(1200));
  // Pair (0,2): single short contact -> no edge.
  t.add(NodeId(0), NodeId(2), at(0), at(5));
  t.finalize();

  ContactGraphConfig cfg;
  cfg.min_contacts = 3;
  cfg.min_total_duration = Duration::minutes(10);
  const ContactGraph g(t, cfg);
  EXPECT_TRUE(g.has_edge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(g.has_edge(NodeId(2), NodeId(3)));
  EXPECT_FALSE(g.has_edge(NodeId(0), NodeId(2)));
}

TEST(ContactGraphConfig, ForSpanScalesWithDays) {
  const auto short_cfg = ContactGraphConfig::for_span(Duration::days(1), 6.0, 20.0);
  const auto long_cfg = ContactGraphConfig::for_span(Duration::days(10), 6.0, 20.0);
  EXPECT_EQ(short_cfg.min_contacts, 6u);
  EXPECT_EQ(long_cfg.min_contacts, 60u);
  EXPECT_EQ(long_cfg.min_total_duration, Duration::minutes(200));
}

TEST(MaximalCliques, Triangle) {
  const ContactGraph g = graph_from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto cliques = maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
}

TEST(MaximalCliques, PathGraphGivesEdges) {
  const ContactGraph g = graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto cliques = maximal_cliques(g);
  EXPECT_EQ(cliques.size(), 3u);
  for (const auto& c : cliques) EXPECT_EQ(c.size(), 2u);
}

TEST(MaximalCliques, CompleteGraph) {
  ContactGraph g(5);
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = a + 1; b < 5; ++b) g.add_edge(NodeId(a), NodeId(b));
  }
  const auto cliques = maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 5u);
}

TEST(MaximalCliques, IsolatedVerticesYieldNoCliques) {
  const ContactGraph g(3);  // no edges
  // Isolated vertices are maximal cliques of size 1.
  EXPECT_EQ(maximal_cliques(g).size(), 3u);
}

TEST(KClique, TwoTrianglesSharingOneVertexStaySeparate) {
  // Sharing one vertex (< k-1 = 2 for k=3) must NOT merge the communities.
  const ContactGraph g =
      graph_from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  const CommunityMap cm = k_clique_communities(g, 3);
  ASSERT_EQ(cm.group_count(), 2u);
  EXPECT_TRUE(cm.same_community(NodeId(0), NodeId(1)));
  EXPECT_TRUE(cm.same_community(NodeId(3), NodeId(4)));
  EXPECT_FALSE(cm.same_community(NodeId(0), NodeId(4)));
  // The shared vertex 2 is in both communities.
  EXPECT_EQ(cm.groups_of(NodeId(2)).size(), 2u);
  EXPECT_TRUE(cm.same_community(NodeId(2), NodeId(0)));
  EXPECT_TRUE(cm.same_community(NodeId(2), NodeId(4)));
}

TEST(KClique, TrianglesSharingAnEdgeMerge) {
  // Sharing an edge (k-1 = 2 nodes) merges.
  const ContactGraph g = graph_from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}});
  const CommunityMap cm = k_clique_communities(g, 3);
  ASSERT_EQ(cm.group_count(), 1u);
  EXPECT_EQ(cm.groups()[0].size(), 4u);
}

TEST(KClique, ChainOfTrianglesPercolates) {
  // 0-1-2, 1-2-3, 2-3-4: adjacent triangles overlap in 2 nodes -> one community.
  const ContactGraph g =
      graph_from_edges(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}});
  const CommunityMap cm = k_clique_communities(g, 3);
  ASSERT_EQ(cm.group_count(), 1u);
  EXPECT_EQ(cm.groups()[0].size(), 5u);
}

TEST(KClique, K4RequiresDenserOverlap) {
  // Two K4s sharing a single edge (2 nodes < k-1 = 3) stay separate for k=4.
  ContactGraph g(6);
  for (const auto& [a, b] : std::initializer_list<std::pair<int, int>>{
           {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},     // K4 on 0..3
           {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5}}) {          // K4 on 2..5
    g.add_edge(NodeId(static_cast<std::uint32_t>(a)), NodeId(static_cast<std::uint32_t>(b)));
  }
  EXPECT_EQ(k_clique_communities(g, 4).group_count(), 2u);
  // For k=3, the shared edge suffices to merge.
  EXPECT_EQ(k_clique_communities(g, 3).group_count(), 1u);
}

TEST(KClique, NodesBelowKAreUnassigned) {
  const ContactGraph g = graph_from_edges(4, {{0, 1}, {0, 2}, {1, 2}});  // node 3 isolated
  const CommunityMap cm = k_clique_communities(g, 3);
  EXPECT_TRUE(cm.groups_of(NodeId(3)).empty());
  EXPECT_FALSE(cm.same_community(NodeId(3), NodeId(0)));
  EXPECT_FALSE(cm.same_community(NodeId(3), NodeId(3)));  // isolated: no community
}

TEST(KClique, RejectsK1) {
  const ContactGraph g(3);
  EXPECT_THROW((void)k_clique_communities(g, 1), std::invalid_argument);
}

TEST(CommunityMap, ExplicitGroups) {
  const CommunityMap cm(6, {{NodeId(0), NodeId(1), NodeId(2)}, {NodeId(2), NodeId(3)}});
  EXPECT_TRUE(cm.same_community(NodeId(0), NodeId(2)));
  EXPECT_TRUE(cm.same_community(NodeId(2), NodeId(3)));
  EXPECT_FALSE(cm.same_community(NodeId(0), NodeId(3)));
  EXPECT_FALSE(cm.same_community(NodeId(4), NodeId(5)));
  EXPECT_THROW(CommunityMap(2, {{NodeId(5)}}), std::out_of_range);
}

TEST(KClique, RecoversPlantedCommunitiesInSyntheticTrace) {
  // End-to-end: the detector run on a planted-partition synthetic trace must
  // substantially agree with the ground truth.
  trace::SyntheticConfig cfg;
  cfg.nodes = 24;
  cfg.communities = 3;
  cfg.duration = Duration::days(2);
  cfg.traveler_fraction = 0.0;
  cfg.intra_mean_gap_s = 1200.0;
  cfg.inter_mean_gap_s = 86400.0;
  cfg.rate_heterogeneity_sigma = 0.3;
  cfg.seed = 3;
  const trace::SyntheticTrace t = trace::generate_trace(cfg);

  const ContactGraph g(t.trace, ContactGraphConfig::for_span(cfg.duration, 20.0, 80.0));
  const CommunityMap cm = k_clique_communities(g, 3);
  ASSERT_EQ(cm.group_count(), 3u);

  // Each detected community must be dominated by one ground-truth community.
  for (const auto& detected : cm.groups()) {
    std::size_t best_overlap = 0;
    for (const auto& truth : t.communities) {
      std::vector<NodeId> inter;
      std::set_intersection(detected.begin(), detected.end(), truth.begin(), truth.end(),
                            std::back_inserter(inter));
      best_overlap = std::max(best_overlap, inter.size());
    }
    EXPECT_GE(best_overlap * 10, detected.size() * 9)
        << "detected community not aligned with ground truth";
  }
}

}  // namespace
}  // namespace g2g::community
