// Parser tolerance for real-world trace files: the published CRAWDAD
// contact lists come in several column layouts; anything after the four
// fields we need (a b start end) is ignored, and common irregularities
// (comments, blank lines, CRLF, unsorted rows, duplicate intervals) are
// handled.
#include <gtest/gtest.h>

#include <sstream>

#include "g2g/trace/parser.hpp"

namespace g2g::trace {
namespace {

TEST(ParserTolerance, ExtraColumnsIgnored) {
  // 6-column layout: a b start end count weight.
  std::istringstream in("0 1 10.0 20.0 3 0.5\n1 2 30.0 40.0 1 0.9\n");
  const ContactTrace t = read_trace(in);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[0].start, TimePoint::from_seconds(10.0));
  EXPECT_EQ(t.events()[1].end, TimePoint::from_seconds(40.0));
}

TEST(ParserTolerance, CrlfLineEndings) {
  std::istringstream in("0 1 10.0 20.0\r\n1 2 30.0 40.0\r\n");
  const ContactTrace t = read_trace(in);
  EXPECT_EQ(t.size(), 2u);
}

TEST(ParserTolerance, UnsortedInputGetsSorted) {
  std::istringstream in("2 3 100 110\n0 1 10 20\n");
  const ContactTrace t = read_trace(in);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_LT(t.events()[0].start, t.events()[1].start);
}

TEST(ParserTolerance, DuplicateAndOverlappingRowsCoalesce) {
  std::istringstream in("0 1 10 20\n0 1 10 20\n0 1 15 25\n");
  const ContactTrace t = read_trace(in);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].start, TimePoint::from_seconds(10.0));
  EXPECT_EQ(t.events()[0].end, TimePoint::from_seconds(25.0));
}

TEST(ParserTolerance, ReversedPairNormalized) {
  std::istringstream in("5 2 10 20\n");
  const ContactTrace t = read_trace(in);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].a, NodeId(2));
  EXPECT_EQ(t.events()[0].b, NodeId(5));
}

TEST(ParserTolerance, ScientificNotationTimes) {
  std::istringstream in("0 1 1e2 2.5e2\n");
  const ContactTrace t = read_trace(in);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].duration(), Duration::seconds(150.0));
}

TEST(ParserTolerance, EmptyFileYieldsEmptyTrace) {
  std::istringstream in("# just comments\n\n");
  const ContactTrace t = read_trace(in);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.finalized());
}

}  // namespace
}  // namespace g2g::trace
