#include "g2g/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "g2g/util/time.hpp"

namespace g2g {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Samples, QuantilesInterpolate) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 2.0);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, StddevMatchesManual) {
  Samples s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bucket 0
  h.add(9.999);  // bucket 9
  h.add(10.0);   // overflow
  h.add(5.5);    // bucket 5
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Time, DurationArithmetic) {
  const Duration d = Duration::minutes(90);
  EXPECT_EQ(d, Duration::hours(1.5));
  EXPECT_EQ(d / 2, Duration::minutes(45));
  EXPECT_EQ(d * 2, Duration::hours(3));
  EXPECT_EQ((-d).count(), -d.count());
  EXPECT_DOUBLE_EQ(d.to_minutes(), 90.0);
}

TEST(Time, TimePointArithmetic) {
  const TimePoint t = TimePoint::from_seconds(100.0);
  EXPECT_EQ(t + Duration::seconds(20.0), TimePoint::from_seconds(120.0));
  EXPECT_EQ(t - TimePoint::from_seconds(40.0), Duration::seconds(60.0));
  EXPECT_LT(TimePoint::zero(), t);
}

TEST(Time, ToStringFormats) {
  EXPECT_EQ(to_string(Duration::seconds(3.5)), "3.500s");
  EXPECT_EQ(to_string(Duration::minutes(2)), "2m00.0s");
  EXPECT_EQ(to_string(Duration::hours(1) + Duration::minutes(2) + Duration::seconds(3)),
            "1h02m03.0s");
  EXPECT_EQ(to_string(-Duration::seconds(1.0)), "-1.000s");
}

}  // namespace
}  // namespace g2g
