#include "g2g/proto/message.hpp"

#include <gtest/gtest.h>

namespace g2g::proto {
namespace {

class MessageTest : public ::testing::Test {
 protected:
  MessageTest() : authority_(suite_, rng_) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      identities_.emplace_back(suite_, NodeId(i), authority_, rng_);
      roster_.add(identities_.back().certificate());
    }
  }

  crypto::SuitePtr suite_ = crypto::make_fast_suite(0x715e);
  Rng rng_{31};
  crypto::Authority authority_;
  std::vector<crypto::NodeIdentity> identities_;
  Roster roster_;
};

TEST_F(MessageTest, RosterLookup) {
  EXPECT_NE(roster_.find(NodeId(0)), nullptr);
  EXPECT_EQ(roster_.find(NodeId(9)), nullptr);
  EXPECT_EQ(roster_.get(NodeId(1)).node, NodeId(1));
  EXPECT_THROW((void)roster_.get(NodeId(9)), std::out_of_range);
  EXPECT_EQ(roster_.size(), 3u);
}

TEST_F(MessageTest, SealOpenRoundTrip) {
  const Bytes body = to_bytes("the payload");
  const SealedMessage m =
      make_message(identities_[0], roster_.get(NodeId(1)), MessageId(42), body, rng_);
  EXPECT_EQ(m.dst, NodeId(1));

  const auto opened = open_message(identities_[1], m, roster_);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->src, NodeId(0));
  EXPECT_EQ(opened->id, MessageId(42));
  EXPECT_EQ(opened->body, body);
  EXPECT_TRUE(opened->authentic);
}

TEST_F(MessageTest, NonDestinationCannotOpen) {
  const SealedMessage m = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(1),
                                       to_bytes("secret"), rng_);
  // A relay (node 2) sees only the destination; open must fail.
  EXPECT_FALSE(open_message(identities_[2], m, roster_).has_value());
  // Even the *sender* cannot open the sealed form.
  EXPECT_FALSE(open_message(identities_[0], m, roster_).has_value());
}

TEST_F(MessageTest, SenderIsHiddenFromTheWire) {
  // The sealed encoding must not contain the sender id in any header field;
  // only dst is cleartext. (We can't prove ciphertext secrecy here, but we
  // can check the accessible struct fields.)
  const SealedMessage m = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(7),
                                       to_bytes("x"), rng_);
  const SealedMessage decoded = SealedMessage::decode(m.encode());
  EXPECT_EQ(decoded.dst, NodeId(1));
  EXPECT_EQ(decoded.box.ciphertext, m.box.ciphertext);
}

TEST_F(MessageTest, HashIsStableAndContentSensitive) {
  const SealedMessage m1 = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(1),
                                        to_bytes("a"), rng_);
  EXPECT_EQ(m1.hash(), SealedMessage::decode(m1.encode()).hash());
  const SealedMessage m2 = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(1),
                                        to_bytes("a"), rng_);
  // Fresh ephemeral key => different wire form => different hash.
  EXPECT_NE(m1.hash(), m2.hash());
}

TEST_F(MessageTest, TamperedBodyLosesAuthenticity) {
  SealedMessage m = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(3),
                                 to_bytes("pay 5 euro"), rng_);
  // Flip a ciphertext byte: the inner decode either fails or flunks the
  // signature; it must never yield an authentic message.
  for (std::size_t i = 0; i < m.box.ciphertext.size(); i += 7) {
    SealedMessage tampered = m;
    tampered.box.ciphertext[i] ^= 0x10;
    const auto opened = open_message(identities_[1], tampered, roster_);
    if (opened.has_value()) {
      EXPECT_FALSE(opened->authentic);
    }
  }
}

TEST_F(MessageTest, UnknownSenderIsNotAuthentic) {
  // Sender whose certificate is missing from the roster.
  Rng rng2(99);
  const crypto::NodeIdentity stranger(suite_, NodeId(7), authority_, rng2);
  const SealedMessage m =
      make_message(stranger, roster_.get(NodeId(1)), MessageId(5), to_bytes("hi"), rng2);
  const auto opened = open_message(identities_[1], m, roster_);
  ASSERT_TRUE(opened.has_value());
  EXPECT_FALSE(opened->authentic);
}

TEST_F(MessageTest, WireSizeMatchesEncoding) {
  const SealedMessage m = make_message(identities_[0], roster_.get(NodeId(1)), MessageId(1),
                                       Bytes(100, 0xaa), rng_);
  EXPECT_NEAR(static_cast<double>(m.wire_size()),
              static_cast<double>(m.encode().size()), 8.0);
}

}  // namespace
}  // namespace g2g::proto
