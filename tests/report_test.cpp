#include "g2g/core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace g2g::core {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Fmt, Numbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percentages) {
  EXPECT_EQ(fmt_pct(0.5), "50.0%");
  EXPECT_EQ(fmt_pct(0.123, 0), "12%");
  EXPECT_EQ(fmt_pct(1.0), "100.0%");
}

TEST(Fmt, Minutes) {
  EXPECT_EQ(fmt_minutes(12.34), "12.3m");
  EXPECT_EQ(fmt_minutes(0.0, 0), "0m");
}

}  // namespace
}  // namespace g2g::core
