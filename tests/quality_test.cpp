#include "g2g/proto/quality.hpp"

#include <gtest/gtest.h>

namespace g2g::proto {
namespace {

TimePoint at_min(double m) { return TimePoint::from_seconds(m * 60.0); }

class QualityKindTest : public ::testing::TestWithParam<QualityKind> {
 protected:
  QualityKind kind() const { return GetParam(); }
};

TEST_P(QualityKindTest, NeverMetIsMinimal) {
  const EncounterTable t(Duration::minutes(34));
  EXPECT_EQ(t.current(kind(), NodeId(5)), min_quality(kind()));
}

TEST_P(QualityKindTest, CurrentTracksEncounters) {
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), at_min(5));
  t.record(NodeId(1), at_min(10));
  t.record(NodeId(2), at_min(7));
  if (kind() == QualityKind::DestinationFrequency) {
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(1)), 2.0);
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(2)), 1.0);
  } else {
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(1)), 600.0);
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(2)), 420.0);
  }
  EXPECT_EQ(t.encounter_count(NodeId(1)), 2u);
}

TEST_P(QualityKindTest, DeclaredUsesLastCompletedFrame) {
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), at_min(10));  // frame 0
  t.record(NodeId(1), at_min(40));  // frame 1
  t.record(NodeId(1), at_min(70));  // frame 2

  // At minute 75 (frame 2), the last completed frame is 1 (ends at 68 min):
  // only the first two encounters count.
  const auto d = t.declared(kind(), NodeId(1), at_min(75));
  EXPECT_EQ(d.frame, 1);
  if (kind() == QualityKind::DestinationFrequency) {
    EXPECT_DOUBLE_EQ(d.value, 2.0);
  } else {
    EXPECT_DOUBLE_EQ(d.value, 40.0 * 60.0);
  }
}

TEST_P(QualityKindTest, DeclaredBeforeFirstFrameCompletes) {
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), at_min(5));
  const auto d = t.declared(kind(), NodeId(1), at_min(10));  // inside frame 0
  EXPECT_EQ(d.frame, -1);
  EXPECT_EQ(d.value, min_quality(kind()));
}

TEST_P(QualityKindTest, ValueAtFrameRetentionWindow) {
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), at_min(10));

  const TimePoint now = at_min(5 * 34 + 10);  // inside frame 5
  // Frames 3 and 4 are retained; older or incomplete frames are not.
  EXPECT_TRUE(t.value_at_frame(kind(), NodeId(1), 3, now).has_value());
  EXPECT_TRUE(t.value_at_frame(kind(), NodeId(1), 4, now).has_value());
  EXPECT_FALSE(t.value_at_frame(kind(), NodeId(1), 2, now).has_value());
  EXPECT_FALSE(t.value_at_frame(kind(), NodeId(1), 5, now).has_value());  // current
  EXPECT_FALSE(t.value_at_frame(kind(), NodeId(1), -1, now).has_value());
}

TEST_P(QualityKindTest, SymmetryAcrossTwoTables) {
  // The liar-detection cross-check requires f_BD == f_DB when both sides log
  // the same encounters.
  EncounterTable b(Duration::minutes(34));
  EncounterTable d(Duration::minutes(34));
  for (const double m : {3.0, 20.0, 41.0, 90.0}) {
    b.record(NodeId(9), at_min(m));  // B's record of D (id 9)
    d.record(NodeId(4), at_min(m));  // D's record of B (id 4)
  }
  const TimePoint now = at_min(100);
  const auto decl = b.declared(GetParam(), NodeId(9), now);
  const auto own = d.value_at_frame(GetParam(), NodeId(4), decl.frame, now);
  ASSERT_TRUE(own.has_value());
  EXPECT_DOUBLE_EQ(*own, decl.value);
}

TEST_P(QualityKindTest, NegativeWarmupTimestampsSupported) {
  // Pre-window history is recorded at negative times (see Network::warm_up).
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), TimePoint::from_seconds(-7200.0));
  t.record(NodeId(1), TimePoint::from_seconds(-3600.0));
  if (kind() == QualityKind::DestinationFrequency) {
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(1)), 2.0);
  } else {
    EXPECT_DOUBLE_EQ(t.current(kind(), NodeId(1)), -3600.0);
    EXPECT_GT(t.current(kind(), NodeId(1)), min_quality(kind()));
  }
  // A declaration made just after the window starts still sees the history.
  const auto d = t.declared(kind(), NodeId(1), at_min(35));
  EXPECT_EQ(d.frame, 0);
  EXPECT_GT(d.value, min_quality(kind()));
}

INSTANTIATE_TEST_SUITE_P(BothKinds, QualityKindTest,
                         ::testing::Values(QualityKind::DestinationFrequency,
                                           QualityKind::DestinationLastContact),
                         [](const auto& info) {
                           return info.param == QualityKind::DestinationFrequency
                                      ? std::string("Frequency")
                                      : std::string("LastContact");
                         });

TEST(EncounterTable, RejectsNonMonotoneRecords) {
  EncounterTable t(Duration::minutes(34));
  t.record(NodeId(1), at_min(10));
  EXPECT_THROW(t.record(NodeId(1), at_min(5)), std::invalid_argument);
  // Other peers are independent timelines.
  t.record(NodeId(2), at_min(5));
}

TEST(EncounterTable, RejectsBadFrameLength) {
  EXPECT_THROW(EncounterTable(Duration::zero()), std::invalid_argument);
}

TEST(EncounterTable, FrameOfComputesIndex) {
  const EncounterTable t(Duration::minutes(10));
  EXPECT_EQ(t.frame_of(at_min(0)), 0);
  EXPECT_EQ(t.frame_of(at_min(9.99)), 0);
  EXPECT_EQ(t.frame_of(at_min(10)), 1);
  EXPECT_EQ(t.frame_of(at_min(25)), 2);
}

TEST(EncounterTable, FrequencySnapshotExcludesBoundaryEncounter) {
  // An encounter exactly at the frame boundary belongs to the next frame.
  EncounterTable t(Duration::minutes(10));
  t.record(NodeId(1), at_min(10));  // first instant of frame 1
  const auto d = t.declared(QualityKind::DestinationFrequency, NodeId(1), at_min(11));
  EXPECT_EQ(d.frame, 0);
  EXPECT_DOUBLE_EQ(d.value, 0.0);  // not yet visible in frame 0's snapshot
}

}  // namespace
}  // namespace g2g::proto
