#include "g2g/metrics/collector.hpp"

#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"
#include "g2g/obs/context.hpp"

namespace g2g::metrics {
namespace {

TimePoint at(double s) { return TimePoint::from_seconds(s); }

TEST(Collector, MessageLifecycle) {
  Collector c;
  c.message_generated(MessageId(1), NodeId(0), NodeId(5), at(10));
  c.message_generated(MessageId(2), NodeId(1), NodeId(6), at(20));
  c.message_relayed(MessageId(1), NodeId(0), NodeId(2), at(30));
  c.message_relayed(MessageId(1), NodeId(2), NodeId(5), at(100));
  c.message_delivered(MessageId(1), at(100));

  EXPECT_EQ(c.generated_count(), 2u);
  EXPECT_EQ(c.delivered_count(), 1u);
  EXPECT_DOUBLE_EQ(c.success_rate(), 0.5);
  EXPECT_DOUBLE_EQ(c.avg_replicas(), 1.0);  // 2 relays over 2 messages
  EXPECT_EQ(c.total_relays(), 2u);
  const Samples delays = c.delays();
  ASSERT_EQ(delays.count(), 1u);
  EXPECT_DOUBLE_EQ(delays.mean(), 90.0);
}

TEST(Collector, DuplicateDeliveryKeepsFirstTime) {
  Collector c;
  c.message_generated(MessageId(1), NodeId(0), NodeId(1), at(0));
  c.message_delivered(MessageId(1), at(50));
  c.message_delivered(MessageId(1), at(80));
  EXPECT_DOUBLE_EQ(c.delays().mean(), 50.0);
}

TEST(Collector, RejectsUnknownAndDuplicateIds) {
  Collector c;
  EXPECT_THROW(c.message_relayed(MessageId(9), NodeId(0), NodeId(1), at(0)), std::logic_error);
  EXPECT_THROW(c.message_delivered(MessageId(9), at(0)), std::logic_error);
  c.message_generated(MessageId(1), NodeId(0), NodeId(1), at(0));
  EXPECT_THROW(c.message_generated(MessageId(1), NodeId(0), NodeId(1), at(0)),
               std::logic_error);
}

TEST(Collector, DetectionBookkeeping) {
  Collector c;
  c.detection(DetectionEvent{NodeId(3), NodeId(0), at(100), DetectionMethod::TestBySender,
                             Duration::minutes(5)});
  c.detection(DetectionEvent{NodeId(3), NodeId(1), at(200), DetectionMethod::ChainCheck,
                             Duration::minutes(7)});
  c.detection(DetectionEvent{NodeId(4), NodeId(0), at(150),
                             DetectionMethod::TestByDestination, Duration::minutes(2)});

  EXPECT_EQ(c.detections().size(), 3u);
  EXPECT_EQ(c.detected_nodes(), (std::vector<NodeId>{NodeId(3), NodeId(4)}));
  const auto first = c.first_detection(NodeId(3));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->at, at(100));
  EXPECT_FALSE(c.first_detection(NodeId(9)).has_value());
}

TEST(Collector, EvictionKeepsFirstTime) {
  Collector c;
  c.node_evicted(NodeId(2), at(10));
  c.node_evicted(NodeId(2), at(20));
  EXPECT_EQ(c.evictions().at(NodeId(2)), at(10));
}

TEST(Collector, CostsAreZeroInitializedAndMutable) {
  Collector c;
  EXPECT_EQ(c.costs(NodeId(7)).bytes_sent, 0u);
  c.costs(NodeId(7)).bytes_sent += 100;
  c.costs(NodeId(7)).signatures += 2;
  EXPECT_EQ(c.costs(NodeId(7)).bytes_sent, 100u);
  const Collector& cc = c;
  EXPECT_EQ(cc.costs(NodeId(7)).signatures, 2u);
  EXPECT_EQ(cc.costs(NodeId(99)).signatures, 0u);  // const lookup of unknown node
}

TEST(Collector, InstrumentedCallsFeedTheObsContext) {
  obs::ObsContext obs;
  obs::CountingSink sink;
  obs.tracer.add_sink(&sink);
  Collector c;
  c.attach_obs(&obs);

  c.message_generated(MessageId(1), NodeId(0), NodeId(5), at(10));
  c.message_relayed(MessageId(1), NodeId(0), NodeId(2), at(30));
  c.message_relayed(MessageId(1), NodeId(2), NodeId(5), at(100));
  c.message_delivered(MessageId(1), at(100));
  c.detection(DetectionEvent{NodeId(3), NodeId(0), at(100),
                             DetectionMethod::TestBySender, Duration::minutes(5)});

  EXPECT_EQ(obs.registry.value("msg.generated"), 1u);
  EXPECT_EQ(obs.registry.value("msg.relayed"), 2u);
  EXPECT_EQ(obs.registry.value("msg.delivered"), 1u);
  EXPECT_EQ(obs.registry.value("detect.detections"), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::MessageGenerated), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::MessageRelayed), 2u);
  EXPECT_EQ(sink.count(obs::EventKind::MessageDelivered), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::Detection), 1u);
  const obs::Histogram* delay = obs.registry.find_histogram("msg.delivery_delay_s");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), 1u);
  EXPECT_DOUBLE_EQ(delay->sum(), 90.0);

  // Detaching stops instrumentation; the collector keeps working.
  c.attach_obs(nullptr);
  c.message_generated(MessageId(2), NodeId(1), NodeId(6), at(200));
  EXPECT_EQ(c.generated_count(), 2u);
  EXPECT_EQ(obs.registry.value("msg.generated"), 1u);
}

// The registry and the collector are updated by independent code paths (the
// protocol layer vs. the network's delivery hooks); a full seeded run proves
// they agree on the totals.
TEST(Collector, AgreesWithCounterRegistryOnSeededG2GRun) {
  core::ExperimentConfig cfg;
  cfg.protocol = core::Protocol::G2GEpidemic;
  cfg.scenario = core::infocom05_scenario();
  cfg.scenario.trace_config.nodes = 16;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(30.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 4;
  cfg.seed = 11;
  const core::ExperimentResult r = core::run_experiment(cfg);

  EXPECT_GT(r.collector.total_relays(), 0u);
  EXPECT_GT(r.collector.detections().size(), 0u);
  EXPECT_EQ(r.counters.value("msg.relayed"), r.collector.total_relays());
  EXPECT_EQ(r.counters.value("msg.generated"), r.collector.generated_count());
  EXPECT_EQ(r.counters.value("msg.delivered"), r.collector.delivered_count());
  EXPECT_EQ(r.counters.value("detect.detections"), r.collector.detections().size());
  // Every detection issues one PoM and one (possibly repeat) eviction; the
  // collector's eviction map dedups per node.
  EXPECT_EQ(r.counters.value("pom.evictions"), r.collector.detections().size());
  EXPECT_EQ(r.collector.evictions().size(), r.collector.detected_nodes().size());
}

TEST(NodeCosts, EnergyModelWeighting) {
  NodeCosts costs;
  costs.bytes_sent = 1000;
  costs.bytes_received = 1000;
  costs.signatures = 10;
  costs.verifications = 10;
  costs.heavy_hmacs = 1;
  // 2000 * 0.001 + 20 * 1 + 1 * 2000 = 2 + 20 + 2000
  EXPECT_DOUBLE_EQ(costs.energy(), 2022.0);
  // The heavy HMAC must dominate: that is the incentive design.
  NodeCosts no_hmac = costs;
  no_hmac.heavy_hmacs = 0;
  EXPECT_GT(costs.energy(), 10.0 * no_hmac.energy());
}

}  // namespace
}  // namespace g2g::metrics
