// The encounter-table warm-up: Delegation forwarding quality is built from
// the whole trace history, not just the experiment window. These tests pin
// the mechanism end-to-end through the experiment runner.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"

namespace g2g::core {
namespace {

ExperimentConfig delegation_config(bool warm) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::DelegationLastContact;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 24;
  cfg.sim_window = Duration::hours(3);
  cfg.traffic_window = Duration::hours(2);
  cfg.mean_interarrival = Duration::seconds(15.0);
  cfg.warm_up_tables = warm;
  cfg.seed = 17;
  return cfg;
}

TEST(WarmUp, ColdTablesCrippleDelegation) {
  // Without history, forwarding qualities start at "never met" and the
  // delegation rule barely fires in a 3-hour window.
  const ExperimentResult warm = run_experiment(delegation_config(true));
  const ExperimentResult cold = run_experiment(delegation_config(false));
  EXPECT_GT(warm.avg_replicas, cold.avg_replicas);
  EXPECT_GT(warm.success_rate, cold.success_rate);
}

TEST(WarmUp, DoesNotAffectEpidemic) {
  // Epidemic ignores encounter tables entirely.
  auto cfg = delegation_config(true);
  cfg.protocol = Protocol::Epidemic;
  const ExperimentResult warm = run_experiment(cfg);
  cfg.warm_up_tables = false;
  const ExperimentResult cold = run_experiment(cfg);
  EXPECT_EQ(warm.delivered, cold.delivered);
  EXPECT_DOUBLE_EQ(warm.avg_replicas, cold.avg_replicas);
}

TEST(WarmUp, G2GDelegationLiarDetectionNeedsSharedHistory) {
  // The destination's cross-check compares encounter logs; with cold tables
  // most liars are vacuously consistent ("never met"), with warm history the
  // contradiction shows.
  auto cfg = delegation_config(true);
  cfg.protocol = Protocol::G2GDelegationLastContact;
  cfg.deviation = proto::Behavior::Liar;
  cfg.deviant_count = 8;
  const ExperimentResult warm = run_experiment(cfg);
  EXPECT_GT(warm.detection_rate, 0.5);
  EXPECT_EQ(warm.false_positives, 0u);
}

}  // namespace
}  // namespace g2g::core
