#include "g2g/crypto/identity.hpp"

#include <gtest/gtest.h>

#include "g2g/crypto/sealed_box.hpp"

namespace g2g::crypto {
namespace {

class IdentityTest : public ::testing::Test {
 protected:
  SuitePtr suite_ = make_fast_suite(0xCE47);
  Rng rng_{77};
  Authority authority_{suite_, rng_};
};

TEST_F(IdentityTest, CertificateVerifies) {
  const NodeIdentity id(suite_, NodeId(3), authority_, rng_);
  EXPECT_EQ(id.node(), NodeId(3));
  EXPECT_TRUE(check_certificate(*suite_, authority_.public_key(), id.certificate()));
}

TEST_F(IdentityTest, ForgedCertificateRejected) {
  const NodeIdentity id(suite_, NodeId(3), authority_, rng_);
  Certificate forged = id.certificate();
  forged.node = NodeId(4);  // claim another identity under the same key
  EXPECT_FALSE(check_certificate(*suite_, authority_.public_key(), forged));

  Certificate bad_key = id.certificate();
  bad_key.public_key[0] ^= 1;
  EXPECT_FALSE(check_certificate(*suite_, authority_.public_key(), bad_key));
}

TEST_F(IdentityTest, CertificateFromOtherAuthorityRejected) {
  Rng rng2(78);
  const Authority rogue(suite_, rng2);
  const NodeIdentity id(suite_, NodeId(5), rogue, rng2);
  EXPECT_FALSE(check_certificate(*suite_, authority_.public_key(), id.certificate()));
}

TEST_F(IdentityTest, CertificateEncodingRoundTrip) {
  const NodeIdentity id(suite_, NodeId(9), authority_, rng_);
  const Certificate decoded = Certificate::decode(id.certificate().encode());
  EXPECT_EQ(decoded.node, id.certificate().node);
  EXPECT_EQ(decoded.public_key, id.certificate().public_key);
  EXPECT_EQ(decoded.authority_signature, id.certificate().authority_signature);
}

TEST_F(IdentityTest, SignAndVerifyBetweenIdentities) {
  const NodeIdentity alice(suite_, NodeId(1), authority_, rng_);
  const NodeIdentity bob(suite_, NodeId(2), authority_, rng_);
  const Bytes msg = to_bytes("POR");
  const Bytes sig = alice.sign(msg);
  EXPECT_TRUE(bob.verify_from(alice.certificate(), msg, sig));
  EXPECT_FALSE(bob.verify_from(bob.certificate(), msg, sig));
}

TEST_F(IdentityTest, SharedSecretAgreesAcrossIdentities) {
  const NodeIdentity alice(suite_, NodeId(1), authority_, rng_);
  const NodeIdentity bob(suite_, NodeId(2), authority_, rng_);
  EXPECT_EQ(alice.shared_secret_with(bob.certificate().public_key),
            bob.shared_secret_with(alice.certificate().public_key));
}

TEST_F(IdentityTest, OpenBoxDecryptsSealedContent) {
  const NodeIdentity alice(suite_, NodeId(1), authority_, rng_);
  const Bytes plain = to_bytes("inner message");
  const SealedBox box = seal(*suite_, rng_, alice.certificate().public_key, plain);
  EXPECT_EQ(alice.open_box(box), plain);
}

}  // namespace
}  // namespace g2g::crypto
