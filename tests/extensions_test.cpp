// Tests for the extension features: finite buffers (vanilla protocols) and
// instant PoM broadcast, plus the ablation plumbing in ExperimentConfig.
#include <gtest/gtest.h>

#include "g2g/core/experiment.hpp"
#include "g2g/proto/epidemic.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "proto_test_util.hpp"

namespace g2g::proto {
namespace {

using testutil::Contact;
using testutil::World;
using testutil::make_trace;

TEST(FiniteBuffers, EpidemicEvictsClosestToExpiry) {
  auto cfg = World<EpidemicNode>::default_config();
  cfg.node.max_buffer_messages = 2;
  // Node 1 receives three messages in turn; the cap keeps the two with the
  // latest expiries (i.e. the two youngest).
  World<EpidemicNode> w(make_trace(6, {{0, 1, 100, 110},
                                       {2, 1, 200, 210},
                                       {3, 1, 300, 310},
                                       {1, 5, 400, 410}}),
                        cfg);
  const MessageId oldest = w.send(0, 5, 50);
  const MessageId middle = w.send(2, 5, 150);
  const MessageId newest = w.send(3, 5, 250);
  w.run();
  EXPECT_EQ(w.node(1).buffer_size(), 2u);
  // The oldest message was evicted from node 1's buffer, so only the two
  // younger ones reach node 5 at t=400.
  EXPECT_FALSE(w.delivered(oldest));
  EXPECT_TRUE(w.delivered(middle));
  EXPECT_TRUE(w.delivered(newest));
}

TEST(FiniteBuffers, UnlimitedByDefault) {
  World<EpidemicNode> w(make_trace(6, {{0, 1, 100, 110}, {2, 1, 200, 210},
                                       {3, 1, 300, 310}}));
  w.send(0, 5, 50);
  w.send(2, 5, 150);
  w.send(3, 5, 250);
  w.run();
  EXPECT_EQ(w.node(1).buffer_size(), 3u);
}

TEST(FiniteBuffers, G2GIgnoresCap) {
  // The G2G storage obligation is part of the mechanism: the cap only
  // applies to vanilla buffers.
  auto cfg = World<G2GEpidemicNode>::default_config();
  cfg.node.max_buffer_messages = 1;
  World<G2GEpidemicNode> w(make_trace(6, {{0, 1, 100, 110}, {2, 1, 200, 210}}), cfg);
  w.send(0, 5, 50);
  w.send(2, 5, 150);
  w.run();
  EXPECT_TRUE(w.node(1).stores_message(MessageHash{}) == false);  // structural
  EXPECT_GT(w.node(1).buffered_bytes(), 0);
}

TEST(InstantBroadcast, EveryNodeLearnsImmediately) {
  auto cfg = World<G2GEpidemicNode>::default_config();
  cfg.instant_pom_broadcast = true;
  constexpr double kD1 = 1800.0;
  World<G2GEpidemicNode> w(
      make_trace(6, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}), cfg,
      {{}, {Behavior::Dropper, false}, {}, {}, {}, {}});
  w.send(0, 5, 50);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  // Nodes that never met the accuser still blacklist the culprit.
  for (const std::uint32_t n : {2u, 3u, 4u, 5u}) {
    EXPECT_TRUE(w.node(n).blacklisted(NodeId(1))) << n;
  }
}

TEST(InstantBroadcast, OffByDefaultRequiresGossip) {
  constexpr double kD1 = 1800.0;
  World<G2GEpidemicNode> w(
      make_trace(6, {{0, 1, 100, 110}, {0, 1, 100 + kD1 + 60, 100 + kD1 + 70}}),
      {{}, {Behavior::Dropper, false}, {}, {}, {}, {}});
  w.send(0, 5, 50);
  w.run();
  ASSERT_EQ(w.collector().detections().size(), 1u);
  EXPECT_FALSE(w.node(2).blacklisted(NodeId(1)));  // never gossiped to
}

}  // namespace
}  // namespace g2g::proto

namespace g2g::core {
namespace {

TEST(AblationPlumbing, BufferCapReducesEpidemicDelivery) {
  ExperimentConfig cfg;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.protocol = Protocol::Epidemic;
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(8.0);
  cfg.seed = 5;
  const double unlimited = run_experiment(cfg).success_rate;
  cfg.max_buffer_messages = 5;
  const double capped = run_experiment(cfg).success_rate;
  EXPECT_LT(capped, unlimited);
}

TEST(AblationPlumbing, PerHolderTtlRaisesCost) {
  ExperimentConfig cfg;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.protocol = Protocol::G2GEpidemic;
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(20.0);
  cfg.seed = 6;
  const double global_cost = run_experiment(cfg).avg_replicas;
  cfg.per_holder_ttl = true;
  const double per_holder_cost = run_experiment(cfg).avg_replicas;
  EXPECT_GT(per_holder_cost, global_cost);
}

TEST(AblationPlumbing, InstantBroadcastNeverWorseDetection) {
  ExperimentConfig cfg;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.protocol = Protocol::G2GEpidemic;
  cfg.sim_window = Duration::hours(3);
  cfg.traffic_window = Duration::hours(2);
  cfg.mean_interarrival = Duration::seconds(20.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 6;
  cfg.seed = 7;
  const ExperimentResult gossip = run_experiment(cfg);
  cfg.instant_pom_broadcast = true;
  const ExperimentResult oracle = run_experiment(cfg);
  EXPECT_EQ(gossip.false_positives, 0u);
  EXPECT_EQ(oracle.false_positives, 0u);
  // Oracle dissemination can only evict faster, never reduce detection
  // coverage substantially (same tests happen; sessions close earlier).
  EXPECT_GE(oracle.detection_rate + 0.34, gossip.detection_rate);
}

}  // namespace
}  // namespace g2g::core
