// Property tests for the Montgomery-form U256 kernels: representation
// round-trips, ring laws (commutativity / associativity / distributivity)
// inside the Montgomery domain, precomputation invariants, and Fermat
// checks for fixed primes. The differential corpus against the classic
// oracle lives in crypto_fastpath_diff_test.cpp; this suite pins the
// algebra that makes the representation sound in the first place.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/montgomery.hpp"
#include "g2g/crypto/uint256.hpp"
#include "g2g/util/rng.hpp"

namespace g2g::crypto {
namespace {

// Fixed moduli so the suite stays fast (no group generation): the Mersenne
// prime 2^61 - 1, the secp256k1 field prime, and an odd composite with every
// limb saturated (2^256 - 1 = 3 * 5 * 17 * 257 * ...).
const U256 kMersenne61(0x1FFFFFFFFFFFFFFFULL);
U256 secp256k1_prime() {
  return U256::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
}
U256 all_ones() {
  return U256::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
}

std::vector<U256> property_moduli() {
  return {kMersenne61, secp256k1_prime(), all_ones()};
}

U256 random_residue(Rng& rng, const U256& m) { return random_below(rng, m); }

TEST(MontgomeryProps, PrecomputationInvariantsHold) {
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    // n' cancels the low limb: n0inv * m[0] ≡ -1 (mod 2^64).
    EXPECT_EQ(params.n0inv * m.limb[0] + 1, 0u) << m.to_hex();
    // one and rr are the canonical residues of R and R^2.
    U512 r;
    r.limb[4] = 1;
    EXPECT_EQ(params.one, mod(r, m)) << m.to_hex();
    EXPECT_EQ(params.rr, mul_mod(params.one, params.one, m)) << m.to_hex();
    EXPECT_LT(params.one, m);
    EXPECT_LT(params.rr, m);
  }
}

TEST(MontgomeryProps, RoundTripIsTheIdentityBelowTheModulus) {
  Rng rng(0x2007D);
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    bool borrow = false;
    std::vector<U256> xs{U256(0), U256(1), sub(m, U256(1), borrow)};
    for (int i = 0; i < 20; ++i) xs.push_back(random_residue(rng, m));
    for (const U256& x : xs) {
      EXPECT_EQ(from_mont(to_mont(x, params), params), x) << x.to_hex();
      // The map is a bijection on [0, m): the reverse composition is the
      // identity too.
      EXPECT_EQ(to_mont(from_mont(x, params), params), x) << x.to_hex();
    }
  }
}

TEST(MontgomeryProps, MontMulCommutesAndAssociates) {
  Rng rng(0xA550C);
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    for (int i = 0; i < 15; ++i) {
      const U256 a = to_mont(random_residue(rng, m), params);
      const U256 b = to_mont(random_residue(rng, m), params);
      const U256 c = to_mont(random_residue(rng, m), params);
      EXPECT_EQ(mont_mul(a, b, params), mont_mul(b, a, params));
      EXPECT_EQ(mont_mul(mont_mul(a, b, params), c, params),
                mont_mul(a, mont_mul(b, c, params), params));
    }
  }
}

TEST(MontgomeryProps, MontMulDistributesOverAddMod) {
  // The Montgomery map is linear, so addition works directly on domain
  // values and multiplication distributes across it.
  Rng rng(0xD157);
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    for (int i = 0; i < 15; ++i) {
      const U256 a = to_mont(random_residue(rng, m), params);
      const U256 b = to_mont(random_residue(rng, m), params);
      const U256 c = to_mont(random_residue(rng, m), params);
      EXPECT_EQ(mont_mul(a, add_mod(b, c, m), params),
                add_mod(mont_mul(a, b, params), mont_mul(a, c, params), m));
    }
  }
}

TEST(MontgomeryProps, MontOneIsTheMultiplicativeIdentity) {
  Rng rng(0x1D);
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    for (int i = 0; i < 10; ++i) {
      const U256 x = to_mont(random_residue(rng, m), params);
      EXPECT_EQ(mont_mul(x, params.one, params), x);
    }
  }
}

TEST(MontgomeryProps, LadderEdgeExponents) {
  Rng rng(0x1ADDE);
  for (const U256& m : property_moduli()) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(m);
    const U256 x = to_mont(random_residue(rng, m), params);
    EXPECT_EQ(mont_pow(x, U256(0), params), params.one);
    EXPECT_EQ(mont_pow(x, U256(1), params), x);
    EXPECT_EQ(mont_pow(x, U256(2), params), mont_mul(x, x, params));
  }
}

TEST(MontgomeryProps, FermatLittleTheoremForFixedPrimes) {
  Rng rng(0xFE12A7);
  bool borrow = false;
  for (const U256& p : {kMersenne61, secp256k1_prime()}) {
    const MontgomeryParams params = MontgomeryParams::for_modulus(p);
    const U256 p_minus_1 = sub(p, U256(1), borrow);
    for (int i = 0; i < 5; ++i) {
      U256 a = random_residue(rng, p);
      if (a.is_zero()) a = U256(2);
      // a^(p-1) ≡ 1 (mod p), through the ladder and through both pow_mod_fast
      // routes (Montgomery on, classic fallback off).
      EXPECT_EQ(from_mont(mont_pow(to_mont(a, params), p_minus_1, params), params), U256(1))
          << a.to_hex();
      {
        const FastPathScope scope(true);
        EXPECT_EQ(pow_mod_fast(a, p_minus_1, p), U256(1)) << a.to_hex();
      }
      {
        const FastPathScope scope(false);
        EXPECT_EQ(pow_mod_fast(a, p_minus_1, p), U256(1)) << a.to_hex();
      }
    }
  }
}

}  // namespace
}  // namespace g2g::crypto
