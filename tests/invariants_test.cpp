// Property-style invariant sweeps: for every protocol and a set of seeds,
// run a mid-size experiment and check the invariants that must hold on any
// execution, independent of topology or timing.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "g2g/core/experiment.hpp"
#include "g2g/obs/event.hpp"

namespace g2g::core {
namespace {

ExperimentConfig sweep_config(Protocol p, std::uint64_t seed,
                              proto::Behavior deviation = proto::Behavior::Faithful,
                              std::size_t deviants = 0) {
  ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(2.5);
  cfg.traffic_window = Duration::hours(1.5);
  cfg.mean_interarrival = Duration::seconds(20.0);
  cfg.deviation = deviation;
  cfg.deviant_count = deviants;
  cfg.seed = seed;
  return cfg;
}

using SweepParam = std::tuple<Protocol, std::uint64_t>;

class InvariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InvariantSweep, ConservationAndSanity) {
  const auto [protocol, seed] = GetParam();
  const ExperimentResult r = run_experiment(sweep_config(protocol, seed));

  // Message conservation.
  EXPECT_LE(r.delivered, r.generated);
  EXPECT_GE(r.success_rate, 0.0);
  EXPECT_LE(r.success_rate, 1.0);
  EXPECT_EQ(r.delay_seconds.count(), r.delivered);

  std::uint64_t replica_sum = 0;
  for (const auto& [id, rec] : r.collector.messages()) {
    replica_sum += rec.replicas;
    // Delivery never precedes creation; delays bounded by the window.
    if (rec.delivered.has_value()) {
      EXPECT_GE(*rec.delivered, rec.created);
      EXPECT_LE(*rec.delivered - rec.created, Duration::hours(3));
    }
  }
  EXPECT_EQ(replica_sum, r.collector.total_relays());

  // No deviants => no accusations, no evictions.
  EXPECT_TRUE(r.collector.detections().empty());
  EXPECT_TRUE(r.collector.evictions().empty());
  EXPECT_EQ(r.false_positives, 0u);

  // Cost symmetry: total bytes sent == total bytes received across nodes
  // (every transfer has both endpoints accounted).
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (std::uint32_t n = 0; n < 20; ++n) {
    sent += r.collector.costs(NodeId(n)).bytes_sent;
    received += r.collector.costs(NodeId(n)).bytes_received;
  }
  EXPECT_GT(sent, 0u);
  // Not exactly equal: control messages are accounted one-way by design
  // (signed_control bytes go sender->receiver), so totals must match.
  EXPECT_EQ(sent, received);

  // Memory integrals are non-negative and finite.
  for (std::uint32_t n = 0; n < 20; ++n) {
    const double mem = r.collector.costs(NodeId(n)).memory_byte_seconds;
    EXPECT_GE(mem, 0.0);
    EXPECT_LT(mem, 1e15);
  }
}

TEST_P(InvariantSweep, DeterministicReplay) {
  const auto [protocol, seed] = GetParam();
  const ExperimentResult a = run_experiment(sweep_config(protocol, seed));
  const ExperimentResult b = run_experiment(sweep_config(protocol, seed));
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.avg_replicas, b.avg_replicas);
  for (std::uint32_t n = 0; n < 20; ++n) {
    EXPECT_EQ(a.collector.costs(NodeId(n)).bytes_sent,
              b.collector.costs(NodeId(n)).bytes_sent);
    EXPECT_EQ(a.collector.costs(NodeId(n)).signatures,
              b.collector.costs(NodeId(n)).signatures);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsBySeed, InvariantSweep,
    ::testing::Combine(::testing::Values(Protocol::Epidemic, Protocol::G2GEpidemic,
                                         Protocol::DelegationFrequency,
                                         Protocol::G2GDelegationLastContact),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

using DeviantParam = std::tuple<Protocol, proto::Behavior, std::uint64_t>;

class DeviantSweep : public ::testing::TestWithParam<DeviantParam> {};

TEST_P(DeviantSweep, AccusationsAreSoundAndVerifiable) {
  const auto [protocol, behavior, seed] = GetParam();
  const ExperimentResult r = run_experiment(sweep_config(protocol, seed, behavior, 5));

  // Soundness: every accusation targets an actual deviant.
  EXPECT_EQ(r.false_positives, 0u);
  for (const auto& d : r.collector.detections()) {
    EXPECT_TRUE(std::binary_search(r.deviants.begin(), r.deviants.end(), d.culprit));
    // A deviant can still be a detector for its own traffic (a dropper
    // source faithfully tests its relays), but never accuses itself.
    EXPECT_NE(d.detector, d.culprit);
    EXPECT_GE(d.after_delta1, -Duration::hours(3));  // destination tests may predate Delta1
    EXPECT_LE(d.at, TimePoint::zero() + Duration::hours(3));
  }
  // Eviction set == detected set.
  for (const NodeId n : r.collector.detected_nodes()) {
    EXPECT_TRUE(r.collector.evictions().contains(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeviationsBySeed, DeviantSweep,
    ::testing::Combine(::testing::Values(Protocol::G2GEpidemic,
                                         Protocol::G2GDelegationLastContact),
                       ::testing::Values(proto::Behavior::Dropper, proto::Behavior::Liar,
                                         proto::Behavior::Cheater),
                       ::testing::Values(4ULL, 5ULL)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) + "_" +
                         proto::to_string(std::get<1>(info.param)) + "_seed" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// -- randomized-seed sweeps over the mechanism invariants ---------------------
//
// Seeds are drawn from an Rng rather than hand-picked, so every rebuild of
// the test list walks the same arbitrary-but-reproducible corner of seed
// space. Three invariants must hold on every execution:
//   1. no holder forwards one message to more than relay_fanout relays
//      (the two-relay cap is the Nash mechanism itself);
//   2. a proof of misbehaviour always leads to eviction;
//   3. no honest node is ever evicted.

std::vector<std::uint64_t> randomized_seeds() {
  Rng rng(0x12BA51C5);
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < 6; ++i) seeds.push_back(rng.next() % 100000);
  return seeds;
}

class RandomizedInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedInvariantSweep, RelayFanoutIsNeverExceeded) {
  ExperimentConfig cfg =
      sweep_config(Protocol::G2GEpidemic, GetParam(), proto::Behavior::Dropper, 4);
  cfg.trace_ring = 1u << 20;
  const ExperimentResult r = run_experiment(cfg);
  // The ring did not wrap, so the snapshot holds every emitted event.
  ASSERT_LT(r.events.size(), std::size_t{1} << 20);

  // Step-5 KEY reveals are the moment a forward becomes final: count them
  // per (giver, message). Two exclusions: the source floods epidemically
  // (only *relays* carry the two-forward duty), and handing the message to
  // its destination is delivery, not relay duty.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> forwards;
  for (const auto& e : r.events) {
    if (e.kind != obs::EventKind::HsKeyReveal) continue;
    const auto it = r.collector.messages().find(MessageId(e.ref));
    ASSERT_NE(it, r.collector.messages().end()) << "unknown message ref " << e.ref;
    if (e.a == it->second.src || e.b == it->second.dst) continue;
    ++forwards[{e.a.value(), e.ref}];
  }
  EXPECT_FALSE(forwards.empty());
  for (const auto& [key, count] : forwards) {
    EXPECT_LE(count, 2u) << "node " << key.first << " message " << key.second;
  }
}

TEST_P(RandomizedInvariantSweep, PomImpliesEvictionAndHonestNodesSurvive) {
  const proto::Behavior behaviors[] = {proto::Behavior::Dropper, proto::Behavior::Liar,
                                       proto::Behavior::Cheater};
  const proto::Behavior behavior = behaviors[GetParam() % 3];
  for (const Protocol p : {Protocol::G2GEpidemic, Protocol::G2GDelegationLastContact}) {
    const ExperimentResult r = run_experiment(sweep_config(p, GetParam(), behavior, 5));
    // 2. Every proof of misbehaviour evicts its culprit.
    for (const auto& d : r.collector.detections()) {
      EXPECT_TRUE(r.collector.evictions().contains(d.culprit))
          << to_string(p) << " culprit " << d.culprit.value() << " detected but not evicted";
    }
    // 3. Every eviction targets an actual deviant: honest nodes are safe.
    for (const auto& [node, at] : r.collector.evictions()) {
      EXPECT_TRUE(std::binary_search(r.deviants.begin(), r.deviants.end(), node))
          << to_string(p) << " honest node " << node.value() << " evicted";
    }
    EXPECT_EQ(r.false_positives, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RandomizedInvariantSweep,
                         ::testing::ValuesIn(randomized_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace g2g::core
