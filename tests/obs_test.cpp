// Unit tests for the observability layer (tracer, registry, stage profile)
// plus the central guarantee: tracing never perturbs the simulation.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "g2g/core/experiment.hpp"
#include "g2g/core/json.hpp"
#include "g2g/obs/context.hpp"
#include "g2g/obs/registry.hpp"
#include "g2g/obs/stage.hpp"
#include "g2g/obs/tracer.hpp"

namespace g2g {
namespace {

obs::Event ev(double at_s, obs::EventKind kind, std::uint32_t a, std::uint32_t b,
              std::uint64_t ref = 0, std::int64_t value = 0) {
  return {TimePoint::from_seconds(at_s), kind, NodeId(a), NodeId(b), ref, value};
}

TEST(Tracer, DisabledByDefaultAndDropsEvents) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(ev(1.0, obs::EventKind::ContactUp, 0, 1));
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_TRUE(t.ring().empty());
}

TEST(Tracer, EqualSimTimeKeepsEmissionOrder) {
  obs::Tracer t;
  t.enable_ring(16);
  // All five handshake steps at the same instant: ring order must be the
  // order of emission, not a re-sort.
  t.emit(ev(5.0, obs::EventKind::HsRelayRqst, 0, 1));
  t.emit(ev(5.0, obs::EventKind::HsRelayOk, 1, 0));
  t.emit(ev(5.0, obs::EventKind::HsRelayData, 0, 1));
  t.emit(ev(5.0, obs::EventKind::HsPorSigned, 1, 0));
  t.emit(ev(5.0, obs::EventKind::HsKeyReveal, 0, 1));
  const auto ring = t.ring();
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring[0].kind, obs::EventKind::HsRelayRqst);
  EXPECT_EQ(ring[1].kind, obs::EventKind::HsRelayOk);
  EXPECT_EQ(ring[2].kind, obs::EventKind::HsRelayData);
  EXPECT_EQ(ring[3].kind, obs::EventKind::HsPorSigned);
  EXPECT_EQ(ring[4].kind, obs::EventKind::HsKeyReveal);
}

TEST(Tracer, RingKeepsMostRecentOldestFirst) {
  obs::Tracer t;
  t.enable_ring(3);
  for (int i = 0; i < 7; ++i) {
    t.emit(ev(static_cast<double>(i), obs::EventKind::ContactUp, 0, 1,
              static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(t.emitted(), 7u);
  const auto ring = t.ring();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].ref, 4u);
  EXPECT_EQ(ring[1].ref, 5u);
  EXPECT_EQ(ring[2].ref, 6u);
}

TEST(Tracer, CountingSinkSeesEveryEvent) {
  obs::Tracer t;
  obs::CountingSink sink;
  t.add_sink(&sink);
  EXPECT_TRUE(t.enabled());
  t.emit(ev(1.0, obs::EventKind::Detection, 2, 3));
  t.emit(ev(2.0, obs::EventKind::Detection, 2, 4));
  t.emit(ev(3.0, obs::EventKind::Eviction, 2, 4));
  EXPECT_EQ(sink.count(obs::EventKind::Detection), 2u);
  EXPECT_EQ(sink.count(obs::EventKind::Eviction), 1u);
  EXPECT_EQ(sink.total(), 3u);
}

TEST(Registry, CounterAccumulates) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("msg.relayed");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.value("msg.relayed"), 42u);
  EXPECT_EQ(reg.value("never.created"), 0u);
  // Same name returns the same counter.
  reg.counter("msg.relayed").add();
  EXPECT_EQ(c.value(), 43u);
}

TEST(Registry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("delay", {1.0, 10.0});
  h.observe(0.5);    // <= 1        -> bucket 0
  h.observe(1.0);    // == edge     -> bucket 0 (inclusive)
  h.observe(1.0001); // just above  -> bucket 1
  h.observe(10.0);   // == edge     -> bucket 1
  h.observe(11.0);   // overflow
  const auto& buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);  // 2 edges + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 11.0);
}

TEST(Registry, HistogramRejectsNonAscendingEdges) {
  obs::Registry reg;
  EXPECT_THROW((void)reg.histogram("bad", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("bad2", {2.0, 1.0}), std::invalid_argument);
}

TEST(Registry, CopySnapshotsValues) {
  obs::Registry reg;
  reg.counter("a").add(7);
  obs::Registry snapshot = reg;
  reg.counter("a").add(1);
  EXPECT_EQ(snapshot.value("a"), 7u);
  EXPECT_EQ(reg.value("a"), 8u);
}

TEST(JsonlSink, WritesOneParseableLinePerEvent) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    obs::JsonlSink sink(f);
    obs::Tracer t;
    t.add_sink(&sink);
    t.emit(ev(1.5, obs::EventKind::HsRelayRqst, 3, 7, 42, 9));
    t.emit({TimePoint::from_seconds(2.0), obs::EventKind::BufferAdd, NodeId(4),
            NodeId::invalid(), 0, 128});
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::fflush(f);
  std::rewind(f);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf,
               "{\"t_us\":1500000,\"ev\":\"hs_relay_rqst\",\"a\":3,\"b\":7,"
               "\"ref\":42,\"v\":9}\n");
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  // Invalid counterparty serializes as -1.
  EXPECT_NE(std::string(buf).find("\"ev\":\"buffer_add\",\"a\":4,\"b\":-1"),
            std::string::npos);
  std::fclose(f);
}

// -- spans --------------------------------------------------------------------

/// Collects every SpanRecord the tracer emits, in order.
struct SpanRecordingSink final : obs::EventSink {
  void on_event(const obs::Event&) override {}
  void on_span(const obs::SpanRecord& s) override { spans.push_back(s); }
  std::vector<obs::SpanRecord> spans;
};

TEST(Spans, DisabledTracerReturnsZeroAndIgnoresCloses) {
  obs::Tracer t;
  EXPECT_EQ(t.open_span(TimePoint::from_seconds(1.0), "msg", 0, NodeId(0), NodeId(1)), 0u);
  t.close_span(TimePoint::from_seconds(2.0), 0);  // must be a no-op
  t.open_message_span(TimePoint::from_seconds(1.0), 7, NodeId(0), NodeId(1));
  EXPECT_EQ(t.message_span(7), 0u);
  EXPECT_EQ(t.spans_opened(), 0u);
}

TEST(Spans, IdsAreSequentialAndRecordsKeepEmissionOrder) {
  obs::Tracer t;
  SpanRecordingSink sink;
  t.add_sink(&sink);
  const TimePoint at = TimePoint::from_seconds(5.0);
  const std::uint64_t a = t.open_span(at, "msg", 0, NodeId(0), NodeId(3), 42);
  const std::uint64_t b = t.open_span(at, "relay_session", a, NodeId(0), NodeId(1), 42);
  t.close_span(at, b, 1);
  t.close_span(at, a, 0);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.spans_opened(), 2u);
  ASSERT_EQ(sink.spans.size(), 4u);
  EXPECT_FALSE(sink.spans[0].close);
  EXPECT_STREQ(sink.spans[0].name, "msg");
  EXPECT_EQ(sink.spans[0].ref, 42u);
  EXPECT_EQ(sink.spans[1].parent, a);
  EXPECT_TRUE(sink.spans[2].close);
  EXPECT_EQ(sink.spans[2].id, b);
  EXPECT_EQ(sink.spans[2].value, 1);
  EXPECT_EQ(sink.spans[3].id, a);
  // Wall profiling off: the close record carries the -1 sentinel.
  EXPECT_EQ(sink.spans[2].wall_ns, -1);
}

TEST(Spans, MessageSpansCloseInRefOrderWithDeliveryOutcome) {
  obs::Tracer t;
  SpanRecordingSink sink;
  t.add_sink(&sink);
  const TimePoint at = TimePoint::from_seconds(0.0);
  // Open out of ref order; the bulk close must still be deterministic (ref
  // order), independent of open order.
  t.open_message_span(at, 9, NodeId(0), NodeId(3));
  t.open_message_span(at, 4, NodeId(1), NodeId(2));
  const std::uint64_t span9 = t.message_span(9);
  const std::uint64_t span4 = t.message_span(4);
  EXPECT_NE(span9, 0u);
  EXPECT_NE(span4, 0u);
  t.mark_message_delivered(9);
  t.close_message_spans(TimePoint::from_seconds(100.0));
  ASSERT_EQ(sink.spans.size(), 4u);  // two opens + two closes
  EXPECT_EQ(sink.spans[2].id, span4);
  EXPECT_EQ(sink.spans[2].value, 0);  // never delivered
  EXPECT_EQ(sink.spans[3].id, span9);
  EXPECT_EQ(sink.spans[3].value, 1);  // delivered
  // The table is cleared: later children of these refs become roots.
  EXPECT_EQ(t.message_span(9), 0u);
}

TEST(Spans, WallProfilingStampsCloseRecords) {
  obs::Tracer t;
  SpanRecordingSink sink;
  t.add_sink(&sink);
  t.enable_wall_profiling();
  const std::uint64_t id =
      t.open_span(TimePoint::from_seconds(1.0), "msg", 0, NodeId(0), NodeId(1));
  t.close_span(TimePoint::from_seconds(2.0), id);
  ASSERT_EQ(sink.spans.size(), 2u);
  EXPECT_GE(sink.spans[1].wall_ns, 0);
}

TEST(JsonlSink, SpanLinesAreGolden) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    obs::JsonlSink sink(f);
    obs::Tracer t;
    t.add_sink(&sink);
    const std::uint64_t id =
        t.open_span(TimePoint::from_seconds(1.5), "msg", 0, NodeId(3), NodeId(7), 42);
    t.close_span(TimePoint::from_seconds(2.0), id, 1);
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::fflush(f);
  std::rewind(f);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf,
               "{\"t_us\":1500000,\"span\":\"open\",\"name\":\"msg\",\"id\":1,"
               "\"parent\":0,\"a\":3,\"b\":7,\"ref\":42}\n");
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_STREQ(buf, "{\"t_us\":2000000,\"span\":\"close\",\"id\":1,\"v\":1}\n");
  std::fclose(f);
}

TEST(StageProfile, RecordsAndSums) {
  obs::StageProfile profile;
  {
    obs::StageTimer t(profile, "a");
  }
  profile.add("b", 1.5);
  profile.add("a", 0.5);
  EXPECT_EQ(profile.stages().size(), 3u);
  EXPECT_GE(profile.seconds("a"), 0.5);  // timer adds >= 0 on top
  EXPECT_DOUBLE_EQ(profile.seconds("b"), 1.5);
  EXPECT_GE(profile.total(), 2.0);
}

// -- the determinism guard ----------------------------------------------------

core::ExperimentConfig guard_config() {
  core::ExperimentConfig cfg;
  cfg.protocol = core::Protocol::G2GEpidemic;
  cfg.scenario = core::infocom05_scenario();
  cfg.scenario.trace_config.nodes = 16;
  cfg.scenario.trace_config.duration = Duration::days(2);
  cfg.scenario.window_start = TimePoint::from_seconds(8.0 * 3600.0);
  cfg.sim_window = Duration::hours(2);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(30.0);
  cfg.deviation = proto::Behavior::Dropper;
  cfg.deviant_count = 4;
  cfg.seed = 11;
  return cfg;
}

TEST(ObsDeterminism, TracedRunIsBitIdenticalToUntraced) {
  core::ExperimentConfig plain = guard_config();
  const core::ExperimentResult untraced = core::run_experiment(plain);

  core::ExperimentConfig traced_cfg = guard_config();
  obs::CountingSink sink;
  traced_cfg.trace_sink = &sink;
  traced_cfg.trace_ring = 1024;
  const core::ExperimentResult traced = core::run_experiment(traced_cfg);

  EXPECT_GT(sink.total(), 0u);
  EXPECT_EQ(traced.events.size(), 1024u);
  // Full serialized comparison: headline metrics, every message record, every
  // detection, every counter. Tracing must change nothing.
  EXPECT_EQ(core::to_json(traced), core::to_json(untraced));
}

TEST(ObsDeterminism, SpanTreeIsWellFormedOverAFullRun) {
  core::ExperimentConfig cfg = guard_config();
  SpanRecordingSink sink;
  cfg.trace_sink = &sink;
  (void)core::run_experiment(cfg);
  ASSERT_FALSE(sink.spans.empty());

  std::map<std::uint64_t, bool> live;  // id -> still open
  std::map<std::string, std::uint64_t> opened_by_name;
  std::uint64_t expected_id = 1;
  for (const obs::SpanRecord& s : sink.spans) {
    if (!s.close) {
      // Ids are dense and sequential in emission order.
      EXPECT_EQ(s.id, expected_id++);
      EXPECT_EQ(live.count(s.id), 0u) << "span " << s.id << " opened twice";
      if (s.parent != 0) {
        const auto p = live.find(s.parent);
        ASSERT_NE(p, live.end()) << "span " << s.id << " under unknown parent";
        EXPECT_TRUE(p->second) << "span " << s.id << " under closed parent";
      }
      live[s.id] = true;
      ASSERT_NE(s.name, nullptr);
      ++opened_by_name[s.name];
    } else {
      const auto it = live.find(s.id);
      ASSERT_NE(it, live.end()) << "close of unknown span " << s.id;
      EXPECT_TRUE(it->second) << "span " << s.id << " closed twice";
      it->second = false;
    }
  }
  for (const auto& [id, open] : live) {
    EXPECT_FALSE(open) << "span " << id << " never closed";
  }
  // The G2G run exercises the whole taxonomy: message lifecycles, relay
  // sessions, and (with 4 droppers aboard) audit rounds.
  EXPECT_GT(opened_by_name["msg"], 0u);
  EXPECT_GT(opened_by_name["relay_session"], 0u);
  EXPECT_GT(opened_by_name["audit_round"], 0u);
}

TEST(ObsDeterminism, TracedJsonlIsByteIdenticalAcrossRuns) {
  const auto jsonl_of = [](const core::ExperimentConfig& base) {
    std::FILE* f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    {
      obs::JsonlSink sink(f);
      core::ExperimentConfig cfg = base;
      cfg.trace_sink = &sink;
      (void)core::run_experiment(cfg);
    }
    std::fflush(f);
    std::rewind(f);
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    return text;
  };
  const std::string first = jsonl_of(guard_config());
  const std::string second = jsonl_of(guard_config());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Span records are on the stream (and therefore covered by the identity).
  EXPECT_NE(first.find("\"span\":\"open\""), std::string::npos);
  EXPECT_NE(first.find("\"span\":\"close\""), std::string::npos);
}

TEST(ObsExperiment, CountersMatchHeadlineMetrics) {
  const core::ExperimentResult r = core::run_experiment(guard_config());
  EXPECT_EQ(r.counters.value("msg.generated"), r.generated);
  EXPECT_EQ(r.counters.value("msg.delivered"), r.delivered);
  EXPECT_EQ(r.counters.value("msg.relayed"), r.collector.total_relays());
  EXPECT_EQ(r.counters.value("detect.detections"), r.collector.detections().size());
  // G2G handshakes happened, and every completed one is one relay.
  EXPECT_GT(r.counters.value("hs.started"), 0u);
  EXPECT_EQ(r.counters.value("hs.completed"), r.collector.total_relays());
  // Sessions split cleanly into opened + refused.
  EXPECT_EQ(r.counters.value("session.opened") + r.counters.value("session.refused"),
            r.counters.value("session.contacts"));
}

TEST(ObsExperiment, StageProfileCoversThePipeline) {
  const core::ExperimentResult r = core::run_experiment(guard_config());
  for (const char* stage : {"trace_gen", "communities", "warm_up", "simulation",
                            "extraction"}) {
    bool found = false;
    for (const auto& s : r.stages.stages()) found |= s.name == stage;
    EXPECT_TRUE(found) << "missing stage " << stage;
  }
  EXPECT_GT(r.stages.total(), 0.0);
}

TEST(ObsExperiment, RingSnapshotContainsHandshakeSteps) {
  core::ExperimentConfig cfg = guard_config();
  cfg.trace_ring = 200000;
  const core::ExperimentResult r = core::run_experiment(cfg);
  obs::CountingSink counts;
  for (const auto& e : r.events) counts.on_event(e);
  EXPECT_GT(counts.count(obs::EventKind::HsRelayRqst), 0u);
  EXPECT_GT(counts.count(obs::EventKind::HsRelayOk), 0u);
  EXPECT_GT(counts.count(obs::EventKind::HsRelayData), 0u);
  EXPECT_GT(counts.count(obs::EventKind::HsPorSigned), 0u);
  EXPECT_GT(counts.count(obs::EventKind::HsKeyReveal), 0u);
  EXPECT_GT(counts.count(obs::EventKind::Detection), 0u);
  // Ring events never run backwards in time.
  for (std::size_t i = 1; i < r.events.size(); ++i) {
    EXPECT_LE(r.events[i - 1].at, r.events[i].at);
  }
}

}  // namespace
}  // namespace g2g
