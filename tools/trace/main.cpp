// g2g-trace CLI: analyze a JSONL trace produced with --trace-out.
//
//   g2g-trace trace.jsonl          print the report
//   g2g-trace --check trace.jsonl  also exit 1 when anomalies were found
//   g2g-trace -                    read the trace from stdin
//
// Exit codes: 0 clean, 1 anomalies found (with --check), 2 usage/IO error.
#include <fstream>
#include <iostream>
#include <string>

#include "trace.hpp"

int main(int argc, char** argv) {
  bool check = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: g2g-trace [--check] <trace.jsonl|->\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "g2g-trace: unknown option " << arg << '\n';
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "g2g-trace: more than one input\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: g2g-trace [--check] <trace.jsonl|->\n";
    return 2;
  }

  g2g::tracetool::Analysis analysis;
  if (path == "-") {
    analysis = g2g::tracetool::analyze(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "g2g-trace: cannot open " << path << '\n';
      return 2;
    }
    analysis = g2g::tracetool::analyze(in);
  }
  g2g::tracetool::print_report(std::cout, analysis);
  return check && !analysis.anomalies.empty() ? 1 : 0;
}
