#include "trace.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <set>
#include <tuple>

#include "json.hpp"

namespace g2g::tracetool {

namespace {

struct EventLine {
  long long t = 0;
  std::string ev;
  long long a = -1;
  long long b = -1;
  std::uint64_t ref = 0;
  long long v = 0;
};

std::string at_line(std::size_t line_no) {
  return "line " + std::to_string(line_no) + ": ";
}

std::string fmt_minutes(long long us) {
  if (us < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(us) / 60e6);
  return buf;
}

void pad(std::string& s, std::size_t width) {
  while (s.size() < width) s.push_back(' ');
}

}  // namespace

Analysis analyze(std::istream& in) {
  Analysis a;
  // Working state the final Analysis does not need to carry.
  long long last_t = -1;
  bool have_key_reveal = false;
  // (ref, giver, taker, t) of every step-5 KeyReveal, to certify relays.
  std::set<std::tuple<std::uint64_t, long long, long long, long long>> key_reveals;
  struct RelaySeen {
    std::size_t line;
    std::uint64_t ref;
    long long from, to, t;
  };
  std::vector<RelaySeen> relays_seen;
  // (ref, t) of successful PoR verifications / storage challenges, to certify
  // audit passes.
  std::set<std::pair<std::uint64_t, long long>> pors_ok;
  std::set<std::pair<std::uint64_t, long long>> storage_challenged;
  struct AuditPass {
    std::size_t line;
    std::uint64_t ref;
    long long t, v;
  };
  std::vector<AuditPass> audit_passes;
  std::map<long long, long long> first_fail;  // culprit -> earliest failed check
  std::map<long long, std::set<long long>> learners;  // culprit -> accepting nodes
  std::set<long long> evicted;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const tools::ParseResult parsed = tools::parse_json(line);
    if (!parsed.ok) {
      a.anomalies.push_back(at_line(line_no) + "unparseable JSON (" + parsed.error + ")");
      continue;
    }
    const tools::Value& obj = parsed.value;
    const tools::Value* t_us = obj.find("t_us");
    if (t_us == nullptr) {
      a.anomalies.push_back(at_line(line_no) + "missing t_us");
      continue;
    }
    const long long t = t_us->int_or(0);
    if (t < last_t) {
      a.anomalies.push_back(at_line(line_no) + "t_us went backwards (" +
                            std::to_string(t) + " after " + std::to_string(last_t) + ")");
    }
    last_t = std::max(last_t, t);

    if (const tools::Value* span = obj.find("span")) {
      ++a.span_lines;
      const std::uint64_t id =
          static_cast<std::uint64_t>(obj.find("id") ? obj.find("id")->int_or(0) : 0);
      if (span->str_or("") == "open") {
        const std::uint64_t parent = static_cast<std::uint64_t>(
            obj.find("parent") ? obj.find("parent")->int_or(0) : 0);
        SpanInfo info;
        info.name = obj.find("name") ? obj.find("name")->str_or("?") : "?";
        info.open_us = t;
        info.parent = parent;
        info.a = obj.find("a") ? obj.find("a")->int_or(-1) : -1;
        info.b = obj.find("b") ? obj.find("b")->int_or(-1) : -1;
        info.ref = static_cast<std::uint64_t>(
            obj.find("ref") ? obj.find("ref")->int_or(0) : 0);
        if (a.spans.count(id) != 0) {
          a.anomalies.push_back(at_line(line_no) + "span " + std::to_string(id) +
                                " opened twice");
        }
        if (parent != 0) {
          const auto p = a.spans.find(parent);
          if (p == a.spans.end()) {
            a.anomalies.push_back(at_line(line_no) + "span " + std::to_string(id) +
                                  " opened under unknown parent " + std::to_string(parent));
          } else if (p->second.closed) {
            a.anomalies.push_back(at_line(line_no) + "span " + std::to_string(id) +
                                  " opened under closed parent " + std::to_string(parent));
          }
        }
        a.spans[id] = std::move(info);
      } else {
        const auto it = a.spans.find(id);
        if (it == a.spans.end()) {
          a.anomalies.push_back(at_line(line_no) + "close of unknown span " +
                                std::to_string(id));
        } else if (it->second.closed) {
          a.anomalies.push_back(at_line(line_no) + "span " + std::to_string(id) +
                                " closed twice");
        } else {
          it->second.closed = true;
          it->second.close_us = t;
          it->second.value = obj.find("v") ? obj.find("v")->int_or(0) : 0;
          it->second.wall_ns = obj.find("wall_ns") ? obj.find("wall_ns")->int_or(-1) : -1;
        }
      }
      continue;
    }

    const tools::Value* ev = obj.find("ev");
    if (ev == nullptr) {
      a.anomalies.push_back(at_line(line_no) + "neither event nor span line");
      continue;
    }
    ++a.event_lines;
    EventLine e;
    e.t = t;
    e.ev = ev->str_or("?");
    e.a = obj.find("a") ? obj.find("a")->int_or(-1) : -1;
    e.b = obj.find("b") ? obj.find("b")->int_or(-1) : -1;
    e.ref = static_cast<std::uint64_t>(obj.find("ref") ? obj.find("ref")->int_or(0) : 0);
    e.v = obj.find("v") ? obj.find("v")->int_or(0) : 0;
    ++a.event_counts[e.ev];

    if (e.ev == "message_generated") {
      MessageStats& m = a.messages[e.ref];
      m.generated_us = e.t;
      m.src = e.a;
      m.dst = e.b;
    } else if (e.ev == "message_relayed") {
      const auto it = a.messages.find(e.ref);
      if (it == a.messages.end()) {
        a.anomalies.push_back(at_line(line_no) + "relay of never-generated message " +
                              std::to_string(e.ref));
      } else {
        ++it->second.relays;
      }
      relays_seen.push_back({line_no, e.ref, e.a, e.b, e.t});
    } else if (e.ev == "message_delivered") {
      auto& m = a.messages[e.ref];
      if (m.delivered_us < 0) m.delivered_us = e.t;
    } else if (e.ev == "hs_key_reveal") {
      have_key_reveal = true;
      key_reveals.insert({e.ref, e.a, e.b, e.t});
    } else if (e.ev == "por_verified") {
      if (e.v == 1) pors_ok.insert({e.ref, e.t});
    } else if (e.ev == "storage_challenge") {
      storage_challenged.insert({e.ref, e.t});
    } else if (e.ev == "test_by_sender") {
      if (e.v == 0 && e.b >= 0) {
        const auto [it, inserted] = first_fail.emplace(e.b, e.t);
        if (!inserted) it->second = std::min(it->second, e.t);
      }
      if (e.v == 1 || e.v == 2) audit_passes.push_back({line_no, e.ref, e.t, e.v});
    } else if (e.ev == "test_by_destination" || e.ev == "chain_check") {
      if (e.v == 0 && e.b >= 0) {
        const auto [it, inserted] = first_fail.emplace(e.b, e.t);
        if (!inserted) it->second = std::min(it->second, e.t);
      }
    } else if (e.ev == "detection") {
      // Fallback deviation marker when no explicit failed check preceded it.
      if (e.b >= 0) first_fail.emplace(e.b, e.t);
    } else if (e.ev == "pom_issued") {
      if (e.b >= 0) {
        DetectionTimeline& tl = a.timelines[e.b];
        if (tl.first_pom_us < 0 || e.t < tl.first_pom_us) tl.first_pom_us = e.t;
      }
    } else if (e.ev == "eviction") {
      if (e.b >= 0) {
        evicted.insert(e.b);
        DetectionTimeline& tl = a.timelines[e.b];
        if (tl.eviction_us < 0 || e.t < tl.eviction_us) tl.eviction_us = e.t;
      }
    } else if (e.ev == "pom_learned") {
      if (e.v == 1 && e.b >= 0) {
        DetectionTimeline& tl = a.timelines[e.b];
        tl.spread_done_us = std::max(tl.spread_done_us, e.t);
        if (e.a >= 0) learners[e.b].insert(e.a);
      }
    }
  }

  // End-of-stream checks. Every open span must have closed.
  for (const auto& [id, info] : a.spans) {
    if (!info.closed) {
      a.anomalies.push_back("span " + std::to_string(id) + " (" + info.name +
                            ") never closed");
    }
  }
  // Hold without KeyReveal: every relayed replica must be preceded by the
  // step-5 reveal of the same (msg, giver, taker) at the same instant. The
  // check is skipped for traces without a G2G handshake at all.
  if (have_key_reveal) {
    for (const RelaySeen& r : relays_seen) {
      if (key_reveals.count({r.ref, r.from, r.to, r.t}) == 0) {
        a.anomalies.push_back(at_line(r.line) + "message " + std::to_string(r.ref) +
                              " relayed " + std::to_string(r.from) + "->" +
                              std::to_string(r.to) + " without a key_reveal");
      }
    }
  }
  // Audit without proof: a passing test needs the matching evidence events.
  for (const AuditPass& p : audit_passes) {
    if (p.v == 1 && pors_ok.count({p.ref, p.t}) == 0) {
      a.anomalies.push_back(at_line(p.line) + "test_by_sender passed on PoRs for message " +
                            std::to_string(p.ref) + " without a verified PoR");
    }
    if (p.v == 2 && storage_challenged.count({p.ref, p.t}) == 0) {
      a.anomalies.push_back(at_line(p.line) +
                            "test_by_sender passed on storage for message " +
                            std::to_string(p.ref) + " without a storage challenge");
    }
  }
  // PoM without eviction, and the deviation/learner fold-in.
  for (auto& [culprit, tl] : a.timelines) {
    const auto f = first_fail.find(culprit);
    if (f != first_fail.end()) tl.first_deviation_us = f->second;
    const auto l = learners.find(culprit);
    if (l != learners.end()) tl.learners = l->second.size();
    if (tl.first_pom_us >= 0 && evicted.count(culprit) == 0) {
      a.anomalies.push_back("pom issued against node " + std::to_string(culprit) +
                            " but it was never evicted");
    }
  }
  return a;
}

void print_report(std::ostream& out, const Analysis& a) {
  out << "== g2g-trace report ==\n";
  out << "lines: " << a.event_lines << " events, " << a.span_lines << " span records\n\n";

  std::size_t delivered = 0;
  for (const auto& [ref, m] : a.messages) {
    if (m.delivered_us >= 0) ++delivered;
  }
  out << "messages: " << a.messages.size() << " generated, " << delivered << " delivered";
  if (!a.messages.empty()) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f",
                  100.0 * static_cast<double>(delivered) /
                      static_cast<double>(a.messages.size()));
    out << " (" << pct << "%)";
  }
  out << '\n';

  // Delivery latency histogram (sim time from generation to first delivery).
  static const struct { const char* label; long long bound_us; } kBuckets[] = {
      {"<=1m", 60LL * 1000000}, {"<=5m", 300LL * 1000000},
      {"<=15m", 900LL * 1000000}, {"<=30m", 1800LL * 1000000},
      {"<=1h", 3600LL * 1000000}, {"<=2h", 7200LL * 1000000},
      {">2h", -1}};
  std::size_t latency[7] = {};
  std::size_t hops[5] = {};  // 1, 2, 3, 4, >=5
  for (const auto& [ref, m] : a.messages) {
    if (m.delivered_us < 0 || m.generated_us < 0) continue;
    const long long lat = m.delivered_us - m.generated_us;
    std::size_t bucket = 6;
    for (std::size_t i = 0; i < 6; ++i) {
      if (lat <= kBuckets[i].bound_us) { bucket = i; break; }
    }
    ++latency[bucket];
    const std::size_t h = m.relays == 0 ? 1 : m.relays;
    ++hops[std::min<std::size_t>(h, 5) - 1];
  }
  out << "delivery latency (sim time):\n";
  for (std::size_t i = 0; i < 7; ++i) {
    std::string label = kBuckets[i].label;
    pad(label, 6);
    out << "  " << label << ' ' << latency[i] << '\n';
  }
  out << "relay hops per delivered message (all replicas):\n";
  static const char* kHopLabels[] = {"1", "2", "3", "4", ">=5"};
  for (std::size_t i = 0; i < 5; ++i) {
    std::string label = kHopLabels[i];
    pad(label, 6);
    out << "  " << label << ' ' << hops[i] << '\n';
  }
  out << '\n';

  out << "handshake stages:\n";
  static const char* kStages[] = {"hs_relay_rqst", "hs_relay_ok", "hs_relay_data",
                                  "hs_por_signed", "hs_key_reveal", "fq_rqst", "fq_resp"};
  for (const char* stage : kStages) {
    const auto it = a.event_counts.find(stage);
    if (it == a.event_counts.end()) continue;
    std::string label = stage;
    pad(label, 14);
    out << "  " << label << ' ' << it->second << '\n';
  }
  out << '\n';

  out << "spans:\n";
  // name -> (opened, closed, outcome -> count); map keys give sorted order.
  std::map<std::string, std::tuple<std::size_t, std::size_t, std::map<long long, std::size_t>>>
      by_name;
  for (const auto& [id, info] : a.spans) {
    auto& [opened, closed, outcomes] = by_name[info.name];
    ++opened;
    if (info.closed) {
      ++closed;
      ++outcomes[info.value];
    }
  }
  out << "  name           opened  closed  outcomes\n";
  for (const auto& [name, row] : by_name) {
    const auto& [opened, closed, outcomes] = row;
    std::string label = name;
    pad(label, 14);
    std::string opened_s = std::to_string(opened);
    pad(opened_s, 7);
    std::string closed_s = std::to_string(closed);
    pad(closed_s, 7);
    out << "  " << label << ' ' << opened_s << ' ' << closed_s << ' ';
    bool first = true;
    for (const auto& [value, count] : outcomes) {
      if (!first) out << ' ';
      first = false;
      out << value << '=' << count;
    }
    out << '\n';
  }
  out << '\n';

  out << "detection timelines (sim minutes):\n";
  if (a.timelines.empty()) {
    out << "  (no convictions in this trace)\n";
  } else {
    out << "  culprit  first_deviation  first_pom  eviction  spread_done  learners\n";
    for (const auto& [culprit, tl] : a.timelines) {
      std::string c = std::to_string(culprit);
      pad(c, 8);
      std::string dev = fmt_minutes(tl.first_deviation_us);
      pad(dev, 16);
      std::string pom = fmt_minutes(tl.first_pom_us);
      pad(pom, 10);
      std::string ev = fmt_minutes(tl.eviction_us);
      pad(ev, 9);
      std::string spread = fmt_minutes(tl.spread_done_us);
      pad(spread, 12);
      out << "  " << c << ' ' << dev << ' ' << pom << ' ' << ev << ' ' << spread << ' '
          << tl.learners << '\n';
    }
  }
  out << '\n';

  out << "anomalies: " << a.anomalies.size() << '\n';
  for (const std::string& anomaly : a.anomalies) out << "  - " << anomaly << '\n';
}

}  // namespace g2g::tracetool
