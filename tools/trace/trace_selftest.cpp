// Self-test of the trace analyzer: anomaly rules on synthetic streams, the
// reconstruction logic, and a golden-output check over the checked-in
// miniature trace (fixtures/mini_trace.jsonl + mini_trace.report).
#include "trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace g2g::tracetool {
namespace {

Analysis analyze_text(const std::string& text) {
  std::istringstream in(text);
  return analyze(in);
}

TEST(TraceAnomalies, CleanStreamHasNone) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"message_generated\",\"a\":0,\"b\":1,\"ref\":7,\"v\":0}\n"
      "{\"t_us\":0,\"span\":\"open\",\"name\":\"msg\",\"id\":1,\"parent\":0,"
      "\"a\":0,\"b\":1,\"ref\":7}\n"
      "{\"t_us\":5,\"span\":\"close\",\"id\":1,\"v\":0}\n");
  EXPECT_TRUE(a.anomalies.empty());
  EXPECT_EQ(a.event_lines, 1u);
  EXPECT_EQ(a.span_lines, 2u);
}

TEST(TraceAnomalies, CloseOfUnknownSpan) {
  const Analysis a = analyze_text("{\"t_us\":0,\"span\":\"close\",\"id\":9,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("unknown span 9"), std::string::npos);
}

TEST(TraceAnomalies, DoubleClose) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"span\":\"open\",\"name\":\"msg\",\"id\":1,\"parent\":0,"
      "\"a\":0,\"b\":1,\"ref\":1}\n"
      "{\"t_us\":1,\"span\":\"close\",\"id\":1,\"v\":0}\n"
      "{\"t_us\":2,\"span\":\"close\",\"id\":1,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("closed twice"), std::string::npos);
}

TEST(TraceAnomalies, ChildUnderClosedParent) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"span\":\"open\",\"name\":\"msg\",\"id\":1,\"parent\":0,"
      "\"a\":0,\"b\":1,\"ref\":1}\n"
      "{\"t_us\":1,\"span\":\"close\",\"id\":1,\"v\":0}\n"
      "{\"t_us\":2,\"span\":\"open\",\"name\":\"relay_session\",\"id\":2,"
      "\"parent\":1,\"a\":0,\"b\":1,\"ref\":1}\n"
      "{\"t_us\":3,\"span\":\"close\",\"id\":2,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("closed parent"), std::string::npos);
}

TEST(TraceAnomalies, UnclosedSpanAtEof) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"span\":\"open\",\"name\":\"msg\",\"id\":1,\"parent\":0,"
      "\"a\":0,\"b\":1,\"ref\":1}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("never closed"), std::string::npos);
}

TEST(TraceAnomalies, TimeGoingBackwards) {
  const Analysis a = analyze_text(
      "{\"t_us\":10,\"ev\":\"contact_up\",\"a\":0,\"b\":1,\"ref\":0,\"v\":0}\n"
      "{\"t_us\":5,\"ev\":\"contact_up\",\"a\":0,\"b\":1,\"ref\":0,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("t_us went backwards"), std::string::npos);
}

TEST(TraceAnomalies, RelayWithoutKeyReveal) {
  // One key_reveal exists (so the G2G check arms), but the second relay has
  // no matching step-5 reveal — the "hold without KeyReveal" anomaly.
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"message_generated\",\"a\":0,\"b\":3,\"ref\":1,\"v\":0}\n"
      "{\"t_us\":1,\"ev\":\"hs_key_reveal\",\"a\":0,\"b\":1,\"ref\":1,\"v\":0}\n"
      "{\"t_us\":1,\"ev\":\"message_relayed\",\"a\":0,\"b\":1,\"ref\":1,\"v\":1}\n"
      "{\"t_us\":2,\"ev\":\"message_relayed\",\"a\":1,\"b\":2,\"ref\":1,\"v\":1}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("without a key_reveal"), std::string::npos);
}

TEST(TraceAnomalies, KeyRevealCheckSkippedWithoutHandshakes) {
  // Traces from non-G2G protocols carry relays but no handshake events; the
  // KeyReveal rule must not fire there.
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"message_generated\",\"a\":0,\"b\":3,\"ref\":1,\"v\":0}\n"
      "{\"t_us\":1,\"ev\":\"message_relayed\",\"a\":0,\"b\":1,\"ref\":1,\"v\":1}\n");
  EXPECT_TRUE(a.anomalies.empty());
}

TEST(TraceAnomalies, AuditPassWithoutProof) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"test_by_sender\",\"a\":0,\"b\":1,\"ref\":1,\"v\":1}\n"
      "{\"t_us\":1,\"ev\":\"test_by_sender\",\"a\":0,\"b\":2,\"ref\":2,\"v\":2}\n");
  ASSERT_EQ(a.anomalies.size(), 2u);
  EXPECT_NE(a.anomalies[0].find("without a verified PoR"), std::string::npos);
  EXPECT_NE(a.anomalies[1].find("without a storage challenge"), std::string::npos);
}

TEST(TraceAnomalies, PomWithoutEviction) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"pom_issued\",\"a\":0,\"b\":5,\"ref\":1,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("never evicted"), std::string::npos);
}

TEST(TraceAnomalies, RelayOfNeverGeneratedMessage) {
  const Analysis a = analyze_text(
      "{\"t_us\":0,\"ev\":\"message_relayed\",\"a\":0,\"b\":1,\"ref\":9,\"v\":0}\n");
  ASSERT_EQ(a.anomalies.size(), 1u);
  EXPECT_NE(a.anomalies[0].find("never-generated"), std::string::npos);
}

TEST(TraceReconstruction, MiniTraceTimelinesAndStats) {
  std::ifstream in(std::string(G2G_TRACE_FIXTURE_DIR) + "/mini_trace.jsonl");
  ASSERT_TRUE(in.is_open());
  const Analysis a = analyze(in);
  EXPECT_TRUE(a.anomalies.empty());

  ASSERT_EQ(a.messages.size(), 2u);
  const MessageStats& m1 = a.messages.at(1);
  EXPECT_EQ(m1.generated_us, 0);
  EXPECT_EQ(m1.delivered_us, 180000000);
  EXPECT_EQ(m1.relays, 2u);
  EXPECT_EQ(a.messages.at(2).delivered_us, -1);

  ASSERT_EQ(a.spans.size(), 9u);
  for (const auto& [id, span] : a.spans) EXPECT_TRUE(span.closed) << "span " << id;

  // The dropper (node 2): failed test -> PoM -> eviction at 15 sim-minutes,
  // gossip spread done at 16, three distinct learners.
  ASSERT_EQ(a.timelines.size(), 1u);
  const DetectionTimeline& tl = a.timelines.at(2);
  EXPECT_EQ(tl.first_deviation_us, 900000000);
  EXPECT_EQ(tl.first_pom_us, 900000000);
  EXPECT_EQ(tl.eviction_us, 900000000);
  EXPECT_EQ(tl.spread_done_us, 960000000);
  EXPECT_EQ(tl.learners, 3u);
}

TEST(TraceReport, GoldenOutputOverMiniTrace) {
  std::ifstream in(std::string(G2G_TRACE_FIXTURE_DIR) + "/mini_trace.jsonl");
  ASSERT_TRUE(in.is_open());
  const Analysis a = analyze(in);
  std::ostringstream got;
  print_report(got, a);

  std::ifstream golden_in(std::string(G2G_TRACE_FIXTURE_DIR) + "/mini_trace.report");
  ASSERT_TRUE(golden_in.is_open());
  std::ostringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(got.str(), golden.str());
}

}  // namespace
}  // namespace g2g::tracetool
