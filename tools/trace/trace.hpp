// g2g-trace: the trace analyzer behind the span/causality layer.
//
// Ingests the JSONL stream obs::JsonlSink writes (flat events + span
// open/close lines, see docs/OBSERVABILITY.md) and reconstructs the
// per-message view the paper's figures are about:
//
//   * delivery latency and hop-count histograms over the msg spans,
//   * handshake stage breakdowns (steps 1-5, relay_session outcomes,
//     audit_round outcomes),
//   * detection timelines per convicted node: first observed deviation ->
//     first PoM -> eviction -> gossip spread,
//   * protocol-anomaly checks: a relay hold without the step-5 KeyReveal, an
//     audit pass without the proof that justifies it, a PoM without the
//     matching eviction, and span-tree violations (close without open,
//     double close, child opened under a closed parent, unclosed at EOF).
//
// A faithful run produces zero anomalies; the checks exist to catch protocol
// regressions from the evidence stream alone, without rerunning the sim.
// Zero dependencies beyond tools/support, same pattern as tools/lint.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace g2g::tracetool {

struct MessageStats {
  long long generated_us = -1;
  long long delivered_us = -1;  ///< -1 = never delivered
  std::size_t relays = 0;       ///< message_relayed events (hops over all replicas)
  long long src = -1;
  long long dst = -1;
};

struct SpanInfo {
  std::string name;
  long long open_us = 0;
  long long close_us = -1;  ///< -1 = never closed (anomaly at EOF)
  std::uint64_t parent = 0;
  long long a = -1;
  long long b = -1;
  std::uint64_t ref = 0;
  long long value = 0;      ///< close outcome
  long long wall_ns = -1;
  bool closed = false;
};

/// One convicted node's detection timeline, all sim-time microseconds
/// (-1 = the phase never appeared in the trace).
struct DetectionTimeline {
  long long first_deviation_us = -1;  ///< earliest failed test/check against it
  long long first_pom_us = -1;        ///< earliest pom_issued
  long long eviction_us = -1;         ///< earliest eviction
  long long spread_done_us = -1;      ///< latest accepted pom_learned
  std::size_t learners = 0;           ///< distinct nodes that accepted the PoM
};

struct Analysis {
  std::size_t event_lines = 0;
  std::size_t span_lines = 0;
  std::map<std::string, std::size_t> event_counts;          ///< by "ev" name
  std::map<std::uint64_t, MessageStats> messages;           ///< by ref
  std::map<std::uint64_t, SpanInfo> spans;                  ///< by span id
  std::map<long long, DetectionTimeline> timelines;         ///< by culprit id
  std::vector<std::string> anomalies;                       ///< human-readable, ordered
};

/// Parse + analyze one JSONL trace stream (a file or stdin).
[[nodiscard]] Analysis analyze(std::istream& in);

/// The full human-readable report (histograms, breakdowns, timelines,
/// anomalies). Deterministic for a deterministic trace — golden-tested.
void print_report(std::ostream& out, const Analysis& a);

}  // namespace g2g::tracetool
