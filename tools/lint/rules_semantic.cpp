// Token/scope rules for the arena-view lifetime discipline (DESIGN.md §4c):
//
//   view-escape          a non-owning view (BytesView, any *View) stored in a
//                        class member, static, or container outlives the
//                        encode it borrowed from; the next arena reset turns
//                        it into a dangling span.
//   arena-reset-safety   straight-line reaching analysis inside each function
//                        body: a view-typed local read after arena().reset()
//                        (or any *arena*.reset()) in the same scope refers to
//                        recycled memory. Reassignment un-stales; staleness
//                        from a reset inside a nested scope ends when that
//                        scope closes (a conditional reset must not poison
//                        the straight-line path after it).
//
// Both are heuristic by design — no symbol table, no templates — but they are
// tuned to the repo's idiom: views come from arena_encode()/decode views, and
// resets are spelled arena().reset() / wire_arena().reset() / arena_.reset().
#include <cstddef>
#include <string>
#include <vector>

#include "lint_internal.hpp"

namespace g2g::lint::internal {

namespace {

bool is_collection(const std::string& t) {
  return t == "vector" || t == "map" || t == "unordered_map" || t == "set" ||
         t == "unordered_set" || t == "multimap" || t == "multiset" || t == "deque" ||
         t == "list" || t == "forward_list" || t == "array" || t == "stack" ||
         t == "queue" || t == "priority_queue";
}

bool is_aggregate(const std::string& t) {
  return t == "optional" || t == "pair" || t == "tuple" || t == "variant" ||
         t == "span";
}

bool at_member_scope(const ScopeMap& scopes, int scope_id) {
  const ScopeKind k = scopes.scopes[static_cast<std::size_t>(scope_id)].kind;
  return k == ScopeKind::Class || k == ScopeKind::Top || k == ScopeKind::Namespace;
}

/// Classes named *View are themselves the view layer; their members are the
/// borrowed pointers by definition.
bool owner_is_view_class(const ScopeMap& scopes, int scope_id) {
  const int cls = scopes.nearest(scope_id, ScopeKind::Class);
  return cls >= 0 && is_view_type(scopes.scopes[static_cast<std::size_t>(cls)].name);
}

}  // namespace

void scan_view_escape(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  const auto& toks = ctx.lexed.tokens;
  const auto& scopes = ctx.scopes;

  int paren_depth = 0;
  int angle_depth = 0;
  bool stmt_alias = false;   // statement is using/typedef/friend: a type name,
                             // not storage
  bool stmt_static = false;  // statement head carries `static`

  const auto at = [&](std::size_t i) -> const Token& { return toks[i]; };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = at(i);
    if (t.kind == TokKind::Punct) {
      if (t.text == "(") ++paren_depth;
      else if (t.text == ")") paren_depth = paren_depth > 0 ? paren_depth - 1 : 0;
      else if (t.text == "<" && i > 0 && at(i - 1).kind == TokKind::Ident) ++angle_depth;
      else if (t.text == ">") angle_depth = angle_depth > 0 ? angle_depth - 1 : 0;
      else if (t.text == ";" || t.text == "{" || t.text == "}") {
        angle_depth = 0;
        stmt_alias = false;
        stmt_static = false;
      }
      continue;
    }
    if (t.kind != TokKind::Ident) continue;
    if (t.text == "using" || t.text == "typedef" || t.text == "friend") {
      stmt_alias = true;
      continue;
    }
    if (t.text == "static") {
      stmt_static = true;
      continue;
    }
    if (stmt_alias) continue;

    const int scope_id = scopes.scope_of_token[i];

    // Pattern B: container of views — std::vector<BytesView> etc. Collections
    // are a finding in any scope (even a local vector of views outlives the
    // spans it copied in as soon as the arena resets); single-value wrappers
    // (optional/pair/...) only when stored at member/static scope.
    if ((is_collection(t.text) || is_aggregate(t.text)) && i + 1 < toks.size() &&
        at(i + 1).kind == TokKind::Punct && at(i + 1).text == "<" && paren_depth == 0) {
      const bool member_like = at_member_scope(scopes, scope_id) || stmt_static;
      const bool applies = is_collection(t.text) ? true : member_like;
      if (applies && !owner_is_view_class(scopes, scope_id)) {
        int depth = 0;
        std::string view_arg;
        std::size_t close = toks.size();
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          const Token& u = at(j);
          if (u.kind == TokKind::Punct) {
            if (u.text == "<") ++depth;
            else if (u.text == ">" && --depth == 0) {
              close = j;
              break;
            } else if (u.text == ";" || u.text == "{") {
              break;  // malformed; bail
            }
          } else if (u.kind == TokKind::Ident && is_view_type(u.text)) {
            view_arg = u.text;
          }
        }
        // `std::optional<BytesView> answer(...)` is a return type the caller
        // consumes, not storage: skip declarations whose declarator is a
        // function. The declarator name may be namespace-qualified.
        bool is_function_decl = false;
        if (close < toks.size()) {
          std::size_t j = close + 1;
          while (j < toks.size() &&
                 (at(j).text == "const" || at(j).text == "&" || at(j).text == "*" ||
                  at(j).text == "&&")) {
            ++j;
          }
          while (j + 1 < toks.size() && at(j).kind == TokKind::Ident &&
                 at(j + 1).text == "::") {
            j += 2;
          }
          if (j + 1 < toks.size() && at(j).kind == TokKind::Ident &&
              at(j + 1).text == "(") {
            is_function_decl = true;
          }
        }
        if (!view_arg.empty() && !(is_function_decl && !is_collection(t.text))) {
          sink.report(t.line, "view-escape",
                      t.text + "<" + view_arg +
                          "> stores non-owning views; the elements dangle at the "
                          "next arena reset — own the bytes (Bytes) or justify "
                          "with \"g2g-lint: allow(view-escape) -- why\"");
        }
      }
    }

    // Pattern A: a view-typed member / static / global. Locals are legal (the
    // arena-reset-safety rule polices their lifetime); function declarators
    // returning a view are legal (the value is consumed by the caller).
    if (!is_view_type(t.text) || paren_depth != 0 || angle_depth != 0) continue;
    const bool member_like = at_member_scope(scopes, scope_id) || stmt_static;
    if (!member_like || owner_is_view_class(scopes, scope_id)) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (at(j).text == "const" || at(j).text == "&" || at(j).text == "*" ||
            at(j).text == "&&")) {
      ++j;
    }
    if (j + 1 >= toks.size() || at(j).kind != TokKind::Ident || at(j).text == "operator") {
      continue;
    }
    const std::string& after = at(j + 1).text;
    if (after == ";" || after == "=" || after == "{" || after == "," || after == "[") {
      sink.report(t.line, "view-escape",
                  "non-owning " + t.text + " '" + at(j).text +
                      "' stored at member/static scope; it borrows arena or "
                      "caller memory and dangles past the next reset — own the "
                      "bytes (Bytes) or justify with \"g2g-lint: "
                      "allow(view-escape) -- why\"");
    }
  }
}

void scan_arena_reset_safety(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  const auto& toks = ctx.lexed.tokens;
  const auto& scopes = ctx.scopes;

  struct ViewLocal {
    std::string name;
    int decl_scope = -1;
    int stale_scope = -1;       ///< scope of the reset that staled it; -1 = live
    std::size_t reset_line = 0;
  };

  for (std::size_t s = 0; s < scopes.scopes.size(); ++s) {
    const Scope& fn = scopes.scopes[s];
    if (fn.kind != ScopeKind::Function) continue;
    // Only outermost function bodies: a nested Function (local class method)
    // gets its own walk.
    if (fn.parent >= 0 && scopes.within(fn.parent, ScopeKind::Function)) continue;

    std::vector<ViewLocal> locals;
    for (std::size_t i = fn.open_token + 1; i < fn.close_token && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::Punct) {
        if (t.text == "}") {
          const int closed = scopes.scope_of_token[i];
          std::erase_if(locals,
                        [&](const ViewLocal& v) { return v.decl_scope == closed; });
          for (ViewLocal& v : locals) {
            if (v.stale_scope == closed) v.stale_scope = -1;
          }
        }
        continue;
      }
      if (t.kind != TokKind::Ident) continue;

      // arena().reset() / wire_arena().reset() / arena_.reset(): every view
      // handed out by this arena generation is now recycled memory.
      if (t.text == "reset" && i >= 2 && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && toks[i - 1].text == ".") {
        std::size_t r = i - 2;
        if (toks[r].text == ")") {
          int depth = 0;
          while (r > 0) {
            if (toks[r].text == ")") ++depth;
            if (toks[r].text == "(" && --depth == 0) break;
            --r;
          }
          if (r > 0) --r;  // the callee identifier before '('
        }
        if (toks[r].kind == TokKind::Ident &&
            toks[r].text.find("arena") != std::string::npos) {
          const int reset_scope = scopes.scope_of_token[i];
          for (ViewLocal& v : locals) {
            v.stale_scope = reset_scope;
            v.reset_line = t.line;
          }
        }
        continue;
      }

      // New view-typed local: BytesView v = ..., for (BytesView v : ...), etc.
      if (is_view_type(t.text)) {
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (toks[j].text == "const" || toks[j].text == "&" ||
                toks[j].text == "*" || toks[j].text == "&&")) {
          ++j;
        }
        if (j + 1 < toks.size() && toks[j].kind == TokKind::Ident) {
          const std::string& after = toks[j + 1].text;
          if (after == ";" || after == "=" || after == "{" || after == "(" ||
              after == ":") {
            std::erase_if(locals,
                          [&](const ViewLocal& v) { return v.name == toks[j].text; });
            locals.push_back({toks[j].text, scopes.scope_of_token[j], -1, 0});
            i = j;  // the declarator name is not a use
            continue;
          }
        }
        continue;
      }

      for (ViewLocal& v : locals) {
        if (v.name != t.text) continue;
        if (i + 1 < toks.size() && toks[i + 1].text == "=") {
          v.stale_scope = -1;  // reassigned: points at live memory again
          break;
        }
        if (v.stale_scope != -1) {
          sink.report(t.line, "arena-reset-safety",
                      "view local '" + v.name + "' read after the arena reset on "
                          "line " + std::to_string(v.reset_line) +
                          "; the bytes it referenced were recycled — copy or "
                          "re-encode before the reset, or justify with "
                          "\"g2g-lint: allow(arena-reset-safety) -- why\"");
        }
        break;
      }
    }
  }
}

}  // namespace g2g::lint::internal
