// Allow-pragma collection: "// g2g-lint: allow(rule-a, rule-b) -- why".
// A pragma covers its own line and — when it stands alone on a comment line
// (the justification may wrap across further comment lines) — the next line
// carrying code. Parsing emits two finding classes of its own:
// allow-without-justification (the `-- why` is mandatory) and
// allow-unknown-rule (every named rule must exist in the catalogue, so
// retired pragmas cannot rot silently). Neither is itself suppressible.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace g2g::lint {

struct Pragma {
  std::size_t line = 0;            ///< line the pragma comment sits on
  std::set<std::string> rules;     ///< rule ids it allows
  std::string justification;       ///< text after `--`
};

struct PragmaTable {
  std::vector<Pragma> pragmas;
  /// line (1-based) -> indices into `pragmas` covering that line
  std::map<std::size_t, std::vector<std::size_t>> by_line;
  std::vector<Finding> parse_findings;
};

[[nodiscard]] PragmaTable collect_pragmas(const std::string& rel_path,
                                          const std::vector<SplitLine>& lines);

/// The pragma allowing `rule` on `line`, or nullptr.
[[nodiscard]] const Pragma* find_allow(const PragmaTable& table, std::size_t line,
                                       const std::string& rule);

}  // namespace g2g::lint
