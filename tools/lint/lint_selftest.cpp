// g2g-lint self-test: the bad fixture repo must trip every rule at the
// expected file, the clean fixture repo (justified pragmas, deterministic
// alternatives) must come back empty, and — the gate that matters — this
// repository itself must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace g2g::lint {
namespace {

std::vector<Finding> lint_of(const std::string& root) { return run_lint({root}); }

bool has(const std::vector<Finding>& findings, const std::string& rule,
         const std::string& file_substr) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file.find(file_substr) != std::string::npos;
  });
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

class BadFixture : public ::testing::Test {
 protected:
  static const std::vector<Finding>& findings() {
    static const std::vector<Finding> f = lint_of(std::string(G2G_LINT_FIXTURE_DIR) + "/bad");
    return f;
  }
};

TEST_F(BadFixture, DeterminismTokenRulesFire) {
  EXPECT_TRUE(has(findings(), "no-rand", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-random-device", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-wall-clock", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-getenv", "src/sim/src/nondet.cpp"));
  // Both wall-clock reads (system_clock::now and time(nullptr)) are caught.
  EXPECT_EQ(count_rule(findings(), "no-wall-clock"), 2u);
}

TEST_F(BadFixture, UnorderedIterationFires) {
  EXPECT_TRUE(has(findings(), "no-unordered-iter", "src/core/src/unordered_iter.cpp"));
  // Once for the range-for, once for the explicit begin().
  EXPECT_EQ(count_rule(findings(), "no-unordered-iter"), 2u);
}

TEST_F(BadFixture, WireTripleFires) {
  // HalfCodec (no decode/wire_size), NoSizeCodec (no wire_size), and the
  // unjustified pragma's struct; FullCodec stays clean.
  EXPECT_TRUE(has(findings(), "wire-encode-triple", "badwire.hpp"));
  EXPECT_GE(count_rule(findings(), "wire-encode-triple"), 3u);
  EXPECT_TRUE(has(findings(), "allow-without-justification", "badwire.hpp"));
}

TEST_F(BadFixture, FrameFuzzCoverageFires) {
  EXPECT_TRUE(has(findings(), "frame-fuzz-coverage", "relay/frames.hpp"));
  // CoveredFrame is mentioned in the fuzz suite; only ForgottenFrame trips.
  EXPECT_EQ(count_rule(findings(), "frame-fuzz-coverage"), 1u);
}

TEST_F(BadFixture, ModParamDiffCoverageFires) {
  EXPECT_TRUE(has(findings(), "mod-param-diff-coverage", "crypto/badmod.hpp"));
  // covered_reduce and covered_domain_op are named in the fixture corpus;
  // only rogue_reduce trips.
  EXPECT_EQ(count_rule(findings(), "mod-param-diff-coverage"), 1u);
}

TEST_F(BadFixture, CounterHygieneFires) {
  EXPECT_TRUE(has(findings(), "counter-name-prefix", "rogue_counter.cpp"));
  EXPECT_TRUE(has(findings(), "no-adhoc-atomic", "rogue_counter.cpp"));
}

TEST_F(BadFixture, SpanNameRegistryFires) {
  EXPECT_TRUE(has(findings(), "span-name-registry", "src/obs/src/rogue_span.cpp"));
  // open_span, StageTimer, and stages.add each carry one invented name; the
  // registered "relay_session" stays clean.
  EXPECT_EQ(count_rule(findings(), "span-name-registry"), 3u);
}

TEST_F(BadFixture, OwningBufferHotPathFires) {
  EXPECT_TRUE(has(findings(), "no-owning-buffer-hot-path",
                  "src/proto/src/relay/owning_hot_path.cpp"));
  // Declaration, copy+temporary line, raw byte vector, Writer; the justified
  // construction stays clean.
  EXPECT_EQ(count_rule(findings(), "no-owning-buffer-hot-path"), 4u);
}

TEST_F(BadFixture, EveryRuleFiresSomewhere) {
  for (const std::string& rule : rule_ids()) {
    EXPECT_GT(count_rule(findings(), rule), 0u) << rule;
  }
}

TEST(CleanFixture, JustifiedPragmasAndOrderedContainersPass) {
  const auto findings = lint_of(std::string(G2G_LINT_FIXTURE_DIR) + "/clean");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
  EXPECT_TRUE(findings.empty());
}

// The acceptance gate: the repository itself carries zero findings — every
// legitimate exception is annotated with a justified allow() pragma.
TEST(Repo, LintsClean) {
  const auto findings = lint_of(G2G_LINT_REPO_ROOT);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
  EXPECT_TRUE(findings.empty());
}

TEST(Format, IsGreppable) {
  const Finding f{"src/x.cpp", 12, "no-rand", "why"};
  EXPECT_EQ(format(f), "src/x.cpp:12: [no-rand] why");
}

}  // namespace
}  // namespace g2g::lint
