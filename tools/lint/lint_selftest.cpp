// g2g-lint self-test: the bad fixture repo must trip every rule at the
// expected file, the clean fixture repo (justified pragmas, deterministic
// alternatives) must come back empty, and — the gate that matters — this
// repository itself must lint clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace g2g::lint {
namespace {

std::vector<Finding> lint_of(const std::string& root) { return run_lint({root}); }

bool has(const std::vector<Finding>& findings, const std::string& rule,
         const std::string& file_substr) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file.find(file_substr) != std::string::npos;
  });
}

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::size_t count_rule_in(const std::vector<Finding>& findings, const std::string& rule,
                          const std::string& file_substr) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule == rule && f.file.find(file_substr) != std::string::npos;
      }));
}

class BadFixture : public ::testing::Test {
 protected:
  static const std::vector<Finding>& findings() {
    static const std::vector<Finding> f = lint_of(std::string(G2G_LINT_FIXTURE_DIR) + "/bad");
    return f;
  }
};

TEST_F(BadFixture, DeterminismTokenRulesFire) {
  EXPECT_TRUE(has(findings(), "no-rand", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-random-device", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-wall-clock", "src/sim/src/nondet.cpp"));
  EXPECT_TRUE(has(findings(), "no-getenv", "src/sim/src/nondet.cpp"));
  // Both wall-clock reads (system_clock::now and time(nullptr)) are caught.
  EXPECT_EQ(count_rule(findings(), "no-wall-clock"), 2u);
}

TEST_F(BadFixture, UnorderedIterationFires) {
  EXPECT_TRUE(has(findings(), "no-unordered-iter", "src/core/src/unordered_iter.cpp"));
  // Once for the range-for, once for the explicit begin().
  EXPECT_EQ(count_rule(findings(), "no-unordered-iter"), 2u);
}

TEST_F(BadFixture, WireTripleFires) {
  // HalfCodec (no decode/wire_size), NoSizeCodec (no wire_size), and the
  // unjustified pragma's struct; FullCodec stays clean.
  EXPECT_TRUE(has(findings(), "wire-encode-triple", "badwire.hpp"));
  EXPECT_GE(count_rule(findings(), "wire-encode-triple"), 3u);
  EXPECT_TRUE(has(findings(), "allow-without-justification", "badwire.hpp"));
}

TEST_F(BadFixture, FrameFuzzCoverageFires) {
  EXPECT_TRUE(has(findings(), "frame-fuzz-coverage", "relay/frames.hpp"));
  // CoveredFrame is mentioned in the fuzz suite; only ForgottenFrame trips.
  EXPECT_EQ(count_rule(findings(), "frame-fuzz-coverage"), 1u);
}

TEST_F(BadFixture, ModParamDiffCoverageFires) {
  EXPECT_TRUE(has(findings(), "mod-param-diff-coverage", "crypto/badmod.hpp"));
  // covered_reduce and covered_domain_op are named in the fixture corpus;
  // only rogue_reduce trips.
  EXPECT_EQ(count_rule(findings(), "mod-param-diff-coverage"), 1u);
}

TEST_F(BadFixture, CounterHygieneFires) {
  EXPECT_TRUE(has(findings(), "counter-name-prefix", "rogue_counter.cpp"));
  EXPECT_TRUE(has(findings(), "no-adhoc-atomic", "rogue_counter.cpp"));
}

TEST_F(BadFixture, SpanNameRegistryFires) {
  EXPECT_TRUE(has(findings(), "span-name-registry", "src/obs/src/rogue_span.cpp"));
  // open_span, StageTimer, and stages.add each carry one invented name; the
  // registered "relay_session" stays clean.
  EXPECT_EQ(count_rule(findings(), "span-name-registry"), 3u);
}

TEST_F(BadFixture, OwningBufferHotPathFires) {
  EXPECT_TRUE(has(findings(), "no-owning-buffer-hot-path",
                  "src/proto/src/relay/owning_hot_path.cpp"));
  // Declaration, copy+temporary line, raw byte vector, Writer; the justified
  // construction stays clean.
  EXPECT_EQ(count_rule(findings(), "no-owning-buffer-hot-path"), 4u);
}

TEST_F(BadFixture, ViewEscapeFires) {
  // Member, container-of-views member, and static view; the *View struct and
  // the view-returning function declarations stay clean.
  EXPECT_TRUE(has(findings(), "view-escape", "relay/view_escape.hpp"));
  EXPECT_EQ(count_rule(findings(), "view-escape"), 3u);
}

TEST_F(BadFixture, ArenaResetSafetyFires) {
  // Use-after-reset, return-after-reset, and use inside the conditional
  // reset's scope; the straight-line use after the scope closes stays clean.
  EXPECT_TRUE(has(findings(), "arena-reset-safety", "relay/reset_unsafe.cpp"));
  EXPECT_EQ(count_rule(findings(), "arena-reset-safety"), 3u);
}

TEST_F(BadFixture, IncludeLayeringFires) {
  // util->proto and src->tests/ in layered.cpp; policy-header-in-relay-core
  // and src->bench/ in bad_include.cpp.
  EXPECT_EQ(count_rule_in(findings(), "include-layering", "src/util/src/layered.cpp"), 2u);
  EXPECT_EQ(count_rule_in(findings(), "include-layering", "relay/bad_include.cpp"), 2u);
  EXPECT_EQ(count_rule(findings(), "include-layering"), 4u);
}

TEST_F(BadFixture, AllowUnknownRuleFires) {
  EXPECT_TRUE(has(findings(), "allow-unknown-rule", "src/core/src/stale_pragma.cpp"));
  EXPECT_EQ(count_rule(findings(), "allow-unknown-rule"), 1u);
}

TEST_F(BadFixture, LexerEdgeCases) {
  // Tokens after a //-in-string and after a non-nesting block comment fire;
  // the raw string and the backslash-continued comment hide theirs.
  EXPECT_EQ(count_rule_in(findings(), "no-rand", "src/sim/src/lexer_edges.cpp"), 2u);
  EXPECT_EQ(count_rule_in(findings(), "no-random-device", "src/sim/src/lexer_edges.cpp"),
            1u);
  EXPECT_EQ(count_rule_in(findings(), "no-wall-clock", "src/sim/src/lexer_edges.cpp"), 0u);
}

TEST_F(BadFixture, EveryRuleFiresSomewhere) {
  for (const std::string& rule : rule_ids()) {
    EXPECT_GT(count_rule(findings(), rule), 0u) << rule;
  }
}

TEST(CleanFixture, JustifiedPragmasAndOrderedContainersPass) {
  const auto findings = lint_of(std::string(G2G_LINT_FIXTURE_DIR) + "/clean");
  for (const auto& f : findings) ADD_FAILURE() << format(f);
  EXPECT_TRUE(findings.empty());
}

TEST(CleanFixture, SuppressionsAreRecordedNotDiscarded) {
  const Report report = run_report({std::string(G2G_LINT_FIXTURE_DIR) + "/clean"});
  EXPECT_TRUE(report.findings.empty());
  ASSERT_FALSE(report.suppressed.empty());
  for (const auto& s : report.suppressed) {
    EXPECT_FALSE(s.justification.empty()) << s.file << ":" << s.line;
    EXPECT_FALSE(s.rule.empty());
  }
}

TEST(ReportShape, EveryCatalogueRuleHasACount) {
  const Report report = run_report({std::string(G2G_LINT_FIXTURE_DIR) + "/clean"});
  EXPECT_EQ(report.rule_counts.size(), rule_ids().size());
  for (const auto& id : rule_ids()) {
    EXPECT_TRUE(report.rule_counts.contains(id)) << id;
  }
  EXPECT_GT(report.files_scanned, 0u);
  EXPECT_GE(report.wall_ms, 0.0);
}

// The acceptance gate: the repository itself carries zero findings — every
// legitimate exception is annotated with a justified allow() pragma.
TEST(Repo, LintsClean) {
  const auto findings = lint_of(G2G_LINT_REPO_ROOT);
  for (const auto& f : findings) ADD_FAILURE() << format(f);
  EXPECT_TRUE(findings.empty());
}

TEST(Format, IsGreppable) {
  const Finding f{"src/x.cpp", 12, "no-rand", "why"};
  EXPECT_EQ(format(f), "src/x.cpp:12: [no-rand] why");
}

// The JSON report is a CI artifact: key order and shape are pinned so
// downstream tooling can parse it without a schema negotiation.
TEST(Json, StableShapeAndKeyOrder) {
  Report r;
  r.findings.push_back({"src/a.cpp", 3, "no-rand", "say \"why\""});
  r.suppressed.push_back({"src/b.hpp", 7, "view-escape", "view member", "borrowed"});
  r.rule_counts = {{"no-rand", 1}, {"view-escape", 0}};
  r.files_scanned = 2;
  r.wall_ms = 12.5;
  EXPECT_EQ(to_json(r),
            "{\n"
            "  \"schema\": \"g2g-lint/v2\",\n"
            "  \"findings\": [\n"
            "    {\"file\": \"src/a.cpp\", \"line\": 3, \"rule\": \"no-rand\", "
            "\"message\": \"say \\\"why\\\"\", \"justification\": \"\"}\n"
            "  ],\n"
            "  \"suppressed\": [\n"
            "    {\"file\": \"src/b.hpp\", \"line\": 7, \"rule\": \"view-escape\", "
            "\"message\": \"view member\", \"justification\": \"borrowed\"}\n"
            "  ],\n"
            "  \"summary\": {\"files_scanned\": 2, \"findings\": 1, \"suppressed\": 1, "
            "\"wall_ms\": 12.5, \"rules\": {\"no-rand\": 1, \"view-escape\": 0}}\n"
            "}\n");
}

TEST(Json, EmptyReportKeepsShape) {
  Report r;
  r.files_scanned = 0;
  r.wall_ms = 0.0;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": []"), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"g2g-lint/v2\""), std::string::npos);
}

}  // namespace
}  // namespace g2g::lint
