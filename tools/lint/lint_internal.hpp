// Internal seams between the lint driver and the rule translation units.
// Not installed, not part of the public lint.hpp surface.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"
#include "pragma.hpp"
#include "scope.hpp"

namespace g2g::lint::internal {

/// Everything a per-file rule may look at.
struct FileContext {
  const std::string& rel;  ///< path relative to the scanned root, '/' separators
  const LexedFile& lexed;
  const ScopeMap& scopes;
};

/// Finding sink with centralized pragma handling: a report() lands in
/// `findings` unless a justified allow() covers (line, rule), in which case
/// it is recorded in `suppressed` with the pragma's justification.
class Sink {
 public:
  Sink(const std::string& rel, const PragmaTable& pragmas, std::vector<Finding>& findings,
       std::vector<Suppression>& suppressed)
      : rel_(rel), pragmas_(pragmas), findings_(findings), suppressed_(suppressed) {}

  void report(std::size_t line, const char* rule, std::string message) {
    if (const Pragma* p = find_allow(pragmas_, line, rule)) {
      suppressed_.push_back({rel_, line, rule, std::move(message), p->justification});
      return;
    }
    findings_.push_back({rel_, line, rule, std::move(message)});
  }

 private:
  const std::string& rel_;
  const PragmaTable& pragmas_;
  std::vector<Finding>& findings_;
  std::vector<Suppression>& suppressed_;
};

// rules_text.cpp — the ported v1 line rules.
void scan_tokens(const FileContext& ctx, Sink& sink);
void scan_unordered_iteration(const FileContext& ctx, Sink& sink);
void scan_wire_triple(const FileContext& ctx, Sink& sink);
void scan_counters(const FileContext& ctx, Sink& sink);
void scan_span_names(const FileContext& ctx, Sink& sink);
void scan_adhoc_atomics(const FileContext& ctx, Sink& sink);
void scan_owning_buffer_hot_path(const FileContext& ctx, Sink& sink);

// rules_semantic.cpp — token/scope rules.
void scan_view_escape(const FileContext& ctx, Sink& sink);
void scan_arena_reset_safety(const FileContext& ctx, Sink& sink);

// rules_include.cpp — include-graph layering.
void scan_include_layering(const FileContext& ctx, Sink& sink);

// rules_repo.cpp — whole-repo coverage rules (no per-line pragma context).
void scan_frame_fuzz_coverage(const std::filesystem::path& root,
                              std::vector<Finding>& out);
void scan_mod_param_diff_coverage(const std::filesystem::path& root,
                                  std::vector<Finding>& out);

// Shared path predicates.
[[nodiscard]] bool in_src(const std::string& rel);
[[nodiscard]] bool in_tests(const std::string& rel);
[[nodiscard]] bool is_header(const std::string& rel);
[[nodiscard]] bool in_relay_core(const std::string& rel);

/// Identifier naming a non-owning view type: `BytesView` or any `*View`.
[[nodiscard]] bool is_view_type(const std::string& ident);

}  // namespace g2g::lint::internal
