// Fixture: every legal way to hold a view.
#pragma once

namespace g2g {

// A *View class is the view layer itself: members are exempt.
struct FrameRecordView {
  BytesView header;
  BytesView payload;
  std::vector<BytesView> chunks;
};

// A justified escape is recorded, not flagged.
struct DecodeCursor {
  // g2g-lint: allow(view-escape) -- transient cursor over caller-owned bytes
  BytesView in_;
  std::size_t pos_ = 0;
};

// Return types hand the view to the caller to consume.
[[nodiscard]] BytesView peek();
[[nodiscard]] std::optional<BytesView> maybe_peek();

// Owning containers are what the rule asks for.
struct OwnedLog {
  std::vector<Bytes> frames;
};

// A local view inside a function is the intended idiom.
inline std::size_t measure(const Wire& w, Arena& arena) {
  BytesView v = arena_encode(arena, w);
  return v.size();
}

}  // namespace g2g
