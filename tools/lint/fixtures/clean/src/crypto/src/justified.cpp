// Fixture: a clean tree — justified pragmas silence real uses, and the
// deterministic alternatives pass without any pragma.
#include <atomic>
#include <cstdlib>
#include <map>
#include <string>

namespace fixture {

struct FakeRegistry {
  int& counter(const std::string& name) { return slots[name]; }
  std::map<std::string, int> slots;
};

// g2g-lint: allow(no-getenv) -- process-level feature toggle read once at
// startup; never consulted during a run, so replays are unaffected.
const char* feature_toggle() { return std::getenv("FIXTURE_TOGGLE"); }

// g2g-lint: allow(no-adhoc-atomic) -- work-distribution cursor, not a
// protocol counter; results are reduced in index order regardless.
std::atomic<int> g_cursor{0};

void bump(FakeRegistry& reg) {
  reg.counter("g2g.fixture.bumps") += 1;  // registered prefix: clean
  std::map<std::string, int> ordered;     // ordered container: iteration is fine
  for (const auto& kv : ordered) (void)kv;
}

struct FakeTracer {
  unsigned open_span(int t, const char* name, unsigned parent) {
    (void)t;
    (void)name;
    return parent + 1;
  }
};

void trace(FakeTracer& tracer) {
  tracer.open_span(0, "audit_round", 0);  // registered span name: clean
  // g2g-lint: allow(span-name-registry) -- fixture-local experiment span,
  // deliberately outside the registered set to exercise the escape hatch.
  tracer.open_span(0, "fixture_experiment", 0);
}

}  // namespace fixture
