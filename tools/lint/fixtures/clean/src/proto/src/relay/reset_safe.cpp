// Fixture: view locals around arena resets, used correctly.
#include "g2g/proto/relay/state.hpp"

namespace g2g::proto::relay {

std::size_t reassign_after_reset(Session& s, const SealedMessage& a, const SealedMessage& b) {
  BytesView v = arena_encode(s.arena(), a);
  const std::size_t first = v.size();
  s.arena().reset();
  v = arena_encode(s.arena(), b);  // re-encoded: points at live memory again
  return first + v.size();
}

std::size_t consumed_before_reset(Session& s, const SealedMessage& msg) {
  BytesView frame = arena_encode(s.arena(), msg);
  const std::size_t n = frame.size();
  s.arena().reset();
  return n;
}

std::size_t scoped_reset(Session& s, const SealedMessage& msg, bool flush) {
  BytesView view = arena_encode(s.arena(), msg);
  if (flush) {
    s.arena().reset();
  }
  // The conditional reset's scope closed; the straight-line path continues.
  return view.size();
}

}  // namespace g2g::proto::relay
