// The escape hatch in legitimate use: a deferred-batch hand-off must own its
// inputs (they outlive the session arena's generation), and says so.
#include <vector>

namespace g2g::proto::relay {

using Bytes = std::vector<unsigned char>;

inline unsigned defer_handoff(const Bytes& seed) {
  // g2g-lint: allow(no-owning-buffer-hot-path) -- batch inputs outlive the arena generation
  const Bytes owned(seed.begin(), seed.end());
  return static_cast<unsigned>(owned.size());
}

}  // namespace g2g::proto::relay
