// Fixture: the full codec triple, plus a same-line pragma.
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct FullCodec {
  int field = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static FullCodec decode(const Bytes& b);
  [[nodiscard]] std::size_t wire_size() const;
};

struct SignOnly {  // g2g-lint: allow(wire-encode-triple) -- one-way artefact: signed locally, never parsed back
  [[nodiscard]] Bytes encode() const;
};

}  // namespace fixture
