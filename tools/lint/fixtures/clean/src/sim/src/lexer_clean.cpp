// Fixture: code-like text in every lexical hiding place; none of it is code
// and none of it may fire.
namespace g2g::sim {

// Raw string with a custom delimiter; the inner )" does not end it.
static const char* kShell = R"sh(
  rand(); srand(42); random_device rd; system_clock::now(); getenv("HOME");
  a close paren-quote: )" — still inside
)sh";

// A continued line comment swallows everything through the next line: \
auto bad = std::random_device{}; system_clock::now(); rand();

static const char* kProto = "// rand() in a string is data";
static const char* kEsc = "quote \" then rand() still inside";

/* a block comment
   mentioning rand() and system_clock across lines */
int lexer_clean() { return 1; }

}  // namespace g2g::sim
