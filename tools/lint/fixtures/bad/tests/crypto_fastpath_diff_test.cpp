// Fixture differential corpus: names covered_reduce and covered_domain_op;
// the third badmod.hpp declaration is deliberately absent so the coverage
// rule fires on it.
void covered_reduce_is_pinned_to_the_oracle_here();
void covered_domain_op_is_pinned_to_the_oracle_here();
