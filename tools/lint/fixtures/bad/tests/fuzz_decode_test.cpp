// Fixture fuzz suite: covers CoveredFrame only — the newest frame in the
// catalogue never got a decode entry here, which frame-fuzz-coverage must
// report against relay/frames.hpp.
namespace fixture {

void fuzz_everything() {
  // (void)CoveredFrame::decode(...)
}

}  // namespace fixture
