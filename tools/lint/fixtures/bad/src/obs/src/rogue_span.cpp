// Fixture: span/stage names invented at the call site instead of being
// added to the registered set (span-name-registry).
#include <cstdint>

struct FakeTracer {
  std::uint64_t open_span(int t, const char* name, std::uint64_t parent) {
    (void)t;
    (void)name;
    return parent + 1;
  }
};

struct FakeStages {
  void add(const char* name, double s) {
    (void)name;
    (void)s;
  }
};

struct StageTimer {
  StageTimer(FakeStages& stages, const char* name) {
    (void)stages;
    (void)name;
  }
};

void rogue_spans(FakeTracer& tracer, FakeStages& stages) {
  tracer.open_span(0, "totally_new_span", 0);          // unregistered span
  StageTimer timer(stages, "mystery_stage");           // unregistered stage
  stages.add("another_mystery", 1.0);                  // unregistered stage
  tracer.open_span(0, "relay_session", 0);             // registered: clean
}
