// Fixture for mod-param-diff-coverage: rogue_reduce takes a modulus
// parameter but is never named in the fixture's differential corpus, so the
// rule must fire on it; covered_reduce is named there and stays clean.
#pragma once

struct U256 {};
struct MontgomeryParams {};

U256 rogue_reduce(const U256& x, const U256& m);
U256 covered_reduce(const U256& x, const U256& modulus);
U256 covered_domain_op(const U256& x, const MontgomeryParams& params);
