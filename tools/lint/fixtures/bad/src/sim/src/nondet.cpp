// Fixture: every determinism token rule must fire in a sim translation unit.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int libc_rand() { return rand() % 7; }                       // no-rand

unsigned hardware_entropy() {
  std::random_device dev;                                    // no-random-device
  return dev();
}

long wall_clock_now() {
  const auto t = std::chrono::system_clock::now();           // no-wall-clock
  (void)t;
  return time(nullptr);                                      // no-wall-clock
}

const char* config_from_env() { return std::getenv("G2G_FIXTURE"); }  // no-getenv

}  // namespace fixture
