// Fixture: lexical edge cases. Tokens hidden inside raw strings, ordinary
// strings, and continued comments must not fire; the real tokens around
// them must.
namespace g2g::sim {

// A raw string full of code-like text is data, not code.
static const char* kDoc = R"doc(
  call rand() or srand(7) here freely; mention random_device too —
  none of it is code
)doc";

// A trailing backslash continues this comment onto the next line, so: \
int hidden = rand();

static const char* kUrl = "//not-a-comment"; int after_str = rand();  // finding: no-rand

/* outer /* block comments do not nest */ int after_block = rand();  // finding: no-rand

int after_raw() { return consume(random_device{}); }  // finding: no-random-device

}  // namespace g2g::sim
