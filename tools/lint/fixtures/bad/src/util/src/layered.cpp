// Fixture: src/util reaching up the layer DAG and into the harness.
#include "g2g/proto/wire.hpp"   // finding: util may not include proto
#include "tests/helpers.hpp"    // finding: src/ may not include tests/
#include "g2g/util/bytes.hpp"   // legal: in-module

namespace g2g {

int layered() { return 1; }

}  // namespace g2g
