// Fixture: non-owning views escaping into storage that outlives them.
#pragma once

namespace g2g::proto::relay {

// Exempt: a *View class is the view layer; its members are the borrowed
// pointers by definition.
struct SealedRecordView {
  BytesView header;
  BytesView body;
};

struct LeakyCache {
  BytesView last_frame;               // finding: view member
  std::vector<BytesView> history;     // finding: container of views
  std::uint64_t hits = 0;
};

static BytesView g_last_seen;         // finding: view at static scope

// Legal: a function returning a view hands it to the caller to consume.
[[nodiscard]] BytesView peek_last();
// Legal: an optional view as a return type is consumed, not stored.
[[nodiscard]] std::optional<BytesView> maybe_peek();

}  // namespace g2g::proto::relay
