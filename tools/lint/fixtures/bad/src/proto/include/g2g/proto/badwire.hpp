// Fixture: a wire type declaring encode() without the rest of the codec
// triple, and an allow() pragma with no justification.
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct HalfCodec {  // wire-encode-triple: missing decode() and wire_size()
  int field = 0;

  [[nodiscard]] Bytes encode() const;
};

struct NoSizeCodec {  // wire-encode-triple: missing wire_size()
  int field = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static NoSizeCodec decode(const Bytes& b);
};

struct FullCodec {  // clean: the full triple is declared
  int field = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static FullCodec decode(const Bytes& b);
  [[nodiscard]] std::size_t wire_size() const;
};

// g2g-lint: allow(wire-encode-triple)
struct UnjustifiedCodec {  // allow-without-justification (and the allow is void)
  [[nodiscard]] Bytes encode() const;
};

}  // namespace fixture
