// Fixture: a frame catalogue whose newest frame never made it into the
// decoder fuzz suite (see ../../../../../../tests/fuzz_decode_test.cpp).
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct CoveredFrame {
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static CoveredFrame decode(const Bytes& b);
  [[nodiscard]] std::size_t wire_size() const;
};

struct ForgottenFrame {  // frame-fuzz-coverage: absent from fuzz_decode_test.cpp
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static ForgottenFrame decode(const Bytes& b);
  [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace fixture
