// Fixture: counter hygiene — an unregistered counter name and an ad-hoc
// atomic tally outside src/obs.
#include <atomic>
#include <cstdint>
#include <string>

namespace fixture {

struct FakeRegistry {
  int& counter(const std::string&) { return slot; }
  int slot = 0;
};

std::atomic<std::uint64_t> g_relay_tally{0};  // no-adhoc-atomic

void bump(FakeRegistry& reg) {
  reg.counter("relay_tally_total") += 1;  // counter-name-prefix
  g_relay_tally.fetch_add(1);
}

}  // namespace fixture
