// Fixture: the relay core reaching into forwarding policy and the bench
// harness.
#include "g2g/proto/g2g_epidemic.hpp"      // finding: policy header in relay core
#include "bench/fig_common.hpp"            // finding: src/ may not include bench/
#include "g2g/proto/relay/frames.hpp"      // legal: relay includes relay

namespace g2g::proto::relay {

int bad_include() { return 1; }

}  // namespace g2g::proto::relay
