// Deliberately owning-buffer-infested relay hot path: every construction
// below must trip no-owning-buffer-hot-path except the justified one.
#include <vector>

namespace g2g::proto::relay {

using Bytes = std::vector<unsigned char>;
struct Writer {};

inline unsigned rogue_encode() {
  Bytes frame;                        // owning declaration
  frame.push_back(1);
  const Bytes copy = Bytes(frame);    // owning copy + temporary (one line, one finding)
  std::vector<std::uint8_t> scratch;  // raw byte vector
  Writer w;                           // owning writer
  (void)copy;
  (void)scratch;
  (void)w;
  // g2g-lint: allow(no-owning-buffer-hot-path) -- deferred batch owns its inputs
  Bytes justified;
  justified.push_back(2);
  return static_cast<unsigned>(justified.size());
}

}  // namespace g2g::proto::relay
