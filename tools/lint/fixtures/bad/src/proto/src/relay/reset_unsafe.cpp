// Fixture: arena-backed views read after the arena reset recycled their
// bytes. Only view locals appear here — the owning-buffer rule has its own
// fixture (owning_hot_path.cpp) with pinned counts.
#include "g2g/proto/relay/state.hpp"

namespace g2g::proto::relay {

std::size_t use_after_reset(Session& s, const SealedMessage& msg) {
  BytesView frame = arena_encode(s.arena(), msg);
  s.arena().reset();
  return frame.size();  // finding: the bytes were recycled
}

BytesView return_after_reset(Session& s, const SealedMessage& msg) {
  BytesView por = arena_encode(s.arena(), msg);
  s.wire_arena().reset();
  return por;  // finding: returned past the reset
}

std::size_t conditional_reset(Session& s, const SealedMessage& msg, bool flush) {
  BytesView view = arena_encode(s.arena(), msg);
  if (flush) {
    s.arena().reset();
    return view.size();  // finding: still inside the reset's scope
  }
  // Clean: the conditional reset's scope closed, so the straight-line path
  // down here is not poisoned.
  return view.size();
}

}  // namespace g2g::proto::relay
