// Fixture: an allow() pragma naming a rule that is not in the catalogue.
namespace g2g::core {

// g2g-lint: allow(no-flux-capacitor) -- the rule this suppressed was retired
int stale_pragma() { return 1; }

}  // namespace g2g::core
