// Fixture: iterating an unordered container in experiment-feeding code.
#include <cstddef>
#include <string>
#include <unordered_map>

namespace fixture {

std::size_t sum_lengths() {
  std::unordered_map<std::string, int> tallies;
  tallies.emplace("a", 1);
  std::size_t total = 0;
  for (const auto& kv : tallies) {  // no-unordered-iter
    total += kv.first.size();
  }
  auto it = tallies.begin();  // no-unordered-iter
  (void)it;
  return total;
}

}  // namespace fixture
