#include "scope.hpp"

#include <algorithm>

namespace g2g::lint {

namespace {

bool head_contains(const std::vector<const Token*>& head, const char* text) {
  return std::any_of(head.begin(), head.end(),
                     [&](const Token* t) { return t->text == text; });
}

/// Name of a class/struct/namespace: the first plausible identifier after
/// the introducing keyword (attributes and contextual keywords skipped).
std::string name_after(const std::vector<const Token*>& head, const char* keyword) {
  bool seen = false;
  for (const Token* t : head) {
    if (!seen) {
      if (t->text == keyword) seen = true;
      continue;
    }
    if (t->kind != TokKind::Ident) {
      if (t->text == ":") break;  // base clause: the name came before it
      continue;
    }
    if (t->text == "final" || t->text == "alignas" || t->text == "nodiscard" ||
        t->text == "maybe_unused" || t->text == "deprecated" || t->text == "class" ||
        t->text == "struct") {
      continue;
    }
    return t->text;
  }
  return {};
}

ScopeKind classify(const std::vector<const Token*>& head, ScopeKind enclosing,
                   std::string& name_out) {
  const bool in_code = enclosing == ScopeKind::Function || enclosing == ScopeKind::Block ||
                       enclosing == ScopeKind::Init;
  if (head_contains(head, "namespace")) {
    name_out = name_after(head, "namespace");
    return ScopeKind::Namespace;
  }
  if (head_contains(head, "enum")) return ScopeKind::Enum;
  const bool has_eq = head_contains(head, "=");
  if (head_contains(head, "extern") && !has_eq) return ScopeKind::Namespace;  // extern "C"
  const bool has_return = head_contains(head, "return");
  if (!has_eq && !has_return &&
      (head_contains(head, "class") || head_contains(head, "struct") ||
       head_contains(head, "union"))) {
    name_out = name_after(head, head_contains(head, "class")   ? "class"
                                : head_contains(head, "struct") ? "struct"
                                                                : "union");
    return ScopeKind::Class;
  }
  if (has_eq) return ScopeKind::Init;
  if (has_return) return in_code ? ScopeKind::Block : ScopeKind::Init;
  if (head.empty()) {
    // A bare '{' directly in a class is a constructor body whose member-init
    // braces consumed the head; in code it's a plain block.
    if (enclosing == ScopeKind::Class) return ScopeKind::Function;
    return in_code ? ScopeKind::Block : ScopeKind::Init;
  }
  // Member-initializer braced init: `Ctor() : a_(1), b_{2} {` — the brace
  // follows an identifier while a ':' sits after the parameter list.
  if (head.back()->kind == TokKind::Ident && head_contains(head, ":") &&
      head_contains(head, ")")) {
    return ScopeKind::Init;
  }
  if (head_contains(head, ")")) {
    if (enclosing == ScopeKind::Top || enclosing == ScopeKind::Namespace ||
        enclosing == ScopeKind::Class) {
      return ScopeKind::Function;
    }
    return ScopeKind::Block;
  }
  return in_code ? ScopeKind::Block : ScopeKind::Init;
}

}  // namespace

ScopeMap build_scopes(const std::vector<Token>& tokens) {
  ScopeMap map;
  map.scopes.push_back(Scope{ScopeKind::Top, "", -1, 0, tokens.size()});
  map.scope_of_token.resize(tokens.size(), 0);
  int current = 0;
  std::vector<const Token*> head;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    map.scope_of_token[i] = current;
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") {
        std::string name;
        const ScopeKind kind =
            classify(head, map.scopes[static_cast<std::size_t>(current)].kind, name);
        map.scopes.push_back(Scope{kind, name, current, i, tokens.size()});
        current = static_cast<int>(map.scopes.size()) - 1;
        map.scope_of_token[i] = current;
        head.clear();
        continue;
      }
      if (t.text == "}") {
        if (current != 0) {
          map.scopes[static_cast<std::size_t>(current)].close_token = i;
          current = map.scopes[static_cast<std::size_t>(current)].parent;
        }
        head.clear();
        continue;
      }
      if (t.text == ";") {
        head.clear();
        continue;
      }
      if (t.text == ":" && !head.empty() &&
          (head.back()->text == "public" || head.back()->text == "private" ||
           head.back()->text == "protected")) {
        head.clear();  // access-specifier label
        continue;
      }
    }
    head.push_back(&t);
  }
  return map;
}

}  // namespace g2g::lint
