#include "pragma.hpp"

#include <algorithm>
#include <regex>
#include <sstream>

namespace g2g::lint {

PragmaTable collect_pragmas(const std::string& rel_path,
                            const std::vector<SplitLine>& lines) {
  static const std::regex kPragma(
      R"(g2g-lint\s*:\s*allow\s*\(([^)]*)\)\s*(?:--\s*(\S.*))?)");
  PragmaTable table;
  const auto& catalogue = rule_ids();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i].comment, m, kPragma)) continue;
    const std::size_t line_no = i + 1;
    if (!m[2].matched) {
      table.parse_findings.push_back(
          {rel_path, line_no, "allow-without-justification",
           "allow(...) pragma needs a reason: \"// g2g-lint: allow(rule) -- why\""});
      continue;
    }
    Pragma pragma;
    pragma.line = line_no;
    pragma.justification = m[2].str();
    std::stringstream list(m[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::string id = rule.substr(b, e - b + 1);
      if (std::find(catalogue.begin(), catalogue.end(), id) == catalogue.end()) {
        table.parse_findings.push_back(
            {rel_path, line_no, "allow-unknown-rule",
             "allow(...) names '" + id +
                 "', which is not in the rule catalogue (g2g-lint --list-rules); "
                 "stale pragmas must be pruned, not kept"});
        continue;
      }
      pragma.rules.insert(id);
    }
    if (pragma.rules.empty()) continue;
    // The allow covers the pragma's own line, and — when the pragma is a
    // standalone comment (possibly with the justification wrapping onto
    // further comment lines) — the next line that carries code.
    const auto has_code = [&](std::size_t idx) {
      return lines[idx].code_blanked.find_first_not_of(" \t") != std::string::npos;
    };
    std::size_t target = line_no;
    if (!has_code(i)) {
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        if (has_code(j)) {
          target = j + 1;
          break;
        }
      }
    }
    const std::size_t index = table.pragmas.size();
    table.pragmas.push_back(std::move(pragma));
    table.by_line[line_no].push_back(index);
    if (target != line_no) table.by_line[target].push_back(index);
  }
  return table;
}

const Pragma* find_allow(const PragmaTable& table, std::size_t line,
                         const std::string& rule) {
  const auto it = table.by_line.find(line);
  if (it == table.by_line.end()) return nullptr;
  for (const std::size_t index : it->second) {
    const Pragma& p = table.pragmas[index];
    if (p.rules.count(rule) > 0) return &p;
  }
  return nullptr;
}

}  // namespace g2g::lint
