// Whole-repo coverage rules: these check cross-file invariants (a frame
// catalogue against its fuzz suite, modulus-taking kernels against the
// differential corpus), so they read the relevant files directly rather
// than running per scanned file. Ported behavior-identical from v1.
#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_internal.hpp"

namespace g2g::lint::internal {

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

// Frame catalogue completeness: every struct *Frame in relay/frames.hpp must
// be exercised by the decoder fuzz suite.
void scan_frame_fuzz_coverage(const fs::path& root, std::vector<Finding>& out) {
  const fs::path frames = root / "src/proto/include/g2g/proto/relay/frames.hpp";
  if (!fs::exists(frames)) return;  // repo layout without a relay layer
  const std::string text = slurp(frames);

  std::string fuzz_text;
  const fs::path fuzz = root / "tests/fuzz_decode_test.cpp";
  if (fs::exists(fuzz)) fuzz_text = slurp(fuzz);

  static const std::regex kFrame(R"(struct\s+(\w+Frame)\b)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kFrame);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (fuzz_text.find(name) != std::string::npos) continue;
    const auto line = static_cast<std::size_t>(
                          std::count(text.begin(), text.begin() + it->position(), '\n')) +
                      1;
    out.push_back({"src/proto/include/g2g/proto/relay/frames.hpp", line,
                   "frame-fuzz-coverage",
                   "frame '" + name +
                       "' is not exercised by tests/fuzz_decode_test.cpp; every "
                       "decoder must survive the fuzz corpus"});
  }
}

// Differential-oracle completeness: every function declared in a src/crypto
// header that takes a modulus parameter (`const U256& m`/`modulus` or
// `const MontgomeryParams& params`) must be named in the Montgomery-vs-classic
// corpus in tests/crypto_fastpath_diff_test.cpp, so a future fast-path kernel
// cannot land without a pinned comparison against the schoolbook oracle.
void scan_mod_param_diff_coverage(const fs::path& root, std::vector<Finding>& out) {
  const fs::path include = root / "src/crypto/include";
  if (!fs::exists(include)) return;  // repo layout without the crypto layer

  std::string corpus_text;
  const fs::path corpus = root / "tests/crypto_fastpath_diff_test.cpp";
  if (fs::exists(corpus)) corpus_text = slurp(corpus);

  static const std::regex kModFn(
      R"((\w+)\s*\([^)]*const\s+(?:U256|MontgomeryParams)\s*&\s*(?:modulus|params|m)\s*[,)])");
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(include)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hpp") {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    const std::string text = slurp(header);
    const std::string rel = fs::relative(header, root).generic_string();
    std::set<std::string> reported;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kModFn);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (corpus_text.find(name) != std::string::npos) continue;
      if (!reported.insert(name).second) continue;
      const auto line = static_cast<std::size_t>(
                            std::count(text.begin(), text.begin() + it->position(), '\n')) +
                        1;
      out.push_back({rel, line, "mod-param-diff-coverage",
                     "'" + name +
                         "' takes a modulus parameter but is not named in the "
                         "differential corpus (tests/crypto_fastpath_diff_test.cpp); "
                         "modular kernels must be pinned to the classic oracle"});
    }
  }
}

}  // namespace g2g::lint::internal
