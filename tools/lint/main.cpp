// g2g-lint CLI. Exit 0 on a clean tree, 1 when findings exist, 2 on usage
// errors. CI and tools/check.sh both run `g2g-lint --root .`.
#include <cstring>
#include <iostream>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& id : g2g::lint::rule_ids()) std::cout << id << "\n";
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: g2g-lint [--root <repo-root>] [--list-rules]\n"
                   "Scans <root>/src and <root>/tests; see docs/STATIC_ANALYSIS.md\n";
      return 0;
    } else {
      std::cerr << "g2g-lint: unknown argument '" << argv[i] << "'\n";
      return 2;
    }
  }
  if (!std::filesystem::exists(root / "src")) {
    std::cerr << "g2g-lint: no src/ under '" << root.string()
              << "' (pass --root <repo-root>)\n";
    return 2;
  }
  const auto findings = g2g::lint::run_lint({root});
  for (const auto& f : findings) std::cout << g2g::lint::format(f) << "\n";
  if (findings.empty()) {
    std::cout << "g2g-lint: clean\n";
    return 0;
  }
  std::cout << "g2g-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
