// g2g-lint CLI. Exit 0 on a clean tree, 1 when findings exist, 2 on usage
// errors, 3 when the engine itself fails (unreadable root, I/O error) — CI
// distinguishes "the code is dirty" from "the linter broke".
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "lint.hpp"

namespace {

void print_github_annotations(const std::vector<g2g::lint::Finding>& findings) {
  // GitHub workflow commands: one ::error per finding, attached to the file
  // and line in the PR diff view.
  for (const auto& f : findings) {
    std::cout << "::error file=" << f.file << ",line=" << f.line
              << ",title=g2g-lint " << f.rule << "::" << f.message << "\n";
  }
}

void print_stats(const g2g::lint::Report& report) {
  std::cout << "g2g-lint: " << report.files_scanned << " files in "
            << static_cast<long>(report.wall_ms) << " ms\n";
  for (const auto& [rule, count] : report.rule_counts) {
    std::cout << "  " << rule << ": " << count << "\n";
  }
  std::cout << "  (suppressed by pragma: " << report.suppressed.size() << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::filesystem::path json_path;
  bool github = false;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--github") == 0) {
      github = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const auto& id : g2g::lint::rule_ids()) std::cout << id << "\n";
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout
          << "usage: g2g-lint [--root <repo-root>] [--json <path>] [--github]\n"
             "                [--stats] [--list-rules]\n"
             "Scans <root>/src and <root>/tests; see docs/STATIC_ANALYSIS.md.\n"
             "  --json <path>  write the machine-readable report (findings,\n"
             "                 pragma-suppressed findings, per-rule counts)\n"
             "  --github       emit ::error workflow annotations for CI\n"
             "  --stats        print per-rule counts and wall time\n"
             "exit: 0 clean, 1 findings, 2 usage error, 3 engine error\n";
      return 0;
    } else {
      std::cerr << "g2g-lint: unknown argument '" << argv[i] << "'\n";
      return 2;
    }
  }
  if (!std::filesystem::exists(root / "src")) {
    std::cerr << "g2g-lint: no src/ under '" << root.string()
              << "' (pass --root <repo-root>)\n";
    return 2;
  }
  try {
    const g2g::lint::Report report = g2g::lint::run_report({root});
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "g2g-lint: cannot write '" << json_path.string() << "'\n";
        return 3;
      }
      out << g2g::lint::to_json(report);
    }
    for (const auto& f : report.findings) std::cout << g2g::lint::format(f) << "\n";
    if (github) print_github_annotations(report.findings);
    if (stats) print_stats(report);
    if (report.findings.empty()) {
      std::cout << "g2g-lint: clean\n";
      return 0;
    }
    std::cout << "g2g-lint: " << report.findings.size() << " finding(s)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "g2g-lint: engine error: " << e.what() << "\n";
    return 3;
  }
}
