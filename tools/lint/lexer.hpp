// g2g-lint lexical layer: one pass over a source file produces both the
// token stream (scope tracking, semantic rules) and the per-physical-line
// split strings (ported line rules, pragma collection).
//
// The scanner understands the lexical constructs a line-oriented pass
// cannot: raw string literals with custom delimiters (R"x(...)x"), line
// continuations in code, string literals, *and* line comments (a trailing
// backslash extends the comment), escape sequences, and block comments
// (which do not nest — standard C++). Preprocessor directives are kept out
// of the token stream entirely so an #include path or a macro body can
// never be mistaken for declarations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace g2g::lint {

enum class TokKind { Ident, Number, Str, CharLit, Punct };

struct Token {
  TokKind kind;
  std::string text;   ///< spelling; literals keep their raw quoted text
  std::size_t line;   ///< 1-based physical line the token starts on
};

/// Per physical line, the three projections the line rules consume.
struct SplitLine {
  std::string code_blanked;  ///< comments removed, string/char contents blanked
  std::string code;          ///< comments removed, literal contents kept
  std::string comment;       ///< comment text only
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<SplitLine> lines;
};

[[nodiscard]] LexedFile lex(const std::string& text);

}  // namespace g2g::lint
