// Include-layering: the module DAG of DESIGN.md §4b, enforced over every
// quoted #include in src/. Three checks:
//
//   1. src/ never includes bench/ or tests/ — production code cannot depend
//      on harness code.
//   2. The relay core (src/proto/*/relay/) never includes a forwarding-policy
//      header; policies plug into the relay seam, not the other way round.
//   3. Cross-module g2g/... includes must follow the layer DAG below.
//
// System includes (<...>) and relative in-module includes are exempt.
#include <map>
#include <regex>
#include <set>
#include <string>

#include "lint_internal.hpp"

namespace g2g::lint::internal {

namespace {

/// module -> modules it may include (itself always included). Keep in sync
/// with the DAG diagram in DESIGN.md §4b.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      {"util", {"util"}},
      {"crypto", {"crypto", "util"}},
      {"trace", {"trace", "util"}},
      {"obs", {"obs", "util"}},
      {"sim", {"sim", "trace", "util"}},
      {"community", {"community", "trace", "util"}},
      {"metrics", {"metrics", "obs", "util"}},
      {"proto",
       {"proto", "crypto", "metrics", "obs", "sim", "trace", "community", "util"}},
      {"core",
       {"core", "proto", "crypto", "metrics", "obs", "sim", "community", "trace",
        "util"}},
  };
  return dag;
}

/// Forwarding-policy headers the relay core must stay ignorant of.
const std::set<std::string>& policy_headers() {
  static const std::set<std::string> names = {
      "epidemic.hpp", "delegation.hpp", "g2g_epidemic.hpp", "g2g_delegation.hpp",
      "quality.hpp",
  };
  return names;
}

std::string module_of_file(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  const auto slash = rel.find('/', 4);
  if (slash == std::string::npos) return {};
  return rel.substr(4, slash - 4);
}

std::string module_of_include(const std::string& path) {
  if (path.rfind("g2g/", 0) != 0) return {};
  const auto slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

void scan_include_layering(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  static const std::regex kInclude(R"(^\s*#\s*include\s*"([^"]+)\")");
  const std::string from_module = module_of_file(ctx.rel);
  const auto& lines = ctx.lexed.lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i].code, m, kInclude)) continue;
    const std::string path = m[1].str();

    if (path.rfind("bench/", 0) == 0 || path.rfind("tests/", 0) == 0 ||
        path.find("../bench/") != std::string::npos ||
        path.find("../tests/") != std::string::npos) {
      sink.report(i + 1, "include-layering",
                  "src/ must not include harness code (\"" + path +
                      "\"); production layers cannot depend on bench/ or tests/");
      continue;
    }

    if (in_relay_core(ctx.rel) && path.rfind("g2g/proto/", 0) == 0 &&
        policy_headers().count(basename_of(path)) > 0) {
      sink.report(i + 1, "include-layering",
                  "relay core must not include the forwarding-policy header \"" +
                      path +
                      "\"; policies depend on the relay seam, never the reverse "
                      "(DESIGN.md §4b)");
      continue;
    }

    const std::string to_module = module_of_include(path);
    if (from_module.empty() || to_module.empty()) continue;
    const auto from = layer_dag().find(from_module);
    if (from == layer_dag().end()) continue;           // unmapped future layer
    if (layer_dag().count(to_module) == 0) continue;   // not a module header
    if (from->second.count(to_module) > 0) continue;
    sink.report(i + 1, "include-layering",
                "src/" + from_module + " may not include \"" + path +
                    "\"; the layer DAG (DESIGN.md §4b) places " + to_module +
                    " outside " + from_module + "'s allowed dependencies");
  }
}

}  // namespace g2g::lint::internal
