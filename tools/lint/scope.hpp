// Brace-scope tracking over the token stream: every token is annotated with
// its innermost scope, and every scope is classified (namespace / class /
// enum / function body / block / braced initializer) from the statement
// head preceding its opening brace. The classification is heuristic — no
// template instantiation, no symbol table — but it is exactly the
// resolution the semantic rules need: "is this statement a class member?",
// "which tokens form this function body?".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace g2g::lint {

enum class ScopeKind { Top, Namespace, Class, Enum, Function, Block, Init };

struct Scope {
  ScopeKind kind = ScopeKind::Top;
  std::string name;           ///< class/namespace name when one was parsed
  int parent = -1;            ///< index into ScopeMap::scopes; -1 for Top
  std::size_t open_token = 0;   ///< index of the '{' token (0 for Top)
  std::size_t close_token = 0;  ///< index of the matching '}' (or tokens.size())
};

struct ScopeMap {
  std::vector<Scope> scopes;          ///< scopes[0] is the translation unit
  std::vector<int> scope_of_token;    ///< per token: innermost scope id

  /// Walks parents from `scope_id`; true if any enclosing scope (inclusive)
  /// has the given kind.
  [[nodiscard]] bool within(int scope_id, ScopeKind kind) const {
    for (int s = scope_id; s >= 0; s = scopes[static_cast<std::size_t>(s)].parent) {
      if (scopes[static_cast<std::size_t>(s)].kind == kind) return true;
    }
    return false;
  }
  /// Nearest enclosing scope (inclusive) of the given kind, or -1.
  [[nodiscard]] int nearest(int scope_id, ScopeKind kind) const {
    for (int s = scope_id; s >= 0; s = scopes[static_cast<std::size_t>(s)].parent) {
      if (scopes[static_cast<std::size_t>(s)].kind == kind) return s;
    }
    return -1;
  }
};

[[nodiscard]] ScopeMap build_scopes(const std::vector<Token>& tokens);

}  // namespace g2g::lint
