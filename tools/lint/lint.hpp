// g2g-lint: repo-specific static analysis for the Give2Get reproduction.
//
// v2 engine: one lexical pass per file produces a token stream plus
// per-line comment/code/blanked projections (lexer.hpp); a brace/paren
// scope tracker classifies every scope (scope.hpp); rules run over
// whichever representation fits. Four rule families
// (docs/STATIC_ANALYSIS.md is the user-facing catalogue):
//
//   determinism   no-rand, no-random-device, no-wall-clock, no-getenv,
//                 no-unordered-iter
//   wire          wire-encode-triple, frame-fuzz-coverage,
//                 no-owning-buffer-hot-path, mod-param-diff-coverage
//   lifetime      view-escape, arena-reset-safety
//   layering      include-layering
//   counters      counter-name-prefix, span-name-registry, no-adhoc-atomic
//
// A finding is suppressed by a justified pragma on the same line or the
// line directly above:
//
//   // g2g-lint: allow(no-getenv) -- process-level toggle, never per-run
//
// The justification after `--` is mandatory (allow-without-justification)
// and every named rule must exist in the catalogue (allow-unknown-rule).
// Suppressions are recorded, not discarded: the JSON report carries every
// allowed finding with its justification, so pragma debt stays auditable.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace g2g::lint {

struct Finding {
  std::string file;  ///< path relative to the scanned root
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A finding that a justified allow() pragma suppressed.
struct Suppression {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string justification;
};

struct Options {
  /// Repository root; `<root>/src` and `<root>/tests` are scanned.
  std::filesystem::path root;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressed;
  /// Every catalogue rule -> finding count (zeros included, keys sorted).
  std::map<std::string, std::size_t> rule_counts;
  std::size_t files_scanned = 0;
  double wall_ms = 0.0;
};

/// All rule identifiers, for --list-rules, pragma validation, and the
/// self-test.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Scan the tree: findings, suppressions, per-rule counts, wall time.
[[nodiscard]] Report run_report(const Options& options);

/// Findings only, ordered by (file, line, rule) — the v1 entry point.
[[nodiscard]] std::vector<Finding> run_lint(const Options& options);

/// "file:line: [rule] message" — the single line format CI greps.
[[nodiscard]] std::string format(const Finding& f);

/// Machine-readable report: stable key order (file, line, rule, message,
/// justification per record), suitable for CI artifacts and annotations.
[[nodiscard]] std::string to_json(const Report& report);

}  // namespace g2g::lint
