// g2g-lint: repo-specific static analysis for the Give2Get reproduction.
//
// The checker enforces the invariants the test suite can only pin
// dynamically — deterministic simulation output and a complete wire-frame
// catalogue — at analysis time, before a 25-second bit-identity diff gets a
// chance to fail. Three rule families (docs/STATIC_ANALYSIS.md is the
// user-facing catalogue):
//
//   determinism   no-rand, no-random-device, no-wall-clock, no-getenv,
//                 no-unordered-iter
//   wire          wire-encode-triple, frame-fuzz-coverage
//   counters      counter-name-prefix, span-name-registry, no-adhoc-atomic
//
// A finding is suppressed by a justified pragma on the same line or the
// line directly above:
//
//   // g2g-lint: allow(no-getenv) -- process-level toggle, never per-run
//
// The justification after `--` is mandatory; an allow() without one is
// itself a finding (allow-without-justification). The scanner is
// line-oriented (comments and string literals are tracked, tokens are
// matched with word boundaries); it trades full C++ parsing for zero
// dependencies and a runtime of milliseconds over the whole tree.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace g2g::lint {

struct Finding {
  std::string file;  ///< path relative to the scanned root
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  /// Repository root; `<root>/src` and `<root>/tests` are scanned.
  std::filesystem::path root;
};

/// All rule identifiers, for --list-rules and the self-test.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Scan the tree and return every finding, ordered by (file, line).
[[nodiscard]] std::vector<Finding> run_lint(const Options& options);

/// "file:line: [rule] message" — the single line format CI greps.
[[nodiscard]] std::string format(const Finding& f);

}  // namespace g2g::lint
