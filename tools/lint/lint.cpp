#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace g2g::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexical split: per line, the code with string contents blanked (token
// rules), the code with string contents kept (counter-name rule), and the
// comment text (pragmas). Block comments and literals are tracked across
// lines; raw strings are treated as ordinary strings, which is safe for the
// rules here (worst case a token inside a raw string is blanked).
// ---------------------------------------------------------------------------

struct SplitLine {
  std::string code_blanked;  ///< comments removed, string/char contents blanked
  std::string code;          ///< comments removed, literals kept
  std::string comment;       ///< comment text only
};

std::vector<SplitLine> split_lines(const std::string& text) {
  enum class State { Code, String, Char, LineComment, BlockComment };
  State state = State::Code;
  std::vector<SplitLine> lines;
  SplitLine cur;
  const auto flush = [&] {
    lines.push_back(std::move(cur));
    cur = SplitLine{};
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::LineComment) state = State::Code;
      // Unterminated string at end of line: bail back to code (the compiler
      // would reject it anyway; the lint must not derail on one bad line).
      if (state == State::String || state == State::Char) state = State::Code;
      flush();
      continue;
    }
    switch (state) {
      case State::Code:
        if (c == '/' && n == '/') {
          state = State::LineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          state = State::BlockComment;
          ++i;
        } else if (c == '"') {
          state = State::String;
          cur.code_blanked += '"';
          cur.code += '"';
        } else if (c == '\'') {
          state = State::Char;
          cur.code_blanked += '\'';
          cur.code += '\'';
        } else {
          cur.code_blanked += c;
          cur.code += c;
        }
        break;
      case State::String:
      case State::Char: {
        cur.code += c;
        const char quote = state == State::String ? '"' : '\'';
        if (c == '\\' && n != '\0' && n != '\n') {
          cur.code_blanked += ' ';
          cur.code += n;
          cur.code_blanked += ' ';
          ++i;
        } else if (c == quote) {
          cur.code_blanked += quote;
          state = State::Code;
        } else {
          cur.code_blanked += ' ';
        }
        break;
      }
      case State::LineComment:
        cur.comment += c;
        break;
      case State::BlockComment:
        if (c == '*' && n == '/') {
          state = State::Code;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  flush();
  return lines;
}

// ---------------------------------------------------------------------------
// Pragmas: "g2g-lint: allow(rule-a, rule-b) -- justification". The allow
// covers its own line and the next one (the idiom is a comment line directly
// above the flagged statement). A missing justification is itself a finding.
// ---------------------------------------------------------------------------

struct PragmaTable {
  // line (1-based) -> rules allowed on that line
  std::map<std::size_t, std::set<std::string>> allowed;
  std::vector<Finding> malformed;
};

PragmaTable collect_pragmas(const std::string& rel_path,
                            const std::vector<SplitLine>& lines) {
  static const std::regex kPragma(
      R"(g2g-lint\s*:\s*allow\s*\(([^)]*)\)\s*(?:--\s*(\S.*))?)");
  PragmaTable table;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i].comment, m, kPragma)) continue;
    const std::size_t line_no = i + 1;
    if (!m[2].matched) {
      table.malformed.push_back(
          {rel_path, line_no, "allow-without-justification",
           "allow(...) pragma needs a reason: \"// g2g-lint: allow(rule) -- why\""});
      continue;
    }
    std::set<std::string> rules;
    std::stringstream list(m[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) rules.insert(rule.substr(b, e - b + 1));
    }
    // The allow covers the pragma's own line, and — when the pragma is a
    // standalone comment (possibly with the justification wrapping onto
    // further comment lines) — the next line that carries code.
    const auto has_code = [&](std::size_t idx) {
      return lines[idx].code_blanked.find_first_not_of(" \t") != std::string::npos;
    };
    std::size_t target = line_no;
    if (!has_code(i)) {
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        if (has_code(j)) {
          target = j + 1;
          break;
        }
      }
    }
    table.allowed[line_no].insert(rules.begin(), rules.end());
    table.allowed[target].insert(rules.begin(), rules.end());
  }
  return table;
}

bool is_allowed(const PragmaTable& table, std::size_t line, const std::string& rule) {
  const auto it = table.allowed.find(line);
  return it != table.allowed.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Rule scopes. Paths are relative to the scanned root with '/' separators.
// ---------------------------------------------------------------------------

bool in_src(const std::string& rel) { return rel.rfind("src/", 0) == 0; }
bool in_tests(const std::string& rel) { return rel.rfind("tests/", 0) == 0; }
bool in_obs(const std::string& rel) { return rel.rfind("src/obs/", 0) == 0; }
bool in_proto_headers(const std::string& rel) {
  return rel.rfind("src/proto/include/", 0) == 0;
}

bool is_header(const std::string& rel) {
  return rel.size() > 4 && (rel.ends_with(".hpp") || rel.ends_with(".h"));
}

struct TokenRule {
  const char* rule;
  std::regex pattern;
  const char* message;
  bool applies_to_tests;
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"no-rand", std::regex(R"(\b(?:srand|rand)\s*\()"),
                 "libc rand()/srand() is nondeterministic across platforms; use g2g::Rng",
                 true});
    r.push_back({"no-random-device",
                 std::regex(R"(\brandom_device\b)"),
                 "std::random_device breaks seed reproducibility; use g2g::Rng",
                 true});
    r.push_back({"no-wall-clock",
                 std::regex(R"(\bsystem_clock\b|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstd\s*::\s*time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"),
                 "wall-clock reads make runs non-replayable; use sim TimePoint "
                 "(steady_clock is fine for profiling)",
                 false});
    r.push_back({"no-getenv", std::regex(R"(\bgetenv\b)"),
                 "environment reads hide run configuration; thread it through "
                 "ExperimentConfig",
                 false});
    return r;
  }();
  return rules;
}

const std::set<std::string>& registered_counter_prefixes() {
  // The counter namespace of docs/OBSERVABILITY.md. New areas are added here
  // deliberately, in the same commit that documents them.
  static const std::set<std::string> prefixes = {
      "buffer.", "detect.", "fastpath.", "g2g.", "hs.",
      "msg.",    "pom.",    "session.",  "wire.",
  };
  return prefixes;
}

const std::set<std::string>& registered_span_names() {
  // The span/stage name set of docs/OBSERVABILITY.md ("Spans & causal
  // tracing") and src/obs/include/g2g/obs/span.hpp; the three lists are kept
  // in sync deliberately, in the same commit.
  static const std::set<std::string> names = {
      // spans
      "msg", "relay_session", "audit_round", "pom_gossip",
      // stages
      "trace_gen", "communities", "warm_up", "simulation",
      "pom_batch_verify", "extraction",
  };
  return names;
}

// ---------------------------------------------------------------------------
// Per-file scanning.
// ---------------------------------------------------------------------------

void scan_tokens(const std::string& rel, const std::vector<SplitLine>& lines,
                 const PragmaTable& pragmas, std::vector<Finding>& out) {
  const bool src = in_src(rel);
  const bool tests = in_tests(rel);
  if (!src && !tests) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const TokenRule& rule : token_rules()) {
      if (tests && !rule.applies_to_tests) continue;
      if (!std::regex_search(lines[i].code_blanked, rule.pattern)) continue;
      if (is_allowed(pragmas, i + 1, rule.rule)) continue;
      out.push_back({rel, i + 1, rule.rule, rule.message});
    }
  }
}

void scan_unordered_iteration(const std::string& rel,
                              const std::vector<SplitLine>& lines,
                              const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_src(rel)) return;
  // Pass 1: names declared (in this file) with an unordered container type.
  static const std::regex kDecl(R"(unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=(])");
  std::set<std::string> unordered_names;
  for (const SplitLine& line : lines) {
    auto begin = std::sregex_iterator(line.code_blanked.begin(),
                                      line.code_blanked.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for over, or begin() iteration of, one of those names.
  static const std::regex kRangeFor(R"(for\s*\([^)]*:\s*(\w+)\s*\))");
  static const std::regex kBegin(R"((\w+)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const auto* pattern : {&kRangeFor, &kBegin}) {
      auto begin = std::sregex_iterator(lines[i].code_blanked.begin(),
                                        lines[i].code_blanked.end(), *pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name) == 0) continue;
        if (is_allowed(pragmas, i + 1, "no-unordered-iter")) continue;
        out.push_back({rel, i + 1, "no-unordered-iter",
                       "iteration over unordered container '" + name +
                           "' has unspecified order; use std::map or sort first"});
      }
    }
  }
}

void scan_wire_triple(const std::string& rel, const std::vector<SplitLine>& lines,
                      const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_proto_headers(rel) || !is_header(rel)) return;
  // Whole-file scan over blanked code: find each struct/class body and check
  // that encode() is accompanied by decode() and wire_size().
  std::string text;
  std::vector<std::size_t> line_of_offset(1, 1);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    text += lines[i].code_blanked;
    text += '\n';
    line_of_offset.push_back(i + 2);
  }
  static const std::regex kStruct(R"((?:struct|class)\s+(\w+)[^;{]*\{)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kStruct);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    // Matching close brace.
    std::size_t depth = 0;
    std::size_t close = text.size();
    for (std::size_t p = open; p < text.size(); ++p) {
      if (text[p] == '{') ++depth;
      if (text[p] == '}' && --depth == 0) {
        close = p;
        break;
      }
    }
    const std::string body = text.substr(open, close - open);
    static const std::regex kEncode(R"(\bencode\s*\(\s*\)\s*const)");
    static const std::regex kDecode(R"(\bdecode\s*\()");
    static const std::regex kWireSize(R"(\bwire_size\s*\(\s*\)\s*const)");
    if (!std::regex_search(body, kEncode)) continue;
    std::string missing;
    if (!std::regex_search(body, kDecode)) missing = "decode()";
    if (!std::regex_search(body, kWireSize)) {
      if (!missing.empty()) missing += " and ";
      missing += "wire_size()";
    }
    if (missing.empty()) continue;
    const std::size_t line =
        line_of_offset[static_cast<std::size_t>(
            std::count(text.begin(), text.begin() + it->position(), '\n'))];
    if (is_allowed(pragmas, line, "wire-encode-triple")) continue;
    out.push_back({rel, line, "wire-encode-triple",
                   "'" + (*it)[1].str() + "' declares encode() but not " + missing +
                       "; every wire type carries the full codec triple"});
  }
}

void scan_counters(const std::string& rel, const std::vector<SplitLine>& lines,
                   const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_src(rel)) return;
  static const std::regex kCall(R"(\b(?:counter|histogram)\s*\(\s*"([^"]*)\")");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto begin = std::sregex_iterator(lines[i].code.begin(), lines[i].code.end(), kCall);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      const auto& prefixes = registered_counter_prefixes();
      const bool ok = std::any_of(prefixes.begin(), prefixes.end(),
                                  [&](const std::string& p) {
                                    return name.rfind(p, 0) == 0;
                                  });
      if (ok) continue;
      if (is_allowed(pragmas, i + 1, "counter-name-prefix")) continue;
      out.push_back({rel, i + 1, "counter-name-prefix",
                     "counter/histogram name '" + name +
                         "' lacks a registered area prefix (see "
                         "docs/STATIC_ANALYSIS.md)"});
    }
  }
}

void scan_span_names(const std::string& rel, const std::vector<SplitLine>& lines,
                     const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_src(rel)) return;
  // Three emission sites carry span/stage names as string literals:
  // Tracer::open_span("..."), obs::StageTimer t(stages, "..."), and
  // StageRegistry::add("..."). Call sites must keep the name literal (no
  // constants) precisely so this rule can see it.
  static const std::regex kOpenSpan(R"(\bopen_span\s*\([^"]*"([^"]*)\")");
  static const std::regex kStageTimer(R"(\bStageTimer\s+\w+\s*\([^"]*"([^"]*)\")");
  static const std::regex kStagesAdd(R"(\bstages\s*\.\s*add\s*\(\s*"([^"]*)\")");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const auto* pattern : {&kOpenSpan, &kStageTimer, &kStagesAdd}) {
      auto begin =
          std::sregex_iterator(lines[i].code.begin(), lines[i].code.end(), *pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (registered_span_names().count(name) > 0) continue;
        if (is_allowed(pragmas, i + 1, "span-name-registry")) continue;
        out.push_back({rel, i + 1, "span-name-registry",
                       "span/stage name '" + name +
                           "' is not in the registered set (see "
                           "docs/OBSERVABILITY.md and g2g/obs/span.hpp)"});
      }
    }
  }
}

void scan_adhoc_atomics(const std::string& rel, const std::vector<SplitLine>& lines,
                        const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_src(rel) || in_obs(rel)) return;
  static const std::regex kAtomic(R"(\bstd\s*::\s*atomic\b)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code_blanked, kAtomic)) continue;
    if (is_allowed(pragmas, i + 1, "no-adhoc-atomic")) continue;
    out.push_back({rel, i + 1, "no-adhoc-atomic",
                   "std::atomic outside src/obs — protocol counters go through "
                   "obs::Registry; justify infrastructure atomics with an allow "
                   "pragma"});
  }
}

// Owning buffers on the relay hot path: the zero-copy message path encodes
// into the session arena (g2g/util/arena.hpp) and decodes through non-owning
// views, so constructing Bytes / std::vector<uint8_t> / Writer inside
// src/proto/src/relay/ reintroduces per-hop heap traffic. Genuinely cold
// paths (PoM gossip dedup, the deferred heavy-HMAC hand-off, whose inputs
// must outlive the arena generation) justify themselves with an allow pragma.
bool in_relay_hot_path(const std::string& rel) {
  return rel.rfind("src/proto/src/relay/", 0) == 0 && !is_header(rel);
}

void scan_owning_buffer_hot_path(const std::string& rel,
                                 const std::vector<SplitLine>& lines,
                                 const PragmaTable& pragmas, std::vector<Finding>& out) {
  if (!in_relay_hot_path(rel)) return;
  // Owning-buffer constructions only: `Bytes name …`, a `Bytes(...)`
  // temporary, a raw byte vector, or an owning Writer. Return types
  // (`Bytes X::encode()`), references (`const Bytes&`), and the non-owning
  // BytesView/SpanWriter types do not match.
  static const std::regex kOwning(
      R"(\bBytes\s+\w+\s*[({=;]|\bBytes\s*\(|std::vector<\s*(?:std::)?uint8_t\s*>|\bWriter\s+\w+)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code_blanked, kOwning)) continue;
    if (is_allowed(pragmas, i + 1, "no-owning-buffer-hot-path")) continue;
    out.push_back({rel, i + 1, "no-owning-buffer-hot-path",
                   "owning buffer construction on the relay hot path; encode into "
                   "the session arena and decode through views (DESIGN.md \"Buffer "
                   "ownership\"), or justify a cold path with an allow pragma"});
  }
}

// Frame catalogue completeness: every struct *Frame in relay/frames.hpp must
// be exercised by the decoder fuzz suite.
void scan_frame_fuzz_coverage(const fs::path& root, std::vector<Finding>& out) {
  const fs::path frames = root / "src/proto/include/g2g/proto/relay/frames.hpp";
  if (!fs::exists(frames)) return;  // repo layout without a relay layer
  std::ifstream in(frames);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::string fuzz_text;
  const fs::path fuzz = root / "tests/fuzz_decode_test.cpp";
  if (fs::exists(fuzz)) {
    std::ifstream fin(fuzz);
    std::stringstream fbuf;
    fbuf << fin.rdbuf();
    fuzz_text = fbuf.str();
  }

  static const std::regex kFrame(R"(struct\s+(\w+Frame)\b)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kFrame);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (fuzz_text.find(name) != std::string::npos) continue;
    const auto line = static_cast<std::size_t>(
                          std::count(text.begin(), text.begin() + it->position(), '\n')) +
                      1;
    out.push_back({"src/proto/include/g2g/proto/relay/frames.hpp", line,
                   "frame-fuzz-coverage",
                   "frame '" + name +
                       "' is not exercised by tests/fuzz_decode_test.cpp; every "
                       "decoder must survive the fuzz corpus"});
  }
}

// Differential-oracle completeness: every function declared in a src/crypto
// header that takes a modulus parameter (`const U256& m`/`modulus` or
// `const MontgomeryParams& params`) must be named in the Montgomery-vs-classic
// corpus in tests/crypto_fastpath_diff_test.cpp, so a future fast-path kernel
// cannot land without a pinned comparison against the schoolbook oracle.
void scan_mod_param_diff_coverage(const fs::path& root, std::vector<Finding>& out) {
  const fs::path include = root / "src/crypto/include";
  if (!fs::exists(include)) return;  // repo layout without the crypto layer

  std::string corpus_text;
  const fs::path corpus = root / "tests/crypto_fastpath_diff_test.cpp";
  if (fs::exists(corpus)) {
    std::ifstream in(corpus);
    std::stringstream buf;
    buf << in.rdbuf();
    corpus_text = buf.str();
  }

  static const std::regex kModFn(
      R"((\w+)\s*\([^)]*const\s+(?:U256|MontgomeryParams)\s*&\s*(?:modulus|params|m)\s*[,)])");
  std::vector<fs::path> headers;
  for (const auto& entry : fs::recursive_directory_iterator(include)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hpp") {
      headers.push_back(entry.path());
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const fs::path& header : headers) {
    std::ifstream in(header);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::string rel = fs::relative(header, root).generic_string();
    std::set<std::string> reported;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kModFn);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (corpus_text.find(name) != std::string::npos) continue;
      if (!reported.insert(name).second) continue;
      const auto line = static_cast<std::size_t>(
                            std::count(text.begin(), text.begin() + it->position(), '\n')) +
                        1;
      out.push_back({rel, line, "mod-param-diff-coverage",
                     "'" + name +
                         "' takes a modulus parameter but is not named in the "
                         "differential corpus (tests/crypto_fastpath_diff_test.cpp); "
                         "modular kernels must be pinned to the classic oracle"});
    }
  }
}

std::vector<fs::path> collect_files(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* top : {"src", "tests"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  // Directory iteration order is platform-dependent; the lint's own output
  // must be deterministic.
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "no-rand",           "no-random-device",
      "no-wall-clock",     "no-getenv",
      "no-unordered-iter", "wire-encode-triple",
      "frame-fuzz-coverage", "mod-param-diff-coverage",
      "counter-name-prefix", "span-name-registry",
      "no-adhoc-atomic",     "no-owning-buffer-hot-path",
      "allow-without-justification",
  };
  return ids;
}

std::vector<Finding> run_lint(const Options& options) {
  std::vector<Finding> findings;
  const fs::path root = fs::absolute(options.root);
  for (const fs::path& path : collect_files(root)) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::vector<SplitLine> lines = split_lines(buf.str());
    const std::string rel = fs::relative(path, root).generic_string();

    const PragmaTable pragmas = collect_pragmas(rel, lines);
    findings.insert(findings.end(), pragmas.malformed.begin(), pragmas.malformed.end());

    scan_tokens(rel, lines, pragmas, findings);
    scan_unordered_iteration(rel, lines, pragmas, findings);
    scan_wire_triple(rel, lines, pragmas, findings);
    scan_counters(rel, lines, pragmas, findings);
    scan_span_names(rel, lines, pragmas, findings);
    scan_adhoc_atomics(rel, lines, pragmas, findings);
    scan_owning_buffer_hot_path(rel, lines, pragmas, findings);
  }
  scan_frame_fuzz_coverage(root, findings);
  scan_mod_param_diff_coverage(root, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

}  // namespace g2g::lint
