// g2g-lint v2 driver: one lexical pass per file (lexer.cpp) feeds the scope
// tracker (scope.cpp), the pragma table (pragma.cpp), and every per-file
// rule (rules_text.cpp, rules_semantic.cpp, rules_include.cpp); the
// whole-repo coverage rules (rules_repo.cpp) run once at the end.
#include "lint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lint_internal.hpp"

namespace g2g::lint {

namespace {

namespace fs = std::filesystem;
namespace li = internal;

std::vector<fs::path> collect_files(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* top : {"src", "tests"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  // Directory iteration order is platform-dependent; the lint's own output
  // must be deterministic.
  std::sort(files.begin(), files.end());
  return files;
}

template <typename Record>
void sort_records(std::vector<Record>& records) {
  std::sort(records.begin(), records.end(), [](const Record& a, const Record& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_record(std::string& out, const std::string& file, std::size_t line,
                 const std::string& rule, const std::string& message,
                 const std::string& justification) {
  out += "    {\"file\": \"";
  json_escape(out, file);
  out += "\", \"line\": " + std::to_string(line) + ", \"rule\": \"";
  json_escape(out, rule);
  out += "\", \"message\": \"";
  json_escape(out, message);
  out += "\", \"justification\": \"";
  json_escape(out, justification);
  out += "\"}";
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      // determinism
      "no-rand", "no-random-device", "no-wall-clock", "no-getenv",
      "no-unordered-iter",
      // wire
      "wire-encode-triple", "frame-fuzz-coverage", "mod-param-diff-coverage",
      "no-owning-buffer-hot-path",
      // lifetime
      "view-escape", "arena-reset-safety",
      // layering
      "include-layering",
      // counters & tracing
      "counter-name-prefix", "span-name-registry", "no-adhoc-atomic",
      // pragma hygiene
      "allow-without-justification", "allow-unknown-rule",
  };
  return ids;
}

Report run_report(const Options& options) {
  const auto t0 = std::chrono::steady_clock::now();
  Report report;
  const fs::path root = fs::absolute(options.root);
  for (const fs::path& path : collect_files(root)) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const LexedFile lexed = lex(buf.str());
    const ScopeMap scopes = build_scopes(lexed.tokens);
    const std::string rel = fs::relative(path, root).generic_string();
    ++report.files_scanned;

    const PragmaTable pragmas = collect_pragmas(rel, lexed.lines);
    // Pragma hygiene findings are never themselves suppressible.
    report.findings.insert(report.findings.end(), pragmas.parse_findings.begin(),
                           pragmas.parse_findings.end());

    const li::FileContext ctx{rel, lexed, scopes};
    li::Sink sink(rel, pragmas, report.findings, report.suppressed);
    li::scan_tokens(ctx, sink);
    li::scan_unordered_iteration(ctx, sink);
    li::scan_wire_triple(ctx, sink);
    li::scan_counters(ctx, sink);
    li::scan_span_names(ctx, sink);
    li::scan_adhoc_atomics(ctx, sink);
    li::scan_owning_buffer_hot_path(ctx, sink);
    li::scan_view_escape(ctx, sink);
    li::scan_arena_reset_safety(ctx, sink);
    li::scan_include_layering(ctx, sink);
  }
  li::scan_frame_fuzz_coverage(root, report.findings);
  li::scan_mod_param_diff_coverage(root, report.findings);

  sort_records(report.findings);
  sort_records(report.suppressed);
  for (const std::string& rule : rule_ids()) report.rule_counts[rule] = 0;
  for (const Finding& f : report.findings) ++report.rule_counts[f.rule];
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

std::vector<Finding> run_lint(const Options& options) {
  return run_report(options).findings;
}

std::string format(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

std::string to_json(const Report& report) {
  std::string out = "{\n  \"schema\": \"g2g-lint/v2\",\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out += i == 0 ? "\n" : ",\n";
    json_record(out, f.file, f.line, f.rule, f.message, "");
  }
  out += report.findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"suppressed\": [";
  for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
    const Suppression& s = report.suppressed[i];
    out += i == 0 ? "\n" : ",\n";
    json_record(out, s.file, s.line, s.rule, s.message, s.justification);
  }
  out += report.suppressed.empty() ? "],\n" : "\n  ],\n";
  out += "  \"summary\": {\"files_scanned\": " + std::to_string(report.files_scanned) +
         ", \"findings\": " + std::to_string(report.findings.size()) +
         ", \"suppressed\": " + std::to_string(report.suppressed.size()) +
         ", \"wall_ms\": ";
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.1f", report.wall_ms);
  out += wall;
  out += ", \"rules\": {";
  bool first = true;
  for (const auto& [rule, count] : report.rule_counts) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    json_escape(out, rule);
    out += "\": " + std::to_string(count);
  }
  out += "}}\n}\n";
  return out;
}

}  // namespace g2g::lint
