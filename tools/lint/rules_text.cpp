// The v1 line rules, ported behavior-identical onto the v2 engine: same
// regexes, same path gating, same messages. They consume the per-line
// projections the lexer produces; only pragma handling moved (into Sink).
#include <algorithm>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint_internal.hpp"

namespace g2g::lint::internal {

// ---------------------------------------------------------------------------
// Rule scopes. Paths are relative to the scanned root with '/' separators.
// ---------------------------------------------------------------------------

bool in_src(const std::string& rel) { return rel.rfind("src/", 0) == 0; }
bool in_tests(const std::string& rel) { return rel.rfind("tests/", 0) == 0; }

bool is_header(const std::string& rel) {
  return rel.size() > 4 && (rel.ends_with(".hpp") || rel.ends_with(".h"));
}

bool in_relay_core(const std::string& rel) {
  return rel.rfind("src/proto/src/relay/", 0) == 0 ||
         rel.rfind("src/proto/include/g2g/proto/relay/", 0) == 0;
}

bool is_view_type(const std::string& ident) {
  return ident.size() > 4 && ident.ends_with("View");
}

namespace {

bool in_obs(const std::string& rel) { return rel.rfind("src/obs/", 0) == 0; }
bool in_proto_headers(const std::string& rel) {
  return rel.rfind("src/proto/include/", 0) == 0;
}

struct TokenRule {
  const char* rule;
  std::regex pattern;
  const char* message;
  bool applies_to_tests;
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back({"no-rand", std::regex(R"(\b(?:srand|rand)\s*\()"),
                 "libc rand()/srand() is nondeterministic across platforms; use g2g::Rng",
                 true});
    r.push_back({"no-random-device",
                 std::regex(R"(\brandom_device\b)"),
                 "std::random_device breaks seed reproducibility; use g2g::Rng",
                 true});
    r.push_back({"no-wall-clock",
                 std::regex(R"(\bsystem_clock\b|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstd\s*::\s*time\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))"),
                 "wall-clock reads make runs non-replayable; use sim TimePoint "
                 "(steady_clock is fine for profiling)",
                 false});
    r.push_back({"no-getenv", std::regex(R"(\bgetenv\b)"),
                 "environment reads hide run configuration; thread it through "
                 "ExperimentConfig",
                 false});
    return r;
  }();
  return rules;
}

const std::set<std::string>& registered_counter_prefixes() {
  // The counter namespace of docs/OBSERVABILITY.md. New areas are added here
  // deliberately, in the same commit that documents them.
  static const std::set<std::string> prefixes = {
      "buffer.", "detect.", "fastpath.", "g2g.", "hs.",
      "msg.",    "pom.",    "session.",  "wire.",
  };
  return prefixes;
}

const std::set<std::string>& registered_span_names() {
  // The span/stage name set of docs/OBSERVABILITY.md ("Spans & causal
  // tracing") and src/obs/include/g2g/obs/span.hpp; the three lists are kept
  // in sync deliberately, in the same commit.
  static const std::set<std::string> names = {
      // spans
      "msg", "relay_session", "audit_round", "pom_gossip",
      // stages
      "trace_gen", "communities", "warm_up", "simulation",
      "pom_batch_verify", "extraction",
  };
  return names;
}

}  // namespace

void scan_tokens(const FileContext& ctx, Sink& sink) {
  const bool src = in_src(ctx.rel);
  const bool tests = in_tests(ctx.rel);
  if (!src && !tests) return;
  const auto& lines = ctx.lexed.lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const TokenRule& rule : token_rules()) {
      if (tests && !rule.applies_to_tests) continue;
      if (!std::regex_search(lines[i].code_blanked, rule.pattern)) continue;
      sink.report(i + 1, rule.rule, rule.message);
    }
  }
}

void scan_unordered_iteration(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  // Pass 1: names declared (in this file) with an unordered container type.
  static const std::regex kDecl(R"(unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=(])");
  std::set<std::string> unordered_names;
  for (const SplitLine& line : lines) {
    auto begin = std::sregex_iterator(line.code_blanked.begin(),
                                      line.code_blanked.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for over, or begin() iteration of, one of those names.
  static const std::regex kRangeFor(R"(for\s*\([^)]*:\s*(\w+)\s*\))");
  static const std::regex kBegin(R"((\w+)\s*\.\s*c?begin\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const auto* pattern : {&kRangeFor, &kBegin}) {
      auto begin = std::sregex_iterator(lines[i].code_blanked.begin(),
                                        lines[i].code_blanked.end(), *pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name) == 0) continue;
        sink.report(i + 1, "no-unordered-iter",
                    "iteration over unordered container '" + name +
                        "' has unspecified order; use std::map or sort first");
      }
    }
  }
}

void scan_wire_triple(const FileContext& ctx, Sink& sink) {
  if (!in_proto_headers(ctx.rel) || !is_header(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  // Whole-file scan over blanked code: find each struct/class body and check
  // that encode() is accompanied by decode() and wire_size().
  std::string text;
  std::vector<std::size_t> line_of_offset(1, 1);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    text += lines[i].code_blanked;
    text += '\n';
    line_of_offset.push_back(i + 2);
  }
  static const std::regex kStruct(R"((?:struct|class)\s+(\w+)[^;{]*\{)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kStruct);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    // Matching close brace.
    std::size_t depth = 0;
    std::size_t close = text.size();
    for (std::size_t p = open; p < text.size(); ++p) {
      if (text[p] == '{') ++depth;
      if (text[p] == '}' && --depth == 0) {
        close = p;
        break;
      }
    }
    const std::string body = text.substr(open, close - open);
    static const std::regex kEncode(R"(\bencode\s*\(\s*\)\s*const)");
    static const std::regex kDecode(R"(\bdecode\s*\()");
    static const std::regex kWireSize(R"(\bwire_size\s*\(\s*\)\s*const)");
    if (!std::regex_search(body, kEncode)) continue;
    std::string missing;
    if (!std::regex_search(body, kDecode)) missing = "decode()";
    if (!std::regex_search(body, kWireSize)) {
      if (!missing.empty()) missing += " and ";
      missing += "wire_size()";
    }
    if (missing.empty()) continue;
    const std::size_t line =
        line_of_offset[static_cast<std::size_t>(
            std::count(text.begin(), text.begin() + it->position(), '\n'))];
    sink.report(line, "wire-encode-triple",
                "'" + (*it)[1].str() + "' declares encode() but not " + missing +
                    "; every wire type carries the full codec triple");
  }
}

void scan_counters(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  static const std::regex kCall(R"(\b(?:counter|histogram)\s*\(\s*"([^"]*)\")");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto begin = std::sregex_iterator(lines[i].code.begin(), lines[i].code.end(), kCall);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      const auto& prefixes = registered_counter_prefixes();
      const bool ok = std::any_of(prefixes.begin(), prefixes.end(),
                                  [&](const std::string& p) {
                                    return name.rfind(p, 0) == 0;
                                  });
      if (ok) continue;
      sink.report(i + 1, "counter-name-prefix",
                  "counter/histogram name '" + name +
                      "' lacks a registered area prefix (see "
                      "docs/STATIC_ANALYSIS.md)");
    }
  }
}

void scan_span_names(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  // Three emission sites carry span/stage names as string literals:
  // Tracer::open_span("..."), obs::StageTimer t(stages, "..."), and
  // StageRegistry::add("..."). Call sites must keep the name literal (no
  // constants) precisely so this rule can see it.
  static const std::regex kOpenSpan(R"(\bopen_span\s*\([^"]*"([^"]*)\")");
  static const std::regex kStageTimer(R"(\bStageTimer\s+\w+\s*\([^"]*"([^"]*)\")");
  static const std::regex kStagesAdd(R"(\bstages\s*\.\s*add\s*\(\s*"([^"]*)\")");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const auto* pattern : {&kOpenSpan, &kStageTimer, &kStagesAdd}) {
      auto begin =
          std::sregex_iterator(lines[i].code.begin(), lines[i].code.end(), *pattern);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (registered_span_names().count(name) > 0) continue;
        sink.report(i + 1, "span-name-registry",
                    "span/stage name '" + name +
                        "' is not in the registered set (see "
                        "docs/OBSERVABILITY.md and g2g/obs/span.hpp)");
      }
    }
  }
}

void scan_adhoc_atomics(const FileContext& ctx, Sink& sink) {
  if (!in_src(ctx.rel) || in_obs(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  static const std::regex kAtomic(R"(\bstd\s*::\s*atomic\b)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code_blanked, kAtomic)) continue;
    sink.report(i + 1, "no-adhoc-atomic",
                "std::atomic outside src/obs — protocol counters go through "
                "obs::Registry; justify infrastructure atomics with an allow "
                "pragma");
  }
}

// Owning buffers on the relay hot path: the zero-copy message path encodes
// into the session arena (g2g/util/arena.hpp) and decodes through non-owning
// views, so constructing Bytes / std::vector<uint8_t> / Writer inside
// src/proto/src/relay/ reintroduces per-hop heap traffic. Genuinely cold
// paths (PoM gossip dedup, whose inputs must outlive the arena generation)
// justify themselves with an allow pragma.
void scan_owning_buffer_hot_path(const FileContext& ctx, Sink& sink) {
  if (ctx.rel.rfind("src/proto/src/relay/", 0) != 0 || is_header(ctx.rel)) return;
  const auto& lines = ctx.lexed.lines;
  // Owning-buffer constructions only: `Bytes name …`, a `Bytes(...)`
  // temporary, a raw byte vector, or an owning Writer. Return types
  // (`Bytes X::encode()`), references (`const Bytes&`), and the non-owning
  // BytesView/SpanWriter types do not match.
  static const std::regex kOwning(
      R"(\bBytes\s+\w+\s*[({=;]|\bBytes\s*\(|std::vector<\s*(?:std::)?uint8_t\s*>|\bWriter\s+\w+)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code_blanked, kOwning)) continue;
    sink.report(i + 1, "no-owning-buffer-hot-path",
                "owning buffer construction on the relay hot path; encode into "
                "the session arena and decode through views (DESIGN.md \"Buffer "
                "ownership\"), or justify a cold path with an allow pragma");
  }
}

}  // namespace g2g::lint::internal
