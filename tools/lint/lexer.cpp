#include "lexer.hpp"

#include <cctype>

namespace g2g::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// Raw-string prefixes: the pending identifier at the opening quote.
bool raw_prefix(const std::string& tok) {
  return tok == "R" || tok == "u8R" || tok == "uR" || tok == "LR";
}

/// Two-character punctuators kept as single tokens. `>>` is deliberately
/// absent: emitting two `>` tokens makes template-angle matching work the
/// same way the C++ grammar resolves nested closes.
bool two_char_punct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=';
    case '&': return b == '&';
    case '|': return b == '|';
    case '+': return b == '+' || b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    default: return false;
  }
}

}  // namespace

LexedFile lex(const std::string& text) {
  enum class State { Code, Directive, LineComment, BlockComment, Str, Char, RawStr };
  LexedFile out;
  State state = State::Code;
  SplitLine cur;
  std::string tok;                 // pending identifier/number spelling
  TokKind tok_kind = TokKind::Ident;
  std::size_t tok_line = 1;
  std::size_t line = 1;
  std::string raw_close;           // ")delim\"" terminating the active raw string
  bool line_has_code = false;      // any non-ws code emitted on this physical line

  const auto flush_tok = [&] {
    if (!tok.empty()) {
      out.tokens.push_back({tok_kind, tok, tok_line});
      tok.clear();
    }
  };
  const auto flush_line = [&] {
    out.lines.push_back(std::move(cur));
    cur = SplitLine{};
    ++line;
    line_has_code = false;
  };
  const auto emit_code = [&](char c) {
    cur.code_blanked += c;
    cur.code += c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '\\' && n == '\n') {
          // Line splice: the logical line (and any pending token) continues.
          ++i;
          flush_line();
          continue;
        }
        if (c == '\n') {
          flush_tok();
          flush_line();
          continue;
        }
        if (c == '/' && n == '/') {
          flush_tok();
          state = State::LineComment;
          ++i;
          continue;
        }
        if (c == '/' && n == '*') {
          flush_tok();
          state = State::BlockComment;
          ++i;
          continue;
        }
        if (c == '#' && !line_has_code && tok.empty()) {
          emit_code(c);
          state = State::Directive;
          continue;
        }
        if (c == '"') {
          if (raw_prefix(tok)) {
            // R"delim( ... )delim" — no escapes, no splices inside.
            tok.clear();
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(' && text[j] != '"' &&
                   text[j] != '\n' && text[j] != '\\' && delim.size() < 16) {
              delim += text[j];
              ++j;
            }
            if (j < text.size() && text[j] == '(') {
              cur.code_blanked += '"';
              cur.code += '"';
              cur.code += delim;
              cur.code += '(';
              line_has_code = true;
              raw_close = ")" + delim + "\"";
              out.tokens.push_back({TokKind::Str, "R\"" + delim + "(", line});
              i = j;  // consume the delimiter and '('
              state = State::RawStr;
              continue;
            }
            // Malformed raw prefix: fall through as an ordinary string.
          }
          flush_tok();
          out.tokens.push_back({TokKind::Str, "\"", line});
          cur.code_blanked += '"';
          cur.code += '"';
          line_has_code = true;
          state = State::Str;
          continue;
        }
        if (c == '\'') {
          if (!tok.empty() && tok_kind == TokKind::Number) {
            tok += c;  // digit separator: 1'000'000
            emit_code(c);
            continue;
          }
          flush_tok();
          out.tokens.push_back({TokKind::CharLit, "'", line});
          cur.code_blanked += '\'';
          cur.code += '\'';
          line_has_code = true;
          state = State::Char;
          continue;
        }
        if (ident_start(c) || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
          if (tok.empty()) {
            tok_kind = std::isdigit(static_cast<unsigned char>(c)) != 0 ? TokKind::Number
                                                                        : TokKind::Ident;
            tok_line = line;
          }
          tok += c;
          emit_code(c);
          continue;
        }
        flush_tok();
        if (two_char_punct(c, n)) {
          out.tokens.push_back({TokKind::Punct, std::string{c, n}, line});
          emit_code(c);
          emit_code(n);
          ++i;
          continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        }
        emit_code(c);
        continue;

      case State::Directive:
        // The whole logical line is swallowed; no tokens are emitted, so a
        // macro body or include path never looks like a declaration.
        if (c == '\\' && n == '\n') {
          ++i;
          flush_line();
          continue;
        }
        if (c == '\n') {
          state = State::Code;
          flush_line();
          continue;
        }
        if (c == '/' && n == '/') {
          state = State::LineComment;
          ++i;
          continue;
        }
        if (c == '/' && n == '*') {
          state = State::BlockComment;  // returns to Code; good enough for directives
          ++i;
          continue;
        }
        if (c == '"' || c == '\'') {
          // Blank quoted contents exactly like ordinary code so token rules
          // never see a path or macro string.
          const char quote = c;
          cur.code_blanked += quote;
          cur.code += quote;
          ++i;
          for (; i < text.size(); ++i) {
            const char d = text[i];
            if (d == '\n' || d == quote) break;
            cur.code += d;
            cur.code_blanked += ' ';
          }
          if (i < text.size() && text[i] == quote) {
            cur.code_blanked += quote;
            cur.code += quote;
          } else {
            state = State::Code;
            flush_line();
          }
          continue;
        }
        emit_code(c);
        continue;

      case State::LineComment:
        if (c == '\\' && n == '\n') {
          // A trailing backslash continues the comment onto the next line.
          ++i;
          flush_line();
          continue;
        }
        if (c == '\n') {
          state = State::Code;
          flush_line();
          continue;
        }
        cur.comment += c;
        continue;

      case State::BlockComment:
        if (c == '*' && n == '/') {
          state = State::Code;
          ++i;
          continue;
        }
        if (c == '\n') {
          flush_line();
          continue;
        }
        cur.comment += c;
        continue;

      case State::Str:
      case State::Char: {
        const char quote = state == State::Str ? '"' : '\'';
        if (c == '\\' && n == '\n') {
          ++i;  // splice inside a literal: the literal continues
          flush_line();
          continue;
        }
        if (c == '\\' && n != '\0') {
          cur.code += c;
          cur.code += n;
          cur.code_blanked += "  ";
          ++i;
          continue;
        }
        if (c == '\n') {
          // Unterminated literal: bail back to code (the compiler would
          // reject it; the lint must not derail on one bad line).
          state = State::Code;
          flush_line();
          continue;
        }
        cur.code += c;
        if (c == quote) {
          cur.code_blanked += quote;
          state = State::Code;
        } else {
          cur.code_blanked += ' ';
        }
        continue;
      }

      case State::RawStr:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          cur.code += raw_close;
          cur.code_blanked += '"';
          line_has_code = true;
          i += raw_close.size() - 1;
          state = State::Code;
          continue;
        }
        if (c == '\n') {
          flush_line();
          continue;
        }
        cur.code += c;
        cur.code_blanked += ' ';
        continue;
    }
  }
  flush_tok();
  out.lines.push_back(std::move(cur));
  return out;
}

}  // namespace g2g::lint
