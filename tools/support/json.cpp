#include "json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace g2g::tools {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::num_or(double fallback) const {
  return kind == Kind::Number ? number : fallback;
}

long long Value::int_or(long long fallback) const {
  return kind == Kind::Number && is_integer ? integer : fallback;
}

std::string Value::str_or(std::string fallback) const {
  return kind == Kind::String ? string : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult r;
    skip_ws();
    if (!parse_value(r.value)) {
      r.error = error_;
      r.pos = pos_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      r.error = "trailing content";
      r.pos = pos_;
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  bool consume(char c, const char* message) {
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(message);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::String; return parse_string(out.string);
      case 't': out.kind = Value::Kind::Bool; out.boolean = true; return literal("true");
      case 'f': out.kind = Value::Kind::Bool; out.boolean = false; return literal("false");
      case 'n': out.kind = Value::Kind::Null; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':', "expected ':'")) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
      return consume('}', "expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') { ++pos_; continue; }
      return consume(']', "expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("invalid \\u escape");
          }
          // The repo's writers only escape ASCII; encode BMP points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::Number;
    out.number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out.integer = v;
        out.is_integer = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace g2g::tools
