// Minimal JSON reader shared by the repo tools (g2g-trace, g2g-bench-compare).
//
// The tools consume machine-generated JSON the repo itself writes — JSONL
// trace lines from obs::JsonlSink and BENCH_*.json from bench/bench_json.hpp
// — so the parser favours smallness over generality: recursive descent, one
// Value variant, object keys kept in document order. Zero dependencies, same
// rationale as tools/lint.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g2g::tools {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  /// Numbers keep both views: `number` always holds the double value;
  /// `integer` is exact when `is_integer` (no '.', 'e', overflow).
  double number = 0.0;
  long long integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member by key; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  [[nodiscard]] double num_or(double fallback) const;
  [[nodiscard]] long long int_or(long long fallback) const;
  [[nodiscard]] std::string str_or(std::string fallback) const;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;      ///< empty when ok
  std::size_t pos = 0;    ///< byte offset of the error
};

/// Parse one JSON document; trailing whitespace is allowed, trailing content
/// is an error (JSONL callers parse line by line).
[[nodiscard]] ParseResult parse_json(std::string_view text);

}  // namespace g2g::tools
