#include "compare.hpp"

#include <cstdio>
#include <map>

namespace g2g::benchcompare {

namespace {

std::string fmt_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

struct CellView {
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double allocs_per_op = -1.0;  ///< -1: cell carries no allocation telemetry
};

std::map<std::string, CellView> cells_of(const tools::Value& report) {
  std::map<std::string, CellView> out;
  const tools::Value* cells = report.find("cells");
  if (cells == nullptr || cells->kind != tools::Value::Kind::Array) return out;
  for (const tools::Value& cell : cells->array) {
    const tools::Value* name = cell.find("name");
    if (name == nullptr || name->kind != tools::Value::Kind::String) continue;
    CellView v;
    if (const tools::Value* w = cell.find("wall_s")) v.wall_s = w->num_or(0.0);
    if (const tools::Value* e = cell.find("events_per_s")) v.events_per_s = e->num_or(0.0);
    if (const tools::Value* a = cell.find("allocs_per_op")) v.allocs_per_op = a->num_or(-1.0);
    out.emplace(name->string, v);
  }
  return out;
}

void grade(Comparison& c, const Options& opt, const std::string& cell,
           const char* metric, double ratio) {
  if (ratio <= opt.warn_ratio) return;
  Diff d;
  d.severity = ratio > opt.fail_ratio ? Severity::Failure : Severity::Warning;
  d.message = cell + ": " + metric + " regressed " + fmt_ratio(ratio) +
              (d.severity == Severity::Failure ? " (fail threshold " : " (warn threshold ") +
              fmt_ratio(d.severity == Severity::Failure ? opt.fail_ratio : opt.warn_ratio) +
              ")";
  c.diffs.push_back(std::move(d));
}

}  // namespace

Comparison compare(const tools::Value& base, const tools::Value& next,
                   const Options& options) {
  Comparison c;

  const std::string base_rev = base.find("rev") ? base.find("rev")->str_or("?") : "?";
  const std::string next_rev = next.find("rev") ? next.find("rev")->str_or("?") : "?";
  if (base_rev != next_rev) {
    c.diffs.push_back({Severity::Info, "rev " + base_rev + " -> " + next_rev});
  }

  const auto base_cells = cells_of(base);
  const auto next_cells = cells_of(next);

  for (const auto& [name, b] : base_cells) {
    const auto it = next_cells.find(name);
    if (it == next_cells.end()) {
      c.diffs.push_back({Severity::Warning, name + ": cell missing from new report"});
      continue;
    }
    const CellView& n = it->second;
    // Sub-millisecond cells are noise-dominated; ratios there mean nothing.
    if (b.wall_s > 1e-3 && n.wall_s > 0.0) {
      grade(c, options, name, "wall time", n.wall_s / b.wall_s);
    }
    if (b.events_per_s > 0.0 && n.events_per_s > 0.0) {
      grade(c, options, name, "throughput", b.events_per_s / n.events_per_s);
    }
    // Allocation telemetry is deterministic, so it gets a hard edge: a cell
    // pinned allocation-free in the baseline must stay that way.
    if (b.allocs_per_op >= 0.0 && n.allocs_per_op >= 0.0) {
      if (b.allocs_per_op < 0.5 && n.allocs_per_op >= 0.5) {
        c.diffs.push_back({Severity::Failure,
                           name + ": allocations appeared on an allocation-free cell (" +
                               std::to_string(n.allocs_per_op) + " allocs/op)"});
      } else if (b.allocs_per_op >= 0.5) {
        grade(c, options, name, "allocs/op", n.allocs_per_op / b.allocs_per_op);
      }
    }
  }
  for (const auto& [name, n] : next_cells) {
    (void)n;
    if (base_cells.count(name) == 0) {
      c.diffs.push_back({Severity::Info, name + ": new cell (no baseline)"});
    }
  }

  // Counter deltas: informational context for a perf shift (e.g. "the run
  // did 3x the signatures", not just "it got slower").
  const tools::Value* base_obs = base.find("obs");
  const tools::Value* next_obs = next.find("obs");
  if (base_obs != nullptr && next_obs != nullptr) {
    const tools::Value* bc = base_obs->find("counters");
    const tools::Value* nc = next_obs->find("counters");
    if (bc != nullptr && nc != nullptr && bc->kind == tools::Value::Kind::Object) {
      for (const auto& [name, value] : bc->object) {
        const tools::Value* other = nc->find(name);
        if (other == nullptr) continue;
        const long long b = value.int_or(0);
        const long long n = other->int_or(0);
        if (b != n) {
          c.diffs.push_back({Severity::Info, "counter " + name + ": " +
                                                 std::to_string(b) + " -> " +
                                                 std::to_string(n)});
        }
      }
    }
  }
  return c;
}

std::string format(const Diff& d) {
  switch (d.severity) {
    case Severity::Failure: return "[FAIL] " + d.message;
    case Severity::Warning: return "[warn] " + d.message;
    case Severity::Info: break;
  }
  return "[info] " + d.message;
}

}  // namespace g2g::benchcompare
