// g2g-bench-compare CLI: diff two BENCH_*.json files with tolerances.
//
//   g2g-bench-compare [--warn-ratio 1.25] [--fail-ratio 2.0] base.json new.json
//
// Exit codes: 0 no failures (warnings allowed), 1 at least one failure,
// 2 usage / unreadable / unparseable input.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "compare.hpp"

namespace {

bool read_report(const std::string& path, g2g::tools::Value& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "g2g-bench-compare: cannot open " << path << '\n';
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  g2g::tools::ParseResult parsed = g2g::tools::parse_json(buf.str());
  if (!parsed.ok) {
    std::cerr << "g2g-bench-compare: " << path << ": " << parsed.error << " at byte "
              << parsed.pos << '\n';
    return false;
  }
  out = std::move(parsed.value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  g2g::benchcompare::Options options;
  std::string base_path;
  std::string next_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--warn-ratio" && i + 1 < argc) {
      options.warn_ratio = std::stod(argv[++i]);
    } else if (arg == "--fail-ratio" && i + 1 < argc) {
      options.fail_ratio = std::stod(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: g2g-bench-compare [--warn-ratio R] [--fail-ratio R]"
                   " base.json new.json\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "g2g-bench-compare: unknown option " << arg << '\n';
      return 2;
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (next_path.empty()) {
      next_path = arg;
    } else {
      std::cerr << "g2g-bench-compare: too many arguments\n";
      return 2;
    }
  }
  if (base_path.empty() || next_path.empty()) {
    std::cerr << "usage: g2g-bench-compare [--warn-ratio R] [--fail-ratio R]"
                 " base.json new.json\n";
    return 2;
  }

  g2g::tools::Value base;
  g2g::tools::Value next;
  if (!read_report(base_path, base) || !read_report(next_path, next)) return 2;

  const g2g::benchcompare::Comparison c =
      g2g::benchcompare::compare(base, next, options);
  for (const auto& diff : c.diffs) std::cout << g2g::benchcompare::format(diff) << '\n';
  const std::size_t failures = c.count(g2g::benchcompare::Severity::Failure);
  const std::size_t warnings = c.count(g2g::benchcompare::Severity::Warning);
  std::cout << "bench-compare: " << failures << " failure(s), " << warnings
            << " warning(s), " << c.diffs.size() - failures - warnings << " info\n";
  return failures > 0 ? 1 : 0;
}
