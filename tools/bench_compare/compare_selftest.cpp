// Self-test of the BENCH comparison engine: ratios, thresholds, missing and
// new cells, counter deltas, and the JSON reader underneath it.
#include "compare.hpp"

#include <gtest/gtest.h>

namespace g2g::benchcompare {
namespace {

tools::Value parse(const std::string& text) {
  tools::ParseResult r = tools::parse_json(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value;
}

std::string report(double wall_s, double events_per_s, const std::string& extra = "") {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":1,\"bench\":\"t\",\"rev\":\"abc\",\"config\":{},"
                "\"cells\":[{\"name\":\"cell\",\"runs\":1,\"wall_s\":%.6f,"
                "\"sim_events\":100,\"events_per_s\":%.3f}]%s}",
                wall_s, events_per_s, extra.c_str());
  return buf;
}

TEST(BenchCompare, IdenticalReportsAreClean) {
  const tools::Value base = parse(report(1.0, 100.0));
  const Comparison c = compare(base, base, Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 0u);
}

TEST(BenchCompare, SmallDriftStaysUnderWarnThreshold) {
  const Comparison c =
      compare(parse(report(1.0, 100.0)), parse(report(1.2, 85.0)), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 0u);
}

TEST(BenchCompare, WallRegressionBeyondWarnWarns) {
  const Comparison c =
      compare(parse(report(1.0, 100.0)), parse(report(1.5, 100.0)), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 1u);
}

TEST(BenchCompare, WallRegressionBeyondFailFails) {
  const Comparison c =
      compare(parse(report(1.0, 100.0)), parse(report(2.5, 100.0)), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 1u);
}

TEST(BenchCompare, ThroughputDropIsGradedFromTheBaseSide) {
  // 100 -> 30 events/s is a 3.33x throughput regression even if wall time
  // stayed put (fewer events were simulated per second of work).
  const Comparison c =
      compare(parse(report(1.0, 100.0)), parse(report(1.0, 30.0)), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 1u);
}

TEST(BenchCompare, ImprovementIsNotAFinding) {
  const Comparison c =
      compare(parse(report(2.0, 50.0)), parse(report(1.0, 100.0)), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 0u);
}

TEST(BenchCompare, MissingCellWarnsNewCellInforms) {
  const tools::Value base = parse(
      "{\"cells\":[{\"name\":\"old\",\"wall_s\":1.0,\"events_per_s\":10.0}]}");
  const tools::Value next = parse(
      "{\"cells\":[{\"name\":\"new\",\"wall_s\":1.0,\"events_per_s\":10.0}]}");
  const Comparison c = compare(base, next, Options{});
  EXPECT_EQ(c.count(Severity::Warning), 1u);
  EXPECT_EQ(c.count(Severity::Info), 1u);
  EXPECT_EQ(c.count(Severity::Failure), 0u);
}

TEST(BenchCompare, SubMillisecondCellsAreNotGradedOnWallTime) {
  const Comparison c = compare(
      parse("{\"cells\":[{\"name\":\"c\",\"wall_s\":0.00005,\"events_per_s\":0}]}"),
      parse("{\"cells\":[{\"name\":\"c\",\"wall_s\":0.0005,\"events_per_s\":0}]}"),
      Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 0u);
}

std::string alloc_report(const std::string& allocs_field) {
  return "{\"cells\":[{\"name\":\"codec\",\"wall_s\":1.0,\"events_per_s\":100.0" +
         allocs_field + "}]}";
}

TEST(BenchCompare, AllocationsAppearingOnAllocationFreeCellFail) {
  const Comparison c = compare(parse(alloc_report(",\"allocs_per_op\":0.0")),
                               parse(alloc_report(",\"allocs_per_op\":3.0")), Options{});
  ASSERT_EQ(c.count(Severity::Failure), 1u);
  EXPECT_NE(c.diffs[0].message.find("allocations appeared"), std::string::npos);
}

TEST(BenchCompare, AllocRatioIsGradedWhenBaselineAllocates) {
  const Comparison grew =
      compare(parse(alloc_report(",\"allocs_per_op\":10.0")),
              parse(alloc_report(",\"allocs_per_op\":25.0")), Options{});
  EXPECT_EQ(grew.count(Severity::Failure), 1u);
  const Comparison steady =
      compare(parse(alloc_report(",\"allocs_per_op\":10.0")),
              parse(alloc_report(",\"allocs_per_op\":11.0")), Options{});
  EXPECT_EQ(steady.count(Severity::Failure), 0u);
  EXPECT_EQ(steady.count(Severity::Warning), 0u);
}

TEST(BenchCompare, AbsentAllocTelemetryIsNotGraded) {
  const Comparison c = compare(parse(alloc_report(",\"allocs_per_op\":0.0")),
                               parse(alloc_report("")), Options{});
  EXPECT_EQ(c.count(Severity::Failure), 0u);
  EXPECT_EQ(c.count(Severity::Warning), 0u);
}

TEST(BenchCompare, CounterDeltasAreInformational) {
  const tools::Value base = parse(report(1.0, 100.0,
      ",\"obs\":{\"counters\":{\"hs.completed\":10}}"));
  const tools::Value next = parse(report(1.0, 100.0,
      ",\"obs\":{\"counters\":{\"hs.completed\":30}}"));
  const Comparison c = compare(base, next, Options{});
  ASSERT_EQ(c.count(Severity::Info), 1u);
  EXPECT_NE(c.diffs[0].message.find("hs.completed"), std::string::npos);
}

TEST(BenchCompare, CustomThresholdsApply) {
  Options strict;
  strict.warn_ratio = 1.05;
  strict.fail_ratio = 1.1;
  const Comparison c =
      compare(parse(report(1.0, 100.0)), parse(report(1.2, 100.0)), strict);
  EXPECT_EQ(c.count(Severity::Failure), 1u);
}

TEST(JsonReader, ParsesNestedDocument) {
  const tools::Value v = parse(
      "{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\ny\"},\"t\":true,\"n\":null}");
  ASSERT_NE(v.find("a"), nullptr);
  ASSERT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_EQ(v.find("a")->array[0].int_or(0), 1);
  EXPECT_DOUBLE_EQ(v.find("a")->array[1].num_or(0), 2.5);
  EXPECT_EQ(v.find("a")->array[2].int_or(0), -3);
  EXPECT_EQ(v.find("b")->find("c")->str_or(""), "x\ny");
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("n")->kind, tools::Value::Kind::Null);
}

TEST(JsonReader, RejectsGarbage) {
  EXPECT_FALSE(tools::parse_json("{\"a\":}").ok);
  EXPECT_FALSE(tools::parse_json("{\"a\":1} trailing").ok);
  EXPECT_FALSE(tools::parse_json("{\"a\":\"unterminated").ok);
}

}  // namespace
}  // namespace g2g::benchcompare
