// g2g-bench-compare: diff two BENCH_*.json telemetry files with tolerances.
//
// The comparison is per cell (matched by name): a wall-time ratio or a
// throughput (events_per_s) drop beyond --fail-ratio is a failure, beyond
// --warn-ratio a warning. Cells present only on one side and counter deltas
// are informational — the sweep shape legitimately changes as the repo
// grows. CI runs this against the checked-in bench_results/ baseline:
// warnings are printed but tolerated, failures (>2x by default) gate.
#pragma once

#include <string>
#include <vector>

#include "json.hpp"

namespace g2g::benchcompare {

struct Options {
  double warn_ratio = 1.25;  ///< > this: warning
  double fail_ratio = 2.0;   ///< > this: failure (CI gate)
};

enum class Severity { Info, Warning, Failure };

struct Diff {
  Severity severity = Severity::Info;
  std::string message;
};

struct Comparison {
  std::vector<Diff> diffs;
  [[nodiscard]] std::size_t count(Severity s) const {
    std::size_t n = 0;
    for (const Diff& d : diffs) {
      if (d.severity == s) ++n;
    }
    return n;
  }
};

/// Compare two parsed BENCH reports (base = the checked-in baseline).
[[nodiscard]] Comparison compare(const tools::Value& base, const tools::Value& next,
                                 const Options& options);

/// "[FAIL|warn|info] message" — one line per diff.
[[nodiscard]] std::string format(const Diff& d);

}  // namespace g2g::benchcompare
