#!/usr/bin/env bash
# Bit-identity gate for protocol refactors. The relay-core contract is that
# restructuring never changes protocol behaviour: the fig4 / fig7 --quick
# detection sweeps must produce byte-identical tables before and after, with
# the crypto fast path on (G2G_FASTPATH=1) and off (=0) — the fast path is
# itself bit-exact, so all four runs must match the base revision.
#
#   tools/bit_identity.sh [base-ref]   # default: merge-base with origin/main
#
# Exits 0 with a notice when no base revision exists to compare against
# (fresh clone, first commit, base predates the benches).
set -euo pipefail
cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

benches=(fig4_detection_g2g_epidemic fig7_detection_g2g_delegation)

base="${1:-}"
if [[ -z "$base" ]]; then
  if git rev-parse -q --verify origin/main >/dev/null 2>&1; then
    base=$(git merge-base HEAD origin/main)
  else
    base=$(git rev-parse -q --verify 'HEAD~1^{commit}' 2>/dev/null || true)
  fi
fi
if [[ -z "$base" ]] || ! git rev-parse -q --verify "$base^{commit}" >/dev/null 2>&1; then
  echo "bit-identity: no base revision to compare against (ref '${1:-auto}'); skipping"
  exit 0
fi
base=$(git rev-parse "$base^{commit}")
head=$(git rev-parse HEAD)
if [[ "$base" == "$head" ]]; then
  echo "bit-identity: base == HEAD ($head); nothing to compare, skipping"
  exit 0
fi
echo "bit-identity: comparing HEAD ($head) against base ($base)"

tmp=$(mktemp -d)
cleanup() {
  git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
  rm -rf "$tmp"
}
trap cleanup EXIT

# build_and_run <src-dir> <build-dir> <out-dir>
build_and_run() {
  local src=$1 build=$2 out=$3
  cmake -B "$build" -S "$src" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$build" -j "$jobs" --target "${benches[@]}" >/dev/null
  mkdir -p "$out"
  local b fp
  for b in "${benches[@]}"; do
    for fp in 1 0; do
      G2G_FASTPATH=$fp "$build/bench/$b" --quick >"$out/$b.fp$fp.txt"
    done
  done
}

echo "== HEAD build + runs =="
build_and_run . build-bitid "$tmp/out-head"

echo "== base build + runs =="
git worktree add --detach "$tmp/base" "$base" >/dev/null
if ! build_and_run "$tmp/base" "$tmp/build-base" "$tmp/out-base"; then
  echo "bit-identity: base revision $base does not build the benches; skipping"
  exit 0
fi

fail=0
for f in "$tmp/out-head"/*; do
  name=$(basename "$f")
  if ! diff -u "$tmp/out-base/$name" "$f"; then
    echo "bit-identity: MISMATCH in $name"
    fail=1
  fi
done
if [[ $fail -ne 0 ]]; then
  echo "bit-identity: FAILED — protocol output changed relative to $base"
  exit 1
fi
echo "bit-identity: ok — ${#benches[@]} benches x 2 fast-path modes identical"
