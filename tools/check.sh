#!/usr/bin/env bash
# Local check driver. Tiers (see docs/TESTING.md):
#
#   tools/check.sh --label fast   # unit tier only: ctest -L fast, seconds
#   tools/check.sh --fast         # full suite, normal build only
#   tools/check.sh                # full suite twice: normal + ASan/UBSan
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

ctest_args=()
if [[ "${1:-}" == "--label" ]]; then
  ctest_args=(-L "${2:?usage: tools/check.sh --label <label>}")
  shift 2
fi

run_pass() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${ctest_args[@]}"
}

if [[ ${#ctest_args[@]} -gt 0 ]]; then
  echo "== label-restricted pass: ${ctest_args[*]} =="
  run_pass build
  echo "ok (label tier)"
  exit 0
fi

echo "== pass 1: normal build =="
run_pass build

if [[ "${1:-}" == "--fast" ]]; then
  echo "ok (fast: sanitizer pass skipped)"
  exit 0
fi

echo "== pass 2: ASan + UBSan =="
run_pass build-asan -DG2G_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
echo "ok"
