#!/usr/bin/env bash
# Local check driver. Tiers (see docs/TESTING.md and docs/STATIC_ANALYSIS.md):
#
#   tools/check.sh --lint         # static gates only: g2g-lint (+ clang-tidy)
#   tools/check.sh --tsan         # ThreadSanitizer lane: ctest -L tsan
#   tools/check.sh --label fast   # unit tier only: ctest -L fast, seconds
#   tools/check.sh --fast         # lint, then full suite, normal build only
#   tools/check.sh                # lint, then full suite twice: normal + ASan/UBSan
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

ctest_args=()
if [[ "${1:-}" == "--label" ]]; then
  ctest_args=(-L "${2:?usage: tools/check.sh --label <label>}")
  shift 2
fi

run_pass() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${ctest_args[@]}"
}

# Static gates: g2g-lint always (built from this tree, so it can never drift
# from the sources it scans), clang-tidy when the binary is installed.
run_lint() {
  echo "== lint: g2g-lint =="
  cmake -B build -S . >/dev/null
  cmake --build build --target g2g-lint -j "$jobs"
  # Per-rule counts + wall time on stdout; the machine-readable report
  # (findings, pragma-suppressed findings with justifications) lands in
  # build/lint-report.json for CI to upload. G2G_LINT_FLAGS adds e.g.
  # --github in workflows.
  # shellcheck disable=SC2086
  ./build/tools/lint/g2g-lint --root . --stats --json build/lint-report.json \
    ${G2G_LINT_FLAGS:-}

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy =="
    # The normal build exports compile_commands.json; scan first-party
    # sources only (tools/lint scans itself via the same database).
    mapfile -t tidy_sources < <(find src tools/lint -name '*.cpp' | sort)
    clang-tidy -p build --quiet "${tidy_sources[@]}"
  else
    echo "== lint: clang-tidy not installed; skipped (CI runs it) =="
  fi
}

case "${1:-}" in
  --lint)
    run_lint
    echo "ok (lint)"
    exit 0
    ;;
  --tsan)
    echo "== ThreadSanitizer lane: parallel/sweep/obs subset =="
    export TSAN_OPTIONS="suppressions=$PWD/tools/tsan.supp ${TSAN_OPTIONS:-}"
    ctest_args=(-L tsan)
    run_pass build-tsan -DG2G_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    echo "ok (tsan)"
    exit 0
    ;;
esac

if [[ ${#ctest_args[@]} -gt 0 ]]; then
  echo "== label-restricted pass: ${ctest_args[*]} =="
  run_pass build
  echo "ok (label tier)"
  exit 0
fi

# Full runs lint first: a determinism or wire-invariant finding fails in
# seconds, before any simulation is built or run.
run_lint

echo "== pass 1: normal build =="
run_pass build

if [[ "${1:-}" == "--fast" ]]; then
  echo "ok (fast: sanitizer pass skipped)"
  exit 0
fi

echo "== pass 2: ASan + UBSan =="
run_pass build-asan -DG2G_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
echo "ok"
