#!/usr/bin/env bash
# Full local check: build and run the test suite in a normal tree, then again
# under AddressSanitizer + UBSan (the G2G_SANITIZE preset).
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # normal pass only
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_pass() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

echo "== pass 1: normal build =="
run_pass build

if [[ "${1:-}" == "--fast" ]]; then
  echo "ok (fast: sanitizer pass skipped)"
  exit 0
fi

echo "== pass 2: ASan + UBSan =="
run_pass build-asan -DG2G_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
echo "ok"
