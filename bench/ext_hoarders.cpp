// Extension bench: hoarders — the deviation the paper defeats with energy
// rather than detection. A hoarder stores every message it accepts, never
// relays, and honestly answers the storage-proof challenge, so it is never
// evicted; but each challenge costs a heavy HMAC. This bench shows
//   (a) hoarders hurt delivery less than droppers (the message survives at
//       the hoarder and the source's other relay keeps working), and
//   (b) the energy bill on both sides: hoarders compute a heavy HMAC per
//       storage test they answer, and the faithful *sources* that verify the
//       STORED responses pay the same — testing is deliberately costly, which
//       is why only the source (the interested party) runs it.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t runs = opt.quick ? 1 : opt.runs;

  std::cout << "== Extension: hoarders vs droppers under G2G Epidemic ==\n\n";

  const std::vector<std::size_t> deviant_counts{5, 15, 30};
  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    // The dropper baseline only needs the standard aggregates, so all three
    // counts go through one sweep; the hoarder runs need per-node collector
    // costs and stay on run_experiment.
    std::vector<SweepCell> dropper_cells;
    for (const std::size_t n : deviant_counts) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.deviant_count = n;
      cfg.deviation = proto::Behavior::Dropper;
      cfg.seed = opt.seed;
      dropper_cells.push_back({bench::with_options(std::move(cfg), opt), runs});
    }
    const std::vector<AggregateResult> dropper_aggs = run_sweep(dropper_cells, opt.threads);

    Table table({"scenario", "deviants", "dropper delivery", "hoarder delivery",
                 "hoarder HMACs/node", "faithful HMACs/node", "evicted hoarders"});
    for (std::size_t ci = 0; ci < deviant_counts.size(); ++ci) {
      const std::size_t n = deviant_counts[ci];
      const AggregateResult& droppers = dropper_aggs[ci];
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.deviant_count = n;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);

      cfg.deviation = proto::Behavior::Hoarder;
      double hoarder_hmacs = 0.0;
      double faithful_hmacs = 0.0;
      std::size_t evicted = 0;
      RunningStats hoarder_delivery;
      for (std::size_t i = 0; i < runs; ++i) {
        cfg.seed = opt.seed + i;
        const ExperimentResult r = run_experiment(cfg);
        hoarder_delivery.add(r.success_rate);
        evicted += r.detected_count;
        std::size_t nh = 0;
        std::size_t nf = 0;
        double hh = 0.0;
        double fh = 0.0;
        for (std::uint32_t node = 0; node < scen.trace_config.nodes; ++node) {
          const bool deviant =
              std::binary_search(r.deviants.begin(), r.deviants.end(), NodeId(node));
          const double h = static_cast<double>(r.collector.costs(NodeId(node)).heavy_hmacs);
          if (deviant) {
            hh += h;
            ++nh;
          } else {
            fh += h;
            ++nf;
          }
        }
        hoarder_hmacs += hh / static_cast<double>(nh);
        // Faithful nodes also verify STORED responses as sources; exclude
        // nothing — the asymmetry is still stark.
        faithful_hmacs += fh / static_cast<double>(nf);
      }

      table.add_row({scen.name, std::to_string(n), fmt_pct(droppers.success_rate.mean()),
                     fmt_pct(hoarder_delivery.mean()),
                     fmt(hoarder_hmacs / static_cast<double>(runs), 1),
                     fmt(faithful_hmacs / static_cast<double>(runs), 1),
                     std::to_string(evicted)});
    }
    bench::emit(table, opt);
  }
  std::cout << "(hoarders are never evicted by design; their deterrent is the heavy-HMAC\n"
               " energy bill, which the payoff model prices above honest relaying)\n";
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GEpidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Hoarder;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
