// Figure 3 — "Effect of message droppers on Epidemic Forwarding".
// Delivery rate of vanilla Epidemic Forwarding as the number of droppers
// grows, for plain selfishness and selfishness-with-outsiders, on both
// trace stand-ins. Paper shape: delivery collapses toward the direct
// source-destination meeting probability as everyone drops.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::cout << "== Fig. 3: effect of message droppers on Epidemic Forwarding ==\n\n";

  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    const std::vector<std::size_t> counts =
        bench::dropper_counts(scen.trace_config.nodes, opt.quick);
    std::vector<SweepCell> cells;
    for (const std::size_t n : counts) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::Epidemic;
      cfg.scenario = scen;
      cfg.deviation = proto::Behavior::Dropper;
      cfg.deviant_count = n;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);

      cfg.with_outsiders = false;
      cells.push_back({cfg, opt.runs});
      cfg.with_outsiders = true;
      cells.push_back({cfg, opt.runs});
    }
    const std::vector<AggregateResult> agg = run_sweep(cells, opt.threads);

    Table table({"scenario", "droppers", "delivery% (plain)", "delivery% (w/ outsiders)"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      table.add_row({scen.name, std::to_string(counts[i]),
                     fmt_pct(agg[2 * i].success_rate.mean()),
                     fmt_pct(agg[2 * i + 1].success_rate.mean())});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::Epidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Dropper;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
