// Figure 8 — "Performance of G2G Epidemic Forwarding and G2G Delegation
// Forwarding compared with Epidemic Forwarding and Delegation Forwarding":
// success rate vs cost and delay vs cost for all six protocols, on both
// trace stand-ins. We trace each protocol's curve by sweeping the TTL/Delta1
// (the natural cost knob), exactly as the cost axis of the paper's figure.
// Paper shape: the G2G variants sit at ~20% lower cost than their alter egos
// at comparable success rate and delay.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::cout << "== Fig. 8: success rate / delay vs cost for all six protocols ==\n"
            << "   (cost = replicas per generated message; each row is one TTL point)\n\n";

  const Protocol protocols[] = {
      Protocol::Epidemic,
      Protocol::G2GEpidemic,
      Protocol::DelegationLastContact,
      Protocol::G2GDelegationLastContact,
      Protocol::DelegationFrequency,
      Protocol::G2GDelegationFrequency,
  };
  const std::vector<double> ttl_minutes =
      opt.quick ? std::vector<double>{15.0, 45.0} : std::vector<double>{10.0, 20.0, 30.0, 45.0};

  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    const std::size_t runs = opt.quick ? 1 : opt.runs;
    // All TTL points for all six protocols plus the headline row configs go
    // through one pool.
    std::vector<SweepCell> cells;
    for (const Protocol p : protocols) {
      for (const double ttl : ttl_minutes) {
        ExperimentConfig cfg;
        cfg.protocol = p;
        cfg.scenario = scen;
        cfg.delta1_override = Duration::minutes(ttl);
        cfg.seed = opt.seed;
        cells.push_back({bench::with_options(std::move(cfg), opt), runs});
      }
    }
    for (const Protocol p : protocols) {
      ExperimentConfig cfg;
      cfg.protocol = p;
      cfg.scenario = scen;
      cfg.seed = opt.seed;
      cells.push_back({bench::with_options(std::move(cfg), opt), runs});
    }
    const std::vector<AggregateResult> aggs = run_sweep(cells, opt.threads);

    Table table({"scenario", "protocol", "ttl", "cost (replicas)", "success rate",
                 "avg delay"});
    std::size_t k = 0;
    for (const Protocol p : protocols) {
      for (const double ttl : ttl_minutes) {
        const AggregateResult& agg = aggs[k++];
        table.add_row({scen.name, to_string(p), fmt(ttl, 0) + "m",
                       fmt(agg.avg_replicas.mean(), 2), fmt_pct(agg.success_rate.mean()),
                       fmt_minutes(agg.avg_delay_s.mean() / 60.0)});
      }
    }
    bench::emit(table, opt);

    // Headline comparison at the paper's per-scenario TTL.
    Table headline({"scenario", "protocol", "cost", "success", "delay",
                    "cost vs vanilla"});
    double vanilla_epi_cost = 0.0;
    double vanilla_del_cost[2] = {0.0, 0.0};  // [LastContact, Frequency]
    for (const Protocol p : protocols) {
      const AggregateResult& agg = aggs[k++];
      const double cost = agg.avg_replicas.mean();
      std::string rel = "-";
      if (p == Protocol::Epidemic) {
        vanilla_epi_cost = cost;
      } else if (p == Protocol::DelegationLastContact) {
        vanilla_del_cost[0] = cost;
      } else if (p == Protocol::DelegationFrequency) {
        vanilla_del_cost[1] = cost;
      } else {
        const double base = p == Protocol::G2GEpidemic ? vanilla_epi_cost
                            : p == Protocol::G2GDelegationLastContact
                                ? vanilla_del_cost[0]
                                : vanilla_del_cost[1];
        if (base > 0) rel = fmt((cost / base - 1.0) * 100.0, 1) + "%";
      }
      headline.add_row({scen.name, to_string(p), fmt(cost, 2),
                        fmt_pct(agg.success_rate.mean()),
                        fmt_minutes(agg.avg_delay_s.mean() / 60.0), rel});
    }
    bench::emit(headline, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GEpidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
