// Micro-benchmarks of the protocol layer: sealed-message creation/opening,
// PoR/PoM signing and verification, and a single full contact (relay phase)
// under each signature suite.
#include <benchmark/benchmark.h>

#include "g2g/crypto/schnorr.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/wire.hpp"

namespace {

using namespace g2g;
using namespace g2g::proto;

struct Fixture {
  explicit Fixture(crypto::SuitePtr suite_in)
      : suite(std::move(suite_in)), rng(9), authority(suite, rng) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      identities.emplace_back(suite, NodeId(i), authority, rng);
      roster.add(identities.back().certificate());
    }
  }
  crypto::SuitePtr suite;
  Rng rng;
  crypto::Authority authority;
  std::vector<crypto::NodeIdentity> identities;
  Roster roster;
};

Fixture& fast_fixture() {
  static Fixture f(crypto::make_fast_suite());
  return f;
}

Fixture& schnorr_fixture() {
  static Fixture f(crypto::make_schnorr_suite(crypto::SchnorrGroup::small_group()));
  return f;
}

void BM_MakeMessage(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const Bytes body(64, 0x42);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_message(f.identities[0], f.roster.get(NodeId(1)),
                                          MessageId(++id), body, f.rng));
  }
}
BENCHMARK(BM_MakeMessage);

void BM_OpenMessage(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const SealedMessage m =
      make_message(f.identities[0], f.roster.get(NodeId(1)), MessageId(1), Bytes(64, 1), f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(open_message(f.identities[1], m, f.roster));
  }
}
BENCHMARK(BM_OpenMessage);

ProofOfRelay make_por(Fixture& f) {
  ProofOfRelay por;
  por.h.fill(0x31);
  por.giver = NodeId(0);
  por.taker = NodeId(1);
  por.at = TimePoint::from_seconds(10.0);
  por.delegation = true;
  por.declared_dst = NodeId(2);
  por.msg_quality = 1.0;
  por.taker_quality = 2.0;
  por.taker_signature = f.identities[1].sign(por.signed_payload());
  return por;
}

void BM_PorSignFast(benchmark::State& state) {
  Fixture& f = fast_fixture();
  ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.identities[1].sign(por.signed_payload()));
  }
}
BENCHMARK(BM_PorSignFast);

void BM_PorSignSchnorr(benchmark::State& state) {
  Fixture& f = schnorr_fixture();
  ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.identities[1].sign(por.signed_payload()));
  }
}
BENCHMARK(BM_PorSignSchnorr);

void BM_PomVerifyChainCheat(benchmark::State& state) {
  Fixture& f = fast_fixture();
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  ProofOfRelay in = make_por(f);
  ProofOfRelay out = make_por(f);
  out.giver = NodeId(1);
  out.taker = NodeId(2);
  out.msg_quality = 0.0;  // the cheat
  out.taker_signature = f.identities[2].sign(out.signed_payload());
  pom.evidence_accepted = in;
  pom.evidence_forwarded = out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_pom(*f.suite, f.roster, pom));
  }
}
BENCHMARK(BM_PomVerifyChainCheat);

void BM_PorEncodeDecode(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProofOfRelay::decode(por.encode()));
  }
}
BENCHMARK(BM_PorEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
