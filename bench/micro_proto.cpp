// Micro-benchmarks of the protocol layer: sealed-message creation/opening,
// PoR/PoM signing and verification, and the relay core's hot paths — wire
// frame codecs (frames/sec), one full 5-step handshake, the audit storage
// proof (audits/sec), and the batched PoM gossip re-verification — with the
// crypto fast path on and off.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "g2g/crypto/fastpath.hpp"
#include "g2g/util/alloc_probe.hpp"
#include "g2g/util/arena.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/metrics/collector.hpp"
#include "g2g/obs/context.hpp"
#include "g2g/proto/g2g_epidemic.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/network.hpp"
#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/relay/pom.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/trace/contact.hpp"

namespace {

using namespace g2g;
using namespace g2g::proto;

/// Per-bench heap-allocation telemetry (this binary links g2g_alloc_probe).
/// Construct after setup, report after the loop: the counter lands in the
/// telemetry cell as allocs/op and g2g-bench-compare holds the line on it.
struct AllocMeter {
  std::size_t before = heap_alloc_count();
  void report(benchmark::State& state) {
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(heap_alloc_count() - before) /
        static_cast<double>(state.iterations()));
  }
};

struct Fixture {
  explicit Fixture(crypto::SuitePtr suite_in)
      : suite(std::move(suite_in)), rng(9), authority(suite, rng) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      identities.emplace_back(suite, NodeId(i), authority, rng);
      roster.add(identities.back().certificate());
    }
  }
  crypto::SuitePtr suite;
  Rng rng;
  crypto::Authority authority;
  std::vector<crypto::NodeIdentity> identities;
  Roster roster;
};

Fixture& fast_fixture() {
  static Fixture f(crypto::make_fast_suite());
  return f;
}

Fixture& schnorr_fixture() {
  static Fixture f(crypto::make_schnorr_suite(crypto::SchnorrGroup::small_group()));
  return f;
}

void BM_MakeMessage(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const Bytes body(64, 0x42);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_message(f.identities[0], f.roster.get(NodeId(1)),
                                          MessageId(++id), body, f.rng));
  }
}
BENCHMARK(BM_MakeMessage);

void BM_OpenMessage(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const SealedMessage m =
      make_message(f.identities[0], f.roster.get(NodeId(1)), MessageId(1), Bytes(64, 1), f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(open_message(f.identities[1], m, f.roster));
  }
}
BENCHMARK(BM_OpenMessage);

ProofOfRelay make_por(Fixture& f) {
  ProofOfRelay por;
  por.h.fill(0x31);
  por.giver = NodeId(0);
  por.taker = NodeId(1);
  por.at = TimePoint::from_seconds(10.0);
  por.delegation = true;
  por.declared_dst = NodeId(2);
  por.msg_quality = 1.0;
  por.taker_quality = 2.0;
  por.taker_signature = f.identities[1].sign(por.signed_payload());
  return por;
}

void BM_PorSignFast(benchmark::State& state) {
  Fixture& f = fast_fixture();
  ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.identities[1].sign(por.signed_payload()));
  }
}
BENCHMARK(BM_PorSignFast);

void BM_PorSignSchnorr(benchmark::State& state) {
  Fixture& f = schnorr_fixture();
  ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.identities[1].sign(por.signed_payload()));
  }
}
BENCHMARK(BM_PorSignSchnorr);

void BM_PomVerifyChainCheat(benchmark::State& state) {
  Fixture& f = fast_fixture();
  ProofOfMisbehavior pom;
  pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
  pom.culprit = NodeId(1);
  pom.accuser = NodeId(0);
  ProofOfRelay in = make_por(f);
  ProofOfRelay out = make_por(f);
  out.giver = NodeId(1);
  out.taker = NodeId(2);
  out.msg_quality = 0.0;  // the cheat
  out.taker_signature = f.identities[2].sign(out.signed_payload());
  pom.evidence_accepted = in;
  pom.evidence_forwarded = out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_pom(*f.suite, f.roster, pom));
  }
}
BENCHMARK(BM_PomVerifyChainCheat);

void BM_PorEncodeDecode(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const ProofOfRelay por = make_por(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProofOfRelay::decode(por.encode()));
  }
}
BENCHMARK(BM_PorEncodeDecode);

// -- relay core -------------------------------------------------------------

QualityDeclaration make_declaration(Fixture& f, std::uint32_t declarer, double value) {
  QualityDeclaration decl;
  decl.declarer = NodeId(declarer);
  decl.dst = NodeId(3);
  decl.value = value;
  decl.frame = 5;
  decl.at = TimePoint::from_seconds(60.0);
  decl.signature = f.identities[declarer].sign(decl.signed_payload());
  return decl;
}

void BM_FrameSmallRoundTrips(benchmark::State& state) {
  MessageHash h;
  h.fill(0x21);
  relay::KeyRevealFrame key;
  key.h = h;
  key.key.fill(0x07);
  relay::PorRqstFrame rqst;
  rqst.h = h;
  rqst.seed.fill(0x0B);
  relay::StoredRespFrame stored;
  stored.h = h;
  stored.seed.fill(0x0C);
  stored.digest.fill(0x0D);
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay::RelayRqstFrame::decode(relay::RelayRqstFrame{h}.encode()));
    benchmark::DoNotOptimize(relay::KeyRevealFrame::decode(key.encode()));
    benchmark::DoNotOptimize(relay::PorRqstFrame::decode(rqst.encode()));
    benchmark::DoNotOptimize(relay::StoredRespFrame::decode(stored.encode()));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_FrameSmallRoundTrips);

void BM_FrameRelayDataRoundTrip(benchmark::State& state) {
  Fixture& f = fast_fixture();
  relay::RelayDataFrame frame;
  frame.msg = make_message(f.identities[0], f.roster.get(NodeId(1)), MessageId(77),
                           Bytes(64, 0x42), f.rng);
  frame.h = frame.msg.hash();
  frame.attachments.push_back(make_declaration(f, 1, 2.5));
  frame.attachments.push_back(make_declaration(f, 2, 4.0));
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relay::RelayDataFrame::decode(frame.encode()));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameRelayDataRoundTrip);

/// The zero-copy wire path of one 5-step handshake: arena encodes, borrowed-
/// parts RELAY_DATA, non-owning view decodes, arena-built PoR payload — the
/// codec work giver_pass does per attempt, minus signatures and the Hold.
/// Pinned allocation-free in steady state (tests/alloc_path_test.cpp and the
/// checked-in BENCH_micro_proto.json baseline).
void BM_FrameCodecArenaPath(benchmark::State& state) {
  Fixture& f = fast_fixture();
  const SealedMessage msg = make_message(f.identities[0], f.roster.get(NodeId(1)),
                                         MessageId(88), Bytes(64, 0x42), f.rng);
  const MessageHash h = msg.hash();
  ProofOfRelay por;
  por.h = h;
  por.giver = NodeId(0);
  por.taker = NodeId(1);
  por.at = TimePoint::from_seconds(10.0);
  por.taker_signature = f.identities[1].sign(por.signed_payload());
  Arena arena;
  const auto run_once = [&] {
    arena.reset();
    std::size_t sink = 0;
    const BytesView rqst = arena_encode(arena, relay::RelayRqstFrame{h});
    sink += relay::RelayRqstFrame::decode(rqst).h[0];
    const BytesView ok = arena_encode(arena, relay::RelayOkFrame{h, true});
    sink += relay::RelayOkFrame::decode(ok).accept ? 1u : 0u;
    const BytesView data = relay::arena_relay_data(arena, h, msg, {});
    const relay::RelayDataFrameView view = relay::RelayDataFrameView::decode(data);
    sink += view.msg.hash()[0];
    const std::span<std::uint8_t> payload = arena.alloc(por.signed_payload_size());
    SpanWriter pw(payload);
    por.signed_payload_into(pw);
    pw.expect_full();
    const BytesView por_wire = arena_encode(arena, por);
    sink += ProofOfRelayView::decode(por_wire).taker_signature.size();
    const BytesView key = arena_encode(arena, relay::KeyRevealFrame{h, {}});
    sink += relay::KeyRevealFrame::decode(key).key[0];
    return sink;
  };
  benchmark::DoNotOptimize(run_once());  // warm the arena chunks
  AllocMeter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once());
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameCodecArenaPath);

/// A tiny Network whose event loop never runs: node 0 holds one message for a
/// far-away destination, and the bench drives sessions by hand. kTakers
/// distinct fresh takers are available before a world must be rebuilt.
struct RelayWorld {
  static constexpr std::uint32_t kTakers = 512;

  metrics::Collector collector;
  trace::ContactTrace trace;
  std::unique_ptr<Network<G2GEpidemicNode>> net;
  MessageHash h{};

  explicit RelayWorld(std::uint32_t heavy_iterations = 64) {
    // One far-future contact pads the node universe; the bench never runs
    // the simulator, so it only fixes node_count.
    trace.add(NodeId(kTakers + 1), NodeId(kTakers + 2), TimePoint::from_seconds(9.0e8),
              TimePoint::from_seconds(9.0e8 + 1.0));
    trace.finalize();
    NetworkConfig cfg;
    cfg.node.delta1 = Duration::minutes(30);
    cfg.node.delta2 = Duration::minutes(60);
    cfg.node.heavy_hmac_iterations = heavy_iterations;
    cfg.horizon = TimePoint::from_seconds(4.0 * 3600.0);
    net = std::make_unique<Network<G2GEpidemicNode>>(trace, std::move(cfg),
                                                     std::vector<BehaviorConfig>{}, collector);
    Rng rng(17);
    G2GEpidemicNode& src = net->node(NodeId(0));
    const SealedMessage m = make_message(src.identity(), net->roster().get(NodeId(kTakers + 1)),
                                         MessageId(1), Bytes(64, 0x42), rng);
    h = m.hash();
    src.generate(m);
  }
};

/// One full 5-step handshake (RELAY_RQST .. KEY reveal, PoR verified) against
/// a fresh taker each iteration.
void BM_HandshakeRelayPass(benchmark::State& state) {
  const bool prev = crypto::set_fast_path(state.range(0) != 0);
  auto world = std::make_unique<RelayWorld>();
  std::uint32_t next = 1;
  AllocMeter allocs;  // includes the periodic world rebuilds: durable-state
                      // cost (Holds, PoRs) is the point of this telemetry
  for (auto _ : state) {
    if (next > RelayWorld::kTakers) {
      state.PauseTiming();
      world = std::make_unique<RelayWorld>();
      next = 1;
      state.ResumeTiming();
    }
    G2GEpidemicNode& giver = world->net->node(NodeId(0));
    G2GEpidemicNode& taker = world->net->node(NodeId(next++));
    Session s(*world->net, giver, taker);
    giver.handshake().giver_pass(s, taker);
  }
  allocs.report(state);
  crypto::set_fast_path(prev);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandshakeRelayPass)->ArgName("fastpath")->Arg(1)->Arg(0);

/// The relay side of one POR_RQST challenge: no PoRs to present, so every
/// audit recomputes the heavy-HMAC storage proof (paper-grade chain length).
void BM_AuditStorageProof(benchmark::State& state) {
  const bool prev = crypto::set_fast_path(state.range(0) != 0);
  RelayWorld world(/*heavy_iterations=*/1024);
  G2GEpidemicNode& src = world.net->node(NodeId(0));
  G2GEpidemicNode& relay_node = world.net->node(NodeId(1));
  {
    Session s(*world.net, src, relay_node);
    src.handshake().giver_pass(s, relay_node);
  }
  const Bytes seed(32, 0xAB);
  AllocMeter allocs;
  for (auto _ : state) {
    Session s(*world.net, src, relay_node);
    benchmark::DoNotOptimize(relay_node.respond_test(s, world.h, seed));
  }
  allocs.report(state);
  crypto::set_fast_path(prev);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuditStorageProof)->ArgName("fastpath")->Arg(1)->Arg(0);

/// Re-verification of one session's gossiped PoMs: dedup by canonical bytes,
/// structural checks, one Suite::verify_batch over the unique evidence.
void BM_PomGossipBatchVerify(benchmark::State& state) {
  RelayWorld world;
  constexpr std::uint32_t kPoms = 16;
  G2GEpidemicNode& giver = world.net->node(NodeId(0));
  G2GEpidemicNode& receiver = world.net->node(NodeId(1));
  for (std::uint32_t c = 0; c < kPoms; ++c) {
    const NodeId culprit(2 + c);
    ProofOfRelay por;
    por.h.fill(static_cast<std::uint8_t>(c + 1));
    por.giver = giver.id();
    por.taker = culprit;
    por.at = TimePoint::from_seconds(10.0);
    por.taker_signature = world.net->node(culprit).identity().sign(por.signed_payload());
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = culprit;
    pom.accuser = giver.id();
    pom.evidence_accepted = std::move(por);
    giver.pom_ledger().record(std::move(pom));
  }
  relay::PomGossipBatch batch;
  batch.collect(giver, receiver);
  obs::ProtocolCounters& counters = world.net->obs().counters;
  const Roster& roster = world.net->roster();
  const crypto::Suite& suite = giver.identity().suite();
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.verify(suite, roster, counters));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PomGossipBatchVerify);

/// Console output plus one telemetry cell per benchmark; allocs/op rides
/// along when the bench set an AllocMeter counter.
class CellCollector final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      g2g::bench::BenchCell cell;
      cell.name = run.benchmark_name();
      cell.runs = 1;
      cell.wall_s = run.real_accumulated_time;
      cell.sim_events = static_cast<std::uint64_t>(run.iterations);
      const auto it = run.counters.find("allocs_per_op");
      if (it != run.counters.end()) cell.allocs_per_op = it->second;
      cells.push_back(std::move(cell));
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<g2g::bench::BenchCell> cells;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --json-out before google-benchmark parses the argv; probe the path
  // up front so a bad sink fails before any benchmark runs.
  std::string json_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_out.empty()) {
    std::FILE* probe = std::fopen(json_out.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing (--json-out)\n",
                   json_out.c_str());
      return 1;
    }
    std::fclose(probe);
  }

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  CellCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    g2g::bench::BenchReport report;
    report.bench = "micro_proto";
    report.cells = std::move(reporter.cells);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
