// Shared helpers for the reproduction benches: flag parsing, scenario
// iteration, and consistent table output. Every bench prints the rows/series
// of one paper table or figure (see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "g2g/core/experiment.hpp"
#include "g2g/core/parallel.hpp"
#include "g2g/core/report.hpp"
#include "g2g/crypto/fastpath.hpp"
#include "g2g/obs/tracer.hpp"

namespace g2g::bench {

struct Options {
  bool quick = false;  ///< thin the sweeps for fast smoke runs
  bool csv = false;    ///< machine-readable output
  std::size_t runs = 2;
  std::uint64_t seed = 1;
  bool obs = false;        ///< print counters + stage times for one config
  std::string trace_out;   ///< stream one representative run as JSONL
  std::string json_out;    ///< write BENCH_<name>.json telemetry here
  /// Disable the crypto fast path (SHA-NI, heavy-HMAC chain reuse, Schnorr
  /// tables, verification cache) and measure the reference implementations.
  bool no_fastpath = false;
  std::size_t threads = 0;  ///< sweep worker threads (0 = hardware)
};

/// Fail fast on an unwritable output path: a bench that runs for minutes must
/// not discover at report time that its sink cannot be opened. Probed at flag
/// parse time, so `--trace-out /bad/x --help` still exits non-zero.
inline void require_writable(const std::string& path, const char* flag) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "error: cannot open " << path << " for writing (" << flag << ")\n";
    std::exit(1);
  }
  std::fclose(f);
}

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--runs" && i + 1 < argc) {
      opt.runs = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = std::stoull(argv[++i]);
    } else if (arg == "--obs") {
      opt.obs = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      opt.trace_out = argv[++i];
      require_writable(opt.trace_out, "--trace-out");
    } else if (arg == "--json-out" && i + 1 < argc) {
      opt.json_out = argv[++i];
      require_writable(opt.json_out, "--json-out");
    } else if (arg == "--no-fastpath") {
      opt.no_fastpath = true;
      crypto::set_fast_path(false);
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--quick] [--csv] [--runs N] [--seed S] [--obs]"
                   " [--trace-out FILE] [--json-out FILE] [--no-fastpath]"
                   " [--threads N]\n";
      std::exit(0);
    } else {
      // A typo'd flag silently ignored is the same failure class as an
      // unwritable sink: the sweep runs, the result is not what was asked.
      std::cerr << "error: unknown option '" << arg << "' (see --help)\n";
      std::exit(1);
    }
  }
  return opt;
}

/// Apply the fast-path option to a config (the global toggle is set at parse
/// time; this covers the per-run verification cache).
inline core::ExperimentConfig with_options(core::ExperimentConfig cfg, const Options& opt) {
  cfg.crypto_fast_path = !opt.no_fastpath;
  return cfg;
}

inline std::vector<core::Scenario> both_scenarios(std::uint64_t seed) {
  return {core::infocom05_scenario(seed), core::cambridge06_scenario(seed)};
}

inline void emit(const core::Table& table, const Options& opt) {
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

/// Observability report: when --obs, --trace-out, or --json-out was given,
/// re-run one representative config single-threaded with tracing attached.
/// --obs/--trace-out print the counter registry and stage profile; --json-out
/// reuses the same run's registry for the BENCH telemetry (the return value).
/// The parallel sweep itself stays untraced — one run, one ObsContext, one
/// sink, no interleaving. Exits non-zero if the trace sink cannot be opened.
inline std::optional<core::ExperimentResult> obs_report(core::ExperimentConfig cfg,
                                                        const Options& opt) {
  if (!opt.obs && opt.trace_out.empty() && opt.json_out.empty()) return std::nullopt;
  cfg = with_options(std::move(cfg), opt);
  std::unique_ptr<obs::JsonlSink> sink;
  if (!opt.trace_out.empty()) {
    sink = obs::JsonlSink::open(opt.trace_out);
    if (!sink) {
      std::cerr << "error: cannot open " << opt.trace_out << " for writing\n";
      std::exit(1);
    }
    cfg.trace_sink = sink.get();
  }
  core::ExperimentResult r = core::run_experiment(cfg);
  if (opt.obs || !opt.trace_out.empty()) {
    if (!opt.csv) {
      std::cout << "observability report (one run: " << core::to_string(cfg.protocol)
                << " on " << cfg.scenario.name << ", seed " << cfg.seed << ")\n";
    }
    core::Table counters({"counter", "value"});
    for (const auto& [name, counter] : r.counters.counters()) {
      if (counter.value() > 0) counters.add_row({name, std::to_string(counter.value())});
    }
    emit(counters, opt);
    core::Table stages({"stage", "seconds"});
    for (const auto& stage : r.stages.stages()) {
      stages.add_row({stage.name, core::fmt(stage.seconds, 3)});
    }
    emit(stages, opt);
  }
  if (sink) {
    std::cerr << "wrote " << sink->lines_written() << " events to " << opt.trace_out
              << "\n";
  }
  return r;
}

/// The effective options as "config" key/value pairs for the BENCH report.
inline std::vector<std::pair<std::string, std::string>> option_pairs(const Options& opt) {
  return {{"quick", opt.quick ? "true" : "false"},
          {"runs", std::to_string(opt.runs)},
          {"seed", std::to_string(opt.seed)},
          {"fastpath", opt.no_fastpath ? "false" : "true"}};
}

/// Assemble telemetry cells from a sweep's names + CellTelemetry rows.
inline std::vector<BenchCell> telemetry_cells(const std::vector<std::string>& names,
                                              const std::vector<core::CellTelemetry>& tel,
                                              std::size_t runs) {
  std::vector<BenchCell> out;
  for (std::size_t i = 0; i < names.size() && i < tel.size(); ++i) {
    out.push_back(BenchCell{names[i], runs, tel[i].wall_s, tel[i].sim_events});
  }
  return out;
}

/// Write BENCH_<name>.json when --json-out was given; exits non-zero when the
/// write fails so CI never mistakes a missing report for a passing perf run.
inline void write_report(const std::string& bench_name, const Options& opt,
                         std::vector<BenchCell> cells, const obs::Registry* registry) {
  if (opt.json_out.empty()) return;
  BenchReport report;
  report.bench = bench_name;
  report.config = option_pairs(opt);
  report.cells = std::move(cells);
  report.registry = registry;
  if (!report.write(opt.json_out)) std::exit(1);
}

/// Deviant-count sweep matching the paper's x axes (0..~nodes, step 5).
inline std::vector<std::size_t> dropper_counts(std::size_t nodes, bool quick,
                                               bool include_zero = true) {
  std::vector<std::size_t> out;
  if (include_zero) out.push_back(0);
  const std::size_t step = quick ? 15 : 5;
  for (std::size_t n = 5; n <= nodes; n += step) out.push_back(n);
  return out;
}

}  // namespace g2g::bench
