// Micro-benchmarks of the simulation substrate: event queue throughput,
// synthetic trace generation, community detection, and a full small
// experiment per protocol family.
#include <benchmark/benchmark.h>

#include "g2g/community/kclique.hpp"
#include "g2g/core/experiment.hpp"
#include "g2g/sim/simulator.hpp"
#include "g2g/trace/synthetic.hpp"

namespace {

using namespace g2g;

void BM_EventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    Rng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
      simulator.at(TimePoint(static_cast<std::int64_t>(rng.below(1000000))),
                   [&fired] { ++fired; });
    }
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EventQueue)->Arg(10000)->Arg(100000);

void BM_SyntheticTrace(benchmark::State& state) {
  for (auto _ : state) {
    const auto t = trace::generate_trace(trace::infocom05());
    benchmark::DoNotOptimize(t.trace.size());
  }
}
BENCHMARK(BM_SyntheticTrace);

void BM_KCliqueCommunities(benchmark::State& state) {
  const auto synthetic = trace::generate_trace(trace::infocom05());
  const community::ContactGraph graph(
      synthetic.trace, community::ContactGraphConfig::for_span(Duration::days(3)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::k_clique_communities(graph, 4).group_count());
  }
}
BENCHMARK(BM_KCliqueCommunities);

core::ExperimentConfig small_experiment(core::Protocol p) {
  core::ExperimentConfig cfg;
  cfg.protocol = p;
  cfg.scenario = core::infocom05_scenario();
  cfg.scenario.trace_config.nodes = 20;
  cfg.sim_window = Duration::hours(1.5);
  cfg.traffic_window = Duration::hours(1);
  cfg.mean_interarrival = Duration::seconds(20.0);
  return cfg;
}

void BM_ExperimentEpidemic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_experiment(small_experiment(core::Protocol::Epidemic)));
  }
}
BENCHMARK(BM_ExperimentEpidemic)->Unit(benchmark::kMillisecond);

void BM_ExperimentG2GEpidemic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_experiment(small_experiment(core::Protocol::G2GEpidemic)));
  }
}
BENCHMARK(BM_ExperimentG2GEpidemic)->Unit(benchmark::kMillisecond);

void BM_ExperimentG2GDelegation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_experiment(small_experiment(core::Protocol::G2GDelegationLastContact)));
  }
}
BENCHMARK(BM_ExperimentG2GDelegation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
