// Figure 7 — "Dependence of detection time from the number of selfish
// individuals in G2G Delegation Forwarding": average detection time vs the
// number of deviants, for droppers/liars/cheaters x plain/with-outsiders.
// Paper shape: detection time does not depend on the number of deviants.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::cout << "== Fig. 7: detection time vs number of selfish individuals ==\n"
            << "   (G2G Delegation Destination Last Contact; minutes after Delta1;\n"
            << "    '-' = no deviant was detected in the sampled runs)\n\n";

  std::vector<bench::BenchCell> bench_cells;
  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    Table table({"scenario", "count", "droppers", "droppers(out)", "liars", "liars(out)",
                 "cheaters", "cheaters(out)"});
    std::vector<std::size_t> counts = opt.quick ? std::vector<std::size_t>{10, 30}
                                                : std::vector<std::size_t>{5, 10, 20, 30};
    const std::size_t cell_runs = opt.quick ? 1 : opt.runs;
    std::vector<SweepCell> sweep;
    std::vector<std::string> names;
    for (const std::size_t n : counts) {
      for (const proto::Behavior behavior :
           {proto::Behavior::Dropper, proto::Behavior::Liar, proto::Behavior::Cheater}) {
        for (const bool outsiders : {false, true}) {
          ExperimentConfig cfg;
          cfg.protocol = Protocol::G2GDelegationLastContact;
          cfg.scenario = scen;
          cfg.deviation = behavior;
          cfg.deviant_count = n;
          cfg.with_outsiders = outsiders;
          cfg.seed = opt.seed;
          cfg = bench::with_options(std::move(cfg), opt);
          sweep.push_back({cfg, cell_runs});
          std::string name = scen.name + "/count=" + std::to_string(n) + "/";
          name += behavior == proto::Behavior::Dropper ? "dropper"
                  : behavior == proto::Behavior::Liar  ? "liar"
                                                       : "cheater";
          if (outsiders) name += "_out";
          names.push_back(std::move(name));
        }
      }
    }
    std::vector<CellTelemetry> telemetry;
    const std::vector<AggregateResult> aggs = run_sweep(sweep, opt.threads, &telemetry);
    for (const auto& cell : bench::telemetry_cells(names, telemetry, cell_runs)) {
      bench_cells.push_back(cell);
    }

    std::size_t k = 0;
    for (const std::size_t n : counts) {
      std::vector<std::string> cells{scen.name, std::to_string(n)};
      for (int column = 0; column < 6; ++column) {
        const AggregateResult& agg = aggs[k++];
        cells.push_back(agg.detection_minutes.count() == 0
                            ? "-"
                            : fmt_minutes(agg.detection_minutes.mean()));
      }
      table.add_row(std::move(cells));
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GDelegationFrequency;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Dropper;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    const auto repr_result = bench::obs_report(repr, opt);
    bench::write_report("fig7", opt, std::move(bench_cells),
                        repr_result ? &repr_result->counters : nullptr);
  }
  return 0;
}
