// Ablation bench for the design choices DESIGN.md calls out:
//   1. Delta2/Delta1 ratio    — detection rate vs how long state is kept
//                               (the paper argues Delta2 = 2*Delta1 suffices);
//   2. relay fanout           — the two-relay cap is both the Nash mechanism
//                               and the ~20% cost saving;
//   3. TTL semantics          — message-global Delta1 (default) vs per-holder;
//   4. PoM dissemination      — epidemic gossip vs an instant-broadcast oracle.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const Scenario scen = infocom05_scenario(opt.seed);
  const std::size_t runs = opt.quick ? 1 : opt.runs;

  std::cout << "== Ablations of the Give2Get mechanisms (Infocom05 stand-in) ==\n\n";

  {
    std::cout << "-- Delta2 / Delta1: test-window length vs dropper detection --\n";
    Table table({"delta2/delta1", "detection rate", "avg detect time", "memory (GB*s)"});
    for (const double factor : {1.25, 1.5, 2.0, 3.0}) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.deviation = proto::Behavior::Dropper;
      cfg.deviant_count = 10;
      cfg.delta2_factor = factor;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);
      double mem = 0.0;
      AggregateResult agg;
      for (std::size_t i = 0; i < runs; ++i) {
        cfg.seed = opt.seed + i;
        const ExperimentResult r = run_experiment(cfg);
        agg.detection_rate.add(r.detection_rate);
        if (!r.detection_minutes_after_delta1.empty()) {
          agg.detection_minutes.add(r.detection_minutes_after_delta1.mean());
        }
        for (std::uint32_t n = 0; n < scen.trace_config.nodes; ++n) {
          mem += r.collector.costs(NodeId(n)).memory_byte_seconds;
        }
      }
      table.add_row({fmt(factor, 2), fmt_pct(agg.detection_rate.mean()),
                     fmt_minutes(agg.detection_minutes.mean()),
                     fmt(mem / static_cast<double>(runs) / 1e9, 3)});
    }
    bench::emit(table, opt);
  }

  {
    std::cout << "-- Relay fanout: forwarding duty per relay --\n";
    const std::vector<std::size_t> fanouts{1, 2, 3, 4};
    std::vector<SweepCell> cells;
    for (const std::size_t fanout : fanouts) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.relay_fanout = fanout;
      cfg.seed = opt.seed;
      cells.push_back({bench::with_options(std::move(cfg), opt), runs});
    }
    const std::vector<AggregateResult> aggs = run_sweep(cells, opt.threads);

    Table table({"fanout", "success", "cost (replicas)", "avg delay"});
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      const AggregateResult& agg = aggs[i];
      table.add_row({std::to_string(fanouts[i]), fmt_pct(agg.success_rate.mean()),
                     fmt(agg.avg_replicas.mean(), 2),
                     fmt_minutes(agg.avg_delay_s.mean() / 60.0)});
    }
    bench::emit(table, opt);
  }

  {
    std::cout << "-- TTL semantics: message-global Delta1 vs per-holder --\n";
    Table table({"protocol", "ttl semantics", "success", "cost", "avg delay"});
    for (const Protocol p : {Protocol::G2GEpidemic, Protocol::G2GDelegationLastContact}) {
      for (const bool global : {true, false}) {
        ExperimentConfig cfg;
        cfg.protocol = p;
        cfg.scenario = scen;
        cfg.seed = opt.seed;
        // Route the flag through a scenario copy: NodeConfig is assembled by
        // the runner, so use the dedicated override.
        AggregateResult agg;
        for (std::size_t i = 0; i < runs; ++i) {
          cfg.seed = opt.seed + i;
          ExperimentConfig run_cfg = bench::with_options(cfg, opt);
          run_cfg.per_holder_ttl = !global;
          const ExperimentResult r = run_experiment(run_cfg);
          agg.success_rate.add(r.success_rate);
          agg.avg_replicas.add(r.avg_replicas);
          if (!r.delay_seconds.empty()) agg.avg_delay_s.add(r.delay_seconds.mean());
        }
        table.add_row({to_string(p), global ? "global (paper)" : "per-holder",
                       fmt_pct(agg.success_rate.mean()), fmt(agg.avg_replicas.mean(), 2),
                       fmt_minutes(agg.avg_delay_s.mean() / 60.0)});
      }
    }
    bench::emit(table, opt);
  }

  {
    std::cout << "-- PoM dissemination: epidemic gossip vs instant broadcast --\n";
    std::vector<SweepCell> cells;
    for (const bool instant : {false, true}) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.deviation = proto::Behavior::Dropper;
      cfg.deviant_count = 15;
      cfg.instant_pom_broadcast = instant;
      cfg.seed = opt.seed;
      cells.push_back({bench::with_options(std::move(cfg), opt), runs});
    }
    const std::vector<AggregateResult> aggs = run_sweep(cells, opt.threads);

    Table table({"dissemination", "post-eviction success", "detection rate"});
    for (int instant = 0; instant < 2; ++instant) {
      const AggregateResult& agg = aggs[static_cast<std::size_t>(instant)];
      table.add_row({instant ? "instant (oracle)" : "gossip (default)",
                     fmt_pct(agg.success_rate.mean()), fmt_pct(agg.detection_rate.mean())});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GEpidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Dropper;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
