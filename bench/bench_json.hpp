// Machine-readable bench telemetry: bench_results/BENCH_<name>.json.
//
// Every bench can emit one JSON report per invocation (--json-out FILE)
// recording the git revision, the effective options, per-cell wall time and
// simulator-event throughput, and — when a representative traced run was
// available — its full counter/histogram registry. tools/bench_compare diffs
// two of these files with tolerances; the checked-in bench_results/BENCH_*.json
// are the baseline of the perf trajectory.
//
// Schema (docs/OBSERVABILITY.md "Bench telemetry schema" is the reference):
//   {"schema":1,"bench":"fig4","rev":"<git short rev>",
//    "config":{"quick":"true",...},
//    "cells":[{"name":"infocom05/droppers=5/plain","runs":2,
//              "wall_s":1.23,"sim_events":45678,"events_per_s":37138.2}],
//    "obs":{"counters":{...},"histograms":{...}}}   (optional)
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "g2g/core/json.hpp"
#include "g2g/obs/registry.hpp"

namespace g2g::bench {

/// One sweep cell's telemetry row.
struct BenchCell {
  std::string name;
  std::size_t runs = 1;
  double wall_s = 0.0;
  std::uint64_t sim_events = 0;
  /// Heap allocations per operation (g2g_alloc_probe); negative = not
  /// measured, and the field is omitted from the JSON.
  double allocs_per_op = -1.0;
  [[nodiscard]] double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(sim_events) / wall_s : 0.0;
  }
};

/// Short git revision of the working tree, "unknown" outside a checkout.
/// Telemetry provenance only — never read by the simulation.
inline std::string git_rev() {
  std::string rev = "unknown";
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      std::string line(buf);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
      if (!line.empty()) rev = line;
    }
    ::pclose(p);
  }
  return rev;
}

/// json_escape handles the content; the quotes are ours to add.
inline std::string json_quote(const std::string& s) {
  return '"' + core::json_escape(s) + '"';
}

struct BenchReport {
  std::string bench;
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<BenchCell> cells;
  /// Counter/histogram snapshot of a representative run; optional.
  const obs::Registry* registry = nullptr;

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\"schema\":1,\"bench\":" + json_quote(bench) +
                      ",\"rev\":" + json_quote(git_rev()) + ",\"config\":{";
    for (std::size_t i = 0; i < config.size(); ++i) {
      if (i > 0) out += ',';
      out += json_quote(config[i].first) + ':' + json_quote(config[i].second);
    }
    out += "},\"cells\":[";
    char num[64];
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const BenchCell& c = cells[i];
      if (i > 0) out += ',';
      out += "{\"name\":" + json_quote(c.name) +
             ",\"runs\":" + std::to_string(c.runs);
      std::snprintf(num, sizeof(num), "%.6f", c.wall_s);
      out += std::string(",\"wall_s\":") + num;
      out += ",\"sim_events\":" + std::to_string(c.sim_events);
      std::snprintf(num, sizeof(num), "%.3f", c.events_per_s());
      out += std::string(",\"events_per_s\":") + num;
      if (c.allocs_per_op >= 0.0) {
        std::snprintf(num, sizeof(num), "%.3f", c.allocs_per_op);
        out += std::string(",\"allocs_per_op\":") + num;
      }
      out += "}";
    }
    out += ']';
    if (registry != nullptr) out += ",\"obs\":" + core::to_json(*registry);
    out += "}\n";
    return out;
  }

  /// Write the report; returns false (with a message on stderr) on failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string body = to_json();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::fprintf(stderr, "wrote bench telemetry to %s\n", path.c_str());
    return ok;
  }
};

}  // namespace g2g::bench
