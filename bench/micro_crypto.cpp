// Micro-benchmarks of the cryptographic substrate (google-benchmark):
// hashing, MACs, the storage-proof heavy HMAC, both signature suites, and
// the sealed-box message encryption. Owns its main() so `--json-out FILE`
// can emit BENCH_micro_crypto.json alongside the console table.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.hpp"
#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/hmac.hpp"
#include "g2g/crypto/montgomery.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/crypto/sealed_box.hpp"
#include "g2g/crypto/sha256.hpp"
#include "g2g/crypto/suite.hpp"
#include "g2g/crypto/verify_cache.hpp"

namespace {

using namespace g2g;
using namespace g2g::crypto;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

// Same workload with the hardware fast path disabled: the portable scalar
// compression function. The ratio to BM_Sha256 is the SHA-NI win.
void BM_Sha256Scalar(benchmark::State& state) {
  const FastPathScope scope(false);
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256Scalar)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = to_bytes("session key material");
  const Bytes data(1024, 0x5a);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
}
BENCHMARK(BM_HmacSha256);

void BM_HeavyHmac(benchmark::State& state) {
  const Bytes msg(512, 0x11);
  const Bytes seed = to_bytes("challenge-seed");
  const auto iterations = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(heavy_hmac(msg, seed, iterations));
}
BENCHMARK(BM_HeavyHmac)->Arg(256)->Arg(1024)->Arg(4096);

// The literal seed implementation (fresh Writer-based HMAC per chain link),
// kept as the differential-test reference. The ratio to BM_HeavyHmac is the
// storage-proof fast-path win (pad-state reuse + one-shot finalization).
void BM_HeavyHmacReference(benchmark::State& state) {
  const Bytes msg(512, 0x11);
  const Bytes seed = to_bytes("challenge-seed");
  const auto iterations = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(heavy_hmac_reference(msg, seed, iterations));
}
BENCHMARK(BM_HeavyHmacReference)->Arg(256)->Arg(1024)->Arg(4096);

// One Montgomery CIOS product vs one schoolbook shift-subtract mul_mod over
// the default group's 256-bit prime. The ratio is the per-multiply fast-path
// win that compounds through every exponentiation chain; the differential
// corpus (crypto_fastpath_diff_test) owns correctness.
void BM_MontMul(benchmark::State& state) {
  const SchnorrGroup& group = SchnorrGroup::default_group();
  const MontgomeryParams params = MontgomeryParams::for_modulus(group.p);
  Rng rng(3);
  const U256 a = to_mont(random_below(rng, group.p), params);
  const U256 b = to_mont(random_below(rng, group.p), params);
  for (auto _ : state) benchmark::DoNotOptimize(mont_mul(a, b, params));
}
BENCHMARK(BM_MontMul);

void BM_MulModClassic(benchmark::State& state) {
  const SchnorrGroup& group = SchnorrGroup::default_group();
  Rng rng(3);
  const U256 a = random_below(rng, group.p);
  const U256 b = random_below(rng, group.p);
  for (auto _ : state) benchmark::DoNotOptimize(mul_mod(a, b, group.p));
}
BENCHMARK(BM_MulModClassic);

void BM_SchnorrSign(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_suite(SchnorrGroup::default_group());
  Rng rng(1);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  for (auto _ : state) benchmark::DoNotOptimize(suite->sign(kp.secret_key, msg));
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_suite(SchnorrGroup::default_group());
  Rng rng(2);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_SchnorrVerify);

// Square-and-multiply g^x (no fixed-base table). The ratio to
// BM_SchnorrVerify is the precomputed-table win on the g^s half.
void BM_SchnorrVerifyNoTable(benchmark::State& state) {
  const FastPathScope scope(false);
  const SuitePtr suite = make_schnorr_suite(SchnorrGroup::default_group());
  Rng rng(2);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_SchnorrVerifyNoTable);

void BM_SchnorrRsSign(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_rs_suite(SchnorrGroup::default_group());
  Rng rng(1);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  for (auto _ : state) benchmark::DoNotOptimize(suite->sign(kp.secret_key, msg));
}
BENCHMARK(BM_SchnorrRsSign);

void BM_SchnorrRsVerify(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_rs_suite(SchnorrGroup::default_group());
  Rng rng(2);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_SchnorrRsVerify);

// One batch of `n` distinct (key, message, signature) triples through the
// (R,s) suite's randomized-linear-combination verify_batch. Per-signature
// time = total / n; compare with BM_SchnorrBatchPerSig at the same arg.
void BM_SchnorrRsBatchVerify(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_rs_suite(SchnorrGroup::default_group());
  Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(suite->keygen(rng));
    msgs.push_back(Bytes(40, static_cast<std::uint8_t>(i)));
    sigs.push_back(suite->sign(keys[i].secret_key, msgs[i]));
  }
  std::vector<VerifyRequest> requests;
  for (std::size_t i = 0; i < n; ++i) requests.push_back({keys[i].public_key, msgs[i], sigs[i]});
  std::vector<char> verdicts(n);
  for (auto _ : state) {
    suite->verify_batch(requests, reinterpret_cast<bool*>(verdicts.data()));
    benchmark::DoNotOptimize(verdicts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrRsBatchVerify)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// The same batch checked one signature at a time through the classic (e,s)
// suite: the baseline the acceptance criterion measures against.
void BM_SchnorrBatchPerSig(benchmark::State& state) {
  const SuitePtr suite = make_schnorr_suite(SchnorrGroup::default_group());
  Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(suite->keygen(rng));
    msgs.push_back(Bytes(40, static_cast<std::uint8_t>(i)));
    sigs.push_back(suite->sign(keys[i].secret_key, msgs[i]));
  }
  std::vector<VerifyRequest> requests;
  for (std::size_t i = 0; i < n; ++i) requests.push_back({keys[i].public_key, msgs[i], sigs[i]});
  std::vector<char> verdicts(n);
  for (auto _ : state) {
    suite->verify_batch(requests, reinterpret_cast<bool*>(verdicts.data()));
    benchmark::DoNotOptimize(verdicts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrBatchPerSig)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Memoized repeat verification, the common case inside a simulation run
// (the same PoR certificate is re-checked at every audit).
void BM_CachedVerifyHit(benchmark::State& state) {
  const auto suite = make_caching_suite(make_fast_suite());
  Rng rng(7);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));  // warm the entry
  for (auto _ : state) benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_CachedVerifyHit);

void BM_FastSuiteSign(benchmark::State& state) {
  const SuitePtr suite = make_fast_suite();
  Rng rng(3);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  for (auto _ : state) benchmark::DoNotOptimize(suite->sign(kp.secret_key, msg));
}
BENCHMARK(BM_FastSuiteSign);

void BM_FastSuiteVerify(benchmark::State& state) {
  const SuitePtr suite = make_fast_suite();
  Rng rng(4);
  const KeyPair kp = suite->keygen(rng);
  const Bytes msg = to_bytes("proof of relay payload");
  const Bytes sig = suite->sign(kp.secret_key, msg);
  for (auto _ : state) benchmark::DoNotOptimize(suite->verify(kp.public_key, msg, sig));
}
BENCHMARK(BM_FastSuiteVerify);

// A full audit round of storage-proof chains through the multi-lane batch;
// per-chain time = total / jobs. Compare with BM_HeavyHmac at the same
// iteration count for the lane-parallel win.
void BM_HeavyHmacBatch(benchmark::State& state) {
  const Bytes msg(512, 0x11);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> seeds;
  for (std::size_t j = 0; j < jobs; ++j) seeds.push_back(Bytes(16, static_cast<std::uint8_t>(j)));
  std::vector<HeavyHmacJob> views;
  for (std::size_t j = 0; j < jobs; ++j) views.push_back({msg, seeds[j], 1024});
  for (auto _ : state) benchmark::DoNotOptimize(heavy_hmac_batch(views));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_HeavyHmacBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SealedBoxRoundTrip(benchmark::State& state) {
  const SuitePtr suite = make_fast_suite();
  Rng rng(5);
  const KeyPair recipient = suite->keygen(rng);
  const Bytes body(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    const SealedBox box = seal(*suite, rng, recipient.public_key, body);
    benchmark::DoNotOptimize(seal_open(*suite, recipient.secret_key, box));
  }
}
BENCHMARK(BM_SealedBoxRoundTrip)->Arg(64)->Arg(1024);

void BM_DhSharedSecret(benchmark::State& state) {
  const SchnorrGroup& group = SchnorrGroup::default_group();
  Rng rng(6);
  const SchnorrKeyPair a = schnorr_keygen(group, rng);
  const SchnorrKeyPair b = schnorr_keygen(group, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dh_shared_secret(group, a.secret, b.public_key));
  }
}
BENCHMARK(BM_DhSharedSecret);

/// Console output plus one telemetry cell per benchmark: wall_s is the total
/// measured real time, sim_events the iteration count, so events_per_s is
/// iterations per second — raw Run fields only, stable across
/// google-benchmark versions.
class CellCollector final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      g2g::bench::BenchCell cell;
      cell.name = run.benchmark_name();
      cell.runs = 1;
      cell.wall_s = run.real_accumulated_time;
      cell.sim_events = static_cast<std::uint64_t>(run.iterations);
      cells.push_back(std::move(cell));
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<g2g::bench::BenchCell> cells;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --json-out before google-benchmark parses the argv; probe the path
  // up front so a bad sink fails before any benchmark runs.
  std::string json_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_out.empty()) {
    std::FILE* probe = std::fopen(json_out.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing (--json-out)\n",
                   json_out.c_str());
      return 1;
    }
    std::fclose(probe);
  }

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  CellCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_out.empty()) {
    g2g::bench::BenchReport report;
    report.bench = "micro_crypto";
    report.cells = std::move(reporter.cells);
    if (!report.write(json_out)) return 1;
  }
  return 0;
}
