// Finite-buffer extension bench. The paper assumes infinite buffers
// (Section V-C); this sweep shows how the vanilla protocols degrade when
// relays can only hold a bounded number of messages (drop-closest-to-expiry
// policy), and that Delegation — which creates far fewer replicas — is much
// more robust to small buffers than Epidemic.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t runs = opt.quick ? 1 : opt.runs;

  std::cout << "== Extension: finite relay buffers (vanilla protocols) ==\n"
            << "   (0 = unlimited, the paper's assumption)\n\n";

  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    Table table({"scenario", "buffer cap", "Epidemic success", "Epidemic cost",
                 "Delegation success", "Delegation cost"});
    for (const std::size_t cap : {std::size_t{0}, std::size_t{400}, std::size_t{200},
                                  std::size_t{100}, std::size_t{50}, std::size_t{25}}) {
      ExperimentConfig cfg;
      cfg.scenario = scen;
      cfg.max_buffer_messages = cap;
      cfg.seed = opt.seed;

      cfg.protocol = Protocol::Epidemic;
      const AggregateResult epi = run_repeated_parallel(cfg, runs);
      cfg.protocol = Protocol::DelegationLastContact;
      const AggregateResult del = run_repeated_parallel(cfg, runs);

      table.add_row({scen.name, cap == 0 ? "unlimited" : std::to_string(cap),
                     fmt_pct(epi.success_rate.mean()), fmt(epi.avg_replicas.mean(), 1),
                     fmt_pct(del.success_rate.mean()), fmt(del.avg_replicas.mean(), 1)});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::Epidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.max_buffer_messages = 50;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
