// Finite-buffer extension bench. The paper assumes infinite buffers
// (Section V-C); this sweep shows how the vanilla protocols degrade when
// relays can only hold a bounded number of messages (drop-closest-to-expiry
// policy), and that Delegation — which creates far fewer replicas — is much
// more robust to small buffers than Epidemic.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t runs = opt.quick ? 1 : opt.runs;

  std::cout << "== Extension: finite relay buffers (vanilla protocols) ==\n"
            << "   (0 = unlimited, the paper's assumption)\n\n";

  const std::vector<std::size_t> caps{0, 400, 200, 100, 50, 25};
  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    std::vector<SweepCell> cells;
    for (const std::size_t cap : caps) {
      ExperimentConfig cfg;
      cfg.scenario = scen;
      cfg.max_buffer_messages = cap;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);

      cfg.protocol = Protocol::Epidemic;
      cells.push_back({cfg, runs});
      cfg.protocol = Protocol::DelegationLastContact;
      cells.push_back({cfg, runs});
    }
    const std::vector<AggregateResult> aggs = run_sweep(cells, opt.threads);

    Table table({"scenario", "buffer cap", "Epidemic success", "Epidemic cost",
                 "Delegation success", "Delegation cost"});
    for (std::size_t i = 0; i < caps.size(); ++i) {
      const AggregateResult& epi = aggs[2 * i];
      const AggregateResult& del = aggs[2 * i + 1];
      table.add_row({scen.name, caps[i] == 0 ? "unlimited" : std::to_string(caps[i]),
                     fmt_pct(epi.success_rate.mean()), fmt(epi.avg_replicas.mean(), 1),
                     fmt_pct(del.success_rate.mean()), fmt(del.avg_replicas.mean(), 1)});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::Epidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.max_buffer_messages = 50;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
