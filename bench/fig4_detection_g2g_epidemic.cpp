// Figure 4 — "Dependence of droppers detection time from the number of
// droppers in G2G Epidemic Forwarding" (plus the detection probabilities the
// text quotes: 94.7% plain / 91.3% with outsiders).
// Paper shape: average detection time (measured after Delta1 expires) is
// minutes-scale and flat in the number of droppers.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::cout << "== Fig. 4: dropper detection time in G2G Epidemic Forwarding ==\n"
            << "   (detection time measured after the Delta1/TTL of the message)\n\n";

  std::vector<bench::BenchCell> bench_cells;
  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    // Whole-figure sweep: every (dropper count, outsiders, seed) run goes
    // through one work-stealing pool instead of per-cell round-robins.
    const std::vector<std::size_t> counts =
        bench::dropper_counts(scen.trace_config.nodes, opt.quick, /*include_zero=*/false);
    std::vector<SweepCell> cells;
    std::vector<std::string> names;
    for (const std::size_t n : counts) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GEpidemic;
      cfg.scenario = scen;
      cfg.deviation = proto::Behavior::Dropper;
      cfg.deviant_count = n;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);

      const std::string stem = scen.name + "/droppers=" + std::to_string(n);
      cfg.with_outsiders = false;
      cells.push_back({cfg, opt.runs});
      names.push_back(stem + "/plain");
      cfg.with_outsiders = true;
      cells.push_back({cfg, opt.runs});
      names.push_back(stem + "/outsiders");
    }
    std::vector<CellTelemetry> telemetry;
    const std::vector<AggregateResult> agg = run_sweep(cells, opt.threads, &telemetry);
    for (const auto& cell : bench::telemetry_cells(names, telemetry, opt.runs)) {
      bench_cells.push_back(cell);
    }

    Table table({"scenario", "droppers", "detect% (plain)", "avg time (plain)",
                 "detect% (outsiders)", "avg time (outsiders)"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const AggregateResult& plain = agg[2 * i];
      const AggregateResult& outsiders = agg[2 * i + 1];
      table.add_row({scen.name, std::to_string(counts[i]),
                     fmt_pct(plain.detection_rate.mean()),
                     fmt_minutes(plain.detection_minutes.mean()),
                     fmt_pct(outsiders.detection_rate.mean()),
                     fmt_minutes(outsiders.detection_minutes.mean())});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GEpidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Dropper;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    const auto repr_result = bench::obs_report(repr, opt);
    bench::write_report("fig4", opt, std::move(bench_cells),
                        repr_result ? &repr_result->counters : nullptr);
  }
  return 0;
}
