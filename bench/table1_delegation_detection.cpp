// Table I — "Performance of G2G Delegation on the real traces": detection
// rate and average detection time for droppers, liars, and cheaters, plain
// and with-outsiders, on both trace stand-ins.
// Paper reference values (Infocom05 / Cambridge06):
//   droppers 88%/86% @ 12/21 min; liars 67%/65% @ 26/52 min;
//   cheaters 83%/84% @ 35/64 min (with-outsiders variants slightly lower).
// Expected shapes: high rates everywhere, zero false accusations, and longer
// times on the sparser Cambridge trace.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  std::cout << "== Table I: G2G Delegation detection performance ==\n"
            << "   (G2G Delegation Destination Last Contact; 10 deviants; detection\n"
            << "    time measured after the Delta1/TTL of the message)\n\n";

  const struct {
    proto::Behavior behavior;
    bool outsiders;
    const char* label;
  } rows[] = {
      {proto::Behavior::Dropper, false, "Droppers"},
      {proto::Behavior::Liar, false, "Liars"},
      {proto::Behavior::Cheater, false, "Cheaters"},
      {proto::Behavior::Dropper, true, "Droppers with outsiders"},
      {proto::Behavior::Liar, true, "Liars with outsiders"},
      {proto::Behavior::Cheater, true, "Cheaters with outsiders"},
  };

  std::vector<SweepCell> sweep;
  for (const auto& row : rows) {
    for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
      ExperimentConfig cfg;
      cfg.protocol = Protocol::G2GDelegationLastContact;
      cfg.scenario = scen;
      cfg.deviation = row.behavior;
      cfg.deviant_count = 10;
      cfg.with_outsiders = row.outsiders;
      cfg.seed = opt.seed;
      sweep.push_back({bench::with_options(std::move(cfg), opt),
                       opt.quick ? 1 : opt.runs + 1});
    }
  }
  const std::vector<AggregateResult> aggs = run_sweep(sweep, opt.threads);

  Table table({"deviation", "infocom05 rate", "infocom05 time", "cambridge06 rate",
               "cambridge06 time", "false accusations"});
  std::size_t k = 0;
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.label};
    std::size_t false_positives = 0;
    for (int scenario = 0; scenario < 2; ++scenario) {
      const AggregateResult& agg = aggs[k++];
      cells.push_back(fmt_pct(agg.detection_rate.mean()));
      cells.push_back(fmt_minutes(agg.detection_minutes.mean()));
      false_positives += agg.false_positives;
    }
    cells.push_back(std::to_string(false_positives));
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GDelegationFrequency;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.deviation = proto::Behavior::Liar;
    repr.deviant_count = 10;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
