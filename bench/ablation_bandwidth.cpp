// Bandwidth-limited contacts (extension bench). The paper assumes every
// contact completes all transfers; real radios do not. This sweep shows how
// delivery degrades as the per-contact byte budget (duration x bandwidth)
// shrinks, and that the G2G handshake overhead costs a little extra headroom
// at low bandwidth but nothing at realistic rates.
#include <iostream>

#include "bench_util.hpp"
#include "g2g/core/parallel.hpp"

using namespace g2g;
using namespace g2g::core;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t runs = opt.quick ? 1 : opt.runs;

  std::cout << "== Extension: bandwidth-limited contacts ==\n"
            << "   (budget per contact = duration x bandwidth; 0 = unlimited)\n\n";

  const std::vector<double> bandwidths{0.0, 50000.0, 5000.0, 1000.0, 250.0};
  for (const Scenario& scen : bench::both_scenarios(opt.seed)) {
    std::vector<SweepCell> cells;
    for (const double bw : bandwidths) {
      ExperimentConfig cfg;
      cfg.scenario = scen;
      cfg.bandwidth_bytes_per_s = bw;
      cfg.seed = opt.seed;
      cfg = bench::with_options(std::move(cfg), opt);

      cfg.protocol = Protocol::Epidemic;
      cells.push_back({cfg, runs});
      cfg.protocol = Protocol::G2GEpidemic;
      cells.push_back({cfg, runs});
    }
    const std::vector<AggregateResult> aggs = run_sweep(cells, opt.threads);

    Table table({"scenario", "bandwidth", "Epidemic success", "G2G Epidemic success",
                 "Epidemic cost", "G2G cost"});
    for (std::size_t i = 0; i < bandwidths.size(); ++i) {
      const double bw = bandwidths[i];
      const AggregateResult& epi = aggs[2 * i];
      const AggregateResult& g2g = aggs[2 * i + 1];
      table.add_row({scen.name, bw == 0.0 ? "unlimited" : fmt(bw / 1000.0, 2) + " kB/s",
                     fmt_pct(epi.success_rate.mean()), fmt_pct(g2g.success_rate.mean()),
                     fmt(epi.avg_replicas.mean(), 1), fmt(g2g.avg_replicas.mean(), 1)});
    }
    bench::emit(table, opt);
  }
  {
    ExperimentConfig repr;
    repr.protocol = Protocol::G2GEpidemic;
    repr.scenario = infocom05_scenario(opt.seed);
    repr.bandwidth_bytes_per_s = 1024.0 * 1024.0;
    repr.seed = opt.seed;
    bench::obs_report(repr, opt);
  }
  return 0;
}
