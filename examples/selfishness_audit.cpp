// Selfishness audit: watch Give2Get catch misbehaving nodes in the act.
//
// Runs G2G Delegation Forwarding on the Cambridge stand-in with a mix of
// droppers, liars and cheaters, then prints the audit trail: every proof of
// misbehaviour (who caught whom, when, by which mechanism) and the resulting
// payoff gap between faithful and deviant nodes.
//
//   $ ./selfishness_audit [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "g2g/core/experiment.hpp"

namespace {

const char* method_name(g2g::metrics::DetectionMethod m) {
  switch (m) {
    case g2g::metrics::DetectionMethod::TestBySender: return "test by sender (no PoRs/storage)";
    case g2g::metrics::DetectionMethod::TestByDestination: return "test by destination (quality lie)";
    case g2g::metrics::DetectionMethod::ChainCheck: return "chain check (quality tampering)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g2g;
  using namespace g2g::core;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // Three runs, one per deviation kind, so each mechanism is showcased.
  const struct {
    proto::Behavior behavior;
    const char* story;
  } cases[] = {
      {proto::Behavior::Dropper, "droppers (accept messages, then discard them)"},
      {proto::Behavior::Liar, "liars (declare forwarding quality 0 to dodge work)"},
      {proto::Behavior::Cheater, "cheaters (zero the message quality to dump it fast)"},
  };

  for (const auto& c : cases) {
    ExperimentConfig cfg;
    cfg.protocol = Protocol::G2GDelegationLastContact;
    cfg.scenario = cambridge06_scenario(seed);
    cfg.deviation = c.behavior;
    cfg.deviant_count = 8;
    cfg.seed = seed;
    const ExperimentResult r = run_experiment(cfg);

    std::printf("=== %zu %s ===\n", r.deviant_count, c.story);
    std::printf("deviants:");
    for (const NodeId n : r.deviants) std::printf(" n%u", n.value());
    std::printf("\naudit trail (%zu proofs of misbehaviour):\n",
                r.collector.detections().size());
    for (const auto& d : r.collector.detections()) {
      std::printf("  [%7.1f min] n%-2u caught n%-2u via %s (%.1f min after Delta1)\n",
                  d.at.to_seconds() / 60.0, d.detector.value(), d.culprit.value(),
                  method_name(d.method), d.after_delta1.to_minutes());
    }
    std::printf("detected %zu/%zu, false accusations: %zu\n", r.detected_count,
                r.deviant_count, r.false_positives);

    double faithful_payoff = 0.0;
    double deviant_payoff = 0.0;
    std::size_t nf = 0;
    std::size_t nd = 0;
    for (std::uint32_t i = 0; i < cfg.scenario.trace_config.nodes; ++i) {
      const double p = node_payoff(r, NodeId(i));
      if (std::binary_search(r.deviants.begin(), r.deviants.end(), NodeId(i))) {
        deviant_payoff += p;
        ++nd;
      } else {
        faithful_payoff += p;
        ++nf;
      }
    }
    std::printf("mean payoff: faithful %.0f vs deviant %.0f — deviation does not pay\n\n",
                faithful_payoff / static_cast<double>(nf),
                deviant_payoff / static_cast<double>(nd));
  }
  return 0;
}
