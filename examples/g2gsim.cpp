// g2gsim — full command-line simulation driver.
//
// The "adopt this repo" entry point: run any of the six protocols on a
// built-in scenario or on your own contact trace file, with every knob of
// the experiment runner exposed as a flag.
//
//   $ ./g2gsim --scenario infocom05 --protocol g2g-epidemic
//   $ ./g2gsim --scenario cambridge06 --protocol g2g-delegation-lc
//              --deviation dropper --deviants 10 --outsiders --seed 9
//   $ ./g2gsim --protocol epidemic --ttl-min 20 --runs 3 --csv
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "g2g/core/experiment.hpp"
#include "g2g/core/report.hpp"
#include "g2g/obs/tracer.hpp"

namespace {

using namespace g2g;
using namespace g2g::core;

struct CliOptions {
  std::string scenario = "infocom05";
  std::string protocol = "g2g-epidemic";
  std::string deviation = "none";
  std::size_t deviants = 0;
  bool outsiders = false;
  std::uint64_t seed = 1;
  std::size_t runs = 1;
  std::optional<double> ttl_min;
  double interarrival_s = 4.0;
  bool csv = false;
  bool schnorr = false;
  std::optional<std::string> trace_out;  ///< stream events as JSONL to this file
  bool obs = false;                      ///< print counters + stage profile
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --scenario  infocom05|cambridge06        (default infocom05)\n"
      "  --protocol  epidemic|g2g-epidemic|delegation-freq|delegation-lc|\n"
      "              g2g-delegation-freq|g2g-delegation-lc\n"
      "  --deviation none|dropper|liar|cheater|hoarder (default none)\n"
      "  --deviants  N                            (default 0)\n"
      "  --outsiders                              deviate only with outsiders\n"
      "  --ttl-min   MINUTES                      override Delta1/TTL\n"
      "  --interarrival SECONDS                   traffic mean gap (default 4)\n"
      "  --seed S    --runs N                     repetitions average results\n"
      "  --schnorr                                real public-key suite\n"
      "  --csv                                    machine-readable output\n"
      "  --trace-out FILE                         stream simulation events (JSONL)\n"
      "  --obs                                    print protocol counters and\n"
      "                                           pipeline stage times\n",
      argv0);
  return 2;
}

std::optional<Protocol> parse_protocol(const std::string& s) {
  if (s == "epidemic") return Protocol::Epidemic;
  if (s == "g2g-epidemic") return Protocol::G2GEpidemic;
  if (s == "delegation-freq") return Protocol::DelegationFrequency;
  if (s == "delegation-lc") return Protocol::DelegationLastContact;
  if (s == "g2g-delegation-freq") return Protocol::G2GDelegationFrequency;
  if (s == "g2g-delegation-lc") return Protocol::G2GDelegationLastContact;
  return std::nullopt;
}

std::optional<proto::Behavior> parse_deviation(const std::string& s) {
  if (s == "none") return proto::Behavior::Faithful;
  if (s == "dropper") return proto::Behavior::Dropper;
  if (s == "liar") return proto::Behavior::Liar;
  if (s == "cheater") return proto::Behavior::Cheater;
  if (s == "hoarder") return proto::Behavior::Hoarder;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--protocol") {
      opt.protocol = next();
    } else if (arg == "--deviation") {
      opt.deviation = next();
    } else if (arg == "--deviants") {
      opt.deviants = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--outsiders") {
      opt.outsiders = true;
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--runs") {
      opt.runs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ttl-min") {
      opt.ttl_min = std::strtod(next(), nullptr);
    } else if (arg == "--interarrival") {
      opt.interarrival_s = std::strtod(next(), nullptr);
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--schnorr") {
      opt.schnorr = true;
    } else if (arg == "--trace-out") {
      opt.trace_out = next();
    } else if (arg == "--obs") {
      opt.obs = true;
    } else {
      return usage(argv[0]);
    }
  }

  const auto protocol = parse_protocol(opt.protocol);
  const auto deviation = parse_deviation(opt.deviation);
  if (!protocol || !deviation ||
      (opt.scenario != "infocom05" && opt.scenario != "cambridge06")) {
    return usage(argv[0]);
  }

  ExperimentConfig cfg;
  cfg.scenario = opt.scenario == "infocom05" ? infocom05_scenario(opt.seed)
                                             : cambridge06_scenario(opt.seed);
  cfg.protocol = *protocol;
  cfg.deviation = *deviation;
  cfg.deviant_count = opt.deviants;
  cfg.with_outsiders = opt.outsiders;
  cfg.seed = opt.seed;
  cfg.mean_interarrival = Duration::seconds(opt.interarrival_s);
  if (opt.ttl_min) cfg.delta1_override = Duration::minutes(*opt.ttl_min);
  if (opt.schnorr) cfg.suite = crypto::make_schnorr_suite();

  std::unique_ptr<obs::JsonlSink> sink;
  if (opt.trace_out) {
    sink = obs::JsonlSink::open(*opt.trace_out);
    if (!sink) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", opt.trace_out->c_str());
      return 1;
    }
    cfg.trace_sink = sink.get();
  }

  ExperimentResult last;
  const AggregateResult agg =
      run_repeated(cfg, std::max<std::size_t>(1, opt.runs), opt.obs ? &last : nullptr);

  Table table({"metric", "mean", "min", "max"});
  table.add_row({"success rate", fmt_pct(agg.success_rate.mean()),
                 fmt_pct(agg.success_rate.min()), fmt_pct(agg.success_rate.max())});
  table.add_row({"avg delay (min)", fmt(agg.avg_delay_s.mean() / 60.0, 1),
                 fmt(agg.avg_delay_s.min() / 60.0, 1), fmt(agg.avg_delay_s.max() / 60.0, 1)});
  table.add_row({"cost (replicas/msg)", fmt(agg.avg_replicas.mean(), 2),
                 fmt(agg.avg_replicas.min(), 2), fmt(agg.avg_replicas.max(), 2)});
  if (opt.deviants > 0) {
    table.add_row({"detection rate", fmt_pct(agg.detection_rate.mean()),
                   fmt_pct(agg.detection_rate.min()), fmt_pct(agg.detection_rate.max())});
    table.add_row({"detect time (min after D1)", fmt(agg.detection_minutes.mean(), 1),
                   fmt(agg.detection_minutes.min(), 1), fmt(agg.detection_minutes.max(), 1)});
    table.add_row({"false accusations", std::to_string(agg.false_positives), "-", "-"});
  }

  if (!opt.csv) {
    std::printf("%s on %s | deviation=%s x%zu%s | runs=%zu seed=%llu\n",
                to_string(cfg.protocol), cfg.scenario.name.c_str(), opt.deviation.c_str(),
                opt.deviants, opt.outsiders ? " (outsiders)" : "", opt.runs,
                static_cast<unsigned long long>(opt.seed));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (opt.obs) {
    // Counters and stage times of the final run (seed = seed + runs - 1).
    Table counters({"counter", "value"});
    for (const auto& [name, counter] : last.counters.counters()) {
      if (counter.value() > 0) counters.add_row({name, std::to_string(counter.value())});
    }
    Table stages({"stage", "seconds"});
    for (const auto& stage : last.stages.stages()) {
      stages.add_row({stage.name, fmt(stage.seconds, 3)});
    }
    if (!opt.csv) std::printf("\nprotocol counters (last run)\n");
    opt.csv ? counters.print_csv(std::cout) : counters.print(std::cout);
    if (!opt.csv) std::printf("\npipeline stages (last run)\n");
    opt.csv ? stages.print_csv(std::cout) : stages.print(std::cout);
  }
  if (sink) {
    std::fprintf(stderr, "wrote %llu events to %s\n",
                 static_cast<unsigned long long>(sink->lines_written()),
                 opt.trace_out->c_str());
  }
  return 0;
}
