// Conference scenario: the paper's headline comparison, as an application.
//
// Simulates a 3-day conference (Infocom'05 stand-in) and compares all six
// forwarding protocols under the same workload — first with everyone
// faithful, then with a third of the attendees dropping messages — printing
// a compact report.
//
//   $ ./conference_scenario [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "g2g/core/experiment.hpp"
#include "g2g/core/report.hpp"

int main(int argc, char** argv) {
  using namespace g2g;
  using namespace g2g::core;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const Scenario scenario = infocom05_scenario(seed);

  const Protocol protocols[] = {
      Protocol::Epidemic,          Protocol::G2GEpidemic,
      Protocol::DelegationLastContact, Protocol::G2GDelegationLastContact,
      Protocol::DelegationFrequency,   Protocol::G2GDelegationFrequency,
  };

  std::printf("Conference scenario: %u attendees, 3-hour window, 1 msg / 4 s\n\n",
              scenario.trace_config.nodes);

  Table faithful({"protocol", "success", "delay", "cost (replicas)"});
  for (const Protocol p : protocols) {
    ExperimentConfig cfg;
    cfg.protocol = p;
    cfg.scenario = scenario;
    cfg.seed = seed;
    const ExperimentResult r = run_experiment(cfg);
    faithful.add_row({to_string(p), fmt_pct(r.success_rate),
                      fmt_minutes(r.delay_seconds.mean() / 60.0), fmt(r.avg_replicas, 2)});
  }
  std::printf("All nodes faithful:\n");
  faithful.print(std::cout);

  Table selfish({"protocol", "success", "detected droppers", "false accusations"});
  const std::size_t droppers = scenario.trace_config.nodes / 3;
  for (const Protocol p : protocols) {
    ExperimentConfig cfg;
    cfg.protocol = p;
    cfg.scenario = scenario;
    cfg.seed = seed;
    cfg.deviation = proto::Behavior::Dropper;
    cfg.deviant_count = droppers;
    const ExperimentResult r = run_experiment(cfg);
    selfish.add_row({to_string(p), fmt_pct(r.success_rate),
                     std::to_string(r.detected_count) + "/" + std::to_string(r.deviant_count),
                     std::to_string(r.false_positives)});
  }
  std::printf("\nWith %zu message droppers (vanilla protocols cannot detect them;\n"
              "the G2G protocols evict them):\n",
              droppers);
  selfish.print(std::cout);
  return 0;
}
