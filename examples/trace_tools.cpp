// Trace tools: generate, inspect, and analyze contact traces from the
// command line. Demonstrates the trace/community layers of the library and
// gives you files you can feed back into your own experiments (the format is
// the common CRAWDAD-style contact list, so the real Infocom'05/Cambridge'06
// data drops in directly).
//
//   $ ./trace_tools generate infocom05 /tmp/trace.txt [seed]
//   $ ./trace_tools stats /tmp/trace.txt
#include <cstdio>
#include <cstring>
#include <string>

#include "g2g/community/kclique.hpp"
#include "g2g/trace/parser.hpp"
#include "g2g/trace/stats.hpp"
#include "g2g/trace/synthetic.hpp"

namespace {

using namespace g2g;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s generate <infocom05|cambridge06> <out-file> [seed]\n"
               "  %s stats <trace-file>\n",
               argv0, argv0);
  return 2;
}

int cmd_generate(const std::string& preset, const std::string& path, std::uint64_t seed) {
  const trace::SyntheticConfig cfg =
      preset == "cambridge06" ? trace::cambridge06(seed) : trace::infocom05(seed);
  const trace::SyntheticTrace t = trace::generate_trace(cfg);
  trace::save_trace(path, t.trace);
  std::printf("wrote %zu contacts (%zu nodes, %.1f days) to %s\n", t.trace.size(),
              t.trace.node_count(),
              (t.trace.end_time() - t.trace.start_time()).to_seconds() / 86400.0,
              path.c_str());
  std::printf("planted communities:");
  for (const auto& c : t.communities) std::printf(" %zu", c.size());
  std::printf(" nodes\n");
  return 0;
}

int cmd_stats(const std::string& path) {
  const trace::ContactTrace t = trace::load_trace(path);
  const trace::TraceStats stats(t);
  std::printf("trace: %zu nodes, %zu contacts over %.1f days\n", t.node_count(), t.size(),
              stats.trace_span().to_seconds() / 86400.0);
  std::printf("  contacts/hour          : %.1f\n", stats.contacts_per_hour());
  std::printf("  pairs that ever met    : %zu\n", stats.pair_count());
  std::printf("  median contact length  : %.0f s\n", stats.contact_durations().median());
  std::printf("  median inter-contact   : %.0f s\n", stats.inter_contact_times().median());
  std::printf("  P(re-meet within 1 h)  : %.2f\n",
              stats.remeet_probability(Duration::hours(1)));
  std::printf("  P(re-meet within 2 h)  : %.2f\n",
              stats.remeet_probability(Duration::hours(2)));

  const Duration span = stats.trace_span();
  const community::ContactGraph graph(t, community::ContactGraphConfig::for_span(span));
  for (const std::size_t k : {std::size_t{3}, std::size_t{4}}) {
    const community::CommunityMap cm = community::k_clique_communities(graph, k);
    std::printf("  %zu-clique communities  :", k);
    for (const auto& g : cm.groups()) std::printf(" %zu", g.size());
    std::printf(" nodes\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate" && argc >= 4) {
      const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
      return cmd_generate(argv[2], argv[3], seed);
    }
    if (cmd == "stats") return cmd_stats(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
