// Quickstart: the smallest end-to-end use of the library.
//
// Builds a synthetic social contact trace, runs Give2Get Epidemic Forwarding
// over it with the paper's workload, and prints delivery/cost/delay — all
// through the high-level core API.
//
//   $ ./quickstart
#include <cstdio>

#include "g2g/core/experiment.hpp"

int main() {
  using namespace g2g;
  using namespace g2g::core;

  // 1. Pick a scenario: the Infocom'05 stand-in (41 conference attendees,
  //    3 days of contacts, 4 social groups).
  ExperimentConfig config;
  config.scenario = infocom05_scenario();
  config.protocol = Protocol::G2GEpidemic;
  config.seed = 2026;

  // 2. Run the paper's workload: one message every 4 seconds for 2 hours,
  //    simulated over a 3-hour window, uniform random sources/destinations.
  const ExperimentResult result = run_experiment(config);

  // 3. Inspect the outcome.
  std::printf("Give2Get Epidemic Forwarding on %s\n", config.scenario.name.c_str());
  std::printf("  messages generated : %zu\n", result.generated);
  std::printf("  delivered          : %zu (%.1f%%)\n", result.delivered,
              result.success_rate * 100.0);
  std::printf("  avg delay          : %.1f minutes\n",
              result.delay_seconds.mean() / 60.0);
  std::printf("  avg cost           : %.1f replicas/message\n", result.avg_replicas);
  std::printf("  communities found  : %zu (k-clique percolation)\n",
              result.community_count);

  // 4. Per-node accounting is available too.
  const metrics::NodeCosts& costs = result.collector.costs(NodeId(0));
  std::printf("  node 0 sent %.1f kB over %llu sessions, %llu signatures\n",
              static_cast<double>(costs.bytes_sent) / 1024.0,
              static_cast<unsigned long long>(costs.sessions),
              static_cast<unsigned long long>(costs.signatures));
  return 0;
}
