# Empty dependencies file for conference_scenario.
# This may be replaced when dependencies are built.
