file(REMOVE_RECURSE
  "CMakeFiles/conference_scenario.dir/conference_scenario.cpp.o"
  "CMakeFiles/conference_scenario.dir/conference_scenario.cpp.o.d"
  "conference_scenario"
  "conference_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
