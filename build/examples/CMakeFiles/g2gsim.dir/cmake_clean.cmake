file(REMOVE_RECURSE
  "CMakeFiles/g2gsim.dir/g2gsim.cpp.o"
  "CMakeFiles/g2gsim.dir/g2gsim.cpp.o.d"
  "g2gsim"
  "g2gsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2gsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
