# Empty dependencies file for g2gsim.
# This may be replaced when dependencies are built.
