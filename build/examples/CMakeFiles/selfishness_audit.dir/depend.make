# Empty dependencies file for selfishness_audit.
# This may be replaced when dependencies are built.
