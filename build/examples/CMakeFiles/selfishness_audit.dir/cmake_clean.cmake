file(REMOVE_RECURSE
  "CMakeFiles/selfishness_audit.dir/selfishness_audit.cpp.o"
  "CMakeFiles/selfishness_audit.dir/selfishness_audit.cpp.o.d"
  "selfishness_audit"
  "selfishness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfishness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
