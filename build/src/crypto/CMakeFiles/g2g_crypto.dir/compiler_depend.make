# Empty compiler generated dependencies file for g2g_crypto.
# This may be replaced when dependencies are built.
