file(REMOVE_RECURSE
  "CMakeFiles/g2g_crypto.dir/src/chacha20.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/chacha20.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/hmac.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/hmac.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/identity.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/identity.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/schnorr.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/schnorr.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/sealed_box.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/sealed_box.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/sha256.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/sha256.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/suite.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/suite.cpp.o.d"
  "CMakeFiles/g2g_crypto.dir/src/uint256.cpp.o"
  "CMakeFiles/g2g_crypto.dir/src/uint256.cpp.o.d"
  "libg2g_crypto.a"
  "libg2g_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
