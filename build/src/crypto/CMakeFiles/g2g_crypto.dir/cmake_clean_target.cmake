file(REMOVE_RECURSE
  "libg2g_crypto.a"
)
