
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/src/chacha20.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/chacha20.cpp.o.d"
  "/root/repo/src/crypto/src/hmac.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/hmac.cpp.o.d"
  "/root/repo/src/crypto/src/identity.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/identity.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/identity.cpp.o.d"
  "/root/repo/src/crypto/src/schnorr.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/schnorr.cpp.o.d"
  "/root/repo/src/crypto/src/sealed_box.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/sealed_box.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/sealed_box.cpp.o.d"
  "/root/repo/src/crypto/src/sha256.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/sha256.cpp.o.d"
  "/root/repo/src/crypto/src/suite.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/suite.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/suite.cpp.o.d"
  "/root/repo/src/crypto/src/uint256.cpp" "src/crypto/CMakeFiles/g2g_crypto.dir/src/uint256.cpp.o" "gcc" "src/crypto/CMakeFiles/g2g_crypto.dir/src/uint256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/g2g_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
