file(REMOVE_RECURSE
  "libg2g_metrics.a"
)
