# Empty compiler generated dependencies file for g2g_metrics.
# This may be replaced when dependencies are built.
