file(REMOVE_RECURSE
  "CMakeFiles/g2g_metrics.dir/src/collector.cpp.o"
  "CMakeFiles/g2g_metrics.dir/src/collector.cpp.o.d"
  "libg2g_metrics.a"
  "libg2g_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
