
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/src/contact.cpp" "src/trace/CMakeFiles/g2g_trace.dir/src/contact.cpp.o" "gcc" "src/trace/CMakeFiles/g2g_trace.dir/src/contact.cpp.o.d"
  "/root/repo/src/trace/src/parser.cpp" "src/trace/CMakeFiles/g2g_trace.dir/src/parser.cpp.o" "gcc" "src/trace/CMakeFiles/g2g_trace.dir/src/parser.cpp.o.d"
  "/root/repo/src/trace/src/stats.cpp" "src/trace/CMakeFiles/g2g_trace.dir/src/stats.cpp.o" "gcc" "src/trace/CMakeFiles/g2g_trace.dir/src/stats.cpp.o.d"
  "/root/repo/src/trace/src/synthetic.cpp" "src/trace/CMakeFiles/g2g_trace.dir/src/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/g2g_trace.dir/src/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/g2g_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
