# Empty compiler generated dependencies file for g2g_trace.
# This may be replaced when dependencies are built.
