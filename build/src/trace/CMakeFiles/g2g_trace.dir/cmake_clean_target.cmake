file(REMOVE_RECURSE
  "libg2g_trace.a"
)
