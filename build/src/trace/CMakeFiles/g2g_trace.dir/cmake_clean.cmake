file(REMOVE_RECURSE
  "CMakeFiles/g2g_trace.dir/src/contact.cpp.o"
  "CMakeFiles/g2g_trace.dir/src/contact.cpp.o.d"
  "CMakeFiles/g2g_trace.dir/src/parser.cpp.o"
  "CMakeFiles/g2g_trace.dir/src/parser.cpp.o.d"
  "CMakeFiles/g2g_trace.dir/src/stats.cpp.o"
  "CMakeFiles/g2g_trace.dir/src/stats.cpp.o.d"
  "CMakeFiles/g2g_trace.dir/src/synthetic.cpp.o"
  "CMakeFiles/g2g_trace.dir/src/synthetic.cpp.o.d"
  "libg2g_trace.a"
  "libg2g_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
