file(REMOVE_RECURSE
  "CMakeFiles/g2g_community.dir/src/graph.cpp.o"
  "CMakeFiles/g2g_community.dir/src/graph.cpp.o.d"
  "CMakeFiles/g2g_community.dir/src/kclique.cpp.o"
  "CMakeFiles/g2g_community.dir/src/kclique.cpp.o.d"
  "libg2g_community.a"
  "libg2g_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
