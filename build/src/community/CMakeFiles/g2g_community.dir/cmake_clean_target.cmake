file(REMOVE_RECURSE
  "libg2g_community.a"
)
