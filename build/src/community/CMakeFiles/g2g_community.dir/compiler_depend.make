# Empty compiler generated dependencies file for g2g_community.
# This may be replaced when dependencies are built.
