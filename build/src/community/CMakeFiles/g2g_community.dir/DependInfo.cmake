
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/src/graph.cpp" "src/community/CMakeFiles/g2g_community.dir/src/graph.cpp.o" "gcc" "src/community/CMakeFiles/g2g_community.dir/src/graph.cpp.o.d"
  "/root/repo/src/community/src/kclique.cpp" "src/community/CMakeFiles/g2g_community.dir/src/kclique.cpp.o" "gcc" "src/community/CMakeFiles/g2g_community.dir/src/kclique.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/g2g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g2g_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
