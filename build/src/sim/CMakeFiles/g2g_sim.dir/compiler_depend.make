# Empty compiler generated dependencies file for g2g_sim.
# This may be replaced when dependencies are built.
