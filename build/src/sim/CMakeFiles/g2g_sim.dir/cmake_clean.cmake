file(REMOVE_RECURSE
  "CMakeFiles/g2g_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/g2g_sim.dir/src/simulator.cpp.o.d"
  "CMakeFiles/g2g_sim.dir/src/traffic.cpp.o"
  "CMakeFiles/g2g_sim.dir/src/traffic.cpp.o.d"
  "libg2g_sim.a"
  "libg2g_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
