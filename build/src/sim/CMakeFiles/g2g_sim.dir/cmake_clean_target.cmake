file(REMOVE_RECURSE
  "libg2g_sim.a"
)
