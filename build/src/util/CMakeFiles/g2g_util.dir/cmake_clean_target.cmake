file(REMOVE_RECURSE
  "libg2g_util.a"
)
