# Empty compiler generated dependencies file for g2g_util.
# This may be replaced when dependencies are built.
