file(REMOVE_RECURSE
  "CMakeFiles/g2g_util.dir/src/bytes.cpp.o"
  "CMakeFiles/g2g_util.dir/src/bytes.cpp.o.d"
  "CMakeFiles/g2g_util.dir/src/log.cpp.o"
  "CMakeFiles/g2g_util.dir/src/log.cpp.o.d"
  "CMakeFiles/g2g_util.dir/src/stats.cpp.o"
  "CMakeFiles/g2g_util.dir/src/stats.cpp.o.d"
  "libg2g_util.a"
  "libg2g_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
