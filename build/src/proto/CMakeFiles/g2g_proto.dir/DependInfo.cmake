
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/src/delegation.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/delegation.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/delegation.cpp.o.d"
  "/root/repo/src/proto/src/epidemic.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/epidemic.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/epidemic.cpp.o.d"
  "/root/repo/src/proto/src/g2g_delegation.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/g2g_delegation.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/g2g_delegation.cpp.o.d"
  "/root/repo/src/proto/src/g2g_epidemic.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/g2g_epidemic.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/g2g_epidemic.cpp.o.d"
  "/root/repo/src/proto/src/message.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/message.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/message.cpp.o.d"
  "/root/repo/src/proto/src/network.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/network.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/network.cpp.o.d"
  "/root/repo/src/proto/src/node.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/node.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/node.cpp.o.d"
  "/root/repo/src/proto/src/quality.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/quality.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/quality.cpp.o.d"
  "/root/repo/src/proto/src/wire.cpp" "src/proto/CMakeFiles/g2g_proto.dir/src/wire.cpp.o" "gcc" "src/proto/CMakeFiles/g2g_proto.dir/src/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/g2g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/g2g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/g2g_community.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/g2g_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/g2g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g2g_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
