file(REMOVE_RECURSE
  "libg2g_proto.a"
)
