# Empty dependencies file for g2g_proto.
# This may be replaced when dependencies are built.
