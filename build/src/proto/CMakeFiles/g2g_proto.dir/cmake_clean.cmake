file(REMOVE_RECURSE
  "CMakeFiles/g2g_proto.dir/src/delegation.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/delegation.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/epidemic.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/epidemic.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/g2g_delegation.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/g2g_delegation.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/g2g_epidemic.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/g2g_epidemic.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/message.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/message.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/network.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/network.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/node.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/node.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/quality.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/quality.cpp.o.d"
  "CMakeFiles/g2g_proto.dir/src/wire.cpp.o"
  "CMakeFiles/g2g_proto.dir/src/wire.cpp.o.d"
  "libg2g_proto.a"
  "libg2g_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
