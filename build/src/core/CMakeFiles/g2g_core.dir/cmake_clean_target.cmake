file(REMOVE_RECURSE
  "libg2g_core.a"
)
