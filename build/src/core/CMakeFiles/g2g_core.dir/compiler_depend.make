# Empty compiler generated dependencies file for g2g_core.
# This may be replaced when dependencies are built.
