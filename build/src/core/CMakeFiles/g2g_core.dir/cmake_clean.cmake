file(REMOVE_RECURSE
  "CMakeFiles/g2g_core.dir/src/experiment.cpp.o"
  "CMakeFiles/g2g_core.dir/src/experiment.cpp.o.d"
  "CMakeFiles/g2g_core.dir/src/json.cpp.o"
  "CMakeFiles/g2g_core.dir/src/json.cpp.o.d"
  "CMakeFiles/g2g_core.dir/src/parallel.cpp.o"
  "CMakeFiles/g2g_core.dir/src/parallel.cpp.o.d"
  "CMakeFiles/g2g_core.dir/src/presets.cpp.o"
  "CMakeFiles/g2g_core.dir/src/presets.cpp.o.d"
  "CMakeFiles/g2g_core.dir/src/report.cpp.o"
  "CMakeFiles/g2g_core.dir/src/report.cpp.o.d"
  "libg2g_core.a"
  "libg2g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
