file(REMOVE_RECURSE
  "CMakeFiles/fig7_detection_g2g_delegation.dir/fig7_detection_g2g_delegation.cpp.o"
  "CMakeFiles/fig7_detection_g2g_delegation.dir/fig7_detection_g2g_delegation.cpp.o.d"
  "fig7_detection_g2g_delegation"
  "fig7_detection_g2g_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_detection_g2g_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
