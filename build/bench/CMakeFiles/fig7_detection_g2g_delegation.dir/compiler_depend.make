# Empty compiler generated dependencies file for fig7_detection_g2g_delegation.
# This may be replaced when dependencies are built.
