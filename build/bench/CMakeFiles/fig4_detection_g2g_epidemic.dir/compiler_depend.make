# Empty compiler generated dependencies file for fig4_detection_g2g_epidemic.
# This may be replaced when dependencies are built.
