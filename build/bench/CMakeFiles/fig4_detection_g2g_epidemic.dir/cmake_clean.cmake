file(REMOVE_RECURSE
  "CMakeFiles/fig4_detection_g2g_epidemic.dir/fig4_detection_g2g_epidemic.cpp.o"
  "CMakeFiles/fig4_detection_g2g_epidemic.dir/fig4_detection_g2g_epidemic.cpp.o.d"
  "fig4_detection_g2g_epidemic"
  "fig4_detection_g2g_epidemic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_detection_g2g_epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
