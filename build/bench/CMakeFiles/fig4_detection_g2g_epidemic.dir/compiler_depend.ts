# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_detection_g2g_epidemic.
