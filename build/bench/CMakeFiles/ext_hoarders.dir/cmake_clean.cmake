file(REMOVE_RECURSE
  "CMakeFiles/ext_hoarders.dir/ext_hoarders.cpp.o"
  "CMakeFiles/ext_hoarders.dir/ext_hoarders.cpp.o.d"
  "ext_hoarders"
  "ext_hoarders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hoarders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
