# Empty dependencies file for ext_hoarders.
# This may be replaced when dependencies are built.
