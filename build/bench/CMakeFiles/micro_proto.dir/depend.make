# Empty dependencies file for micro_proto.
# This may be replaced when dependencies are built.
