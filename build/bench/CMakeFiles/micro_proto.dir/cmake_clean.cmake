file(REMOVE_RECURSE
  "CMakeFiles/micro_proto.dir/micro_proto.cpp.o"
  "CMakeFiles/micro_proto.dir/micro_proto.cpp.o.d"
  "micro_proto"
  "micro_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
