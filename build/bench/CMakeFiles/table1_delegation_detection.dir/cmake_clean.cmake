file(REMOVE_RECURSE
  "CMakeFiles/table1_delegation_detection.dir/table1_delegation_detection.cpp.o"
  "CMakeFiles/table1_delegation_detection.dir/table1_delegation_detection.cpp.o.d"
  "table1_delegation_detection"
  "table1_delegation_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_delegation_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
