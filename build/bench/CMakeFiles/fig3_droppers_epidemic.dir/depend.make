# Empty dependencies file for fig3_droppers_epidemic.
# This may be replaced when dependencies are built.
