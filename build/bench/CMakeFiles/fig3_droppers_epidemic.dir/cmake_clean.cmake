file(REMOVE_RECURSE
  "CMakeFiles/fig3_droppers_epidemic.dir/fig3_droppers_epidemic.cpp.o"
  "CMakeFiles/fig3_droppers_epidemic.dir/fig3_droppers_epidemic.cpp.o.d"
  "fig3_droppers_epidemic"
  "fig3_droppers_epidemic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_droppers_epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
