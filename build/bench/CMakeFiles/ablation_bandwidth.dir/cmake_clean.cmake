file(REMOVE_RECURSE
  "CMakeFiles/ablation_bandwidth.dir/ablation_bandwidth.cpp.o"
  "CMakeFiles/ablation_bandwidth.dir/ablation_bandwidth.cpp.o.d"
  "ablation_bandwidth"
  "ablation_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
