file(REMOVE_RECURSE
  "CMakeFiles/fig8_cost_tradeoff.dir/fig8_cost_tradeoff.cpp.o"
  "CMakeFiles/fig8_cost_tradeoff.dir/fig8_cost_tradeoff.cpp.o.d"
  "fig8_cost_tradeoff"
  "fig8_cost_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cost_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
