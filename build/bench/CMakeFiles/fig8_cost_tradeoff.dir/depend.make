# Empty dependencies file for fig8_cost_tradeoff.
# This may be replaced when dependencies are built.
