file(REMOVE_RECURSE
  "CMakeFiles/fig5_deviations_delegation.dir/fig5_deviations_delegation.cpp.o"
  "CMakeFiles/fig5_deviations_delegation.dir/fig5_deviations_delegation.cpp.o.d"
  "fig5_deviations_delegation"
  "fig5_deviations_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deviations_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
