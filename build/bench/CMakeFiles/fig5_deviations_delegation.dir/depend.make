# Empty dependencies file for fig5_deviations_delegation.
# This may be replaced when dependencies are built.
