# Empty compiler generated dependencies file for uint256_test.
# This may be replaced when dependencies are built.
