file(REMOVE_RECURSE
  "CMakeFiles/uint256_test.dir/uint256_test.cpp.o"
  "CMakeFiles/uint256_test.dir/uint256_test.cpp.o.d"
  "uint256_test"
  "uint256_test.pdb"
  "uint256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uint256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
