# Empty compiler generated dependencies file for hoarder_test.
# This may be replaced when dependencies are built.
