file(REMOVE_RECURSE
  "CMakeFiles/hoarder_test.dir/hoarder_test.cpp.o"
  "CMakeFiles/hoarder_test.dir/hoarder_test.cpp.o.d"
  "hoarder_test"
  "hoarder_test.pdb"
  "hoarder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoarder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
