# Empty compiler generated dependencies file for g2g_delegation_kinds_test.
# This may be replaced when dependencies are built.
