file(REMOVE_RECURSE
  "CMakeFiles/epidemic_test.dir/epidemic_test.cpp.o"
  "CMakeFiles/epidemic_test.dir/epidemic_test.cpp.o.d"
  "epidemic_test"
  "epidemic_test.pdb"
  "epidemic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
