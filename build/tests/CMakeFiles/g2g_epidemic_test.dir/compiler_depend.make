# Empty compiler generated dependencies file for g2g_epidemic_test.
# This may be replaced when dependencies are built.
