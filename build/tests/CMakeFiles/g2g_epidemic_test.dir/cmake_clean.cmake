file(REMOVE_RECURSE
  "CMakeFiles/g2g_epidemic_test.dir/g2g_epidemic_test.cpp.o"
  "CMakeFiles/g2g_epidemic_test.dir/g2g_epidemic_test.cpp.o.d"
  "g2g_epidemic_test"
  "g2g_epidemic_test.pdb"
  "g2g_epidemic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2g_epidemic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
