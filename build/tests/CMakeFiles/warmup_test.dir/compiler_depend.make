# Empty compiler generated dependencies file for warmup_test.
# This may be replaced when dependencies are built.
