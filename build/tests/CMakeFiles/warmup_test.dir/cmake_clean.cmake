file(REMOVE_RECURSE
  "CMakeFiles/warmup_test.dir/warmup_test.cpp.o"
  "CMakeFiles/warmup_test.dir/warmup_test.cpp.o.d"
  "warmup_test"
  "warmup_test.pdb"
  "warmup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warmup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
