file(REMOVE_RECURSE
  "CMakeFiles/nash_test.dir/nash_test.cpp.o"
  "CMakeFiles/nash_test.dir/nash_test.cpp.o.d"
  "nash_test"
  "nash_test.pdb"
  "nash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
