# Empty compiler generated dependencies file for nash_test.
# This may be replaced when dependencies are built.
