# Empty dependencies file for parser_tolerance_test.
# This may be replaced when dependencies are built.
