file(REMOVE_RECURSE
  "CMakeFiles/parser_tolerance_test.dir/parser_tolerance_test.cpp.o"
  "CMakeFiles/parser_tolerance_test.dir/parser_tolerance_test.cpp.o.d"
  "parser_tolerance_test"
  "parser_tolerance_test.pdb"
  "parser_tolerance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_tolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
