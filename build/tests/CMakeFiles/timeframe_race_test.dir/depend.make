# Empty dependencies file for timeframe_race_test.
# This may be replaced when dependencies are built.
