
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/timeframe_race_test.cpp" "tests/CMakeFiles/timeframe_race_test.dir/timeframe_race_test.cpp.o" "gcc" "tests/CMakeFiles/timeframe_race_test.dir/timeframe_race_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/g2g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/g2g_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/g2g_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/g2g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/g2g_community.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/g2g_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/g2g_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g2g_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
