file(REMOVE_RECURSE
  "CMakeFiles/timeframe_race_test.dir/timeframe_race_test.cpp.o"
  "CMakeFiles/timeframe_race_test.dir/timeframe_race_test.cpp.o.d"
  "timeframe_race_test"
  "timeframe_race_test.pdb"
  "timeframe_race_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeframe_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
