# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for timeframe_race_test.
