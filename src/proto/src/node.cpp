#include "g2g/proto/node.hpp"

namespace g2g::proto {

const char* to_string(Behavior b) {
  switch (b) {
    case Behavior::Faithful: return "faithful";
    case Behavior::Dropper: return "dropper";
    case Behavior::Liar: return "liar";
    case Behavior::Cheater: return "cheater";
    case Behavior::Hoarder: return "hoarder";
  }
  return "?";
}

obs::ObsContext& Env::obs() {
  // Shared fallback for lightweight test Envs; tracing stays disabled and the
  // counters are only ever driven from single-threaded unit tests.
  static obs::ObsContext fallback;
  return fallback;
}

Arena& Env::wire_arena() {
  // Per-thread fallback for lightweight test Envs; NetworkBase overrides with
  // a per-run arena so parallel sweeps never share scratch across runs.
  static thread_local Arena fallback;
  return fallback;
}

std::uint64_t Env::msg_ref(const MessageHash& h) const {
  std::uint64_t ref = 0;
  for (std::size_t i = 0; i < 8 && i < h.size(); ++i) {
    ref |= static_cast<std::uint64_t>(h[i]) << (8 * i);
  }
  return ref;
}

Session::Session(Env& env, ProtocolNode& a, ProtocolNode& b, std::size_t byte_budget)
    : env_(env), a_(a), b_(b), budget_(byte_budget) {
  // Mutual authentication: exchange certificates, verify them, agree a
  // session key. Both endpoints pay symmetric costs.
  const std::size_t sig = a.identity().suite().signature_size();
  const std::size_t cert_bytes = wire::certificate(sig);
  for (ProtocolNode* n : {&a_, &b_}) {
    n->count_sent(cert_bytes);
    n->count_received(cert_bytes);
    n->count_verification();  // peer certificate check
    n->count_session();
    used_ += cert_bytes;
    env_.obs().counters.count_wire(obs::WireKind::Certificate, cert_bytes);
  }
}

TimePoint Session::now() const { return env_.now(); }

void Session::transfer(ProtocolNode& from, std::size_t bytes, obs::WireKind kind) {
  ProtocolNode& to = peer_of(from);
  from.count_sent(bytes);
  to.count_received(bytes);
  used_ += bytes;
  env_.obs().counters.count_wire(kind, bytes);
}

void Session::signed_control(ProtocolNode& from, std::size_t bytes, obs::WireKind kind) {
  ProtocolNode& to = peer_of(from);
  from.count_signature();
  to.count_verification();
  transfer(from, bytes, kind);
}

ProtocolNode& Session::peer_of(const ProtocolNode& n) { return &n == &a_ ? b_ : a_; }

ProtocolNode::ProtocolNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                           BehaviorConfig behavior)
    : env_(env),
      identity_(std::move(identity)),
      config_(config),
      behavior_(behavior) {}

bool ProtocolNode::accepts_session_with(NodeId peer) const {
  return !ledger_.blacklisted(peer);
}

bool ProtocolNode::learn_pom(const ProofOfMisbehavior& pom) {
  if (pom.culprit == id()) return false;  // nodes do not blacklist themselves
  if (ledger_.blacklisted(pom.culprit)) return false;
  count_verification();
  return admit_pom(pom, verify_pom(identity_.suite(), env_.roster(), pom));
}

bool ProtocolNode::learn_pom_preverified(const ProofOfMisbehavior& pom, bool verified) {
  if (pom.culprit == id()) return false;  // nodes do not blacklist themselves
  if (ledger_.blacklisted(pom.culprit)) return false;
  count_verification();  // the batched re-verification is charged per learner
  return admit_pom(pom, verified);
}

bool ProtocolNode::admit_pom(const ProofOfMisbehavior& pom, bool ok) {
  trace_event(obs::EventKind::PomLearned, pom.culprit, 0, ok ? 1 : 0);
  if (!ok) return false;
  counters().poms_learned->add();
  ledger_.blacklist(pom.culprit);
  ledger_.record(pom);
  return true;
}

void ProtocolNode::note_encounter(NodeId /*peer*/, TimePoint /*t*/) {}

void ProtocolNode::finalize(TimePoint end) {
  if (finalized_) return;
  finalized_ = true;
  auto& c = costs();
  c.memory_byte_seconds +=
      static_cast<double>(buffer_bytes_) * (end - last_buffer_change_).to_seconds();
}

void ProtocolNode::count_sent(std::size_t bytes) { costs().bytes_sent += bytes; }
void ProtocolNode::count_received(std::size_t bytes) { costs().bytes_received += bytes; }
void ProtocolNode::count_signature() { ++costs().signatures; }
void ProtocolNode::count_verification() { ++costs().verifications; }
void ProtocolNode::count_heavy_hmac() { ++costs().heavy_hmacs; }
void ProtocolNode::count_session() { ++costs().sessions; }

void ProtocolNode::buffer_changed(std::int64_t delta) {
  const TimePoint now = env_.now();
  auto& c = costs();
  c.memory_byte_seconds +=
      static_cast<double>(buffer_bytes_) * (now - last_buffer_change_).to_seconds();
  buffer_bytes_ += delta;
  last_buffer_change_ = now;
  if (delta > 0) {
    counters().buffer_adds->add();
    trace_event(obs::EventKind::BufferAdd, NodeId::invalid(), 0, delta);
  } else if (delta < 0) {
    counters().buffer_drops->add();
    trace_event(obs::EventKind::BufferEvict, NodeId::invalid(), 0, delta);
  }
}

bool ProtocolNode::deviates_with(NodeId peer) const {
  if (behavior_.kind == Behavior::Faithful) return false;
  if (behavior_.with_outsiders_only) return env_.outsiders(id(), peer);
  return true;
}

metrics::NodeCosts& ProtocolNode::costs() { return env_.collector().costs(id()); }

void ProtocolNode::issue_pom(ProofOfMisbehavior pom, metrics::DetectionMethod method,
                             Duration after_delta1) {
  pom.accuser = id();
  pom.at = env_.now();
  ledger_.blacklist(pom.culprit);
  counters().poms_issued->add();
  counters().evictions->add();
  trace_event(obs::EventKind::PomIssued, pom.culprit, 0,
              static_cast<std::int64_t>(pom.kind));
  trace_event(obs::EventKind::Eviction, pom.culprit);
  env_.collector().node_evicted(pom.culprit, env_.now());
  env_.notify_detection(pom.culprit, id(), method, after_delta1);
  env_.broadcast_pom(ledger_.record(std::move(pom)));
}

}  // namespace g2g::proto
