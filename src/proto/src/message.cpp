#include "g2g/proto/message.hpp"

#include <stdexcept>

namespace g2g::proto {

namespace {
constexpr std::uint32_t kInnerMagic = 0x67326d31;  // "g2m1"
}

void Roster::add(crypto::Certificate cert) {
  const std::size_t idx = cert.node.value();
  if (idx >= certs_.size()) certs_.resize(idx + 1);
  certs_[idx] = std::move(cert);
}

const crypto::Certificate* Roster::find(NodeId n) const {
  if (n.value() >= certs_.size() || !certs_[n.value()].has_value()) return nullptr;
  return &*certs_[n.value()];
}

const crypto::Certificate& Roster::get(NodeId n) const {
  const auto* cert = find(n);
  if (cert == nullptr) throw std::out_of_range("unknown node in roster");
  return *cert;
}

MessageHash SealedMessage::hash() const { return crypto::sha256(encode()); }

void SealedMessage::encode_into(SpanWriter& w) const {
  w.u32(dst.value());
  w.blob(box.ephemeral_public);
  w.blob(box.ciphertext);
}

Bytes SealedMessage::encode() const { return encode_exact(*this); }

SealedMessage SealedMessage::decode(BytesView b) {
  Reader r(b);
  SealedMessage m = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after SealedMessage");
  return m;
}

SealedMessage SealedMessage::decode(Reader& r) {
  SealedMessage m;
  m.dst = NodeId(r.u32());
  m.box.ephemeral_public = r.blob();
  m.box.ciphertext = r.blob();
  return m;
}

std::size_t SealedMessage::wire_size() const {
  return 4 + 8 + box.ephemeral_public.size() + box.ciphertext.size();
}

MessageHash SealedMessageView::hash() const { return crypto::sha256(wire); }

SealedMessage SealedMessageView::to_owned() const {
  SealedMessage m;
  m.dst = dst;
  m.box.ephemeral_public.assign(ephemeral_public.begin(), ephemeral_public.end());
  m.box.ciphertext.assign(ciphertext.begin(), ciphertext.end());
  return m;
}

SealedMessageView SealedMessageView::decode(BytesView b) {
  Reader r(b);
  SealedMessageView v;
  v.dst = NodeId(r.u32());
  v.ephemeral_public = r.blob_view();
  v.ciphertext = r.blob_view();
  if (!r.done()) throw DecodeError("trailing bytes after SealedMessage");
  v.wire = b;
  return v;
}

SealedMessage make_message(const crypto::NodeIdentity& sender,
                           const crypto::Certificate& recipient_cert, MessageId id,
                           BytesView body, Rng& rng) {
  // Inner plaintext: magic | src | id | body | sig_S(src | id | body | dst).
  Writer signed_part(32 + body.size());
  signed_part.u32(sender.node().value());
  signed_part.u64(id.value());
  signed_part.blob(body);
  signed_part.u32(recipient_cert.node.value());
  const Bytes sig = sender.sign(signed_part.bytes());

  Writer inner(48 + body.size() + sig.size());
  inner.u32(kInnerMagic);
  inner.u32(sender.node().value());
  inner.u64(id.value());
  inner.blob(body);
  inner.blob(sig);

  SealedMessage m;
  m.dst = recipient_cert.node;
  m.box = crypto::seal(sender.suite(), rng, recipient_cert.public_key, inner.bytes());
  return m;
}

std::optional<OpenedMessage> open_message(const crypto::NodeIdentity& me,
                                          const SealedMessage& m, const Roster& roster) {
  if (m.dst != me.node()) return std::nullopt;  // sealed to someone else
  const Bytes plain = me.open_box(m.box);
  try {
    Reader r(plain);
    if (r.u32() != kInnerMagic) return std::nullopt;
    OpenedMessage out;
    out.src = NodeId(r.u32());
    out.id = MessageId(r.u64());
    out.body = r.blob();
    const Bytes sig = r.blob();

    Writer signed_part(32 + out.body.size());
    signed_part.u32(out.src.value());
    signed_part.u64(out.id.value());
    signed_part.blob(out.body);
    signed_part.u32(me.node().value());
    const auto* sender_cert = roster.find(out.src);
    out.authentic =
        sender_cert != nullptr && me.verify_from(*sender_cert, signed_part.bytes(), sig);
    return out;
  } catch (const DecodeError&) {
    return std::nullopt;  // garbled plaintext: not for us
  }
}

}  // namespace g2g::proto
