#include "g2g/proto/epidemic.hpp"

#include <vector>

namespace g2g::proto {

void EpidemicNode::generate(const SealedMessage& m) {
  const MessageHash h = m.hash();
  Entry e;
  e.msg = m;
  e.expires = env_.now() + config().delta1;
  e.bytes = m.wire_size();
  buffer_changed(static_cast<std::int64_t>(e.bytes));
  buffer_.emplace(h, std::move(e));
  seen_.insert(h);
  mine_.insert(h);
}

void EpidemicNode::run_contact(Session& s, EpidemicNode& x, EpidemicNode& y) {
  x.purge(s.now());
  y.purge(s.now());
  x.offer_all(s, y);
  y.offer_all(s, x);
}

void EpidemicNode::offer_all(Session& s, EpidemicNode& taker) {
  // A hoarder free-rides: it only spends transmit energy on its own traffic.
  const bool hoarding =
      behavior().kind == Behavior::Hoarder && deviates_with(taker.id());
  // Summary-vector exchange: one hash per carried message.
  s.transfer(*this, buffer_.size() * sizeof(MessageHash), obs::WireKind::SummaryVector);
  // Snapshot hashes first: receive() on the peer can trigger no mutation on
  // this node, but keep iteration robust anyway.
  std::vector<MessageHash> offered;
  offered.reserve(buffer_.size());
  for (const auto& [h, e] : buffer_) {
    if (hoarding && !mine_.contains(h)) continue;
    offered.push_back(h);
  }
  for (const MessageHash& h : offered) {
    if (s.exhausted()) break;  // contact too short to carry more
    const auto it = buffer_.find(h);
    if (it == buffer_.end()) continue;
    if (taker.seen_.contains(h)) continue;
    s.transfer(*this, it->second.bytes, obs::WireKind::Payload);
    taker.receive(s, *this, it->second.msg, it->second.expires);
  }
}

void EpidemicNode::receive(Session& s, EpidemicNode& giver, const SealedMessage& m,
                           TimePoint expires) {
  const MessageHash h = m.hash();
  seen_.insert(h);
  s.env().notify_relayed(h, giver.id(), id());

  if (m.dst == id()) {
    const auto opened = open_message(identity(), m, s.env().roster());
    count_verification();  // inner sender-signature check
    if (opened.has_value() && opened->authentic) s.env().notify_delivered(h, id());
    return;  // destinations consume; `seen_` suppresses re-reception
  }

  // A message dropper "uses the system to send and receive messages and
  // just drops every message it happens to relay" (Section V).
  if (behavior().kind == Behavior::Dropper && deviates_with(giver.id())) return;

  Entry e;
  e.msg = m;
  e.expires = expires;
  e.bytes = m.wire_size();
  buffer_changed(static_cast<std::int64_t>(e.bytes));
  buffer_.emplace(h, std::move(e));
  enforce_buffer_cap();
}

void EpidemicNode::enforce_buffer_cap() {
  const std::size_t cap = config().max_buffer_messages;
  if (cap == 0) return;
  while (buffer_.size() > cap) {
    // Evict the entry closest to expiry: it has the least forwarding value.
    auto victim = buffer_.begin();
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (it->second.expires < victim->second.expires) victim = it;
    }
    drop_entry(victim);
  }
}

void EpidemicNode::purge(TimePoint now) {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->second.expires <= now) {
      auto dead = it++;
      drop_entry(dead);
    } else {
      ++it;
    }
  }
}

void EpidemicNode::drop_entry(std::map<MessageHash, Entry>::iterator it) {
  buffer_changed(-static_cast<std::int64_t>(it->second.bytes));
  buffer_.erase(it);
}

}  // namespace g2g::proto
