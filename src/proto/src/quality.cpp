#include "g2g/proto/quality.hpp"

#include <algorithm>
#include <stdexcept>

namespace g2g::proto {

EncounterTable::EncounterTable(Duration frame_length) : frame_length_(frame_length) {
  if (frame_length <= Duration::zero()) throw std::invalid_argument("bad frame length");
}

void EncounterTable::record(NodeId peer, TimePoint t) {
  if (peer.value() >= encounters_.size()) encounters_.resize(peer.value() + 1);
  auto& v = encounters_[peer.value()];
  if (!v.empty() && t < v.back()) throw std::invalid_argument("non-monotone encounter time");
  v.push_back(t);
}

double EncounterTable::value_before(QualityKind kind, NodeId dst, TimePoint cutoff) const {
  if (dst.value() >= encounters_.size()) return min_quality(kind);
  const auto& v = encounters_[dst.value()];
  const auto it = std::lower_bound(v.begin(), v.end(), cutoff);
  const auto count = static_cast<std::size_t>(it - v.begin());
  switch (kind) {
    case QualityKind::DestinationFrequency:
      return static_cast<double>(count);
    case QualityKind::DestinationLastContact:
      return count == 0 ? kNeverMet : v[count - 1].to_seconds();
  }
  return 0.0;
}

double EncounterTable::current(QualityKind kind, NodeId dst) const {
  return value_before(kind, dst, TimePoint::max());
}

EncounterTable::Declared EncounterTable::declared(QualityKind kind, NodeId dst,
                                                  TimePoint now) const {
  const std::int64_t current_frame = frame_of(now);
  // Last completed frame is current_frame - 1; its end is current_frame * F.
  const std::int64_t frame = current_frame - 1;
  if (frame < 0) return Declared{min_quality(kind), -1};  // no completed frame yet
  const TimePoint cutoff = TimePoint(current_frame * frame_length_.count());
  return Declared{value_before(kind, dst, cutoff), frame};
}

std::optional<double> EncounterTable::value_at_frame(QualityKind kind, NodeId dst,
                                                     std::int64_t frame,
                                                     TimePoint now) const {
  const std::int64_t current_frame = frame_of(now);
  // Retention: only the two most recent *completed* frames are kept.
  if (frame < 0 || frame > current_frame - 1 || frame < current_frame - 2) {
    return std::nullopt;
  }
  const TimePoint cutoff = TimePoint((frame + 1) * frame_length_.count());
  return value_before(kind, dst, cutoff);
}

std::size_t EncounterTable::encounter_count(NodeId peer) const {
  if (peer.value() >= encounters_.size()) return 0;
  return encounters_[peer.value()].size();
}

}  // namespace g2g::proto
