#include "g2g/proto/g2g_epidemic.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "g2g/crypto/hmac.hpp"

namespace g2g::proto {

namespace {
Bytes random_seed(Rng& rng) {
  Writer w(32);
  for (int i = 0; i < 4; ++i) w.u64(rng.next());
  return std::move(w).take();
}
}  // namespace

void G2GEpidemicNode::generate(const SealedMessage& m) {
  const MessageHash h = m.hash();
  Hold hold;
  hold.msg = m;
  hold.has_msg = true;
  hold.msg_bytes = m.wire_size();
  hold.received = env_.now();
  hold.expires = env_.now() + config().delta1;
  hold.giver = id();
  hold.is_source = true;
  buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
  handled_.insert(h);
}

void G2GEpidemicNode::run_contact(Session& s, G2GEpidemicNode& x, G2GEpidemicNode& y) {
  x.purge(s.now());
  y.purge(s.now());
  // Test phases first: the source challenges its relays before new relays
  // are negotiated.
  x.run_tests(s, y);
  y.run_tests(s, x);
  x.giver_pass(s, y);
  y.giver_pass(s, x);
}

void G2GEpidemicNode::purge(TimePoint now) {
  // Delta2 after receipt: every trace of the message may be discarded.
  for (auto it = hold_.begin(); it != hold_.end();) {
    Hold& hold = it->second;
    const bool expired = now > hold.received + config().delta2;
    // A source keeps its bookkeeping while tests of its relays are pending.
    const bool testing = hold.is_source &&
                         std::any_of(tests_.begin(), tests_.end(), [&](const PendingTest& t) {
                           return t.h == it->first && !t.done &&
                                  now <= t.relayed_at + config().delta2;
                         });
    if (expired && !testing) {
      if (hold.has_msg) drop_payload(hold);
      // Message and PoR state is discarded at Delta2; the 32-byte message
      // hash stays in `handled_` so the node never pays for re-reception.
      it = hold_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(tests_, [&](const PendingTest& t) {
    return t.done || now > t.relayed_at + config().delta2;
  });
}

void G2GEpidemicNode::drop_payload(Hold& hold) {
  buffer_changed(-static_cast<std::int64_t>(hold.msg_bytes));
  hold.has_msg = false;
}

void G2GEpidemicNode::giver_pass(Session& s, G2GEpidemicNode& taker) {
  const TimePoint now = s.now();
  const std::size_t sig = identity().suite().signature_size();

  std::vector<MessageHash> candidates;
  for (const auto& [h, hold] : hold_) {
    if (!hold.has_msg || hold.is_destination) continue;
    // A hoarder never relays other people's messages — it will answer the
    // storage test instead (and pay the heavy HMAC for it).
    if (behavior().kind == Behavior::Hoarder && !hold.is_source &&
        deviates_with(hold.giver)) {
      continue;
    }
    const std::size_t fanout =
        hold.is_source ? config().source_fanout : config().relay_fanout;
    if (hold.pors.size() >= fanout) continue;
    if (now > hold.expires) continue;  // stop seeking relays (Delta1 / TTL)
    candidates.push_back(h);
  }

  for (const MessageHash& h : candidates) {
    if (s.exhausted()) break;  // the contact cannot carry another handshake
    const auto it = hold_.find(h);
    if (it == hold_.end() || !it->second.has_msg) continue;
    Hold& hold = it->second;
    const std::uint64_t ref = env_.msg_ref(h);

    // Step 1: RELAY_RQST.
    counters().handshakes_started->add();
    trace_event(obs::EventKind::HsRelayRqst, taker.id(), ref);
    s.signed_control(*this, wire::relay_rqst(sig), obs::WireKind::RelayRqst);
    // Steps 2/3/4: the taker answers, the message travels, the PoR returns.
    const auto por = taker.accept_relay(s, *this, h);
    if (!por.has_value()) {
      counters().handshakes_declined->add();
      continue;  // taker declined (already handled)
    }

    // Step 3 accounting: E_k(m).
    trace_event(obs::EventKind::HsRelayData, taker.id(), ref,
                static_cast<std::int64_t>(hold.msg_bytes));
    s.signed_control(*this, wire::relay_data(sig, hold.msg_bytes),
                     obs::WireKind::RelayData);

    // Verify the PoR before revealing the key.
    count_verification();
    const auto* taker_cert = env_.roster().find(taker.id());
    const bool por_ok =
        taker_cert != nullptr && por->h == h && por->giver == id() &&
        por->taker == taker.id() &&
        identity().suite().verify(taker_cert->public_key, por->signed_payload(),
                                  por->taker_signature);
    trace_event(obs::EventKind::PorVerified, taker.id(), ref, por_ok ? 1 : 0);
    if (!por_ok) {
      counters().handshakes_aborted->add();
      continue;  // never happens with conforming takers
    }
    counters().pors_verified->add();

    hold.pors.push_back(*por);
    // Step 5: KEY.
    counters().handshakes_completed->add();
    trace_event(obs::EventKind::HsKeyReveal, taker.id(), ref);
    s.signed_control(*this, wire::key_reveal(sig), obs::WireKind::KeyReveal);
    env_.notify_relayed(h, id(), taker.id());
    taker.complete_relay(s, *this, hold.msg, hold.expires);

    if (hold.is_source) {
      tests_.push_back(PendingTest{h, taker.id(), now, *por, false});
    }
    if (!hold.is_source && hold.pors.size() >= config().relay_fanout) {
      // Forwarding duty fulfilled: the payload may go, the PoRs stay.
      drop_payload(hold);
    }
  }
}

std::optional<ProofOfRelay> G2GEpidemicNode::accept_relay(Session& s, G2GEpidemicNode& giver,
                                                          const MessageHash& h) {
  const std::size_t sig = identity().suite().signature_size();
  const std::uint64_t ref = env_.msg_ref(h);
  if (handled_.contains(h)) {
    // "node B informs S that it should not be chosen as a relay" — and it
    // answers honestly, because it cannot know whether it is the destination.
    trace_event(obs::EventKind::HsRelayOk, giver.id(), ref, 0);
    s.signed_control(*this, wire::relay_ok(sig), obs::WireKind::RelayOk);
    return std::nullopt;
  }
  // Step 2: RELAY_OK.
  trace_event(obs::EventKind::HsRelayOk, giver.id(), ref, 1);
  s.signed_control(*this, wire::relay_ok(sig), obs::WireKind::RelayOk);

  // Step 4: sign the PoR. (The encrypted message of step 3 has arrived; the
  // giver accounts its bytes.)
  ProofOfRelay por;
  por.h = h;
  por.giver = giver.id();
  por.taker = id();
  por.at = s.now();
  count_signature();
  por.taker_signature = identity().sign(por.signed_payload());
  counters().pors_issued->add();
  trace_event(obs::EventKind::HsPorSigned, giver.id(), ref);
  trace_event(obs::EventKind::PorIssued, giver.id(), ref);
  s.transfer(*this, por.wire_size(), obs::WireKind::Por);
  return por;
}

void G2GEpidemicNode::complete_relay(Session& s, G2GEpidemicNode& giver,
                                     const SealedMessage& m, TimePoint expires) {
  const MessageHash h = m.hash();
  handled_.insert(h);

  Hold hold;
  hold.msg = m;
  hold.msg_bytes = m.wire_size();
  hold.received = s.now();
  // Global TTL: the expiry travels with the message; per-holder otherwise.
  hold.expires = config().global_ttl ? expires : s.now() + config().delta1;
  hold.giver = giver.id();

  if (m.dst == id()) {
    const auto opened = open_message(identity(), m, s.env().roster());
    count_verification();
    if (opened.has_value() && opened->authentic) s.env().notify_delivered(h, id());
    // The destination keeps the message (it must still answer a possible
    // storage test — it cannot reveal that it is the destination by design).
    hold.is_destination = true;
    hold.has_msg = true;
    buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
    hold_.emplace(h, std::move(hold));
    return;
  }

  if (behavior().kind == Behavior::Dropper && deviates_with(giver.id())) {
    // Drop right after the relay phase: no payload is stored; only the
    // handled-set entry remains so the node declines re-reception.
    hold.has_msg = false;
    hold_.emplace(h, std::move(hold));
    return;
  }

  hold.has_msg = true;
  buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
}

void G2GEpidemicNode::run_tests(Session& s, G2GEpidemicNode& peer) {
  const TimePoint now = s.now();
  const std::size_t sig = identity().suite().signature_size();

  // Two phases: the challenge loop queues every storage-proof chain of this
  // contact — the relay's proof and the source's recompute — into one
  // HeavyHmacBatch, then the batch runs all chains in parallel SHA-256 lanes
  // and the outcomes (pass / PoM) resolve afterwards. Deferring is invisible
  // to the protocol: nothing between the challenge and its resolution reads
  // the blacklist or the PoM log, session byte accounting stays in challenge
  // order, and the digests are bit-identical to the eager path.
  crypto::HeavyHmacBatch batch;
  struct PendingStorageCheck {
    std::size_t peer_job;    // the relay's deferred proof
    std::size_t expect_job;  // the source's recompute of the same chain
    NodeId relay;
    std::uint64_t ref;
    ProofOfRelay por;  // evidence if the digests disagree
    TimePoint relayed_at;
  };
  std::vector<PendingStorageCheck> pending;

  for (PendingTest& t : tests_) {
    if (s.exhausted()) break;
    if (t.done || t.relay != peer.id()) continue;
    if (now < t.relayed_at + config().delta1) continue;  // not testable yet
    if (now > t.relayed_at + config().delta2) continue;  // window closed
    t.done = true;

    const std::uint64_t ref = env_.msg_ref(t.h);
    counters().tests_by_sender->add();
    const Bytes seed = random_seed(env_.rng());
    s.signed_control(*this, wire::por_rqst(sig), obs::WireKind::PorRqst);
    const TestResponse resp = peer.respond_test(s, t.h, seed, &batch);

    // Either two valid PoRs...
    if (resp.pors.size() >= config().relay_fanout) {
      // Audit the chain through one verify_batch call: structurally broken
      // PoRs are rejected up front, the rest go to the suite together (the
      // caching suite answers repeats from its memo and forwards only fresh
      // signatures inward). Verdicts, counters, and trace order are
      // identical to a per-PoR verify loop.
      std::vector<Bytes> payloads;
      std::vector<crypto::VerifyRequest> requests;
      std::vector<std::size_t> request_of(resp.pors.size(), SIZE_MAX);
      payloads.reserve(resp.pors.size());
      requests.reserve(resp.pors.size());
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        count_verification();
        const auto* cert = env_.roster().find(por.taker);
        if (por.h == t.h && por.giver == peer.id() && cert != nullptr) {
          request_of[i] = requests.size();
          payloads.push_back(por.signed_payload());
          requests.push_back({BytesView(cert->public_key), BytesView(payloads.back()),
                              BytesView(por.taker_signature)});
        }
      }
      const auto verdicts = std::make_unique<bool[]>(requests.size());
      identity().suite().verify_batch(
          std::span<const crypto::VerifyRequest>(requests.data(), requests.size()),
          verdicts.get());
      bool all_ok = true;
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        const bool ok = request_of[i] != SIZE_MAX && verdicts[request_of[i]];
        trace_event(obs::EventKind::PorVerified, por.taker, ref, ok ? 1 : 0);
        if (ok) counters().pors_verified->add();
        else all_ok = false;
      }
      if (all_ok) {
        counters().tests_passed->add();
        trace_event(obs::EventKind::TestBySender, peer.id(), ref, 1);
        continue;  // test passed: the relay showed its PoRs
      }
    }

    // ...or a storage proof the source can recompute (it still has m).
    if (resp.stored_hmac.has_value() || resp.stored_job.has_value()) {
      const auto it = hold_.find(t.h);
      if (it != hold_.end() && it->second.has_msg) {
        count_heavy_hmac();
        if (resp.stored_job.has_value()) {
          const std::size_t expect_job =
              batch.add(it->second.msg.encode(), Bytes(seed.begin(), seed.end()),
                        config().heavy_hmac_iterations);
          pending.push_back(PendingStorageCheck{*resp.stored_job, expect_job, peer.id(), ref,
                                                t.por, t.relayed_at});
          continue;  // outcome resolves after the batch runs
        }
        const crypto::Digest expect = crypto::heavy_hmac(
            it->second.msg.encode(), seed, config().heavy_hmac_iterations);
        if (crypto::digest_equal(expect, *resp.stored_hmac)) {
          counters().tests_passed->add();
          trace_event(obs::EventKind::TestBySender, peer.id(), ref, 2);
          continue;  // passed: the relay still stores the message
        }
      } else {
        trace_event(obs::EventKind::TestBySender, peer.id(), ref, 3);
        continue;  // source can no longer verify; give the benefit of the doubt
      }
    }

    // Failure: broadcastable proof of misbehaviour — the PoR the relay signed.
    counters().tests_failed->add();
    trace_event(obs::EventKind::TestBySender, peer.id(), ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = peer.id();
    pom.evidence_accepted = t.por;
    issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
              now - (t.relayed_at + config().delta1));
  }

  if (pending.empty()) return;
  const std::vector<crypto::Digest> digests = batch.run();
  for (const PendingStorageCheck& c : pending) {
    if (crypto::digest_equal(digests[c.expect_job], digests[c.peer_job])) {
      counters().tests_passed->add();
      trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 2);
      continue;
    }
    counters().tests_failed->add();
    trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = c.relay;
    pom.evidence_accepted = c.por;
    issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
              now - (c.relayed_at + config().delta1));
  }
}

G2GEpidemicNode::TestResponse G2GEpidemicNode::respond_test(Session& s, const MessageHash& h,
                                                            BytesView seed,
                                                            crypto::HeavyHmacBatch* defer) {
  TestResponse resp;
  const auto it = hold_.find(h);
  if (it == hold_.end()) {
    // Nothing to show: a dropper past Delta2, or a dropper that kept no state.
    return resp;
  }
  const Hold& hold = it->second;
  if (hold.pors.size() >= config().relay_fanout) {
    resp.pors = hold.pors;
    for (const auto& por : resp.pors) s.transfer(*this, por.wire_size(), obs::WireKind::Por);
    return resp;
  }
  if (hold.has_msg) {
    count_heavy_hmac();
    counters().storage_challenges->add();
    trace_event(obs::EventKind::StorageChallenge, s.peer_of(*this).id(),
                env_.msg_ref(h), config().heavy_hmac_iterations);
    if (defer != nullptr) {
      resp.stored_job = defer->add(hold.msg.encode(), Bytes(seed.begin(), seed.end()),
                                   config().heavy_hmac_iterations);
    } else {
      resp.stored_hmac =
          crypto::heavy_hmac(hold.msg.encode(), seed, config().heavy_hmac_iterations);
    }
    resp.pors = hold.pors;  // show what we have (0 or 1)
    const std::size_t sig = identity().suite().signature_size();
    s.signed_control(*this, wire::stored_resp(sig), obs::WireKind::StoredResp);
    return resp;
  }
  return resp;  // dropper: no PoRs, no message
}

bool G2GEpidemicNode::stores_message(const MessageHash& h) const {
  const auto it = hold_.find(h);
  return it != hold_.end() && it->second.has_msg;
}

std::size_t G2GEpidemicNode::por_count(const MessageHash& h) const {
  const auto it = hold_.find(h);
  return it == hold_.end() ? 0 : it->second.pors.size();
}

std::size_t G2GEpidemicNode::pending_test_count() const {
  return static_cast<std::size_t>(
      std::count_if(tests_.begin(), tests_.end(), [](const PendingTest& t) { return !t.done; }));
}

}  // namespace g2g::proto
