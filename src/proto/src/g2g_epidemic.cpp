#include "g2g/proto/g2g_epidemic.hpp"

#include <span>
#include <utility>

#include "g2g/proto/relay/frames.hpp"

namespace g2g::proto {

std::optional<relay::HandshakeOutcome> G2GEpidemicNode::relay_attempt(
    Session& s, relay::RelayNode& taker, const MessageHash& h, relay::Hold& hold) {
  const std::size_t sig = identity().suite().signature_size();
  const std::uint64_t ref = env_.msg_ref(h);

  // Step 1: RELAY_RQST.
  counters().handshakes_started->add();
  trace_event(obs::EventKind::HsRelayRqst, taker.id(), ref);
  const BytesView rqst = arena_encode(s.arena(), relay::RelayRqstFrame{h});
  counters().frames_encoded->add();
  s.signed_control(*this, rqst.size() + sig, obs::WireKind::RelayRqst);
  // Steps 2/3/4: the taker answers, the message travels, the PoR returns.
  const auto por_wire = taker.handshake().answer_relay_rqst(s, *this, rqst);
  if (!por_wire.has_value()) {
    counters().handshakes_declined->add();
    return std::nullopt;  // taker declined (already handled)
  }
  const ProofOfRelayView por = ProofOfRelayView::decode(*por_wire);
  counters().frames_decoded->add();

  // Step 3 accounting: E_k(m). Encoded straight from the hold into the arena.
  const BytesView data = relay::arena_relay_data(s.arena(), h, hold.msg, {});
  counters().frames_encoded->add();
  trace_event(obs::EventKind::HsRelayData, taker.id(), ref,
              static_cast<std::int64_t>(hold.msg_bytes));
  s.signed_control(*this, data.size() + sig, obs::WireKind::RelayData);

  // Verify the PoR before revealing the key (signed payload built in the
  // arena; the signature is checked against the view in place).
  count_verification();
  const auto* taker_cert = env_.roster().find(taker.id());
  bool por_ok =
      taker_cert != nullptr && por.h == h && por.giver == id() && por.taker == taker.id();
  if (por_ok) {
    const std::span<std::uint8_t> payload = s.arena().alloc(por.signed_payload_size());
    SpanWriter pw(payload);
    por.signed_payload_into(pw);
    pw.expect_full();
    por_ok = identity().suite().verify(taker_cert->public_key,
                                       BytesView(payload.data(), payload.size()),
                                       por.taker_signature);
  }
  trace_event(obs::EventKind::PorVerified, taker.id(), ref, por_ok ? 1 : 0);
  if (!por_ok) {
    counters().handshakes_aborted->add();
    return std::nullopt;  // never happens with conforming takers
  }
  counters().pors_verified->add();
  return relay::HandshakeOutcome{por.to_owned(), data, false, 0.0};
}

}  // namespace g2g::proto
