#include "g2g/proto/relay/handshake.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/relay/relay_node.hpp"

namespace g2g::proto::relay {

void HandshakeEngine::generate(const SealedMessage& m, double fm) {
  const MessageHash h = m.hash();
  Hold hold;
  hold.msg = m;
  hold.has_msg = true;
  hold.msg_bytes = m.wire_size();
  hold.fm = fm;
  hold.received = host_.env_.now();
  hold.expires = host_.env_.now() + host_.config().delta1;
  hold.giver = host_.id();
  hold.is_source = true;
  host_.buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
  handled_.insert(h);
}

void HandshakeEngine::purge(TimePoint now) {
  std::vector<PendingTest>& tests = host_.audit().tests();
  // Delta2 after receipt: every trace of the message may be discarded.
  for (auto it = hold_.begin(); it != hold_.end();) {
    Hold& hold = it->second;
    const bool expired = now > hold.received + host_.config().delta2;
    // A source keeps its bookkeeping while tests of its relays are pending.
    const bool testing = hold.is_source &&
                         std::any_of(tests.begin(), tests.end(), [&](const PendingTest& t) {
                           return t.h == it->first && !t.done &&
                                  now <= t.relayed_at + host_.config().delta2;
                         });
    if (expired && !testing) {
      if (hold.has_msg) drop_payload(hold);
      // Message and PoR state is discarded at Delta2; the 32-byte message
      // hash stays in `handled_` so the node never pays for re-reception.
      host_.on_hold_erased(it->first);
      it = hold_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(tests, [&](const PendingTest& t) {
    return t.done || now > t.relayed_at + host_.config().delta2;
  });
}

void HandshakeEngine::drop_payload(Hold& hold) {
  host_.buffer_changed(-static_cast<std::int64_t>(hold.msg_bytes));
  hold.has_msg = false;
}

void HandshakeEngine::giver_pass(Session& s, RelayNode& taker) {
  const TimePoint now = s.now();
  const std::size_t sig = host_.identity().suite().signature_size();

  std::vector<MessageHash> candidates;
  for (const auto& [h, hold] : hold_) {
    if (!hold.has_msg || hold.is_destination) continue;
    // A hoarder never relays other people's messages — it will answer the
    // storage test instead (and pay the heavy HMAC for it).
    if (host_.behavior().kind == Behavior::Hoarder && !hold.is_source &&
        host_.deviates_with(hold.giver)) {
      continue;
    }
    const std::size_t fanout =
        hold.is_source ? host_.config().source_fanout : host_.config().relay_fanout;
    if (hold.pors.size() >= fanout) continue;
    if (now > hold.expires) continue;  // stop seeking relays (Delta1 / TTL)
    candidates.push_back(h);
  }

  obs::Tracer& tracer = host_.env_.obs().tracer;
  for (const MessageHash& h : candidates) {
    if (s.exhausted()) break;  // the contact cannot carry another handshake
    // One arena generation per handshake attempt: every frame and payload
    // encoded below lives until this reset at the start of the next attempt.
    s.arena().reset();
    const auto it = hold_.find(h);
    if (it == hold_.end() || !it->second.has_msg) continue;
    Hold& hold = it->second;

    // One relay_session span per handshake attempt, child of the message
    // span; closed 0 on decline/abort, 1 when the relay completes.
    const std::uint64_t ref = host_.env_.msg_ref(h);
    const std::uint64_t span = tracer.open_span(
        now, "relay_session", tracer.message_span(ref), host_.id(), taker.id(), ref);

    // Steps 1-4: policy-specific (epidemic offer vs. delegation negotiation).
    auto out = host_.relay_attempt(s, taker, h, hold);
    if (!out.has_value()) {
      tracer.close_span(now, span, 0);
      continue;  // declined or aborted; accounting done
    }

    hold.pors.push_back(out->por);
    // Step 5: KEY.
    host_.counters().handshakes_completed->add();
    host_.trace_event(obs::EventKind::HsKeyReveal, taker.id(), ref);
    KeyRevealFrame key;
    key.h = h;
    const BytesView key_bytes = arena_encode(s.arena(), key);
    host_.counters().frames_encoded->add();
    s.signed_control(host_, key_bytes.size() + sig, obs::WireKind::KeyReveal);
    host_.env_.notify_relayed(h, host_.id(), taker.id());
    if (out->update_fm) hold.fm = out->new_fm;
    taker.handshake().complete_relay(s, host_, out->data_frame, key_bytes, hold.fm,
                                     hold.expires);

    if (hold.is_source) {
      host_.audit().arm(PendingTest{h, taker.id(), now, out->por, false});
    }
    if (!hold.is_source && hold.pors.size() >= host_.config().relay_fanout) {
      // Forwarding duty fulfilled: the payload may go, the PoRs stay.
      drop_payload(hold);
    }
    tracer.close_span(now, span, 1);
  }
}

std::optional<BytesView> HandshakeEngine::answer_relay_rqst(Session& s, RelayNode& giver,
                                                            BytesView rqst_frame) {
  const RelayRqstFrame rq = RelayRqstFrame::decode(rqst_frame);
  host_.counters().frames_decoded->add();
  const std::size_t sig = host_.identity().suite().signature_size();
  const std::uint64_t ref = host_.env_.msg_ref(rq.h);
  if (handled_.contains(rq.h)) {
    // "node B informs S that it should not be chosen as a relay" — and it
    // answers honestly, because it cannot know whether it is the destination.
    host_.trace_event(obs::EventKind::HsRelayOk, giver.id(), ref, 0);
    const BytesView decline = arena_encode(s.arena(), RelayOkFrame{rq.h, false});
    host_.counters().frames_encoded->add();
    s.signed_control(host_, decline.size() + sig, obs::WireKind::RelayOk);
    return std::nullopt;
  }
  // Step 2: RELAY_OK.
  host_.trace_event(obs::EventKind::HsRelayOk, giver.id(), ref, 1);
  const BytesView ok = arena_encode(s.arena(), RelayOkFrame{rq.h, true});
  host_.counters().frames_encoded->add();
  s.signed_control(host_, ok.size() + sig, obs::WireKind::RelayOk);

  // Step 4: sign the PoR. (The encrypted message of step 3 has arrived; the
  // giver accounts its bytes.)
  ProofOfRelay por;
  por.h = rq.h;
  por.giver = giver.id();
  por.taker = host_.id();
  por.at = s.now();
  return countersign(s, giver, std::move(por));
}

BytesView HandshakeEngine::countersign(Session& s, RelayNode& giver, ProofOfRelay por) {
  host_.count_signature();
  // The signed payload is built in the arena; the signature it produces is
  // owned by the PoR (it outlives the attempt inside Holds and PoMs).
  Arena& arena = s.arena();
  const std::span<std::uint8_t> payload = arena.alloc(por.signed_payload_size());
  SpanWriter pw(payload);
  por.signed_payload_into(pw);
  pw.expect_full();
  por.taker_signature = host_.identity().sign(BytesView(payload.data(), payload.size()));
  host_.counters().pors_issued->add();
  const std::uint64_t ref = host_.env_.msg_ref(por.h);
  host_.trace_event(obs::EventKind::HsPorSigned, giver.id(), ref);
  host_.trace_event(obs::EventKind::PorIssued, giver.id(), ref);
  s.transfer(host_, por.wire_size(), obs::WireKind::Por);
  return arena_encode(arena, por);
}

void HandshakeEngine::complete_relay(Session& s, RelayNode& giver, BytesView data_frame,
                                     BytesView key_frame, double new_fm, TimePoint expires) {
  // In-place decode: the message and attachments are read from the frame
  // bytes through views; only what the Hold must own is materialized.
  const RelayDataFrameView data = RelayDataFrameView::decode(data_frame);
  const KeyRevealFrame key = KeyRevealFrame::decode(key_frame);
  host_.counters().frames_decoded->add(2);
  (void)key;  // the box seal emulates E_k; see KeyRevealFrame
  // H(m) over the message's wire bytes as they arrived — no re-encode.
  const MessageHash h = data.msg.hash();
  handled_.insert(h);

  Hold hold;
  hold.msg = data.msg.to_owned();
  hold.msg_bytes = data.msg.wire_size();
  hold.fm = new_fm;
  hold.received = s.now();
  // Global TTL: the expiry travels with the message; per-holder otherwise.
  hold.expires = host_.config().global_ttl ? expires : s.now() + host_.config().delta1;
  hold.giver = giver.id();
  hold.attachments = data.decode_attachments();

  if (hold.msg.dst == host_.id()) {
    const auto opened = open_message(host_.identity(), hold.msg, s.env().roster());
    host_.count_verification();
    if (opened.has_value() && opened->authentic) s.env().notify_delivered(h, host_.id());
    host_.on_delivered(s, hold.attachments);  // test by the destination
    // The destination keeps the message (it must still answer a possible
    // storage test — it cannot reveal that it is the destination by design).
    hold.is_destination = true;
    hold.has_msg = true;
    host_.buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
    hold_.emplace(h, std::move(hold));
    return;
  }

  if (host_.behavior().kind == Behavior::Dropper && host_.deviates_with(giver.id())) {
    // Drop right after the relay phase: no payload is stored; only the
    // handled-set entry remains so the node declines re-reception.
    hold.has_msg = false;
    hold_.emplace(h, std::move(hold));
    return;
  }

  hold.has_msg = true;
  host_.buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
}

}  // namespace g2g::proto::relay
