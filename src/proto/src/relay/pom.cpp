#include "g2g/proto/relay/pom.hpp"

#include <memory>
#include <span>
#include <utility>

#include "g2g/obs/context.hpp"
#include "g2g/proto/node.hpp"

namespace g2g::proto::relay {

void PomGossipBatch::collect(ProtocolNode& from, ProtocolNode& to) {
  // Snapshot semantics match the sequential pass: gossip only appends to the
  // *receiver's* ledger, and anything the receiver learns mid-session is a
  // PoM the other side already blacklists, so the pre-session snapshot of
  // `from` transfers exactly the same set.
  std::set<NodeId>& learned = spec_blacklist_[&to];
  for (const ProofOfMisbehavior& pom : from.known_poms()) {
    if (to.blacklisted(pom.culprit)) continue;  // peer already knows
    if (learned.contains(pom.culprit)) continue;  // would learn it this session
    store_.push_back(pom);
    items_.push_back(Item{&from, &to, &store_.back()});
    // A receiver never blacklists itself, so a PoM naming it does not
    // suppress later PoMs (mirrors learn_pom's self-culprit early-out).
    if (pom.culprit != to.id()) learned.insert(pom.culprit);
  }
}

bool PomGossipBatch::verify(const crypto::Suite& suite, const Roster& roster,
                            obs::ProtocolCounters& counters) {
  struct Group {
    bool structural;
    std::size_t first;  ///< range of this PoM's requests in `requests`
    std::size_t count;
    bool sig_ok = true;
  };
  std::map<Bytes, std::size_t> groups;  // canonical encoding -> group index
  std::vector<Group> group_info;
  std::vector<std::size_t> item_group(items_.size(), 0);
  std::deque<Bytes> payloads;
  std::vector<crypto::VerifyRequest> requests;

  for (std::size_t i = 0; i < items_.size(); ++i) {
    const ProofOfMisbehavior& pom = *items_[i].pom;
    const auto [it, inserted] = groups.try_emplace(pom.encode(), group_info.size());
    if (inserted) {
      const std::size_t first = requests.size();
      const bool structural = pom_collect_verification(roster, pom, payloads, requests);
      if (!structural) requests.resize(first);  // drop a partial collect
      group_info.push_back(Group{structural, first, requests.size() - first});
    } else {
      counters.pom_gossip_dup->add();
    }
    item_group[i] = it->second;
  }

  if (!requests.empty()) {
    const auto verdicts = std::make_unique<bool[]>(requests.size());
    suite.verify_batch(
        std::span<const crypto::VerifyRequest>(requests.data(), requests.size()),
        verdicts.get());
    for (Group& g : group_info) {
      for (std::size_t r = g.first; r < g.first + g.count; ++r) {
        if (!verdicts[r]) g.sig_ok = false;
      }
    }
  }
  counters.pom_batch_verified->add(group_info.size());

  bool all_ok = true;
  item_ok_.assign(items_.size(), 0);
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const Group& g = group_info[item_group[i]];
    item_ok_[i] = (g.structural && g.sig_ok) ? 1 : 0;
    // A PoM naming the receiver itself is never judged (learn_pom discards
    // it before verification), so its verdict cannot force the fallback.
    if (item_ok_[i] == 0 && items_[i].pom->culprit != items_[i].to->id()) all_ok = false;
  }
  return all_ok;
}

void PomGossipBatch::apply(Session& s, obs::ObsContext& obs) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const Item& item = items_[i];
    const ProofOfMisbehavior& pom = *item.pom;
    s.transfer(*item.from, pom.wire_size(), obs::WireKind::Pom);
    obs.counters.poms_gossiped->add();
    if (obs.tracer.enabled()) {
      obs.tracer.emit({s.now(), obs::EventKind::PomGossip, item.from->id(), item.to->id(),
                       pom.culprit.value(), 0});
    }
    (void)item.to->learn_pom_preverified(pom, item_ok_[i] != 0);
  }
}

}  // namespace g2g::proto::relay
