#include "g2g/proto/relay/audit.hpp"

#include <algorithm>
#include <memory>
#include <span>

#include "g2g/proto/relay/frames.hpp"
#include "g2g/proto/relay/relay_node.hpp"

namespace g2g::proto::relay {

void AuditEngine::run(Session& s, RelayNode& peer) {
  const TimePoint now = s.now();
  const std::size_t sig = host_.identity().suite().signature_size();

  // Two phases: the challenge loop queues every storage-proof chain of this
  // contact — the relay's proof and the source's recompute — into one
  // HeavyHmacBatch, then the batch runs all chains in parallel SHA-256 lanes
  // and the outcomes (pass / PoM) resolve afterwards. Deferring is invisible
  // to the protocol: nothing between the challenge and its resolution reads
  // the blacklist or the PoM log, session byte accounting stays in challenge
  // order, and the digests are bit-identical to the eager path.
  crypto::HeavyHmacBatch batch;
  struct PendingStorageCheck {
    std::size_t peer_job;    // the relay's deferred proof
    std::size_t expect_job;  // the source's recompute of the same chain
    NodeId relay;
    std::uint64_t ref;
    ProofOfRelay por;  // evidence if the digests disagree
    TimePoint relayed_at;
    std::uint64_t span;  // audit_round span, closed when the batch resolves
  };
  std::vector<PendingStorageCheck> pending;
  obs::Tracer& tracer = host_.env_.obs().tracer;

  for (PendingTest& t : tests_) {
    if (s.exhausted()) break;
    if (t.done || t.relay != peer.id()) continue;
    if (now < t.relayed_at + host_.config().delta1) continue;  // not testable yet
    if (now > t.relayed_at + host_.config().delta2) continue;  // window closed
    t.done = true;
    // One arena generation per challenge: frames and signed payloads encoded
    // below live until this reset at the start of the next challenge.
    s.arena().reset();

    NodeId real_dst = NodeId::invalid();
    if (!host_.begin_test(t, real_dst)) continue;  // policy record gone

    const std::uint64_t ref = host_.env_.msg_ref(t.h);
    host_.counters().tests_by_sender->add();
    // One audit_round span per test-by-sender challenge, child of the message
    // span; the close value mirrors the TestBySender event (0 fail, 1 PoRs
    // ok, 2 storage proof ok, 3 inconclusive).
    const std::uint64_t span = tracer.open_span(
        now, "audit_round", tracer.message_span(ref), host_.id(), peer.id(), ref);
    // The challenge crosses the session as a POR_RQST frame carrying a fresh
    // 32-byte seed; the responder answers from the decoded bytes.
    PorRqstFrame challenge;
    challenge.h = t.h;
    // Four little-endian rng words fill the seed in place (byte-identical to
    // the former Writer-built buffer).
    for (std::size_t i = 0; i < 4; ++i) {
      const std::uint64_t word = host_.env_.rng().next();
      for (std::size_t j = 0; j < 8; ++j) {
        challenge.seed[i * 8 + j] = static_cast<std::uint8_t>(word >> (8 * j));
      }
    }
    const BytesView challenge_bytes = arena_encode(s.arena(), challenge);
    host_.counters().frames_encoded->add();
    s.signed_control(host_, challenge_bytes.size() + sig, obs::WireKind::PorRqst);
    const PorRqstFrame rq = PorRqstFrame::decode(challenge_bytes);
    peer.counters().frames_decoded->add();
    const BytesView seed(rq.seed.data(), rq.seed.size());
    const TestResponse resp = peer.audit().respond(s, rq.h, seed, &batch);

    if (!host_.screen_pors(t, resp.pors, real_dst, now)) {
      // The policy screen failed the test outright (Delegation: the chain
      // check detected a cheat and issued the PoM already).
      host_.counters().tests_failed->add();
      host_.trace_event(obs::EventKind::TestBySender, peer.id(), ref, 0);
      tracer.close_span(now, span, 0);
      continue;
    }

    // Either two valid PoRs...
    if (resp.pors.size() >= host_.config().relay_fanout) {
      // Audit the chain through one verify_batch call: structurally broken
      // PoRs are rejected up front, the rest go to the suite together (the
      // caching suite answers repeats from its memo and forwards only fresh
      // signatures inward). Verdicts, counters, and trace order are
      // identical to a per-PoR verify loop. Signed payloads are built in the
      // arena and stay valid through the batch call (no reset until the next
      // challenge).
      std::vector<crypto::VerifyRequest> requests;
      std::vector<std::size_t> request_of(resp.pors.size(), SIZE_MAX);
      requests.reserve(resp.pors.size());
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        host_.count_verification();
        const auto* cert = host_.env_.roster().find(por.taker);
        if (por.h == t.h && por.giver == peer.id() && cert != nullptr) {
          request_of[i] = requests.size();
          const std::span<std::uint8_t> payload = s.arena().alloc(por.signed_payload_size());
          SpanWriter pw(payload);
          por.signed_payload_into(pw);
          pw.expect_full();
          requests.push_back({BytesView(cert->public_key),
                              BytesView(payload.data(), payload.size()),
                              BytesView(por.taker_signature)});
        }
      }
      const auto verdicts = std::make_unique<bool[]>(requests.size());
      host_.identity().suite().verify_batch(
          std::span<const crypto::VerifyRequest>(requests.data(), requests.size()),
          verdicts.get());
      bool all_ok = true;
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        const bool ok = request_of[i] != SIZE_MAX && verdicts[request_of[i]];
        host_.trace_event(obs::EventKind::PorVerified, por.taker, ref, ok ? 1 : 0);
        if (ok) host_.counters().pors_verified->add();
        else all_ok = false;
      }
      if (all_ok) {
        host_.counters().tests_passed->add();
        host_.trace_event(obs::EventKind::TestBySender, peer.id(), ref, 1);
        tracer.close_span(now, span, 1);
        continue;  // test passed: the relay showed its PoRs
      }
    }

    // ...or a storage proof the source can recompute (it still has m).
    if (resp.stored_hmac.has_value() || resp.stored_job.has_value()) {
      auto& holds = host_.handshake().holds();
      const auto it = holds.find(t.h);
      if (it != holds.end() && it->second.has_msg) {
        host_.count_heavy_hmac();
        if (resp.stored_job.has_value()) {
          // The batch copies both inputs into its own arena, so the encode can
          // live in the session arena's current generation.
          const std::size_t expect_job =
              batch.add(arena_encode(s.arena(), it->second.msg), seed,
                        host_.config().heavy_hmac_iterations);
          pending.push_back(PendingStorageCheck{*resp.stored_job, expect_job, peer.id(), ref,
                                                t.por, t.relayed_at, span});
          continue;  // outcome resolves after the batch runs
        }
        const crypto::Digest expect = crypto::heavy_hmac(
            arena_encode(s.arena(), it->second.msg), seed, host_.config().heavy_hmac_iterations);
        if (crypto::digest_equal(expect, *resp.stored_hmac)) {
          host_.counters().tests_passed->add();
          host_.trace_event(obs::EventKind::TestBySender, peer.id(), ref, 2);
          tracer.close_span(now, span, 2);
          continue;  // passed: the relay still stores the message
        }
      } else {
        host_.trace_event(obs::EventKind::TestBySender, peer.id(), ref, 3);
        tracer.close_span(now, span, 3);
        continue;  // source can no longer verify; give the benefit of the doubt
      }
    }

    // Failure: broadcastable proof of misbehaviour — the PoR the relay signed.
    host_.counters().tests_failed->add();
    host_.trace_event(obs::EventKind::TestBySender, peer.id(), ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = peer.id();
    pom.evidence_accepted = t.por;
    host_.issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
                    now - (t.relayed_at + host_.config().delta1));
    tracer.close_span(now, span, 0);
  }

  if (pending.empty()) return;
  const std::vector<crypto::Digest> digests = batch.run();
  for (const PendingStorageCheck& c : pending) {
    if (crypto::digest_equal(digests[c.expect_job], digests[c.peer_job])) {
      host_.counters().tests_passed->add();
      host_.trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 2);
      tracer.close_span(now, c.span, 2);
      continue;
    }
    host_.counters().tests_failed->add();
    host_.trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = c.relay;
    pom.evidence_accepted = c.por;
    host_.issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
                    now - (c.relayed_at + host_.config().delta1));
    tracer.close_span(now, c.span, 0);
  }
}

TestResponse AuditEngine::respond(Session& s, const MessageHash& h, BytesView seed,
                                  crypto::HeavyHmacBatch* defer) {
  TestResponse resp;
  auto& holds = host_.handshake().holds();
  const auto it = holds.find(h);
  if (it == holds.end()) {
    // Nothing to show: a dropper past Delta2, or a dropper that kept no state.
    return resp;
  }
  const Hold& hold = it->second;

  if (mode_ == PresentMode::PorsThenStorage) {
    // Delegation: every PoR travels (the sender chain-checks them); a storage
    // proof covers the shortfall.
    resp.pors = hold.pors;
    for (const auto& por : resp.pors) s.transfer(host_, por.wire_size(), obs::WireKind::Por);
    if (hold.pors.size() < host_.config().relay_fanout && hold.has_msg) {
      storage_proof(s, hold, h, seed, resp, defer);
    }
    return resp;
  }

  // Epidemic: a full PoR set settles the test by itself.
  if (hold.pors.size() >= host_.config().relay_fanout) {
    resp.pors = hold.pors;
    for (const auto& por : resp.pors) s.transfer(host_, por.wire_size(), obs::WireKind::Por);
    return resp;
  }
  if (hold.has_msg) {
    resp.pors = hold.pors;  // show what we have (0 or 1)
    storage_proof(s, hold, h, seed, resp, defer);
    return resp;
  }
  return resp;  // dropper: no PoRs, no message
}

void AuditEngine::storage_proof(Session& s, const Hold& hold, const MessageHash& h,
                                BytesView seed, TestResponse& resp,
                                crypto::HeavyHmacBatch* defer) {
  host_.count_heavy_hmac();
  host_.counters().storage_challenges->add();
  host_.trace_event(obs::EventKind::StorageChallenge, s.peer_of(host_).id(),
                    host_.env_.msg_ref(h), host_.config().heavy_hmac_iterations);
  if (defer != nullptr) {
    // The batch copies both inputs into its own arena, so the encode can live
    // in the session arena's current generation.
    resp.stored_job = defer->add(arena_encode(s.arena(), hold.msg),
                                 seed, host_.config().heavy_hmac_iterations);
    // The digest is not known yet; the STORED_RESP frame is accounted at its
    // canonical size either way (the challenger resolves it from the batch).
    host_.counters().frames_encoded->add();
  } else {
    // Eager path: the digest rides a real STORED_RESP frame round trip; the
    // message encoding and the frame live in the challenge's arena span.
    StoredRespFrame frame;
    frame.h = h;
    std::copy(seed.begin(), seed.end(), frame.seed.begin());
    frame.digest = crypto::heavy_hmac(arena_encode(s.arena(), hold.msg), seed,
                                      host_.config().heavy_hmac_iterations);
    const BytesView frame_bytes = arena_encode(s.arena(), frame);
    host_.counters().frames_encoded->add();
    resp.stored_hmac = StoredRespFrame::decode(frame_bytes).digest;
    static_cast<RelayNode&>(s.peer_of(host_)).counters().frames_decoded->add();
  }
  const std::size_t sig = host_.identity().suite().signature_size();
  s.signed_control(host_, StoredRespFrame::kWireBytes + sig, obs::WireKind::StoredResp);
}

std::size_t AuditEngine::pending_count() const {
  return static_cast<std::size_t>(
      std::count_if(tests_.begin(), tests_.end(), [](const PendingTest& t) { return !t.done; }));
}

}  // namespace g2g::proto::relay
