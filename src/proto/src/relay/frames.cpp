#include "g2g/proto/relay/frames.hpp"

namespace g2g::proto::relay {

namespace {

void put_tag(SpanWriter& w, FrameTag tag) { w.u8(static_cast<std::uint8_t>(tag)); }

FrameTag take_tag(Reader& r, FrameTag expected) {
  const std::uint8_t tag = r.u8();
  if (tag != static_cast<std::uint8_t>(expected)) throw DecodeError("bad frame tag");
  return expected;
}

void put_hash(SpanWriter& w, const MessageHash& h) { w.raw(BytesView(h.data(), h.size())); }

void take_hash(Reader& r, MessageHash& h) {
  const BytesView hv = r.raw(h.size());
  std::copy(hv.begin(), hv.end(), h.begin());
}

template <std::size_t N>
void take_array(Reader& r, std::array<std::uint8_t, N>& out) {
  const BytesView v = r.raw(N);
  std::copy(v.begin(), v.end(), out.begin());
}

void expect_done(const Reader& r) {
  if (!r.done()) throw DecodeError("trailing bytes after frame");
}

}  // namespace

std::size_t RelayRqstFrame::wire_size() const { return 1 + 32; }

void RelayRqstFrame::encode_into(SpanWriter& w) const {
  put_tag(w, FrameTag::RelayRqst);
  put_hash(w, h);
}

Bytes RelayRqstFrame::encode() const { return encode_exact(*this); }

RelayRqstFrame RelayRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::RelayRqst);
  RelayRqstFrame f;
  take_hash(r, f.h);
  expect_done(r);
  return f;
}

std::size_t RelayOkFrame::wire_size() const { return 1 + 32; }

void RelayOkFrame::encode_into(SpanWriter& w) const {
  put_tag(w, accept ? FrameTag::RelayOk : FrameTag::RelayDecline);
  put_hash(w, h);
}

Bytes RelayOkFrame::encode() const { return encode_exact(*this); }

RelayOkFrame RelayOkFrame::decode(BytesView b) {
  Reader r(b);
  const std::uint8_t tag = r.u8();
  RelayOkFrame f;
  if (tag == static_cast<std::uint8_t>(FrameTag::RelayOk)) {
    f.accept = true;
  } else if (tag == static_cast<std::uint8_t>(FrameTag::RelayDecline)) {
    f.accept = false;
  } else {
    throw DecodeError("bad frame tag");
  }
  take_hash(r, f.h);
  expect_done(r);
  return f;
}

std::size_t RelayDataFrame::wire_size() const {
  std::size_t inner = msg.wire_size();
  for (const auto& a : attachments) inner += a.wire_size();
  return 1 + 32 + 8 + inner;
}

void RelayDataFrame::encode_into(SpanWriter& w) const {
  relay_data_encode_into(w, h, msg, attachments);
}

Bytes RelayDataFrame::encode() const { return encode_exact(*this); }

RelayDataFrame RelayDataFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::RelayData);
  RelayDataFrame f;
  take_hash(r, f.h);
  const std::uint64_t len = r.u64();
  if (len > r.remaining()) throw DecodeError("truncated relay-data payload");
  Reader inner(r.raw(static_cast<std::size_t>(len)));
  f.msg = SealedMessage::decode(inner);
  while (!inner.done()) f.attachments.push_back(QualityDeclaration::decode(inner));
  expect_done(r);
  return f;
}

std::size_t relay_data_wire_size(const SealedMessage& msg,
                                 std::span<const QualityDeclaration> attachments) {
  std::size_t inner = msg.wire_size();
  for (const auto& a : attachments) inner += a.wire_size();
  return 1 + 32 + 8 + inner;
}

void relay_data_encode_into(SpanWriter& w, const MessageHash& h, const SealedMessage& msg,
                            std::span<const QualityDeclaration> attachments) {
  // Payload: the message's canonical bytes, then the attachments' canonical
  // bytes back to back (each QualityDeclaration encoding is self-delimiting).
  // Everything is written straight into the destination span — no
  // intermediate payload buffer.
  std::size_t inner = msg.wire_size();
  for (const auto& a : attachments) inner += a.wire_size();

  put_tag(w, FrameTag::RelayData);
  put_hash(w, h);
  w.u64(inner);
  msg.encode_into(w);
  for (const auto& a : attachments) a.encode_into(w);
}

BytesView arena_relay_data(Arena& arena, const MessageHash& h, const SealedMessage& msg,
                           std::span<const QualityDeclaration> attachments) {
  const std::span<std::uint8_t> out = arena.alloc(relay_data_wire_size(msg, attachments));
  SpanWriter w(out);
  relay_data_encode_into(w, h, msg, attachments);
  w.expect_full();
  return {out.data(), out.size()};
}

std::vector<QualityDeclaration> RelayDataFrameView::decode_attachments() const {
  std::vector<QualityDeclaration> out;
  Reader r(attachments_wire);
  while (!r.done()) out.push_back(QualityDeclaration::decode(r));
  return out;
}

RelayDataFrameView RelayDataFrameView::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::RelayData);
  RelayDataFrameView f;
  take_hash(r, f.h);
  const std::uint64_t len = r.u64();
  if (len > r.remaining()) throw DecodeError("truncated relay-data payload");
  const BytesView payload = r.raw(static_cast<std::size_t>(len));
  // The message view must span exactly the message's bytes; walk its fields
  // once to find the boundary, then bind the view to that sub-span.
  Reader probe(payload);
  (void)probe.u32();        // dst
  (void)probe.blob_view();  // ephemeral_public
  (void)probe.blob_view();  // ciphertext
  const std::size_t msg_len = payload.size() - probe.remaining();
  f.msg = SealedMessageView::decode(payload.subspan(0, msg_len));
  f.attachments_wire = payload.subspan(msg_len);
  expect_done(r);
  return f;
}

std::size_t KeyRevealFrame::wire_size() const { return 1 + 32 + 32; }

void KeyRevealFrame::encode_into(SpanWriter& w) const {
  put_tag(w, FrameTag::KeyReveal);
  put_hash(w, h);
  w.raw(BytesView(key.data(), key.size()));
}

Bytes KeyRevealFrame::encode() const { return encode_exact(*this); }

KeyRevealFrame KeyRevealFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::KeyReveal);
  KeyRevealFrame f;
  take_hash(r, f.h);
  take_array(r, f.key);
  expect_done(r);
  return f;
}

std::size_t PorRqstFrame::wire_size() const { return 1 + 32 + 32; }

void PorRqstFrame::encode_into(SpanWriter& w) const {
  put_tag(w, FrameTag::PorRqst);
  put_hash(w, h);
  w.raw(BytesView(seed.data(), seed.size()));
}

Bytes PorRqstFrame::encode() const { return encode_exact(*this); }

PorRqstFrame PorRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::PorRqst);
  PorRqstFrame f;
  take_hash(r, f.h);
  take_array(r, f.seed);
  expect_done(r);
  return f;
}

std::size_t StoredRespFrame::wire_size() const { return kWireBytes; }

void StoredRespFrame::encode_into(SpanWriter& w) const {
  put_tag(w, FrameTag::StoredResp);
  put_hash(w, h);
  w.raw(BytesView(seed.data(), seed.size()));
  w.raw(BytesView(digest.data(), digest.size()));
}

Bytes StoredRespFrame::encode() const { return encode_exact(*this); }

StoredRespFrame StoredRespFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::StoredResp);
  StoredRespFrame f;
  take_hash(r, f.h);
  take_array(r, f.seed);
  const BytesView dv = r.raw(f.digest.size());
  std::copy(dv.begin(), dv.end(), f.digest.begin());
  expect_done(r);
  return f;
}

std::size_t FqRqstFrame::wire_size() const { return 1 + 32 + 4; }

void FqRqstFrame::encode_into(SpanWriter& w) const {
  put_tag(w, FrameTag::FqRqst);
  put_hash(w, h);
  w.u32(dst.value());
}

Bytes FqRqstFrame::encode() const { return encode_exact(*this); }

FqRqstFrame FqRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::FqRqst);
  FqRqstFrame f;
  take_hash(r, f.h);
  f.dst = NodeId(r.u32());
  expect_done(r);
  return f;
}

}  // namespace g2g::proto::relay
