#include "g2g/proto/relay/frames.hpp"

namespace g2g::proto::relay {

namespace {

void put_tag(Writer& w, FrameTag tag) { w.u8(static_cast<std::uint8_t>(tag)); }

FrameTag take_tag(Reader& r, FrameTag expected) {
  const std::uint8_t tag = r.u8();
  if (tag != static_cast<std::uint8_t>(expected)) throw DecodeError("bad frame tag");
  return expected;
}

void put_hash(Writer& w, const MessageHash& h) { w.raw(BytesView(h.data(), h.size())); }

void take_hash(Reader& r, MessageHash& h) {
  const BytesView hv = r.raw(h.size());
  std::copy(hv.begin(), hv.end(), h.begin());
}

template <std::size_t N>
void take_array(Reader& r, std::array<std::uint8_t, N>& out) {
  const BytesView v = r.raw(N);
  std::copy(v.begin(), v.end(), out.begin());
}

void expect_done(const Reader& r) {
  if (!r.done()) throw DecodeError("trailing bytes after frame");
}

}  // namespace

std::size_t RelayRqstFrame::wire_size() const { return 1 + 32; }

Bytes RelayRqstFrame::encode() const {
  Writer w(wire_size());
  put_tag(w, FrameTag::RelayRqst);
  put_hash(w, h);
  return std::move(w).take();
}

RelayRqstFrame RelayRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::RelayRqst);
  RelayRqstFrame f;
  take_hash(r, f.h);
  expect_done(r);
  return f;
}

std::size_t RelayOkFrame::wire_size() const { return 1 + 32; }

Bytes RelayOkFrame::encode() const {
  Writer w(wire_size());
  put_tag(w, accept ? FrameTag::RelayOk : FrameTag::RelayDecline);
  put_hash(w, h);
  return std::move(w).take();
}

RelayOkFrame RelayOkFrame::decode(BytesView b) {
  Reader r(b);
  const std::uint8_t tag = r.u8();
  RelayOkFrame f;
  if (tag == static_cast<std::uint8_t>(FrameTag::RelayOk)) {
    f.accept = true;
  } else if (tag == static_cast<std::uint8_t>(FrameTag::RelayDecline)) {
    f.accept = false;
  } else {
    throw DecodeError("bad frame tag");
  }
  take_hash(r, f.h);
  expect_done(r);
  return f;
}

std::size_t RelayDataFrame::wire_size() const {
  std::size_t inner = msg.wire_size();
  for (const auto& a : attachments) inner += a.wire_size();
  return 1 + 32 + 8 + inner;
}

Bytes RelayDataFrame::encode() const {
  // Payload: the message's canonical bytes, then the attachments' canonical
  // bytes back to back (each QualityDeclaration encoding is self-delimiting).
  Writer payload(msg.wire_size());
  payload.raw(msg.encode());
  for (const auto& a : attachments) payload.raw(a.encode());
  const Bytes& inner = payload.bytes();

  Writer w(wire_size());
  put_tag(w, FrameTag::RelayData);
  put_hash(w, h);
  w.u64(inner.size());
  w.raw(inner);
  return std::move(w).take();
}

RelayDataFrame RelayDataFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::RelayData);
  RelayDataFrame f;
  take_hash(r, f.h);
  const std::uint64_t len = r.u64();
  if (len > r.remaining()) throw DecodeError("truncated relay-data payload");
  Reader inner(r.raw(static_cast<std::size_t>(len)));
  f.msg = SealedMessage::decode(inner);
  while (!inner.done()) f.attachments.push_back(QualityDeclaration::decode(inner));
  expect_done(r);
  return f;
}

std::size_t KeyRevealFrame::wire_size() const { return 1 + 32 + 32; }

Bytes KeyRevealFrame::encode() const {
  Writer w(wire_size());
  put_tag(w, FrameTag::KeyReveal);
  put_hash(w, h);
  w.raw(BytesView(key.data(), key.size()));
  return std::move(w).take();
}

KeyRevealFrame KeyRevealFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::KeyReveal);
  KeyRevealFrame f;
  take_hash(r, f.h);
  take_array(r, f.key);
  expect_done(r);
  return f;
}

std::size_t PorRqstFrame::wire_size() const { return 1 + 32 + 32; }

Bytes PorRqstFrame::encode() const {
  Writer w(wire_size());
  put_tag(w, FrameTag::PorRqst);
  put_hash(w, h);
  w.raw(BytesView(seed.data(), seed.size()));
  return std::move(w).take();
}

PorRqstFrame PorRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::PorRqst);
  PorRqstFrame f;
  take_hash(r, f.h);
  take_array(r, f.seed);
  expect_done(r);
  return f;
}

std::size_t StoredRespFrame::wire_size() const { return kWireBytes; }

Bytes StoredRespFrame::encode() const {
  Writer w(kWireBytes);
  put_tag(w, FrameTag::StoredResp);
  put_hash(w, h);
  w.raw(BytesView(seed.data(), seed.size()));
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

StoredRespFrame StoredRespFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::StoredResp);
  StoredRespFrame f;
  take_hash(r, f.h);
  take_array(r, f.seed);
  const BytesView dv = r.raw(f.digest.size());
  std::copy(dv.begin(), dv.end(), f.digest.begin());
  expect_done(r);
  return f;
}

std::size_t FqRqstFrame::wire_size() const { return 1 + 32 + 4; }

Bytes FqRqstFrame::encode() const {
  Writer w(wire_size());
  put_tag(w, FrameTag::FqRqst);
  put_hash(w, h);
  w.u32(dst.value());
  return std::move(w).take();
}

FqRqstFrame FqRqstFrame::decode(BytesView b) {
  Reader r(b);
  take_tag(r, FrameTag::FqRqst);
  FqRqstFrame f;
  take_hash(r, f.h);
  f.dst = NodeId(r.u32());
  expect_done(r);
  return f;
}

}  // namespace g2g::proto::relay
