#include "g2g/proto/relay/relay_node.hpp"

namespace g2g::proto::relay {

bool RelayNode::stores_message(const MessageHash& h) const {
  const auto& holds = handshake_.holds();
  const auto it = holds.find(h);
  return it != holds.end() && it->second.has_msg;
}

std::size_t RelayNode::por_count(const MessageHash& h) const {
  const auto& holds = handshake_.holds();
  const auto it = holds.find(h);
  return it == holds.end() ? 0 : it->second.pors.size();
}

void RelayNode::run_contact_impl(Session& s, RelayNode& x, RelayNode& y) {
  x.handshake_.purge(s.now());
  y.handshake_.purge(s.now());
  // Test phases first: the source challenges its relays before new relays
  // are negotiated.
  x.audit_.run(s, y);
  y.audit_.run(s, x);
  x.handshake_.giver_pass(s, y);
  y.handshake_.giver_pass(s, x);
}

}  // namespace g2g::proto::relay
