#include "g2g/proto/g2g_delegation.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "g2g/proto/relay/frames.hpp"

namespace g2g::proto {

namespace {

constexpr double kQualityEps = 1e-9;

bool quality_mismatch(double a, double b) { return std::abs(a - b) > kQualityEps; }

}  // namespace

G2GDelegationNode::G2GDelegationNode(Env& env, crypto::NodeIdentity identity,
                                     NodeConfig config, BehaviorConfig behavior)
    : relay::RelayNode(env, std::move(identity), config, behavior,
                       relay::AuditEngine::PresentMode::PorsThenStorage),
      table_(config.quality_frame) {}

void G2GDelegationNode::note_encounter(NodeId peer, TimePoint t) { table_.record(peer, t); }

double G2GDelegationNode::source_fm(const SealedMessage& m) {
  return table_.current(config().quality_kind, m.dst);
}

void G2GDelegationNode::on_generate(const SealedMessage& m) {
  my_message_dst_.emplace(m.hash(), m.dst);
}

void G2GDelegationNode::on_hold_erased(const MessageHash& h) { my_message_dst_.erase(h); }

void G2GDelegationNode::on_delivered(Session& s,
                                     const std::vector<QualityDeclaration>& attachments) {
  check_attachments(s, attachments);
}

bool G2GDelegationNode::begin_test(relay::PendingTest& t, NodeId& real_dst) {
  const auto dst_it = my_message_dst_.find(t.h);
  if (dst_it == my_message_dst_.end()) return false;  // message record gone
  real_dst = dst_it->second;
  return true;
}

bool G2GDelegationNode::screen_pors(const relay::PendingTest& t,
                                    const std::vector<ProofOfRelay>& pors, NodeId real_dst,
                                    TimePoint now) {
  // Chain check runs over every PoR the relay presents; a detected cheat has
  // already issued its PoM when this returns false.
  return pors.empty() || chain_check(t, pors, real_dst, now);
}

NodeId G2GDelegationNode::random_decoy(NodeId not_this) const {
  const auto n = static_cast<std::uint32_t>(env_.node_count());
  for (;;) {
    const NodeId candidate(static_cast<std::uint32_t>(env_.rng().below(n)));
    if (candidate != not_this && candidate != id()) return candidate;
  }
}

std::optional<relay::HandshakeOutcome> G2GDelegationNode::relay_attempt(
    Session& s, relay::RelayNode& taker, const MessageHash& h, relay::Hold& hold) {
  auto& taker_del = static_cast<G2GDelegationNode&>(taker);
  const TimePoint now = s.now();
  const std::size_t sig = identity().suite().signature_size();

  const NodeId real_dst = hold.msg.dst;
  const bool to_dst = taker.id() == real_dst;
  // "When the destination of m is B, D' is chosen as a random node different
  // from B" — B must not learn it is the destination.
  const NodeId dprime = to_dst ? random_decoy(taker.id()) : real_dst;
  const std::uint64_t ref = env_.msg_ref(h);

  // Step 8: FQ_RQST.
  counters().handshakes_started->add();
  trace_event(obs::EventKind::FqRqst, taker.id(), ref);
  const BytesView rq_bytes = arena_encode(s.arena(), relay::FqRqstFrame{h, dprime});
  counters().frames_encoded->add();
  s.signed_control(*this, rq_bytes.size() + sig, obs::WireKind::FqRqst);
  // Step 9: the taker answers from the decoded frame.
  const relay::FqRqstFrame rq = relay::FqRqstFrame::decode(rq_bytes);
  taker_del.counters().frames_decoded->add();
  const auto decl = taker_del.respond_fq(s, *this, rq.h, rq.dst);
  if (!decl.has_value()) {
    counters().handshakes_declined->add();
    return std::nullopt;  // taker already handled the message
  }

  // Verify the declaration signature (it may be stored as evidence).
  count_verification();
  const auto* taker_cert = env_.roster().find(taker.id());
  bool decl_ok = taker_cert != nullptr && decl->declarer == taker.id() && decl->dst == dprime;
  if (decl_ok) {
    const std::span<std::uint8_t> decl_payload = s.arena().alloc(decl->signed_payload_size());
    SpanWriter dw(decl_payload);
    decl->signed_payload_into(dw);
    dw.expect_full();
    decl_ok = identity().suite().verify(taker_cert->public_key,
                                        BytesView(decl_payload.data(), decl_payload.size()),
                                        decl->signature);
  }
  if (!decl_ok) {
    counters().handshakes_aborted->add();
    return std::nullopt;
  }

  // A cheater advertises (and labels the message with) a zeroed quality so
  // any candidate qualifies and it gets rid of the message quickly.
  const bool cheating = behavior().kind == Behavior::Cheater && deviates_with(taker.id());
  const double effective_fm = cheating ? min_quality(config().quality_kind) : hold.fm;

  if (!to_dst && decl->value <= effective_fm + kQualityEps) {
    // Failed candidate. The source archives the last two declarations for
    // the test by the destination.
    counters().handshakes_declined->add();
    if (hold.is_source) {
      hold.failed_candidates.push_back(*decl);
      while (hold.failed_candidates.size() > 2) hold.failed_candidates.pop_front();
    }
    return std::nullopt;
  }

  // Step 10: RELAY with f_m and the embedded declarations. A source ships its
  // archived failed-candidate declarations; a relay forwards the attachments
  // it received — borrowed straight from the hold, no copies.
  std::vector<QualityDeclaration> source_decls;
  if (hold.is_source) {
    source_decls.assign(hold.failed_candidates.begin(), hold.failed_candidates.end());
  }
  const std::span<const QualityDeclaration> attachments =
      hold.is_source ? std::span<const QualityDeclaration>(source_decls)
                     : std::span<const QualityDeclaration>(hold.attachments);
  std::size_t attach_bytes = 0;
  for (const auto& a : attachments) attach_bytes += a.wire_size();
  const BytesView data = relay::arena_relay_data(s.arena(), h, hold.msg, attachments);
  counters().frames_encoded->add();
  trace_event(obs::EventKind::HsRelayData, taker.id(), ref,
              static_cast<std::int64_t>(hold.msg_bytes + attach_bytes));
  s.signed_control(*this, data.size() + sig, obs::WireKind::RelayData);
  const double sent_fm = cheating ? min_quality(config().quality_kind) : hold.fm;

  // Step 11: the giver builds the delegation PoR (it knows D', f_m, f_BD');
  // the taker countersigns and its canonical bytes travel back.
  ProofOfRelay proto_por;
  proto_por.h = h;
  proto_por.giver = id();
  proto_por.taker = taker.id();
  proto_por.at = now;
  proto_por.delegation = true;
  proto_por.declared_dst = dprime;
  proto_por.msg_quality = sent_fm;
  proto_por.taker_quality = decl->value;
  proto_por.quality_frame = decl->frame;
  const ProofOfRelayView por =
      ProofOfRelayView::decode(taker.handshake().countersign(s, *this, std::move(proto_por)));
  counters().frames_decoded->add();

  count_verification();
  const std::span<std::uint8_t> payload = s.arena().alloc(por.signed_payload_size());
  SpanWriter pw(payload);
  por.signed_payload_into(pw);
  pw.expect_full();
  const bool por_ok = identity().suite().verify(taker_cert->public_key,
                                                BytesView(payload.data(), payload.size()),
                                                por.taker_signature);
  trace_event(obs::EventKind::PorVerified, taker.id(), ref, por_ok ? 1 : 0);
  if (!por_ok) {
    counters().handshakes_aborted->add();
    return std::nullopt;
  }
  counters().pors_verified->add();
  // "Label both messages with the forwarding quality of node B" — only on a
  // true delegation step; a delivery to the destination leaves f_m as-is.
  return relay::HandshakeOutcome{por.to_owned(), data, !to_dst, decl->value};
}

std::optional<QualityDeclaration> G2GDelegationNode::respond_fq(Session& s,
                                                                G2GDelegationNode& giver,
                                                                const MessageHash& h,
                                                                NodeId dst) {
  if (handshake().has_handled(h)) {
    const std::size_t sig = identity().suite().signature_size();
    trace_event(obs::EventKind::HsRelayOk, giver.id(), env_.msg_ref(h), 0);
    const BytesView decline = arena_encode(s.arena(), relay::RelayOkFrame{h, false});
    counters().frames_encoded->add();
    s.signed_control(*this, decline.size() + sig, obs::WireKind::RelayOk);
    return std::nullopt;
  }
  QualityDeclaration decl;
  decl.declarer = id();
  decl.dst = dst;
  decl.at = s.now();
  const auto declared = table_.declared(config().quality_kind, dst, s.now());
  decl.frame = declared.frame;
  decl.value = declared.value;
  if (behavior().kind == Behavior::Liar && deviates_with(giver.id())) {
    // "Report a forwarding quality equal to 0 any time asked" — i.e. the
    // worst declarable quality of the configured kind.
    decl.value = min_quality(config().quality_kind);
  }
  count_signature();
  {
    const std::span<std::uint8_t> payload = s.arena().alloc(decl.signed_payload_size());
    SpanWriter pw(payload);
    decl.signed_payload_into(pw);
    pw.expect_full();
    decl.signature = identity().sign(BytesView(payload.data(), payload.size()));
  }
  trace_event(obs::EventKind::FqResp, giver.id(), env_.msg_ref(h),
              static_cast<std::int64_t>(decl.value * 1e6));
  s.transfer(*this, decl.wire_size(), obs::WireKind::QualityDecl);
  return decl;
}

void G2GDelegationNode::check_attachments(Session& s,
                                          const std::vector<QualityDeclaration>& attachments) {
  const TimePoint now = s.now();
  for (const auto& decl : attachments) {
    if (decl.dst != id()) continue;  // declarations are about quality toward me
    count_verification();
    const auto* cert = env_.roster().find(decl.declarer);
    bool sig_ok = cert != nullptr;
    if (sig_ok) {
      // Signed payload built in the session arena (still the current
      // handshake attempt's generation — this runs from complete_relay).
      const std::span<std::uint8_t> payload = s.arena().alloc(decl.signed_payload_size());
      SpanWriter pw(payload);
      decl.signed_payload_into(pw);
      pw.expect_full();
      sig_ok = identity().suite().verify(cert->public_key,
                                         BytesView(payload.data(), payload.size()),
                                         decl.signature);
    }
    if (!sig_ok) {
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 2);
      continue;
    }
    // f_BD must equal f_DB for the declared timeframe — both nodes log the
    // same symmetric encounters.
    const auto own = table_.value_at_frame(config().quality_kind, decl.declarer, decl.frame, now);
    if (!own.has_value()) {
      // Frame no longer retained: unverifiable.
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 2);
      continue;
    }
    if (quality_mismatch(*own, decl.value)) {
      counters().quality_lies->add();
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 0);
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::QualityLie;
      pom.culprit = decl.declarer;
      pom.evidence_declaration = decl;
      issue_pom(std::move(pom), metrics::DetectionMethod::TestByDestination, now - decl.at);
    } else {
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 1);
    }
  }
}

bool G2GDelegationNode::chain_check(const relay::PendingTest& t,
                                    const std::vector<ProofOfRelay>& pors, NodeId real_dst,
                                    TimePoint now) {
  const std::uint64_t ref = env_.msg_ref(t.h);
  const auto record_cheat = [&] {
    counters().chain_cheats->add();
    trace_event(obs::EventKind::ChainCheck, t.relay, ref, 0);
  };
  // Presented PoRs in relay order.
  std::vector<ProofOfRelay> ordered = pors;
  std::sort(ordered.begin(), ordered.end(),
            [](const ProofOfRelay& a, const ProofOfRelay& b) { return a.at < b.at; });

  // The establishing PoR: the one whose taker_quality is the current f_m.
  // Initially that is the PoR the tested relay signed for us (f_AD).
  ProofOfRelay establisher = t.por;
  double expected_fm = t.por.taker_quality;

  for (const auto& por : ordered) {
    count_verification();
    const auto* cert = env_.roster().find(por.taker);
    if (cert == nullptr || por.h != t.h || por.giver != t.relay ||
        !identity().suite().verify(cert->public_key, por.signed_payload(),
                                   por.taker_signature)) {
      return true;  // malformed PoR: handled by the caller's validity pass
    }

    const bool claims_decoy = por.declared_dst != real_dst;
    if (claims_decoy && por.taker != real_dst) {
      // The relay pretended its taker was the destination (decoy on a
      // non-destination): a way to dump the message regardless of quality.
      record_cheat();
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
      pom.culprit = t.relay;
      pom.evidence_accepted = establisher;
      pom.evidence_forwarded = por;
      issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                now - (t.relayed_at + config().delta1));
      return false;
    }
    const bool is_delivery = por.taker == real_dst;

    // f_m attached on forward must match the quality the chain established.
    if (quality_mismatch(por.msg_quality, expected_fm)) {
      record_cheat();
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
      pom.culprit = t.relay;
      pom.evidence_accepted = establisher;
      pom.evidence_forwarded = por;
      issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                now - (t.relayed_at + config().delta1));
      return false;
    }
    if (!is_delivery) {
      // Delegation discipline: the taker must actually be better.
      if (por.taker_quality <= por.msg_quality + kQualityEps) {
        record_cheat();
        ProofOfMisbehavior pom;
        pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
        pom.culprit = t.relay;
        pom.evidence_accepted = establisher;
        pom.evidence_forwarded = por;
        issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                  now - (t.relayed_at + config().delta1));
        return false;
      }
      expected_fm = por.taker_quality;
      establisher = por;
    }
  }
  trace_event(obs::EventKind::ChainCheck, t.relay, ref, 1);
  return true;
}

}  // namespace g2g::proto
