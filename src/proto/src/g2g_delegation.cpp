#include "g2g/proto/g2g_delegation.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "g2g/crypto/hmac.hpp"

namespace g2g::proto {

namespace {

constexpr double kQualityEps = 1e-9;

Bytes random_seed(Rng& rng) {
  Writer w(32);
  for (int i = 0; i < 4; ++i) w.u64(rng.next());
  return std::move(w).take();
}

bool quality_mismatch(double a, double b) { return std::abs(a - b) > kQualityEps; }

}  // namespace

G2GDelegationNode::G2GDelegationNode(Env& env, crypto::NodeIdentity identity,
                                     NodeConfig config, BehaviorConfig behavior)
    : ProtocolNode(env, std::move(identity), config, behavior),
      table_(config.quality_frame) {}

void G2GDelegationNode::note_encounter(NodeId peer, TimePoint t) { table_.record(peer, t); }

void G2GDelegationNode::generate(const SealedMessage& m) {
  const MessageHash h = m.hash();
  Hold hold;
  hold.msg = m;
  hold.has_msg = true;
  hold.msg_bytes = m.wire_size();
  hold.fm = table_.current(config().quality_kind, m.dst);
  hold.received = env_.now();
  hold.expires = env_.now() + config().delta1;
  hold.giver = id();
  hold.is_source = true;
  buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
  handled_.insert(h);
  my_message_dst_.emplace(h, m.dst);
}

void G2GDelegationNode::run_contact(Session& s, G2GDelegationNode& x, G2GDelegationNode& y) {
  x.purge(s.now());
  y.purge(s.now());
  x.run_tests(s, y);
  y.run_tests(s, x);
  x.giver_pass(s, y);
  y.giver_pass(s, x);
}

void G2GDelegationNode::purge(TimePoint now) {
  for (auto it = hold_.begin(); it != hold_.end();) {
    Hold& hold = it->second;
    const bool expired = now > hold.received + config().delta2;
    const bool testing = hold.is_source &&
                         std::any_of(tests_.begin(), tests_.end(), [&](const PendingTest& t) {
                           return t.h == it->first && !t.done &&
                                  now <= t.relayed_at + config().delta2;
                         });
    if (expired && !testing) {
      if (hold.has_msg) drop_payload(hold);
      // Keep the 32-byte hash in `handled_` (no re-reception); drop the rest.
      my_message_dst_.erase(it->first);
      it = hold_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(tests_, [&](const PendingTest& t) {
    return t.done || now > t.relayed_at + config().delta2;
  });
}

void G2GDelegationNode::drop_payload(Hold& hold) {
  buffer_changed(-static_cast<std::int64_t>(hold.msg_bytes));
  hold.has_msg = false;
}

NodeId G2GDelegationNode::random_decoy(NodeId not_this) const {
  const auto n = static_cast<std::uint32_t>(env_.node_count());
  for (;;) {
    const NodeId candidate(static_cast<std::uint32_t>(env_.rng().below(n)));
    if (candidate != not_this && candidate != id()) return candidate;
  }
}

void G2GDelegationNode::giver_pass(Session& s, G2GDelegationNode& taker) {
  const TimePoint now = s.now();
  const std::size_t sig = identity().suite().signature_size();

  std::vector<MessageHash> candidates;
  for (const auto& [h, hold] : hold_) {
    if (!hold.has_msg || hold.is_destination) continue;
    // Hoarders sit on messages and answer storage tests instead of relaying.
    if (behavior().kind == Behavior::Hoarder && !hold.is_source &&
        deviates_with(hold.giver)) {
      continue;
    }
    const std::size_t fanout =
        hold.is_source ? config().source_fanout : config().relay_fanout;
    if (hold.pors.size() >= fanout) continue;
    if (now > hold.expires) continue;  // Delta1 / TTL
    candidates.push_back(h);
  }

  for (const MessageHash& h : candidates) {
    if (s.exhausted()) break;  // the contact cannot carry another handshake
    const auto it = hold_.find(h);
    if (it == hold_.end() || !it->second.has_msg) continue;
    Hold& hold = it->second;

    const NodeId real_dst = hold.msg.dst;
    const bool to_dst = taker.id() == real_dst;
    // "When the destination of m is B, D' is chosen as a random node
    // different from B" — B must not learn it is the destination.
    const NodeId dprime = to_dst ? random_decoy(taker.id()) : real_dst;
    const std::uint64_t ref = env_.msg_ref(h);

    // Step 8: FQ_RQST.
    counters().handshakes_started->add();
    trace_event(obs::EventKind::FqRqst, taker.id(), ref);
    s.signed_control(*this, wire::fq_rqst(sig), obs::WireKind::FqRqst);
    const auto decl = taker.respond_fq(s, *this, h, dprime);
    if (!decl.has_value()) {
      counters().handshakes_declined->add();
      continue;  // taker already handled the message
    }

    // Verify the declaration signature (it may be stored as evidence).
    count_verification();
    const auto* taker_cert = env_.roster().find(taker.id());
    const bool decl_ok =
        taker_cert != nullptr && decl->declarer == taker.id() && decl->dst == dprime &&
        identity().suite().verify(taker_cert->public_key, decl->signed_payload(),
                                  decl->signature);
    if (!decl_ok) {
      counters().handshakes_aborted->add();
      continue;
    }

    // A cheater advertises (and labels the message with) a zeroed quality so
    // any candidate qualifies and it gets rid of the message quickly.
    const bool cheating = behavior().kind == Behavior::Cheater && deviates_with(taker.id());
    const double effective_fm = cheating ? min_quality(config().quality_kind) : hold.fm;

    if (!to_dst && decl->value <= effective_fm + kQualityEps) {
      // Failed candidate. The source archives the last two declarations for
      // the test by the destination.
      counters().handshakes_declined->add();
      if (hold.is_source) {
        hold.failed_candidates.push_back(*decl);
        while (hold.failed_candidates.size() > 2) hold.failed_candidates.pop_front();
      }
      continue;
    }

    // Step 10: RELAY with f_m and the embedded declarations.
    std::vector<QualityDeclaration> attachments = hold.attachments;
    if (hold.is_source) {
      attachments.assign(hold.failed_candidates.begin(), hold.failed_candidates.end());
    }
    std::size_t attach_bytes = 0;
    for (const auto& a : attachments) attach_bytes += a.wire_size();
    trace_event(obs::EventKind::HsRelayData, taker.id(), ref,
                static_cast<std::int64_t>(hold.msg_bytes + attach_bytes));
    s.signed_control(*this, wire::relay_data(sig, hold.msg_bytes + attach_bytes),
                     obs::WireKind::RelayData);
    const double sent_fm = cheating ? min_quality(config().quality_kind) : hold.fm;

    // Step 11: PoR back from the taker.
    ProofOfRelay por;
    por.h = h;
    por.giver = id();
    por.taker = taker.id();
    por.at = now;
    por.delegation = true;
    por.declared_dst = dprime;
    por.msg_quality = sent_fm;
    por.taker_quality = decl->value;
    por.quality_frame = decl->frame;
    taker.count_signature();
    por.taker_signature = taker.identity().sign(por.signed_payload());
    taker.counters().pors_issued->add();
    taker.trace_event(obs::EventKind::HsPorSigned, id(), ref);
    taker.trace_event(obs::EventKind::PorIssued, id(), ref);
    s.transfer(taker, por.wire_size(), obs::WireKind::Por);

    count_verification();
    const bool por_ok = identity().suite().verify(
        taker_cert->public_key, por.signed_payload(), por.taker_signature);
    trace_event(obs::EventKind::PorVerified, taker.id(), ref, por_ok ? 1 : 0);
    if (!por_ok) {
      counters().handshakes_aborted->add();
      continue;
    }
    counters().pors_verified->add();
    hold.pors.push_back(por);

    // Step 12: KEY.
    counters().handshakes_completed->add();
    trace_event(obs::EventKind::HsKeyReveal, taker.id(), ref);
    s.signed_control(*this, wire::key_reveal(sig), obs::WireKind::KeyReveal);
    env_.notify_relayed(h, id(), taker.id());

    // "Label both messages with the forwarding quality of node B" — only on a
    // true delegation step; a delivery to the destination leaves f_m as-is.
    if (!to_dst) hold.fm = decl->value;
    taker.complete_relay(s, *this, hold.msg, to_dst ? hold.fm : decl->value, hold.expires,
                         attachments);

    if (hold.is_source) {
      tests_.push_back(PendingTest{h, taker.id(), now, por, false});
    }
    if (!hold.is_source && hold.pors.size() >= config().relay_fanout) {
      drop_payload(hold);
    }
  }
}

std::optional<QualityDeclaration> G2GDelegationNode::respond_fq(Session& s,
                                                                G2GDelegationNode& giver,
                                                                const MessageHash& h,
                                                                NodeId dst) {
  if (handled_.contains(h)) {
    const std::size_t sig = identity().suite().signature_size();
    trace_event(obs::EventKind::HsRelayOk, giver.id(), env_.msg_ref(h), 0);
    s.signed_control(*this, wire::relay_ok(sig), obs::WireKind::RelayOk);  // decline notice
    return std::nullopt;
  }
  QualityDeclaration decl;
  decl.declarer = id();
  decl.dst = dst;
  decl.at = s.now();
  const auto declared = table_.declared(config().quality_kind, dst, s.now());
  decl.frame = declared.frame;
  decl.value = declared.value;
  if (behavior().kind == Behavior::Liar && deviates_with(giver.id())) {
    // "Report a forwarding quality equal to 0 any time asked" — i.e. the
    // worst declarable quality of the configured kind.
    decl.value = min_quality(config().quality_kind);
  }
  count_signature();
  decl.signature = identity().sign(decl.signed_payload());
  trace_event(obs::EventKind::FqResp, giver.id(), env_.msg_ref(h),
              static_cast<std::int64_t>(decl.value * 1e6));
  s.transfer(*this, decl.wire_size(), obs::WireKind::QualityDecl);
  return decl;
}

void G2GDelegationNode::complete_relay(Session& s, G2GDelegationNode& giver,
                                       const SealedMessage& m, double new_fm,
                                       TimePoint expires,
                                       const std::vector<QualityDeclaration>& attachments) {
  const MessageHash h = m.hash();
  handled_.insert(h);

  Hold hold;
  hold.msg = m;
  hold.msg_bytes = m.wire_size();
  hold.fm = new_fm;
  hold.received = s.now();
  hold.expires = config().global_ttl ? expires : s.now() + config().delta1;
  hold.giver = giver.id();
  hold.attachments = attachments;

  if (m.dst == id()) {
    const auto opened = open_message(identity(), m, s.env().roster());
    count_verification();
    if (opened.has_value() && opened->authentic) s.env().notify_delivered(h, id());
    check_attachments(s, attachments);  // test by the destination
    hold.is_destination = true;
    hold.has_msg = true;
    buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
    hold_.emplace(h, std::move(hold));
    return;
  }

  if (behavior().kind == Behavior::Dropper && deviates_with(giver.id())) {
    hold.has_msg = false;
    hold_.emplace(h, std::move(hold));
    return;
  }

  hold.has_msg = true;
  buffer_changed(static_cast<std::int64_t>(hold.msg_bytes));
  hold_.emplace(h, std::move(hold));
}

void G2GDelegationNode::check_attachments(Session& s,
                                          const std::vector<QualityDeclaration>& attachments) {
  const TimePoint now = s.now();
  for (const auto& decl : attachments) {
    if (decl.dst != id()) continue;  // declarations are about quality toward me
    count_verification();
    const auto* cert = env_.roster().find(decl.declarer);
    if (cert == nullptr ||
        !identity().suite().verify(cert->public_key, decl.signed_payload(),
                                   decl.signature)) {
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 2);
      continue;
    }
    // f_BD must equal f_DB for the declared timeframe — both nodes log the
    // same symmetric encounters.
    const auto own = table_.value_at_frame(config().quality_kind, decl.declarer, decl.frame, now);
    if (!own.has_value()) {
      // Frame no longer retained: unverifiable.
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 2);
      continue;
    }
    if (quality_mismatch(*own, decl.value)) {
      counters().quality_lies->add();
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 0);
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::QualityLie;
      pom.culprit = decl.declarer;
      pom.evidence_declaration = decl;
      issue_pom(std::move(pom), metrics::DetectionMethod::TestByDestination, now - decl.at);
    } else {
      trace_event(obs::EventKind::TestByDestination, decl.declarer, 0, 1);
    }
  }
}

void G2GDelegationNode::run_tests(Session& s, G2GDelegationNode& peer) {
  const TimePoint now = s.now();
  const std::size_t sig = identity().suite().signature_size();

  // Same two-phase shape as the epidemic audit loop: queue every storage
  // chain of this contact into one HeavyHmacBatch, resolve outcomes after the
  // batch runs all chains in parallel SHA-256 lanes.
  crypto::HeavyHmacBatch batch;
  struct PendingStorageCheck {
    std::size_t peer_job;
    std::size_t expect_job;
    NodeId relay;
    std::uint64_t ref;
    ProofOfRelay por;
    TimePoint relayed_at;
  };
  std::vector<PendingStorageCheck> pending;

  for (PendingTest& t : tests_) {
    if (s.exhausted()) break;
    if (t.done || t.relay != peer.id()) continue;
    if (now < t.relayed_at + config().delta1) continue;
    if (now > t.relayed_at + config().delta2) continue;
    t.done = true;

    const auto dst_it = my_message_dst_.find(t.h);
    if (dst_it == my_message_dst_.end()) continue;  // message record gone
    const NodeId real_dst = dst_it->second;
    if (t.relay == real_dst) {
      // We happened to hand the message to the destination itself; it will
      // answer with a storage proof, and there is no chain to check.
    }

    const std::uint64_t ref = env_.msg_ref(t.h);
    counters().tests_by_sender->add();
    const Bytes seed = random_seed(env_.rng());
    s.signed_control(*this, wire::por_rqst(sig), obs::WireKind::PorRqst);
    const TestResponse resp = peer.respond_test(s, t.h, seed, &batch);

    // Chain check runs over every PoR the relay presents.
    if (!resp.pors.empty() && !chain_check(t, resp.pors, real_dst, now)) {
      counters().tests_failed->add();
      trace_event(obs::EventKind::TestBySender, peer.id(), ref, 0);
      continue;  // cheat detected; PoM already issued
    }

    if (resp.pors.size() >= config().relay_fanout) {
      // Same batch-audit shape as the epidemic path: structural checks up
      // front, one verify_batch for the rest, then verdicts unpacked in the
      // original order so counters and trace events are unchanged.
      std::vector<Bytes> payloads;
      std::vector<crypto::VerifyRequest> requests;
      std::vector<std::size_t> request_of(resp.pors.size(), SIZE_MAX);
      payloads.reserve(resp.pors.size());
      requests.reserve(resp.pors.size());
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        count_verification();
        const auto* cert = env_.roster().find(por.taker);
        if (por.h == t.h && por.giver == peer.id() && cert != nullptr) {
          request_of[i] = requests.size();
          payloads.push_back(por.signed_payload());
          requests.push_back({BytesView(cert->public_key), BytesView(payloads.back()),
                              BytesView(por.taker_signature)});
        }
      }
      const auto verdicts = std::make_unique<bool[]>(requests.size());
      identity().suite().verify_batch(
          std::span<const crypto::VerifyRequest>(requests.data(), requests.size()),
          verdicts.get());
      bool all_ok = true;
      for (std::size_t i = 0; i < resp.pors.size(); ++i) {
        const auto& por = resp.pors[i];
        const bool ok = request_of[i] != SIZE_MAX && verdicts[request_of[i]];
        trace_event(obs::EventKind::PorVerified, por.taker, ref, ok ? 1 : 0);
        if (ok) counters().pors_verified->add();
        else all_ok = false;
      }
      if (all_ok) {
        counters().tests_passed->add();
        trace_event(obs::EventKind::TestBySender, peer.id(), ref, 1);
        continue;
      }
    }

    if (resp.stored_hmac.has_value() || resp.stored_job.has_value()) {
      const auto it = hold_.find(t.h);
      if (it != hold_.end() && it->second.has_msg) {
        count_heavy_hmac();
        if (resp.stored_job.has_value()) {
          const std::size_t expect_job =
              batch.add(it->second.msg.encode(), Bytes(seed.begin(), seed.end()),
                        config().heavy_hmac_iterations);
          pending.push_back(PendingStorageCheck{*resp.stored_job, expect_job, peer.id(), ref,
                                                t.por, t.relayed_at});
          continue;
        }
        const crypto::Digest expect = crypto::heavy_hmac(
            it->second.msg.encode(), seed, config().heavy_hmac_iterations);
        if (crypto::digest_equal(expect, *resp.stored_hmac)) {
          counters().tests_passed->add();
          trace_event(obs::EventKind::TestBySender, peer.id(), ref, 2);
          continue;
        }
      } else {
        trace_event(obs::EventKind::TestBySender, peer.id(), ref, 3);
        continue;
      }
    }

    counters().tests_failed->add();
    trace_event(obs::EventKind::TestBySender, peer.id(), ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = peer.id();
    pom.evidence_accepted = t.por;
    issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
              now - (t.relayed_at + config().delta1));
  }

  if (pending.empty()) return;
  const std::vector<crypto::Digest> digests = batch.run();
  for (const PendingStorageCheck& c : pending) {
    if (crypto::digest_equal(digests[c.expect_job], digests[c.peer_job])) {
      counters().tests_passed->add();
      trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 2);
      continue;
    }
    counters().tests_failed->add();
    trace_event(obs::EventKind::TestBySender, c.relay, c.ref, 0);
    ProofOfMisbehavior pom;
    pom.kind = ProofOfMisbehavior::Kind::RelayFailure;
    pom.culprit = c.relay;
    pom.evidence_accepted = c.por;
    issue_pom(std::move(pom), metrics::DetectionMethod::TestBySender,
              now - (c.relayed_at + config().delta1));
  }
}

bool G2GDelegationNode::chain_check(const PendingTest& t,
                                    const std::vector<ProofOfRelay>& pors, NodeId real_dst,
                                    TimePoint now) {
  const std::uint64_t ref = env_.msg_ref(t.h);
  const auto record_cheat = [&] {
    counters().chain_cheats->add();
    trace_event(obs::EventKind::ChainCheck, t.relay, ref, 0);
  };
  // Presented PoRs in relay order.
  std::vector<ProofOfRelay> ordered = pors;
  std::sort(ordered.begin(), ordered.end(),
            [](const ProofOfRelay& a, const ProofOfRelay& b) { return a.at < b.at; });

  // The establishing PoR: the one whose taker_quality is the current f_m.
  // Initially that is the PoR the tested relay signed for us (f_AD).
  ProofOfRelay establisher = t.por;
  double expected_fm = t.por.taker_quality;

  for (const auto& por : ordered) {
    count_verification();
    const auto* cert = env_.roster().find(por.taker);
    if (cert == nullptr || por.h != t.h || por.giver != t.relay ||
        !identity().suite().verify(cert->public_key, por.signed_payload(),
                                   por.taker_signature)) {
      return true;  // malformed PoR: handled by the caller's validity pass
    }

    const bool claims_decoy = por.declared_dst != real_dst;
    if (claims_decoy && por.taker != real_dst) {
      // The relay pretended its taker was the destination (decoy on a
      // non-destination): a way to dump the message regardless of quality.
      record_cheat();
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
      pom.culprit = t.relay;
      pom.evidence_accepted = establisher;
      pom.evidence_forwarded = por;
      issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                now - (t.relayed_at + config().delta1));
      return false;
    }
    const bool is_delivery = por.taker == real_dst;

    // f_m attached on forward must match the quality the chain established.
    if (quality_mismatch(por.msg_quality, expected_fm)) {
      record_cheat();
      ProofOfMisbehavior pom;
      pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
      pom.culprit = t.relay;
      pom.evidence_accepted = establisher;
      pom.evidence_forwarded = por;
      issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                now - (t.relayed_at + config().delta1));
      return false;
    }
    if (!is_delivery) {
      // Delegation discipline: the taker must actually be better.
      if (por.taker_quality <= por.msg_quality + kQualityEps) {
        record_cheat();
        ProofOfMisbehavior pom;
        pom.kind = ProofOfMisbehavior::Kind::ChainCheat;
        pom.culprit = t.relay;
        pom.evidence_accepted = establisher;
        pom.evidence_forwarded = por;
        issue_pom(std::move(pom), metrics::DetectionMethod::ChainCheck,
                  now - (t.relayed_at + config().delta1));
        return false;
      }
      expected_fm = por.taker_quality;
      establisher = por;
    }
  }
  trace_event(obs::EventKind::ChainCheck, t.relay, ref, 1);
  return true;
}

G2GDelegationNode::TestResponse G2GDelegationNode::respond_test(Session& s,
                                                                const MessageHash& h,
                                                                BytesView seed,
                                                                crypto::HeavyHmacBatch* defer) {
  TestResponse resp;
  const auto it = hold_.find(h);
  if (it == hold_.end()) return resp;
  const Hold& hold = it->second;
  resp.pors = hold.pors;
  for (const auto& por : resp.pors) s.transfer(*this, por.wire_size(), obs::WireKind::Por);
  if (hold.pors.size() < config().relay_fanout) {
    if (hold.has_msg) {
      count_heavy_hmac();
      counters().storage_challenges->add();
      trace_event(obs::EventKind::StorageChallenge, s.peer_of(*this).id(),
                  env_.msg_ref(h), config().heavy_hmac_iterations);
      if (defer != nullptr) {
        resp.stored_job = defer->add(hold.msg.encode(), Bytes(seed.begin(), seed.end()),
                                     config().heavy_hmac_iterations);
      } else {
        resp.stored_hmac =
            crypto::heavy_hmac(hold.msg.encode(), seed, config().heavy_hmac_iterations);
      }
      const std::size_t sig = identity().suite().signature_size();
      s.signed_control(*this, wire::stored_resp(sig), obs::WireKind::StoredResp);
    }
  }
  return resp;
}

bool G2GDelegationNode::stores_message(const MessageHash& h) const {
  const auto it = hold_.find(h);
  return it != hold_.end() && it->second.has_msg;
}

std::size_t G2GDelegationNode::por_count(const MessageHash& h) const {
  const auto it = hold_.find(h);
  return it == hold_.end() ? 0 : it->second.pors.size();
}

std::size_t G2GDelegationNode::pending_test_count() const {
  return static_cast<std::size_t>(
      std::count_if(tests_.begin(), tests_.end(), [](const PendingTest& t) { return !t.done; }));
}

}  // namespace g2g::proto
