#include "g2g/proto/delegation.hpp"

#include <vector>

namespace g2g::proto {

DelegationNode::DelegationNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                               BehaviorConfig behavior)
    : ProtocolNode(env, std::move(identity), config, behavior),
      table_(config.quality_frame) {}

void DelegationNode::note_encounter(NodeId peer, TimePoint t) { table_.record(peer, t); }

double DelegationNode::declare_quality(NodeId dst, NodeId asker) const {
  if (behavior().kind == Behavior::Liar && deviates_with(asker)) {
    return min_quality(config().quality_kind);
  }
  return table_.current(config().quality_kind, dst);
}

void DelegationNode::generate(const SealedMessage& m) {
  const MessageHash h = m.hash();
  Entry e;
  e.msg = m;
  // "When a message is generated, it is associated with the forwarding
  // quality of the sender" (Section VI).
  e.fm = table_.current(config().quality_kind, m.dst);
  e.expires = env_.now() + config().delta1;
  e.bytes = m.wire_size();
  buffer_changed(static_cast<std::int64_t>(e.bytes));
  buffer_.emplace(h, std::move(e));
  seen_.insert(h);
  mine_.insert(h);
}

void DelegationNode::run_contact(Session& s, DelegationNode& x, DelegationNode& y) {
  x.purge(s.now());
  y.purge(s.now());
  x.offer_all(s, y);
  y.offer_all(s, x);
}

void DelegationNode::offer_all(Session& s, DelegationNode& taker) {
  // A hoarder free-rides: it only spends transmit energy on its own traffic.
  const bool hoarding =
      behavior().kind == Behavior::Hoarder && deviates_with(taker.id());
  s.transfer(*this, buffer_.size() * sizeof(MessageHash),
             obs::WireKind::SummaryVector);  // summary vector
  std::vector<MessageHash> offered;
  offered.reserve(buffer_.size());
  for (const auto& [h, e] : buffer_) {
    if (hoarding && !mine_.contains(h)) continue;
    offered.push_back(h);
  }

  for (const MessageHash& h : offered) {
    if (s.exhausted()) break;  // contact too short to carry more
    const auto it = buffer_.find(h);
    if (it == buffer_.end()) continue;
    Entry& e = it->second;
    if (taker.seen_.contains(h)) continue;

    if (e.msg.dst == taker.id()) {
      // Direct delivery, regardless of quality.
      s.transfer(*this, e.bytes, obs::WireKind::Payload);
      taker.receive(s, *this, e.msg, e.fm, e.expires);
      continue;
    }

    // Quality query (tiny unsigned exchange in the vanilla protocol).
    s.transfer(*this, 40, obs::WireKind::FqRqst);
    s.transfer(taker, 16, obs::WireKind::QualityDecl);
    const double q = taker.declare_quality(e.msg.dst, id());
    if (q > e.fm) {
      s.transfer(*this, e.bytes, obs::WireKind::Payload);
      // "...creates a replica of the message, labels both messages with the
      // forwarding quality of node B, and forwards one of the two replicas."
      e.fm = q;
      taker.receive(s, *this, e.msg, q, e.expires);
    }
  }
}

void DelegationNode::receive(Session& s, DelegationNode& giver, const SealedMessage& m,
                             double fm, TimePoint expires) {
  const MessageHash h = m.hash();
  seen_.insert(h);
  s.env().notify_relayed(h, giver.id(), id());

  if (m.dst == id()) {
    const auto opened = open_message(identity(), m, s.env().roster());
    count_verification();
    if (opened.has_value() && opened->authentic) s.env().notify_delivered(h, id());
    return;
  }

  if (behavior().kind == Behavior::Dropper && deviates_with(giver.id())) return;

  Entry e;
  e.msg = m;
  e.fm = fm;
  e.expires = expires;
  e.bytes = m.wire_size();
  buffer_changed(static_cast<std::int64_t>(e.bytes));
  buffer_.emplace(h, std::move(e));
  enforce_buffer_cap();
}

void DelegationNode::enforce_buffer_cap() {
  const std::size_t cap = config().max_buffer_messages;
  if (cap == 0) return;
  while (buffer_.size() > cap) {
    auto victim = buffer_.begin();
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (it->second.expires < victim->second.expires) victim = it;
    }
    buffer_changed(-static_cast<std::int64_t>(victim->second.bytes));
    buffer_.erase(victim);
  }
}

void DelegationNode::purge(TimePoint now) {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->second.expires <= now) {
      buffer_changed(-static_cast<std::int64_t>(it->second.bytes));
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace g2g::proto
