#include "g2g/proto/wire.hpp"

#include <cmath>
#include <span>
#include <string_view>

namespace g2g::proto {

const char* to_string(QualityKind kind) {
  switch (kind) {
    case QualityKind::DestinationFrequency: return "dest-frequency";
    case QualityKind::DestinationLastContact: return "dest-last-contact";
  }
  return "?";
}

double min_quality(QualityKind kind) {
  switch (kind) {
    case QualityKind::DestinationFrequency: return 0.0;
    case QualityKind::DestinationLastContact: return kNeverMet;
  }
  return 0.0;
}

namespace {
constexpr std::string_view kFqRespDomain = "g2g-fqresp-v1";
constexpr std::string_view kPorDomain = "g2g-por-v1";
}  // namespace

std::size_t QualityDeclaration::signed_payload_size() const {
  // domain string + declarer + dst + value + frame + at.
  return 4 + kFqRespDomain.size() + 4 + 4 + 8 + 8 + 8;
}

void QualityDeclaration::signed_payload_into(SpanWriter& w) const {
  w.str(kFqRespDomain);
  w.u32(declarer.value());
  w.u32(dst.value());
  w.f64(value);
  w.i64(frame);
  w.i64(at.micros());
}

Bytes QualityDeclaration::signed_payload() const {
  Bytes out(signed_payload_size());
  SpanWriter w(std::span<std::uint8_t>(out.data(), out.size()));
  signed_payload_into(w);
  w.expect_full();
  return out;
}

void QualityDeclaration::encode_into(SpanWriter& w) const {
  w.u32(declarer.value());
  w.u32(dst.value());
  w.f64(value);
  w.i64(frame);
  w.i64(at.micros());
  w.blob(signature);
}

Bytes QualityDeclaration::encode() const { return encode_exact(*this); }

QualityDeclaration QualityDeclaration::decode(BytesView b) {
  Reader r(b);
  QualityDeclaration d = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after QualityDeclaration");
  return d;
}

QualityDeclaration QualityDeclaration::decode(Reader& r) {
  QualityDeclaration d;
  d.declarer = NodeId(r.u32());
  d.dst = NodeId(r.u32());
  d.value = r.f64();
  d.frame = r.i64();
  d.at = TimePoint(r.i64());
  d.signature = r.blob();
  return d;
}

std::size_t QualityDeclaration::wire_size() const {
  // declarer + dst + value + frame + at + signature length prefix + signature.
  return 4 + 4 + 8 + 8 + 8 + 4 + signature.size();
}

namespace {

// ProofOfRelay and ProofOfRelayView carry identical non-signature fields, so
// the canonical layouts are written and read once, generically over both.
template <typename P>
std::size_t por_payload_size(const P& p) {
  // domain string + h + giver + taker + at + flag [+ delegation extension].
  return 4 + kPorDomain.size() + 32 + 4 + 4 + 8 + 1 + (p.delegation ? 4 + 8 + 8 + 8 : 0);
}

template <typename P>
void por_payload_into(SpanWriter& w, const P& p) {
  w.str(kPorDomain);
  w.raw(BytesView(p.h.data(), p.h.size()));
  w.u32(p.giver.value());
  w.u32(p.taker.value());
  w.i64(p.at.micros());
  w.u8(p.delegation ? 1 : 0);
  if (p.delegation) {
    w.u32(p.declared_dst.value());
    w.f64(p.msg_quality);
    w.f64(p.taker_quality);
    w.i64(p.quality_frame);
  }
}

/// Everything up to (not including) the trailing signature blob.
template <typename P>
void por_fields_from(Reader& r, P& p) {
  const BytesView hv = r.raw(p.h.size());
  std::copy(hv.begin(), hv.end(), p.h.begin());
  p.giver = NodeId(r.u32());
  p.taker = NodeId(r.u32());
  p.at = TimePoint(r.i64());
  p.delegation = r.u8() != 0;
  if (p.delegation) {
    p.declared_dst = NodeId(r.u32());
    p.msg_quality = r.f64();
    p.taker_quality = r.f64();
    p.quality_frame = r.i64();
  }
}

}  // namespace

std::size_t ProofOfRelay::signed_payload_size() const { return por_payload_size(*this); }

void ProofOfRelay::signed_payload_into(SpanWriter& w) const { por_payload_into(w, *this); }

Bytes ProofOfRelay::signed_payload() const {
  Bytes out(signed_payload_size());
  SpanWriter w(std::span<std::uint8_t>(out.data(), out.size()));
  signed_payload_into(w);
  w.expect_full();
  return out;
}

void ProofOfRelay::encode_into(SpanWriter& w) const {
  w.raw(BytesView(h.data(), h.size()));
  w.u32(giver.value());
  w.u32(taker.value());
  w.i64(at.micros());
  w.u8(delegation ? 1 : 0);
  // The delegation extension travels only when the flag is set, matching
  // signed_payload() — epidemic PoRs never pay for fields they do not carry.
  if (delegation) {
    w.u32(declared_dst.value());
    w.f64(msg_quality);
    w.f64(taker_quality);
    w.i64(quality_frame);
  }
  w.blob(taker_signature);
}

Bytes ProofOfRelay::encode() const { return encode_exact(*this); }

ProofOfRelay ProofOfRelay::decode(BytesView b) {
  Reader r(b);
  ProofOfRelay p = decode(r);
  if (!r.done()) throw DecodeError("trailing bytes after PoR");
  return p;
}

ProofOfRelay ProofOfRelay::decode(Reader& r) {
  ProofOfRelay p;
  por_fields_from(r, p);
  p.taker_signature = r.blob();
  return p;
}

std::size_t ProofOfRelayView::signed_payload_size() const { return por_payload_size(*this); }

void ProofOfRelayView::signed_payload_into(SpanWriter& w) const { por_payload_into(w, *this); }

ProofOfRelay ProofOfRelayView::to_owned() const {
  ProofOfRelay p;
  p.h = h;
  p.giver = giver;
  p.taker = taker;
  p.at = at;
  p.delegation = delegation;
  p.declared_dst = declared_dst;
  p.msg_quality = msg_quality;
  p.taker_quality = taker_quality;
  p.quality_frame = quality_frame;
  p.taker_signature.assign(taker_signature.begin(), taker_signature.end());
  return p;
}

std::size_t ProofOfRelayView::wire_size() const {
  return 32 + 4 + 4 + 8 + 1 + (delegation ? 4 + 8 + 8 + 8 : 0) + 4 + taker_signature.size();
}

ProofOfRelayView ProofOfRelayView::decode(BytesView b) {
  Reader r(b);
  ProofOfRelayView p;
  por_fields_from(r, p);
  p.taker_signature = r.blob_view();
  if (!r.done()) throw DecodeError("trailing bytes after PoR");
  return p;
}

std::size_t ProofOfRelay::wire_size() const {
  // h + giver + taker + at + flag [+ delegation extension] + sig prefix + sig.
  return 32 + 4 + 4 + 8 + 1 + (delegation ? 4 + 8 + 8 + 8 : 0) + 4 + taker_signature.size();
}

void ProofOfMisbehavior::encode_into(SpanWriter& w) const {
  // Evidence artefacts are written in place as length-prefixed sub-encodings
  // (no intermediate buffers); the prefix is the artefact's own wire_size().
  const auto nested = [&w](const auto& evidence) {
    w.u32(static_cast<std::uint32_t>(evidence.wire_size()));
    evidence.encode_into(w);
  };
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(culprit.value());
  w.u32(accuser.value());
  w.i64(at.micros());
  w.u8(evidence_accepted.has_value() ? 1 : 0);
  if (evidence_accepted) nested(*evidence_accepted);
  w.u8(evidence_forwarded.has_value() ? 1 : 0);
  if (evidence_forwarded) nested(*evidence_forwarded);
  w.u8(evidence_declaration.has_value() ? 1 : 0);
  if (evidence_declaration) nested(*evidence_declaration);
}

Bytes ProofOfMisbehavior::encode() const { return encode_exact(*this); }

ProofOfMisbehavior ProofOfMisbehavior::decode(BytesView b) {
  Reader r(b);
  ProofOfMisbehavior p;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Kind::ChainCheat)) throw DecodeError("bad PoM kind");
  p.kind = static_cast<Kind>(kind);
  p.culprit = NodeId(r.u32());
  p.accuser = NodeId(r.u32());
  p.at = TimePoint(r.i64());
  const auto read_flag = [&r] {
    const std::uint8_t f = r.u8();
    if (f > 1) throw DecodeError("bad PoM evidence flag");
    return f == 1;
  };
  // Each evidence blob is decoded in place through a bounded view; the strict
  // BytesView decode rejects evidence blobs with trailing junk, so an
  // accepted PoM's blob is exactly the artefact's canonical encoding.
  if (read_flag()) p.evidence_accepted = ProofOfRelay::decode(r.blob_view());
  if (read_flag()) p.evidence_forwarded = ProofOfRelay::decode(r.blob_view());
  if (read_flag()) p.evidence_declaration = QualityDeclaration::decode(r.blob_view());
  if (!r.done()) throw DecodeError("trailing bytes after PoM");

  // A PoM is gossiped network-wide, so the decoder enforces that exactly the
  // evidence verify_pom() needs for the claimed kind is present — anything
  // else is a malformed accusation, rejected before signature checks run.
  const bool acc = p.evidence_accepted.has_value();
  const bool fwd = p.evidence_forwarded.has_value();
  const bool decl = p.evidence_declaration.has_value();
  const bool shape_ok = (p.kind == Kind::RelayFailure && acc && !fwd && !decl) ||
                        (p.kind == Kind::QualityLie && !acc && !fwd && decl) ||
                        (p.kind == Kind::ChainCheat && acc && fwd && !decl);
  if (!shape_ok) throw DecodeError("PoM evidence does not match kind");
  return p;
}

std::size_t ProofOfMisbehavior::wire_size() const {
  // kind + culprit + accuser + at + three presence flags, plus one
  // length-prefixed blob per attached evidence artefact.
  std::size_t size = 1 + 4 + 4 + 8 + 1 + 1 + 1;
  if (evidence_accepted) size += 4 + evidence_accepted->wire_size();
  if (evidence_forwarded) size += 4 + evidence_forwarded->wire_size();
  if (evidence_declaration) size += 4 + evidence_declaration->wire_size();
  return size;
}

bool pom_collect_verification(const Roster& roster, const ProofOfMisbehavior& pom,
                              std::deque<Bytes>& payloads,
                              std::vector<crypto::VerifyRequest>& requests) {
  const auto add_por = [&](const ProofOfRelay& por) {
    const auto* cert = roster.find(por.taker);
    if (cert == nullptr) return false;
    payloads.push_back(por.signed_payload());
    requests.push_back({BytesView(cert->public_key), BytesView(payloads.back()),
                        BytesView(por.taker_signature)});
    return true;
  };

  switch (pom.kind) {
    case ProofOfMisbehavior::Kind::RelayFailure:
      // The culprit signed a PoR accepting the message; the accuser (its
      // giver) attests the storage test failed.
      return pom.evidence_accepted.has_value() &&
             pom.evidence_accepted->taker == pom.culprit &&
             pom.evidence_accepted->giver == pom.accuser &&
             add_por(*pom.evidence_accepted);

    case ProofOfMisbehavior::Kind::QualityLie: {
      // Signed declaration by the culprit; the destination attests the
      // contradiction with its own symmetric records.
      if (!pom.evidence_declaration.has_value() ||
          pom.evidence_declaration->declarer != pom.culprit) {
        return false;
      }
      const auto* cert = roster.find(pom.culprit);
      if (cert == nullptr) return false;
      payloads.push_back(pom.evidence_declaration->signed_payload());
      requests.push_back({BytesView(cert->public_key), BytesView(payloads.back()),
                          BytesView(pom.evidence_declaration->signature)});
      return true;
    }

    case ProofOfMisbehavior::Kind::ChainCheat: {
      // Self-contained: the culprit accepted at quality f_AD
      // (evidence_accepted, signed by the culprit) but attached a different
      // f1_m when forwarding (evidence_forwarded, signed by the next relay).
      if (!pom.evidence_accepted.has_value() || !pom.evidence_forwarded.has_value()) {
        return false;
      }
      const ProofOfRelay& in = *pom.evidence_accepted;
      const ProofOfRelay& out = *pom.evidence_forwarded;
      // The establishing PoR is either the one the culprit signed when it
      // accepted the message, or an earlier outgoing PoR of the culprit.
      if (in.taker != pom.culprit && in.giver != pom.culprit) return false;
      if (out.giver != pom.culprit) return false;
      if (in.h != out.h) return false;
      if (!in.delegation || !out.delegation) return false;
      // The cheat: quality attached on forward differs from quality accepted.
      if (std::abs(out.msg_quality - in.taker_quality) <= 1e-9) return false;
      return add_por(in) && add_por(out);
    }
  }
  return false;
}

bool verify_pom(const crypto::Suite& suite, const Roster& roster,
                const ProofOfMisbehavior& pom) {
  std::deque<Bytes> payloads;
  std::vector<crypto::VerifyRequest> requests;
  if (!pom_collect_verification(roster, pom, payloads, requests)) return false;
  for (const auto& rq : requests) {
    if (!suite.verify(rq.public_key, rq.message, rq.signature)) return false;
  }
  return true;
}

}  // namespace g2g::proto
