#include "g2g/proto/network.hpp"

#include <chrono>
#include <stdexcept>

#include "g2g/crypto/verify_cache.hpp"
#include "g2g/proto/relay/pom.hpp"
#include "g2g/util/log.hpp"

namespace g2g::proto {

namespace {
/// Adapts the discrete-event clock to the logger so lines emitted during a
/// run carry the sim-time.
class SimLogClock final : public LogClock {
 public:
  explicit SimLogClock(const sim::Simulator& sim) : sim_(sim) {}
  [[nodiscard]] std::int64_t now_micros() const override {
    return sim_.now().micros();
  }

 private:
  const sim::Simulator& sim_;
};
}  // namespace

NetworkBase::NetworkBase(const trace::ContactTrace& trace, NetworkConfig config,
                         metrics::Collector& collector)
    : config_(std::move(config)),
      node_count_(trace.node_count()),
      rng_(config_.seed),
      sim_(config_.horizon == TimePoint::zero() ? trace.end_time() : config_.horizon),
      collector_(&collector),
      trace_(&trace) {
  if (!trace.finalized()) throw std::invalid_argument("trace must be finalized");
  if (node_count_ < 2) throw std::invalid_argument("need at least 2 nodes");
  if (!config_.suite) config_.suite = crypto::make_fast_suite();
  if (config_.crypto_fast_path) {
    // Per-run memo: the same PoR / declaration / certificate is verified by
    // many nodes; verification is pure, so repeats are answered from the
    // cache. Invisible to results (see crypto/verify_cache.hpp).
    suite_cache_ = crypto::make_caching_suite(config_.suite);
    config_.suite = suite_cache_;
  }
  if (config_.obs != nullptr) {
    obs_ = config_.obs;
  } else {
    owned_obs_ = std::make_unique<obs::ObsContext>();
    obs_ = owned_obs_.get();
  }
  collector_->attach_obs(obs_);

  Rng auth_rng = rng_.fork(0xA117);
  authority_ = std::make_unique<crypto::Authority>(config_.suite, auth_rng);
  // Schedule contacts directly (rather than via sim::schedule_trace) so the
  // contact duration reaches the session for bandwidth budgeting.
  for (const auto& e : trace.events()) {
    sim_.at(e.start, [this, e] { contact(e.start, e.a, e.b, e.duration()); });
  }
}

std::size_t NetworkBase::contact_budget(Duration contact_duration) const {
  if (config_.bandwidth_bytes_per_s <= 0.0 || contact_duration == Duration::max()) {
    return static_cast<std::size_t>(-1);
  }
  const double budget = config_.bandwidth_bytes_per_s * contact_duration.to_seconds();
  return budget >= 1e18 ? static_cast<std::size_t>(-1)
                        : static_cast<std::size_t>(budget);
}

crypto::NodeIdentity NetworkBase::make_identity(NodeId n) {
  Rng key_rng = rng_.fork(0x1D000000ULL + n.value());
  crypto::NodeIdentity identity(config_.suite, n, *authority_, key_rng);
  roster_.add(identity.certificate());
  return identity;
}

void NetworkBase::register_node(ProtocolNode* node) { generic_nodes_.push_back(node); }

std::uint64_t NetworkBase::msg_ref(const MessageHash& h) const {
  const auto it = hash_to_id_.find(h);
  return it != hash_to_id_.end() ? it->second.value() : Env::msg_ref(h);
}

void NetworkBase::record_contact_up(NodeId a, NodeId b, Duration contact_duration) {
  obs_->counters.contacts->add();
  const bool bounded = contact_duration != Duration::max();
  if (bounded) obs_->counters.contact_duration_s->observe(contact_duration.to_seconds());
  if (obs_->tracer.enabled()) {
    obs_->tracer.emit({now(), obs::EventKind::ContactUp, a, b, 0,
                       bounded ? contact_duration.count() : -1});
  }
}

void NetworkBase::record_session(NodeId a, NodeId b, bool opened) {
  (opened ? obs_->counters.sessions_opened : obs_->counters.sessions_refused)->add();
  if (obs_->tracer.enabled()) {
    obs_->tracer.emit({now(),
                       opened ? obs::EventKind::SessionOpen : obs::EventKind::SessionRefused,
                       a, b, 0, 0});
  }
}

void NetworkBase::record_contact_down(NodeId a, NodeId b, std::size_t bytes_used) {
  if (obs_->tracer.enabled()) {
    obs_->tracer.emit({now(), obs::EventKind::ContactDown, a, b, 0,
                       static_cast<std::int64_t>(bytes_used)});
  }
}

void NetworkBase::notify_delivered(const MessageHash& h, NodeId /*dst*/) {
  const auto it = hash_to_id_.find(h);
  if (it != hash_to_id_.end()) collector_->message_delivered(it->second, now());
}

void NetworkBase::notify_relayed(const MessageHash& h, NodeId from, NodeId to) {
  const auto it = hash_to_id_.find(h);
  if (it != hash_to_id_.end()) collector_->message_relayed(it->second, from, to, now());
}

void NetworkBase::notify_detection(NodeId culprit, NodeId detector,
                                   metrics::DetectionMethod method, Duration after_delta1) {
  collector_->detection(
      metrics::DetectionEvent{culprit, detector, now(), method, after_delta1});
}

void NetworkBase::broadcast_pom(const ProofOfMisbehavior& pom) {
  if (!config_.instant_pom_broadcast) return;  // gossip handles dissemination
  for (ProtocolNode* node : generic_nodes_) {
    if (node->id() == pom.culprit || node->id() == pom.accuser) continue;
    (void)node->learn_pom(pom);
  }
}

void NetworkBase::warm_up(const std::vector<trace::ContactEvent>& history,
                          TimePoint window_start) {
  for (const auto& e : history) {
    if (e.start >= window_start) continue;
    const TimePoint t = TimePoint::zero() + (e.start - window_start);
    generic_nodes_.at(e.a.value())->note_encounter(e.b, t);
    generic_nodes_.at(e.b.value())->note_encounter(e.a, t);
  }
}

void NetworkBase::schedule_traffic(const std::vector<sim::TrafficDemand>& demands) {
  for (const auto& d : demands) {
    sim_.at(d.at, [this, d] {
      ProtocolNode& src = *generic_nodes_.at(d.src.value());
      Bytes body(d.body_size, 0);
      Rng body_rng = rng_.fork(d.id.value());
      for (auto& byte : body) byte = static_cast<std::uint8_t>(body_rng.next());
      const SealedMessage m =
          make_message(src.identity(), roster_.get(d.dst), d.id, body, rng_);
      collector_->message_generated(d.id, d.src, d.dst, now());
      hash_to_id_.emplace(m.hash(), d.id);
      inject(d.src, m);
    });
  }
}

void NetworkBase::run() {
  const SimLogClock clock(sim_);
  const ScopedLogClock scoped(&clock);
  const std::size_t fired = sim_.run();
  // g2g.* counters are excluded from core::to_json(ExperimentResult), so this
  // telemetry-only counter never perturbs bit-identity checks.
  obs_->registry.counter("g2g.sim.events_fired").add(fired);
  const TimePoint end =
      config_.horizon == TimePoint::zero() ? trace_->end_time() : config_.horizon;
  for (ProtocolNode* n : generic_nodes_) n->finalize(end);
  obs_->tracer.close_message_spans(end);
  if (suite_cache_) {
    // Flushed once after the run; these counters live under the fastpath.*
    // prefix, which core::to_json(ExperimentResult) excludes so cache-on and
    // cache-off runs serialize identically.
    const crypto::CachingSuite::Stats& s = suite_cache_->stats();
    obs_->registry.counter("fastpath.verify_cache.hits").add(s.verify_hits);
    obs_->registry.counter("fastpath.verify_cache.misses").add(s.verify_misses);
    obs_->registry.counter("fastpath.secret_cache.hits").add(s.secret_hits);
    obs_->registry.counter("fastpath.secret_cache.misses").add(s.secret_misses);
  }
}

bool NetworkBase::open_session(Session& s, ProtocolNode& a, ProtocolNode& b) {
  a.note_encounter(b.id(), now());
  b.note_encounter(a.id(), now());
  // PoM gossip: accusations spread epidemically at session start. Both
  // directions are collected side-effect-free, deduped, and re-verified
  // through one Suite::verify_batch call; the per-receiver accounting then
  // replays in the exact sequential order with the precomputed verdicts.
  // Should any PoM fail re-verification (never with conforming nodes, which
  // only ledger verified or self-issued PoMs), the batch is discarded and
  // the sequential reference path runs — bit-identical either way.
  relay::PomGossipBatch batch;
  batch.collect(a, b);
  batch.collect(b, a);
  if (!batch.empty()) {
    const std::uint64_t span = obs_->tracer.open_span(
        now(), "pom_gossip", /*parent=*/0, a.id(), b.id());
    const auto t0 = std::chrono::steady_clock::now();
    const bool all_ok = batch.verify(a.identity().suite(), roster_, obs_->counters);
    pom_batch_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (all_ok) {
      batch.apply(s, *obs_);
    } else {
      gossip_poms(s, a, b);
      gossip_poms(s, b, a);
    }
    obs_->tracer.close_span(now(), span, static_cast<std::int64_t>(batch.size()));
  }
  // If gossip revealed the peer is a known misbehaver, cut the session.
  return a.accepts_session_with(b.id()) && b.accepts_session_with(a.id());
}

void NetworkBase::gossip_poms(Session& s, ProtocolNode& from, ProtocolNode& to) {
  // Snapshot: learn_pom may append to `to`'s own list, never to `from`'s.
  const std::vector<ProofOfMisbehavior> known = from.known_poms();
  for (const auto& pom : known) {
    if (to.blacklisted(pom.culprit)) continue;  // peer already knows
    s.transfer(from, pom.wire_size(), obs::WireKind::Pom);
    obs_->counters.poms_gossiped->add();
    if (obs_->tracer.enabled()) {
      obs_->tracer.emit({now(), obs::EventKind::PomGossip, from.id(), to.id(),
                         pom.culprit.value(), 0});
    }
    (void)to.learn_pom(pom);
  }
}

}  // namespace g2g::proto
