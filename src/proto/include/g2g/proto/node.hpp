// Protocol node base: identity, behaviour, blacklist, and cost accounting.
//
// Every concrete protocol (Epidemic, Delegation, and their G2G versions)
// derives from ProtocolNode. A node interacts with the world only through
// its Env (simulation services) and through direct peer calls inside a
// Session, which models the authenticated, session-encrypted exchange two
// nodes run while in radio range.
#pragma once

#include <set>
#include <vector>

#include "g2g/crypto/identity.hpp"
#include "g2g/metrics/collector.hpp"
#include "g2g/obs/context.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/relay/pom.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/util/arena.hpp"
#include "g2g/util/rng.hpp"
#include "g2g/util/time.hpp"

namespace g2g::proto {

/// Rational deviations studied in the paper (Sections V and VII).
enum class Behavior : std::uint8_t {
  Faithful = 0,
  Dropper = 1,  ///< drops every message right after the relay phase
  Liar = 2,     ///< declares forwarding quality 0 (Delegation only)
  Cheater = 3,  ///< lowers the quality inside relayed messages (Delegation only)
  /// Keeps every message it accepts but never relays it onward. Undetectable
  /// by construction (it always passes the storage test) — the mechanism that
  /// defeats it is the *heavy HMAC*: answering tests costs more energy than
  /// relaying would have (Section IV-C).
  Hoarder = 4,
};

[[nodiscard]] const char* to_string(Behavior b);

struct BehaviorConfig {
  Behavior kind = Behavior::Faithful;
  /// "Selfish with outsiders": deviate only in sessions with nodes from
  /// other communities (k-clique communities of the trace).
  bool with_outsiders_only = false;
};

/// Protocol timing/size knobs. Paper defaults are per-scenario; see
/// core/presets.hpp.
struct NodeConfig {
  /// TTL-equivalent: how long a holder keeps looking for relays (G2G), and
  /// the message TTL of the vanilla protocols.
  Duration delta1 = Duration::minutes(30);
  /// How long protocol state (message or PoRs) is kept for possible tests.
  Duration delta2 = Duration::minutes(60);
  /// Number of relays each *relay* hands the message to (2 in the paper).
  std::size_t relay_fanout = 2;
  /// Cap for the *source* ("the sender S tries to relay it to the first two
  /// (at least) nodes it meets"): a rational sender spreads its own message
  /// as widely as it can, so the default is unbounded.
  std::size_t source_fanout = static_cast<std::size_t>(-1);
  /// Delegation quality flavour and snapshot timeframe.
  QualityKind quality_kind = QualityKind::DestinationFrequency;
  Duration quality_frame = Duration::minutes(34);
  /// Iterations of the storage-proof heavy HMAC.
  std::uint32_t heavy_hmac_iterations = 1024;
  /// TTL semantics for the G2G protocols. true (default): Delta1 counts from
  /// message creation and the expiry travels with the message, exactly like
  /// the vanilla protocols' TTL ("Delta1 plays the role of the message TTL").
  /// false: each holder counts Delta1 from its own receipt (ablation).
  bool global_ttl = true;
  /// Buffer cap for the *vanilla* protocols (messages; 0 = unlimited, the
  /// paper's assumption). When full, the entry closest to expiry is evicted.
  /// The G2G protocols ignore this: their storage obligation until Delta2 is
  /// part of the mechanism.
  std::size_t max_buffer_messages = 0;
};

/// Simulation services the Network provides to its nodes.
class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual TimePoint now() const = 0;
  [[nodiscard]] virtual Rng& rng() = 0;
  [[nodiscard]] virtual const Roster& roster() const = 0;
  [[nodiscard]] virtual metrics::Collector& collector() = 0;
  /// True iff a and b share no community (drives "selfish with outsiders").
  [[nodiscard]] virtual bool outsiders(NodeId a, NodeId b) const = 0;
  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// The run's observability bundle (tracer + counter registry). The default
  /// is a shared process-wide context with tracing disabled, so lightweight
  /// test Envs need not provide one; NetworkBase overrides with a per-run
  /// context (a requirement for parallel sweeps).
  [[nodiscard]] virtual obs::ObsContext& obs();
  /// Scratch arena for the zero-copy wire path: encoded frames and signed
  /// payloads of the current handshake/audit step live here. The engines
  /// reset() it at the start of every handshake attempt and audit challenge,
  /// so arena-backed views never outlive the step that produced them (see
  /// DESIGN.md "Buffer ownership"). The default is a per-thread arena for
  /// lightweight test Envs; NetworkBase overrides with a per-run arena.
  [[nodiscard]] virtual Arena& wire_arena();
  /// Trace reference for a message hash: the MessageId where the Env knows
  /// the mapping, otherwise the hash's first 8 bytes.
  [[nodiscard]] virtual std::uint64_t msg_ref(const MessageHash& h) const;

  virtual void notify_delivered(const MessageHash& h, NodeId dst) = 0;
  virtual void notify_relayed(const MessageHash& h, NodeId from, NodeId to) = 0;
  virtual void notify_detection(NodeId culprit, NodeId detector,
                                metrics::DetectionMethod method, Duration after_delta1) = 0;
  /// Called whenever a node issues a PoM. The default Network uses epidemic
  /// gossip; with instant_pom_broadcast it pushes the PoM to everyone at once
  /// (an upper bound on dissemination, used by the ablation bench).
  virtual void broadcast_pom(const ProofOfMisbehavior& pom) = 0;
};

class ProtocolNode;

/// Accounting wrapper for one authenticated contact. Construction charges
/// both endpoints the mutual-authentication cost (certificate exchange,
/// verification, session-key agreement).
class Session {
 public:
  /// `byte_budget` caps the total bytes the contact can carry (bandwidth x
  /// contact duration); SIZE_MAX = unlimited (the paper's assumption). The
  /// transfer that crosses the budget still completes — a handshake either
  /// finishes or is never started — but exhausted() turns true.
  Session(Env& env, ProtocolNode& a, ProtocolNode& b,
          std::size_t byte_budget = static_cast<std::size_t>(-1));

  [[nodiscard]] TimePoint now() const;
  [[nodiscard]] Env& env() { return env_; }
  /// The Env's wire-path scratch arena (see Env::wire_arena).
  [[nodiscard]] Arena& arena() { return env_.wire_arena(); }

  /// Account an unsigned transfer of `bytes` from `from` to the other side.
  /// `kind` feeds the per-wire-message-kind byte counters.
  void transfer(ProtocolNode& from, std::size_t bytes,
                obs::WireKind kind = obs::WireKind::Other);
  /// Account a signed control message: bytes + one signature by `from`,
  /// one verification by the receiver.
  void signed_control(ProtocolNode& from, std::size_t bytes,
                      obs::WireKind kind = obs::WireKind::Other);

  /// True once the contact's byte budget is spent; protocol loops stop
  /// starting new exchanges.
  [[nodiscard]] bool exhausted() const { return used_ >= budget_; }
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

  [[nodiscard]] ProtocolNode& peer_of(const ProtocolNode& n);

 private:
  Env& env_;
  ProtocolNode& a_;
  ProtocolNode& b_;
  std::size_t budget_;
  std::size_t used_ = 0;
};

class ProtocolNode {
 public:
  ProtocolNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
               BehaviorConfig behavior);
  virtual ~ProtocolNode() = default;

  ProtocolNode(const ProtocolNode&) = delete;
  ProtocolNode& operator=(const ProtocolNode&) = delete;

  [[nodiscard]] NodeId id() const { return identity_.node(); }
  [[nodiscard]] const crypto::NodeIdentity& identity() const { return identity_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] const BehaviorConfig& behavior() const { return behavior_; }

  // -- blacklist / PoM handling ---------------------------------------------
  /// Would this node open a session with `peer`?
  [[nodiscard]] bool accepts_session_with(NodeId peer) const;
  /// Receive a gossiped PoM: verify evidence, then blacklist the culprit.
  /// Returns true if the PoM was new and verified.
  bool learn_pom(const ProofOfMisbehavior& pom);
  /// learn_pom with the evidence verdict precomputed (relay::PomGossipBatch
  /// re-verifies a whole session's gossip through one Suite::verify_batch).
  /// The simulated verification cost is still charged per learner.
  bool learn_pom_preverified(const ProofOfMisbehavior& pom, bool verified);
  [[nodiscard]] const std::vector<ProofOfMisbehavior>& known_poms() const {
    return ledger_.known();
  }
  [[nodiscard]] bool blacklisted(NodeId n) const { return ledger_.blacklisted(n); }
  [[nodiscard]] relay::PomLedger& pom_ledger() { return ledger_; }
  [[nodiscard]] const relay::PomLedger& pom_ledger() const { return ledger_; }

  /// Called by the Network at the start of every authenticated session; the
  /// Delegation protocols override to update their encounter tables.
  virtual void note_encounter(NodeId peer, TimePoint t);

  /// Flush time-integrated accounting at the end of the run.
  void finalize(TimePoint end);

  // -- cost accounting (public: Session and peers drive these) ---------------
  void count_sent(std::size_t bytes);
  void count_received(std::size_t bytes);
  void count_signature();
  void count_verification();
  void count_heavy_hmac();
  void count_session();
  /// Buffer occupancy changed by `delta` bytes at the current time.
  void buffer_changed(std::int64_t delta);
  [[nodiscard]] std::int64_t buffered_bytes() const { return buffer_bytes_; }

 protected:
  /// Whether the node's behaviour says to deviate in a session with `peer`.
  [[nodiscard]] bool deviates_with(NodeId peer) const;
  [[nodiscard]] metrics::NodeCosts& costs();

  /// Observability helpers: one branch when tracing is off, plain counter
  /// increments otherwise. `this` node is the event's primary actor.
  void trace_event(obs::EventKind kind, NodeId peer, std::uint64_t ref = 0,
                   std::int64_t value = 0) {
    obs::Tracer& t = env_.obs().tracer;
    if (t.enabled()) t.emit({env_.now(), kind, id(), peer, ref, value});
  }
  [[nodiscard]] obs::ProtocolCounters& counters() { return env_.obs().counters; }
  /// Issue a PoM: record it locally (accuser blacklists immediately), notify
  /// metrics, and leave it for gossip.
  void issue_pom(ProofOfMisbehavior pom, metrics::DetectionMethod method,
                 Duration after_delta1);

  Env& env_;

 private:
  /// Shared tail of learn_pom / learn_pom_preverified past the verdict.
  bool admit_pom(const ProofOfMisbehavior& pom, bool ok);

  crypto::NodeIdentity identity_;
  NodeConfig config_;
  BehaviorConfig behavior_;
  relay::PomLedger ledger_;

  std::int64_t buffer_bytes_ = 0;
  TimePoint last_buffer_change_ = TimePoint::zero();
  bool finalized_ = false;
};

}  // namespace g2g::proto
