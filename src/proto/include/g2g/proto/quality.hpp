// Forwarding-quality bookkeeping for Delegation protocols.
//
// Every node records each encounter. Vanilla Delegation uses the *current*
// quality; G2G Delegation declares the quality computed at the end of the
// last *completed* timeframe (paper: 34 minutes) and retains the last two
// completed snapshots, so that a destination can later cross-check a relay's
// declaration against its own symmetric records (f_BD must equal f_DB).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "g2g/proto/wire.hpp"
#include "g2g/util/ids.hpp"
#include "g2g/util/time.hpp"

namespace g2g::proto {

class EncounterTable {
 public:
  explicit EncounterTable(Duration frame_length = Duration::minutes(34));

  /// Record one encounter with `peer` at time `t` (monotone non-decreasing).
  void record(NodeId peer, TimePoint t);

  /// Current (up-to-the-second) quality toward `dst` — vanilla Delegation.
  [[nodiscard]] double current(QualityKind kind, NodeId dst) const;

  /// Timeframe index containing `t`.
  [[nodiscard]] std::int64_t frame_of(TimePoint t) const {
    return t.micros() / frame_length_.count();
  }
  [[nodiscard]] Duration frame_length() const { return frame_length_; }

  struct Declared {
    double value = 0.0;
    std::int64_t frame = -1;
  };
  /// Quality as of the end of the last completed timeframe — what a G2G node
  /// declares in FQ_RESP at time `now`.
  [[nodiscard]] Declared declared(QualityKind kind, NodeId dst, TimePoint now) const;

  /// Quality toward `dst` as of the end of timeframe `frame`, if that frame
  /// is still retained at time `now` (the paper keeps the current value plus
  /// the two previous completed snapshots). nullopt => unverifiable.
  [[nodiscard]] std::optional<double> value_at_frame(QualityKind kind, NodeId dst,
                                                     std::int64_t frame, TimePoint now) const;

  [[nodiscard]] std::size_t encounter_count(NodeId peer) const;

 private:
  /// Quality from encounters strictly before `cutoff`.
  [[nodiscard]] double value_before(QualityKind kind, NodeId dst, TimePoint cutoff) const;

  Duration frame_length_;
  std::vector<std::vector<TimePoint>> encounters_;  // [peer] sorted timestamps
};

}  // namespace g2g::proto
