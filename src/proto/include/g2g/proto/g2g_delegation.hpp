// Give2Get Delegation Forwarding (Sections VI–VII).
//
// Builds on the G2G Epidemic machinery and adds:
//  * signed forwarding-quality declarations (FQ_RQST/FQ_RESP, Fig. 6) with
//    values computed over the last *completed* timeframe, so that the
//    destination can later cross-check them;
//  * a decoy destination D' whenever the candidate relay *is* the
//    destination, so a taker can never tell whether it is the destination
//    before signing the PoR;
//  * proofs of relay that carry the message quality f_m at handover and the
//    taker's declared quality, enabling the sender's chain check
//    f_AD = f1_m < f_BD = f2_m < f_CD  (catches *cheaters*);
//  * test by the destination: the source embeds the last two signed
//    declarations of candidates that failed to qualify; the destination
//    verifies them against its own symmetric records (catches *liars*).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "g2g/crypto/hmac.hpp"
#include "g2g/proto/node.hpp"
#include "g2g/proto/quality.hpp"

namespace g2g::proto {

class G2GDelegationNode final : public ProtocolNode {
 public:
  G2GDelegationNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                    BehaviorConfig behavior);

  void generate(const SealedMessage& m);
  static void run_contact(Session& s, G2GDelegationNode& x, G2GDelegationNode& y);

  void note_encounter(NodeId peer, TimePoint t) override;

  // Introspection (tests).
  [[nodiscard]] bool stores_message(const MessageHash& h) const;
  [[nodiscard]] std::size_t por_count(const MessageHash& h) const;
  [[nodiscard]] bool has_handled(const MessageHash& h) const { return handled_.contains(h); }
  [[nodiscard]] const EncounterTable& table() const { return table_; }
  [[nodiscard]] std::size_t pending_test_count() const;

  struct TestResponse {
    std::vector<ProofOfRelay> pors;
    std::optional<crypto::Digest> stored_hmac;
    /// Deferred storage proof: index into the caller's HeavyHmacBatch.
    std::optional<std::size_t> stored_job;
  };
  /// With `defer` set, a storage proof is queued into the batch instead of
  /// computed inline (see G2GEpidemicNode::respond_test).
  [[nodiscard]] TestResponse respond_test(Session& s, const MessageHash& h, BytesView seed,
                                          crypto::HeavyHmacBatch* defer = nullptr);

  /// Step 9: answer an FQ_RQST about destination `dst` for message `h`;
  /// nullopt declines (message already handled). Liars declare value 0.
  [[nodiscard]] std::optional<QualityDeclaration> respond_fq(Session& s,
                                                             G2GDelegationNode& giver,
                                                             const MessageHash& h, NodeId dst);

 private:
  struct Hold {
    SealedMessage msg;
    bool has_msg = false;
    std::size_t msg_bytes = 0;
    double fm = 0.0;  // quality label; changed only when forwarded
    TimePoint received;
    TimePoint expires;  // stop seeking relays past this point
    NodeId giver;
    bool is_source = false;
    bool is_destination = false;
    std::vector<ProofOfRelay> pors;
    std::vector<QualityDeclaration> attachments;       // carried toward D
    std::deque<QualityDeclaration> failed_candidates;  // source only, last 2
  };

  struct PendingTest {
    MessageHash h{};
    NodeId relay;
    TimePoint relayed_at;
    ProofOfRelay por;  // signed by the relay; contains f_AD
    bool done = false;
  };

  void purge(TimePoint now);
  void run_tests(Session& s, G2GDelegationNode& peer);
  void giver_pass(Session& s, G2GDelegationNode& taker);
  void complete_relay(Session& s, G2GDelegationNode& giver, const SealedMessage& m,
                      double new_fm, TimePoint expires,
                      const std::vector<QualityDeclaration>& attachments);
  /// Test by the destination: cross-check embedded declarations.
  void check_attachments(Session& s, const std::vector<QualityDeclaration>& attachments);
  /// Sender chain check over a relay's presented PoRs; issues a PoM and
  /// returns false on a detected cheat.
  bool chain_check(const PendingTest& t, const std::vector<ProofOfRelay>& pors,
                   NodeId real_dst, TimePoint now);
  void drop_payload(Hold& hold);
  [[nodiscard]] NodeId random_decoy(NodeId not_this) const;

  std::map<MessageHash, Hold> hold_;
  std::set<MessageHash> handled_;
  std::vector<PendingTest> tests_;
  /// Ground truth the source needs for chain checks: real destination per
  /// message it originated.
  std::map<MessageHash, NodeId> my_message_dst_;
  EncounterTable table_;
};

}  // namespace g2g::proto
