// Give2Get Delegation Forwarding (Sections VI–VII).
//
// Builds on the G2G relay core (relay/handshake.hpp, relay/audit.hpp) and
// adds the delegation policy:
//  * signed forwarding-quality declarations (FQ_RQST/FQ_RESP, Fig. 6) with
//    values computed over the last *completed* timeframe, so that the
//    destination can later cross-check them;
//  * a decoy destination D' whenever the candidate relay *is* the
//    destination, so a taker can never tell whether it is the destination
//    before signing the PoR;
//  * proofs of relay that carry the message quality f_m at handover and the
//    taker's declared quality, enabling the sender's chain check
//    f_AD = f1_m < f_BD = f2_m < f_CD  (catches *cheaters*);
//  * test by the destination: the source embeds the last two signed
//    declarations of candidates that failed to qualify; the destination
//    verifies them against its own symmetric records (catches *liars*).
//
// The handshake middle (steps 8–11) is the relay_attempt() hook; the
// delegation-only bookkeeping (encounter table, per-message destination
// records, chain check, test by the destination) rides the RelayNode hooks.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "g2g/proto/quality.hpp"
#include "g2g/proto/relay/relay_node.hpp"

namespace g2g::proto {

class G2GDelegationNode final : public relay::RelayNode {
 public:
  G2GDelegationNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                    BehaviorConfig behavior);

  static void run_contact(Session& s, G2GDelegationNode& x, G2GDelegationNode& y) {
    run_contact_impl(s, x, y);
  }

  void note_encounter(NodeId peer, TimePoint t) override;

  [[nodiscard]] const EncounterTable& table() const { return table_; }

  /// Step 9: answer an FQ_RQST about destination `dst` for message `h`;
  /// nullopt declines (message already handled). Liars declare value 0.
  [[nodiscard]] std::optional<QualityDeclaration> respond_fq(Session& s,
                                                             G2GDelegationNode& giver,
                                                             const MessageHash& h, NodeId dst);

 protected:
  /// Steps 8–11 of Fig. 6: FQ_RQST/FQ_RESP negotiation with the decoy rule,
  /// the quality gate, RELAY with embedded declarations, the delegation PoR.
  std::optional<relay::HandshakeOutcome> relay_attempt(Session& s, relay::RelayNode& taker,
                                                       const MessageHash& h,
                                                       relay::Hold& hold) override;
  double source_fm(const SealedMessage& m) override;
  void on_generate(const SealedMessage& m) override;
  void on_hold_erased(const MessageHash& h) override;
  void on_delivered(Session& s,
                    const std::vector<QualityDeclaration>& attachments) override;
  bool begin_test(relay::PendingTest& t, NodeId& real_dst) override;
  bool screen_pors(const relay::PendingTest& t, const std::vector<ProofOfRelay>& pors,
                   NodeId real_dst, TimePoint now) override;

 private:
  /// Test by the destination: cross-check embedded declarations.
  void check_attachments(Session& s, const std::vector<QualityDeclaration>& attachments);
  /// Sender chain check over a relay's presented PoRs; issues a PoM and
  /// returns false on a detected cheat.
  bool chain_check(const relay::PendingTest& t, const std::vector<ProofOfRelay>& pors,
                   NodeId real_dst, TimePoint now);
  [[nodiscard]] NodeId random_decoy(NodeId not_this) const;

  /// Ground truth the source needs for chain checks: real destination per
  /// message it originated.
  std::map<MessageHash, NodeId> my_message_dst_;
  EncounterTable table_;
};

}  // namespace g2g::proto
