// Signed protocol artefacts and control-message sizing.
//
// Three artefacts outlive the session that produced them and therefore need
// real signatures and canonical encodings:
//   * ProofOfRelay  — PoR, signed by the taker. Epidemic form (Fig. 1 step 4):
//     ⟨POR, H(m), A, B⟩_B. Delegation form (Fig. 6 step 11) additionally
//     carries the declared destination D', the message quality f_m at
//     handover and the taker's declared quality f_BD'.
//   * QualityDeclaration — ⟨FQ_RESP, B, D', f_BD'⟩_B, with the timeframe the
//     value was computed in. Stored by sources when a candidate fails, later
//     embedded toward the destination (test by the destination).
//   * ProofOfMisbehavior — PoM, gossiped network-wide; whoever verifies it
//     blacklists the culprit.
//
// Transient handshake steps (RELAY_RQST, RELAY_OK, KEY, ...) are not
// materialized as structs; their wire cost is accounted via the size helpers
// at the bottom.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "g2g/proto/message.hpp"
#include "g2g/util/time.hpp"

namespace g2g::proto {

/// Which flavour of forwarding quality a Delegation network runs on.
enum class QualityKind : std::uint8_t {
  DestinationFrequency = 0,   ///< encounters with the destination
  DestinationLastContact = 1, ///< time of last encounter with the destination
};

[[nodiscard]] const char* to_string(QualityKind kind);

/// Sentinel for "never met the destination". For DestinationLastContact the
/// quality is the encounter time (possibly negative: history predating the
/// simulation window), so "never" must rank below every real timestamp.
inline constexpr double kNeverMet = -1e18;

/// The worst possible declarable quality of a kind — what a *liar* reports
/// (the paper's "forwarding quality equal to 0" generalized to both kinds).
[[nodiscard]] double min_quality(QualityKind kind);

/// ⟨FQ_RESP, B, D', f, frame⟩_B with timestamp.
struct QualityDeclaration {
  NodeId declarer;
  NodeId dst;
  double value = 0.0;
  std::int64_t frame = -1;  ///< completed timeframe the value was computed in
  TimePoint at;             ///< when the declaration was made
  Bytes signature;

  [[nodiscard]] Bytes signed_payload() const;
  [[nodiscard]] std::size_t signed_payload_size() const;
  void signed_payload_into(SpanWriter& w) const;
  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  /// Strict decode of exactly one declaration: rejects trailing bytes.
  [[nodiscard]] static QualityDeclaration decode(BytesView b);
  /// Streaming decode for frames that embed declarations mid-stream.
  [[nodiscard]] static QualityDeclaration decode(Reader& r);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Proof of relay, signed by the taker.
struct ProofOfRelay {
  MessageHash h{};
  NodeId giver;
  NodeId taker;
  TimePoint at;

  /// Delegation extension (ignored for epidemic PoRs).
  bool delegation = false;
  NodeId declared_dst;         ///< D' (the real destination or a decoy)
  double msg_quality = 0.0;    ///< f_m the giver attached at handover
  double taker_quality = 0.0;  ///< f_BD' the taker declared
  std::int64_t quality_frame = -1;

  Bytes taker_signature;

  [[nodiscard]] Bytes signed_payload() const;
  [[nodiscard]] std::size_t signed_payload_size() const;
  void signed_payload_into(SpanWriter& w) const;
  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  /// Strict decode of exactly one PoR: rejects trailing bytes.
  [[nodiscard]] static ProofOfRelay decode(BytesView b);
  /// Streaming decode for encodings embedded mid-stream.
  [[nodiscard]] static ProofOfRelay decode(Reader& r);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Non-owning decode of a ProofOfRelay: identical fields, but the signature
/// is a view into the buffer the PoR was decoded from. The handshake wire
/// path decodes and verifies through this view without touching the heap;
/// to_owned() materializes a ProofOfRelay when it must be stored (Holds,
/// PoM evidence) past the buffer's lifetime.
struct ProofOfRelayView {
  MessageHash h{};
  NodeId giver;
  NodeId taker;
  TimePoint at;

  bool delegation = false;
  NodeId declared_dst;
  double msg_quality = 0.0;
  double taker_quality = 0.0;
  std::int64_t quality_frame = -1;

  BytesView taker_signature;

  [[nodiscard]] std::size_t signed_payload_size() const;
  void signed_payload_into(SpanWriter& w) const;
  [[nodiscard]] ProofOfRelay to_owned() const;
  [[nodiscard]] std::size_t wire_size() const;
  /// Strict decode of exactly one PoR: rejects trailing bytes.
  [[nodiscard]] static ProofOfRelayView decode(BytesView b);
};

/// Network-wide accusation with verifiable evidence.
struct ProofOfMisbehavior {
  enum class Kind : std::uint8_t {
    RelayFailure = 0,  ///< culprit signed a PoR but failed the storage test
    QualityLie = 1,    ///< culprit's signed declaration contradicts the destination
    ChainCheat = 2,    ///< culprit's outgoing PoR contradicts its incoming PoR
  };

  Kind kind = Kind::RelayFailure;
  NodeId culprit;
  NodeId accuser;
  TimePoint at;

  /// RelayFailure: the PoR the culprit signed when accepting the message.
  /// ChainCheat: the PoR the *culprit* signed for the accuser (shows f_AD)...
  std::optional<ProofOfRelay> evidence_accepted;
  /// ChainCheat: ...and the PoR the culprit presented (signed by the next
  /// relay, shows the f1_m the culprit attached).
  std::optional<ProofOfRelay> evidence_forwarded;
  /// QualityLie: the culprit's signed declaration.
  std::optional<QualityDeclaration> evidence_declaration;

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  /// Strict inverse of encode(): rejects unknown kinds, non-boolean presence
  /// flags, trailing bytes, and evidence that does not match the claimed kind
  /// (e.g. a RelayFailure without the accepted PoR). Throws DecodeError.
  [[nodiscard]] static ProofOfMisbehavior decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Verify a PoM's internal evidence against the roster (signature checks plus
/// the ChainCheat arithmetic). QualityLie accusations additionally rely on
/// the accuser's own records, which third parties accept (the destination has
/// no interest in lying — Section VI-A).
[[nodiscard]] bool verify_pom(const crypto::Suite& suite, const Roster& roster,
                              const ProofOfMisbehavior& pom);

/// Split form of verify_pom for batched re-verification: runs every
/// structural / field / arithmetic check of the claimed kind and, when they
/// pass, appends the evidence signature checks as batchable requests
/// (`payloads` owns the signed payloads the request views point into, so it
/// must outlive the batch call). Returns the structural verdict; the PoM is
/// valid iff this returns true AND every appended request verifies.
[[nodiscard]] bool pom_collect_verification(const Roster& roster, const ProofOfMisbehavior& pom,
                                            std::deque<Bytes>& payloads,
                                            std::vector<crypto::VerifyRequest>& requests);

/// Approximate wire sizes of transient handshake steps, for cost accounting.
/// `sig` is the suite's signature size.
namespace wire {
[[nodiscard]] constexpr std::size_t relay_rqst(std::size_t sig) { return 1 + 32 + sig; }
[[nodiscard]] constexpr std::size_t relay_ok(std::size_t sig) { return 1 + 32 + sig; }
[[nodiscard]] constexpr std::size_t relay_data(std::size_t sig, std::size_t msg_bytes) {
  return 1 + 32 + 8 + msg_bytes + sig;
}
[[nodiscard]] constexpr std::size_t key_reveal(std::size_t sig) { return 1 + 32 + 32 + sig; }
[[nodiscard]] constexpr std::size_t por_rqst(std::size_t sig) { return 1 + 32 + 32 + sig; }
[[nodiscard]] constexpr std::size_t stored_resp(std::size_t sig) {
  return 1 + 32 + 32 + 32 + sig;
}
[[nodiscard]] constexpr std::size_t fq_rqst(std::size_t sig) { return 1 + 32 + 4 + sig; }
[[nodiscard]] constexpr std::size_t certificate(std::size_t sig) { return 4 + 32 + sig; }
}  // namespace wire

}  // namespace g2g::proto
