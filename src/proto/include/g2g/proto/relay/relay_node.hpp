// RelayNode: the protocol-agnostic G2G relay core.
//
// A RelayNode is a ProtocolNode that owns the two per-node engines of the
// relay core — HandshakeEngine (5-step relay phase, frame-driven) and
// AuditEngine (pending tests, POR_RQST challenges, storage proofs) — plus,
// through its ProtocolNode base, the PomLedger (blacklist + PoM log). The
// concrete G2G protocols derive from it and supply only policy:
//
//   * relay_attempt(): the policy-specific middle of one handshake —
//     epidemic offer/accept vs. delegation quality negotiation with decoy
//     destinations — returning the verified PoR and the encoded data frame.
//   * the small hooks (source_fm, on_generate, on_hold_erased, on_delivered,
//     begin_test, screen_pors) that cover the delegation-only bookkeeping
//     (encounter-table label, destination records, chain check, test by the
//     destination).
//
// The engines are friends: they act with the node's own access rights
// (cost counters, trace events, PoM issuance) without widening the
// ProtocolNode interface.
#pragma once

#include "g2g/proto/node.hpp"
#include "g2g/proto/relay/audit.hpp"
#include "g2g/proto/relay/handshake.hpp"
#include "g2g/proto/relay/state.hpp"

namespace g2g::proto::relay {

class RelayNode : public ProtocolNode {
 public:
  RelayNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
            BehaviorConfig behavior, AuditEngine::PresentMode mode)
      : ProtocolNode(env, std::move(identity), config, behavior),
        handshake_(*this),
        audit_(*this, mode) {}

  using TestResponse = relay::TestResponse;

  /// Source-side admission: seed the hold table and the policy's records.
  void generate(const SealedMessage& m) {
    handshake_.generate(m, source_fm(m));
    on_generate(m);
  }

  // Introspection (tests).
  [[nodiscard]] bool stores_message(const MessageHash& h) const;
  [[nodiscard]] std::size_t por_count(const MessageHash& h) const;
  [[nodiscard]] bool has_handled(const MessageHash& h) const {
    return handshake_.has_handled(h);
  }
  [[nodiscard]] std::size_t pending_test_count() const { return audit_.pending_count(); }

  /// Relay side of a POR_RQST challenge (public so tests can drive it; see
  /// AuditEngine::respond for the `defer` contract).
  [[nodiscard]] TestResponse respond_test(Session& s, const MessageHash& h, BytesView seed,
                                          crypto::HeavyHmacBatch* defer = nullptr) {
    return audit_.respond(s, h, seed, defer);
  }

  /// Engine access. Public because handshakes and audits are symmetric: a
  /// node's engine drives the *peer's* engine across the session.
  [[nodiscard]] HandshakeEngine& handshake() { return handshake_; }
  [[nodiscard]] const HandshakeEngine& handshake() const { return handshake_; }
  [[nodiscard]] AuditEngine& audit() { return audit_; }
  [[nodiscard]] const AuditEngine& audit() const { return audit_; }

 protected:
  /// The shared per-contact schedule: housekeeping, then the test phases
  /// (the source challenges its relays before new relays are negotiated),
  /// then the giver passes.
  static void run_contact_impl(Session& s, RelayNode& x, RelayNode& y);

  // -- policy hooks ----------------------------------------------------------
  /// One policy-specific handshake attempt against `taker` for `hold`.
  /// Everything up to (and including) PoR verification happens here; nullopt
  /// means the attempt ended (declined/aborted) with all accounting done.
  virtual std::optional<HandshakeOutcome> relay_attempt(Session& s, RelayNode& taker,
                                                        const MessageHash& h, Hold& hold) = 0;
  /// Initial quality label f_m of a self-generated message.
  [[nodiscard]] virtual double source_fm(const SealedMessage& /*m*/) { return 0.0; }
  /// After generate() seeded the hold table.
  virtual void on_generate(const SealedMessage& /*m*/) {}
  /// Before purge() erases an expired hold.
  virtual void on_hold_erased(const MessageHash& /*h*/) {}
  /// At the destination, right after delivery: Delegation runs the test by
  /// the destination over the embedded declarations.
  virtual void on_delivered(Session& /*s*/, const std::vector<QualityDeclaration>&
                            /*attachments*/) {}
  /// First screen of a due pending test; false skips the challenge entirely
  /// (Delegation: the per-message destination record is gone).
  virtual bool begin_test(PendingTest& /*t*/, NodeId& /*real_dst*/) { return true; }
  /// Screen the presented PoRs before the validity pass; false fails the
  /// test (Delegation: chain check detected a cheat, PoM already issued).
  virtual bool screen_pors(const PendingTest& /*t*/, const std::vector<ProofOfRelay>& /*pors*/,
                           NodeId /*real_dst*/, TimePoint /*now*/) {
    return true;
  }

 private:
  friend class HandshakeEngine;
  friend class AuditEngine;

  HandshakeEngine handshake_;
  AuditEngine audit_;
};

}  // namespace g2g::proto::relay
