// PomLedger + PomGossipBatch: the accusation layer of the relay core.
//
// PomLedger is the per-node state every protocol shares: the blacklist and
// the log of PoMs the node has verified (or issued) and will gossip onward.
//
// PomGossipBatch is one session's worth of PoM gossip, restructured for
// batched re-verification: both gossip directions are *collected* first
// (replicating, without side effects, exactly which PoMs the sequential
// exchange would transfer), the unique PoMs are deduped by their canonical
// encoding and re-verified through one Suite::verify_batch call, and the
// per-receiver accounting (bytes, counters, traces, learning) then *applies*
// in the original sequential order with the precomputed verdicts. If any
// collected PoM fails re-verification — never the case with conforming
// nodes, since only verified or self-issued PoMs enter a ledger — the caller
// discards the batch (collect() touched nothing) and falls back to the plain
// sequential gossip, keeping the two paths bit-identical unconditionally.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "g2g/proto/wire.hpp"

namespace g2g::obs {
struct ObsContext;
struct ProtocolCounters;
}  // namespace g2g::obs

namespace g2g::proto {
class ProtocolNode;
class Session;
}  // namespace g2g::proto

namespace g2g::proto::relay {

/// Per-node accusation state: who is evicted, and the verifiable evidence.
class PomLedger {
 public:
  [[nodiscard]] bool blacklisted(NodeId n) const { return blacklist_.contains(n); }
  [[nodiscard]] const std::vector<ProofOfMisbehavior>& known() const { return poms_; }

  void blacklist(NodeId n) { blacklist_.insert(n); }
  /// Append a verified (or self-issued) PoM; returns the stored copy.
  const ProofOfMisbehavior& record(ProofOfMisbehavior pom) {
    poms_.push_back(std::move(pom));
    return poms_.back();
  }

 private:
  std::set<NodeId> blacklist_;
  std::vector<ProofOfMisbehavior> poms_;
};

/// One session's PoM gossip: collect -> verify (dedup + one verify_batch) ->
/// apply, with a side-effect-free collect so the caller can still fall back
/// to the sequential path when a verdict comes back false.
class PomGossipBatch {
 public:
  /// Record what the sequential `from -> to` gossip pass would transfer.
  /// Mirrors the receiver's blacklist growth speculatively (a PoM a receiver
  /// would learn suppresses later PoMs about the same culprit), so calling
  /// this for both directions reproduces the sequential exchange exactly.
  void collect(ProtocolNode& from, ProtocolNode& to);

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Dedup the collected PoMs by canonical encoding and re-verify the unique
  /// ones through one Suite::verify_batch call (structural checks stay per
  /// PoM). Returns true iff every PoM a receiver would actually judge
  /// (culprit != receiver) verified; on false the caller must discard the
  /// batch and gossip sequentially.
  [[nodiscard]] bool verify(const crypto::Suite& suite, const Roster& roster,
                            obs::ProtocolCounters& counters);

  /// Replay the gossip in collection order: byte accounting, gossip counters
  /// and traces, then learn_pom_preverified with the batch verdicts. Only
  /// valid after verify() returned true.
  void apply(Session& s, obs::ObsContext& obs);

 private:
  struct Item {
    ProtocolNode* from;
    ProtocolNode* to;
    const ProofOfMisbehavior* pom;  ///< points into store_
  };

  std::deque<ProofOfMisbehavior> store_;  ///< pointer-stable copies
  std::vector<Item> items_;
  /// Speculative per-receiver blacklist growth during collect().
  std::map<const ProtocolNode*, std::set<NodeId>> spec_blacklist_;
  std::vector<char> item_ok_;  ///< per-item verdicts, filled by verify()
};

}  // namespace g2g::proto::relay
