// AuditEngine: the (Delta1, Delta2] test-by-sender machinery (Fig. 2).
//
// One engine per node owns the pending-test registry and runs both sides of
// the audit: the source's challenge loop (POR_RQST frames, PoR batch
// verification through Suite::verify_batch, storage-proof recomputation with
// HeavyHmacBatch deferral) and the relay's response (present PoRs and/or a
// heavy-HMAC storage proof). The two former copies of this loop in the
// epidemic and delegation nodes differed only in how PoRs are presented
// (PresentMode) and in two delegation-only screens (the host's begin_test /
// screen_pors hooks: destination lookup and the chain check).
#pragma once

#include <cstdint>
#include <vector>

#include "g2g/crypto/hmac.hpp"
#include "g2g/proto/relay/state.hpp"

namespace g2g::proto {
class Session;
}

namespace g2g::proto::relay {

class RelayNode;

class AuditEngine {
 public:
  /// How a challenged relay presents its evidence.
  enum class PresentMode : std::uint8_t {
    /// Epidemic: a full PoR set settles it; otherwise a storage proof plus
    /// whatever PoRs exist (shown, not transferred).
    PorsOrStorage,
    /// Delegation: every PoR is always transferred (the sender chain-checks
    /// them), a storage proof covers the shortfall.
    PorsThenStorage,
  };

  AuditEngine(RelayNode& host, PresentMode mode) : host_(host), mode_(mode) {}

  /// Source side: remember that `test.relay` must be challenged when re-met.
  void arm(PendingTest test) { tests_.push_back(std::move(test)); }

  /// Source side: challenge `peer` for every due pending test.
  void run(Session& s, RelayNode& peer);

  /// Relay side: answer a POR_RQST for `h` with fresh `seed`. With `defer`
  /// set, a storage proof is queued into the batch (stored_job) rather than
  /// computed inline, so the audit loop can run every chain of a contact in
  /// parallel SHA-256 lanes; all byte accounting, counters, and trace events
  /// stay at challenge time either way.
  [[nodiscard]] TestResponse respond(Session& s, const MessageHash& h, BytesView seed,
                                     crypto::HeavyHmacBatch* defer);

  [[nodiscard]] std::vector<PendingTest>& tests() { return tests_; }
  [[nodiscard]] const std::vector<PendingTest>& tests() const { return tests_; }
  [[nodiscard]] std::size_t pending_count() const;

 private:
  /// The storage-proof leg of respond(): heavy HMAC (eager or deferred into
  /// `defer`), STORED_RESP frame accounting.
  void storage_proof(Session& s, const Hold& hold, const MessageHash& h, BytesView seed,
                     TestResponse& resp, crypto::HeavyHmacBatch* defer);

  RelayNode& host_;
  PresentMode mode_;
  std::vector<PendingTest> tests_;
};

}  // namespace g2g::proto::relay
