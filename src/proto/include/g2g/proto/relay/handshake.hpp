// HandshakeEngine: the 5-step relay phase (Fig. 1 / Fig. 6), frame-driven.
//
// One engine per node owns the hold table and the handled set, and runs both
// sides of the handshake against the peer node's engine. Every step crosses
// the session as an explicitly encoded frame (relay/frames.hpp) that the
// receiving side decodes — the struct-by-reference shortcut of the former
// monolithic nodes is gone, so a real transport backend only has to carry
// the frame bytes. The policy-specific middle of the handshake (epidemic
// accept vs. delegation quality negotiation) is delegated to the host's
// relay_attempt() hook; the shared tail (PoR bookkeeping, key reveal,
// completion, test arming, forwarding-duty payload drop) lives here.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "g2g/proto/relay/state.hpp"

namespace g2g::proto {
class Session;
}

namespace g2g::proto::relay {

class RelayNode;

class HandshakeEngine {
 public:
  explicit HandshakeEngine(RelayNode& host) : host_(host) {}

  /// Source-side message admission (the host supplies the initial f_m).
  void generate(const SealedMessage& m, double fm);

  /// Delta2 housekeeping: expired holds go (the host is told first so it can
  /// drop its own per-message records), resolved or out-of-window tests go.
  void purge(TimePoint now);

  /// Giver side: offer every eligible hold to `taker`, one handshake each.
  void giver_pass(Session& s, RelayNode& taker);

  /// Taker side of steps 2/4 for the epidemic handshake: decode the RELAY_RQST
  /// frame, answer with RELAY_OK or a decline, and countersign a PoR. Returns
  /// the encoded PoR — a view into the session arena, valid for the current
  /// handshake attempt — or nullopt on decline (message already handled).
  [[nodiscard]] std::optional<BytesView> answer_relay_rqst(Session& s, RelayNode& giver,
                                                           BytesView rqst_frame);

  /// Taker side of step 4 alone: sign `por`, account its transfer, and return
  /// its canonical encoding (the giver decodes and verifies; the bytes live in
  /// the session arena for the current attempt). The delegation handshake
  /// builds the PoR giver-side (it knows D', f_m, f_BD') and only needs the
  /// countersignature.
  [[nodiscard]] BytesView countersign(Session& s, RelayNode& giver, ProofOfRelay por);

  /// Taker side after the key reveal (step 5): decode the data and key
  /// frames, then store / deliver / drop per behaviour.
  void complete_relay(Session& s, RelayNode& giver, BytesView data_frame,
                      BytesView key_frame, double new_fm, TimePoint expires);

  /// Forwarding duty fulfilled (or Delta2): the payload may go, PoRs stay.
  void drop_payload(Hold& hold);

  [[nodiscard]] bool has_handled(const MessageHash& h) const { return handled_.contains(h); }
  [[nodiscard]] std::map<MessageHash, Hold>& holds() { return hold_; }
  [[nodiscard]] const std::map<MessageHash, Hold>& holds() const { return hold_; }

 private:
  RelayNode& host_;
  std::map<MessageHash, Hold> hold_;
  std::set<MessageHash> handled_;
};

}  // namespace g2g::proto::relay
