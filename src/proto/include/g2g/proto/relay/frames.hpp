// Wire frames for the transient G2G handshake and audit steps.
//
// The relay core drives every handshake step through an explicit encoded
// frame: the sender encodes, the receiver decodes, and the canonical bytes
// are what the session accounts (frame size + the control signature). The
// persistent artefacts (ProofOfRelay, QualityDeclaration, ProofOfMisbehavior)
// keep their canonical encodings in wire.hpp; these frames cover the steps
// that were previously only *sized* by the wire:: helpers. Each frame's
// encoded size matches its wire:: size helper minus the trailing signature,
// so switching the protocol loops from size arithmetic to real frames is
// byte-identical in the cost model.
//
// Framing rules (shared with the artefacts): canonical little-endian, a
// leading one-byte tag, fixed-size fields, and strict decoding — unknown
// tags, truncation, and trailing bytes all throw DecodeError. Every frame
// carries the full codec triple — encode() / decode() / wire_size(), with
// wire_size() computed arithmetically and pinned to encode().size() in
// tests/relay_frames_test.cpp (g2g-lint rule wire-encode-triple).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "g2g/proto/message.hpp"
#include "g2g/proto/wire.hpp"
#include "g2g/util/arena.hpp"

namespace g2g::proto::relay {

/// One byte of frame discrimination on the wire. RELAY_OK and its decline
/// are distinct tags (the accept bit is the tag), everything else carries
/// its payload after the tag.
enum class FrameTag : std::uint8_t {
  RelayRqst = 1,    ///< step 1: ⟨RELAY_RQST, H(m)⟩
  RelayOk = 2,      ///< step 2: ⟨RELAY_OK, H(m)⟩
  RelayDecline = 3, ///< step 2: the taker already handled H(m)
  RelayData = 4,    ///< step 3: ⟨E_k(m) [, declarations]⟩
  KeyReveal = 5,    ///< step 5: ⟨KEY, H(m), k⟩
  PorRqst = 6,      ///< audit: ⟨POR_RQST, H(m), seed⟩
  StoredResp = 7,   ///< audit: ⟨STORED, H(m), seed, HMAC digest⟩
  FqRqst = 8,       ///< delegation step 8: ⟨FQ_RQST, H(m), D'⟩
};

/// Step 1: the giver offers H(m).
struct RelayRqstFrame {
  MessageHash h{};

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static RelayRqstFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Step 2: accept (tag RelayOk) or decline (tag RelayDecline).
struct RelayOkFrame {
  MessageHash h{};
  bool accept = true;

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static RelayOkFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Step 3: the encrypted message plus any embedded quality declarations
/// (Delegation's test-by-destination attachments; empty for Epidemic).
/// Payload layout: u64 byte length, then the message's canonical encoding
/// followed by the attachments' canonical encodings back to back.
struct RelayDataFrame {
  MessageHash h{};
  SealedMessage msg;
  std::vector<QualityDeclaration> attachments;

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static RelayDataFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Non-owning decode of a RelayData frame: the sealed message is a
/// SealedMessageView into the frame bytes and the attachments stay encoded
/// (back-to-back declarations in `attachments_wire`) until explicitly
/// materialized. The epidemic handshake never carries attachments, so its
/// receive path decodes through this view without touching the heap.
struct RelayDataFrameView {
  MessageHash h{};
  SealedMessageView msg;
  BytesView attachments_wire;

  /// Decode the embedded declarations (empty for Epidemic frames).
  [[nodiscard]] std::vector<QualityDeclaration> decode_attachments() const;
  [[nodiscard]] static RelayDataFrameView decode(BytesView b);
};

/// Step 5: the key reveal. The simulation emulates the encryption (the box
/// seal already protects the content), so the key bytes are a placeholder of
/// the real 32-byte key the frame would carry.
struct KeyRevealFrame {
  MessageHash h{};
  std::array<std::uint8_t, 32> key{};

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static KeyRevealFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Audit challenge: prove you relayed H(m) (PoRs) or still store it (heavy
/// HMAC over the fresh seed).
struct PorRqstFrame {
  MessageHash h{};
  std::array<std::uint8_t, 32> seed{};

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static PorRqstFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Audit storage proof: the heavy HMAC digest over (m, seed).
struct StoredRespFrame {
  /// Encoded size: tag + hash + seed + digest (matches wire::stored_resp
  /// minus the control signature).
  static constexpr std::size_t kWireBytes = 1 + 32 + 32 + 32;

  MessageHash h{};
  std::array<std::uint8_t, 32> seed{};
  crypto::Digest digest{};

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static StoredRespFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Borrowed-parts encoding of a RelayData frame: identical bytes to
/// RelayDataFrame::encode() for the same (h, msg, attachments), but straight
/// from the hold's message and declaration spans — no frame struct, no
/// message copy. This is what the handshake hot path uses.
[[nodiscard]] std::size_t relay_data_wire_size(const SealedMessage& msg,
                                               std::span<const QualityDeclaration> attachments);
void relay_data_encode_into(SpanWriter& w, const MessageHash& h, const SealedMessage& msg,
                            std::span<const QualityDeclaration> attachments);
/// relay_data_encode_into through an exactly-reserved arena span.
[[nodiscard]] BytesView arena_relay_data(Arena& arena, const MessageHash& h,
                                         const SealedMessage& msg,
                                         std::span<const QualityDeclaration> attachments);

/// Delegation step 8: request a signed quality declaration toward D'.
struct FqRqstFrame {
  MessageHash h{};
  NodeId dst;

  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  [[nodiscard]] static FqRqstFrame decode(BytesView b);
  [[nodiscard]] std::size_t wire_size() const;
};

}  // namespace g2g::proto::relay
