// Shared per-message state of the relay core.
//
// Both G2G protocols track the same things about a held message: the payload
// (until the forwarding duty is met), the PoRs collected from takers, and —
// for Delegation — the quality label f_m plus the declarations carried toward
// the destination. The engines (handshake.hpp, audit.hpp) own containers of
// these; the policy nodes reach them through their host accessors.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "g2g/crypto/hmac.hpp"
#include "g2g/proto/message.hpp"
#include "g2g/proto/wire.hpp"

namespace g2g::proto::relay {

/// Everything a node keeps about one message between receipt and Delta2.
/// The Delegation-only fields (fm, attachments, failed_candidates) stay at
/// their defaults for Epidemic holds.
struct Hold {
  SealedMessage msg;
  bool has_msg = false;  ///< payload still stored (PoRs may outlive it)
  std::size_t msg_bytes = 0;
  double fm = 0.0;  ///< quality label; changed only when forwarded (Delegation)
  TimePoint received;
  TimePoint expires;  ///< stop seeking relays past this point (Delta1 / TTL)
  NodeId giver;
  bool is_source = false;
  bool is_destination = false;
  std::vector<ProofOfRelay> pors;
  std::vector<QualityDeclaration> attachments;       ///< carried toward D
  std::deque<QualityDeclaration> failed_candidates;  ///< source only, last 2
};

/// A relay the source must challenge when re-met in (Delta1, Delta2].
struct PendingTest {
  MessageHash h{};
  NodeId relay;
  TimePoint relayed_at;
  ProofOfRelay por;  ///< the PoR the relay signed for us
  bool done = false;
};

/// Response to a POR_RQST challenge.
struct TestResponse {
  std::vector<ProofOfRelay> pors;
  std::optional<crypto::Digest> stored_hmac;  ///< heavy HMAC over (m, seed)
  /// Deferred storage proof: index of the chain queued into the caller's
  /// HeavyHmacBatch instead of an eager stored_hmac digest.
  std::optional<std::size_t> stored_job;
};

/// What a policy-specific relay attempt hands back to the shared handshake
/// tail (PoR bookkeeping, key reveal, completion, test arming).
struct HandshakeOutcome {
  ProofOfRelay por;  ///< verified PoR the taker signed
  /// The encoded RelayDataFrame, already accounted. A view into the session
  /// arena: valid for the current handshake attempt only (the engine resets
  /// the arena before the next attempt begins).
  // g2g-lint: allow(view-escape) -- documented engine seam: consumed within the same handshake attempt, before the reset
  BytesView data_frame;
  /// Delegation relabels f_m with the taker's declared quality on a true
  /// delegation step; Epidemic never does.
  bool update_fm = false;
  double new_fm = 0.0;
};

}  // namespace g2g::proto::relay
