// Vanilla Epidemic Forwarding (Vahdat & Becker, 2000).
//
// Every contact is a forwarding opportunity: if the giver carries a message
// the taker has not seen, the message is replicated to the taker. Used by the
// paper as the delay/success-rate optimal (but costly) benchmark, and as the
// victim of the message-dropper experiments (Fig. 3).
#pragma once

#include <map>
#include <set>

#include "g2g/proto/node.hpp"

namespace g2g::proto {

class EpidemicNode final : public ProtocolNode {
 public:
  using ProtocolNode::ProtocolNode;

  /// Inject a locally-generated message (the node is its source).
  void generate(const SealedMessage& m);

  /// Run both directions of the forwarding exchange for one contact.
  static void run_contact(Session& s, EpidemicNode& x, EpidemicNode& y);

  // Introspection (tests).
  [[nodiscard]] bool carries(const MessageHash& h) const { return buffer_.contains(h); }
  [[nodiscard]] bool has_seen(const MessageHash& h) const { return seen_.contains(h); }
  [[nodiscard]] std::size_t buffer_size() const { return buffer_.size(); }

 private:
  struct Entry {
    SealedMessage msg;
    TimePoint expires;  // creation + delta1 (the vanilla TTL), carried along
    std::size_t bytes = 0;
  };

  void offer_all(Session& s, EpidemicNode& taker);
  void receive(Session& s, EpidemicNode& giver, const SealedMessage& m, TimePoint expires);
  void purge(TimePoint now);
  void drop_entry(std::map<MessageHash, Entry>::iterator it);
  /// Finite-buffer extension: evict entries closest to expiry when over cap.
  void enforce_buffer_cap();

  std::map<MessageHash, Entry> buffer_;
  std::set<MessageHash> seen_;
  std::set<MessageHash> mine_;  // messages this node originated
};

}  // namespace g2g::proto
