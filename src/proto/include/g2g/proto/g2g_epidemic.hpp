// Give2Get Epidemic Forwarding (Sections IV–V).
//
// Three phases:
//  * Relay (Fig. 1): a 5-step handshake. The giver offers H(m); a willing
//    taker acknowledges; the message travels encrypted under a fresh key k;
//    the taker signs a proof of relay (PoR) before k is revealed — so it
//    commits to having taken the message while it still cannot know whether
//    it is the destination or a relay.
//  * Forwarding duty: every holder must hand the message to `relay_fanout`
//    (= 2) further relays within Delta1, collecting their PoRs. Only then may
//    it discard the message (keeping the PoRs until Delta2).
//  * Test (Fig. 2): the source — and only the source, which stays anonymous
//    to relays — challenges each of its direct relays when re-meeting it in
//    (Delta1, Delta2]: either show the PoRs, or prove continued storage by
//    computing a heavy keyed HMAC on a fresh seed. Failure yields a proof of
//    misbehaviour (the PoR the culprit signed), gossiped network-wide.
//
// The machinery lives in the relay core (relay/handshake.hpp, relay/audit.hpp,
// relay/pom.hpp); this class supplies only the epidemic policy: the offer /
// accept middle of the handshake, driven through RELAY_RQST / RELAY_OK /
// RELAY_DATA frames.
#pragma once

#include <optional>

#include "g2g/proto/relay/relay_node.hpp"

namespace g2g::proto {

class G2GEpidemicNode final : public relay::RelayNode {
 public:
  G2GEpidemicNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                  BehaviorConfig behavior)
      : relay::RelayNode(env, std::move(identity), config, behavior,
                         relay::AuditEngine::PresentMode::PorsOrStorage) {}

  static void run_contact(Session& s, G2GEpidemicNode& x, G2GEpidemicNode& y) {
    run_contact_impl(s, x, y);
  }

 protected:
  /// Steps 1–4 of Fig. 1: offer H(m), let the taker answer and countersign,
  /// account E_k(m), verify the PoR.
  std::optional<relay::HandshakeOutcome> relay_attempt(Session& s, relay::RelayNode& taker,
                                                       const MessageHash& h,
                                                       relay::Hold& hold) override;
};

}  // namespace g2g::proto
