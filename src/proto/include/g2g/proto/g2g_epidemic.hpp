// Give2Get Epidemic Forwarding (Sections IV–V).
//
// Three phases:
//  * Relay (Fig. 1): a 5-step handshake. The giver offers H(m); a willing
//    taker acknowledges; the message travels encrypted under a fresh key k;
//    the taker signs a proof of relay (PoR) before k is revealed — so it
//    commits to having taken the message while it still cannot know whether
//    it is the destination or a relay.
//  * Forwarding duty: every holder must hand the message to `relay_fanout`
//    (= 2) further relays within Delta1, collecting their PoRs. Only then may
//    it discard the message (keeping the PoRs until Delta2).
//  * Test (Fig. 2): the source — and only the source, which stays anonymous
//    to relays — challenges each of its direct relays when re-meeting it in
//    (Delta1, Delta2]: either show the PoRs, or prove continued storage by
//    computing a heavy keyed HMAC on a fresh seed. Failure yields a proof of
//    misbehaviour (the PoR the culprit signed), gossiped network-wide.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "g2g/crypto/hmac.hpp"
#include "g2g/proto/node.hpp"

namespace g2g::proto {

class G2GEpidemicNode final : public ProtocolNode {
 public:
  using ProtocolNode::ProtocolNode;

  void generate(const SealedMessage& m);
  static void run_contact(Session& s, G2GEpidemicNode& x, G2GEpidemicNode& y);

  // Introspection (tests).
  [[nodiscard]] bool stores_message(const MessageHash& h) const;
  [[nodiscard]] std::size_t por_count(const MessageHash& h) const;
  [[nodiscard]] bool has_handled(const MessageHash& h) const { return handled_.contains(h); }
  [[nodiscard]] std::size_t pending_test_count() const;

  /// Response to a POR_RQST challenge (public so tests can drive it directly).
  struct TestResponse {
    std::vector<ProofOfRelay> pors;
    std::optional<crypto::Digest> stored_hmac;  // heavy HMAC over (m, seed)
    /// Deferred storage proof: index of the chain queued into the caller's
    /// HeavyHmacBatch instead of an eager stored_hmac digest.
    std::optional<std::size_t> stored_job;
  };
  /// With `defer` set, a storage proof is queued into the batch (stored_job)
  /// rather than computed inline, so the audit loop can run every chain of a
  /// contact in parallel SHA-256 lanes; all byte accounting, counters, and
  /// trace events stay at challenge time either way.
  [[nodiscard]] TestResponse respond_test(Session& s, const MessageHash& h, BytesView seed,
                                          crypto::HeavyHmacBatch* defer = nullptr);

 private:
  struct Hold {
    SealedMessage msg;
    bool has_msg = false;  // payload still stored (PoRs may outlive it)
    std::size_t msg_bytes = 0;
    TimePoint received;
    TimePoint expires;  // stop seeking relays past this point
    NodeId giver;
    bool is_source = false;
    bool is_destination = false;
    std::vector<ProofOfRelay> pors;
  };

  struct PendingTest {
    MessageHash h{};
    NodeId relay;
    TimePoint relayed_at;
    ProofOfRelay por;  // the PoR the relay signed for us
    bool done = false;
  };

  void purge(TimePoint now);
  void run_tests(Session& s, G2GEpidemicNode& peer);
  void giver_pass(Session& s, G2GEpidemicNode& taker);
  /// Taker side of the relay phase, steps 2/4; returns the signed PoR, or
  /// nullopt if the taker declines (already handled the message).
  [[nodiscard]] std::optional<ProofOfRelay> accept_relay(Session& s, G2GEpidemicNode& giver,
                                                         const MessageHash& h);
  /// Taker side after the key reveal (step 5): store / deliver / drop.
  void complete_relay(Session& s, G2GEpidemicNode& giver, const SealedMessage& m,
                      TimePoint expires);
  void drop_payload(Hold& hold);

  std::map<MessageHash, Hold> hold_;
  std::set<MessageHash> handled_;
  std::vector<PendingTest> tests_;  // source role only
};

}  // namespace g2g::proto
