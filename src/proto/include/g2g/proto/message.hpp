// Application messages and their wire form.
//
// Message generation (Section IV): m = ⟨D, E_PKD(S, msg_id, body)⟩_S.
// The destination D is cleartext (Delegation needs it to evaluate forwarding
// quality); the sender S and the message id are sealed to D, which is what
// prevents a relay from knowing whether its giver is the source that will
// later test it. The inner signature by S authenticates the content to D.
#pragma once

#include <optional>
#include <vector>

#include "g2g/crypto/identity.hpp"
#include "g2g/crypto/sealed_box.hpp"
#include "g2g/crypto/sha256.hpp"
#include "g2g/util/ids.hpp"
#include "g2g/util/time.hpp"

namespace g2g::proto {

using MessageHash = crypto::Digest;

/// Directory of authority-issued certificates, indexed by node id. In the
/// paper every node can learn any other node's certified public key; the
/// roster is distributed at network setup (the authority stays offline).
class Roster {
 public:
  void add(crypto::Certificate cert);
  [[nodiscard]] const crypto::Certificate* find(NodeId n) const;
  /// Like find() but throws on unknown node.
  [[nodiscard]] const crypto::Certificate& get(NodeId n) const;
  [[nodiscard]] std::size_t size() const { return certs_.size(); }

 private:
  std::vector<std::optional<crypto::Certificate>> certs_;  // indexed by id
};

/// The relay-visible message: destination + sealed body.
struct SealedMessage {
  NodeId dst;
  crypto::SealedBox box;

  /// H(m): the identifier relays, PoRs and PoMs use.
  [[nodiscard]] MessageHash hash() const;
  /// Canonical wire bytes (what gets shipped in the RELAY step).
  [[nodiscard]] Bytes encode() const;
  void encode_into(SpanWriter& w) const;
  /// Strict decode of exactly one message: rejects trailing bytes.
  [[nodiscard]] static SealedMessage decode(BytesView b);
  /// Streaming decode for frames that embed a message mid-stream.
  [[nodiscard]] static SealedMessage decode(Reader& r);
  [[nodiscard]] std::size_t wire_size() const;
};

/// Non-owning decode of a SealedMessage: field views into the buffer the
/// message was decoded from, zero copies. Valid only while that buffer
/// lives; to_owned() materializes a SealedMessage when the message must be
/// stored past the buffer's lifetime (e.g. into a relay Hold).
struct SealedMessageView {
  NodeId dst;
  BytesView ephemeral_public;
  BytesView ciphertext;
  /// The exact canonical encoding the view was decoded from.
  BytesView wire;

  /// H(m) over the original wire bytes — no re-encode, no allocation.
  [[nodiscard]] MessageHash hash() const;
  [[nodiscard]] SealedMessage to_owned() const;
  [[nodiscard]] std::size_t wire_size() const { return wire.size(); }
  /// Strict: the whole of `b` must be exactly one message.
  [[nodiscard]] static SealedMessageView decode(BytesView b);
};

/// Decrypted content, available to the destination only.
struct OpenedMessage {
  NodeId src;
  MessageId id;
  Bytes body;
  /// Whether the inner sender signature verified against src's certificate.
  bool authentic = false;
};

/// Seal a message from `sender` to the node of `recipient_cert`.
[[nodiscard]] SealedMessage make_message(const crypto::NodeIdentity& sender,
                                         const crypto::Certificate& recipient_cert,
                                         MessageId id, BytesView body, Rng& rng);

/// Attempt to open as `me`; nullopt if the inner plaintext does not decode
/// (i.e. `me` is not the destination).
[[nodiscard]] std::optional<OpenedMessage> open_message(const crypto::NodeIdentity& me,
                                                        const SealedMessage& m,
                                                        const Roster& roster);

}  // namespace g2g::proto
