// Vanilla Delegation Forwarding (Erramilli, Crovella, Chaintreau, Diot —
// MobiHoc 2008), in the two flavours the paper evaluates:
//   * Destination Frequency — forward to nodes that met the destination more
//     often than any node the message has seen so far;
//   * Destination Last Contact — forward to nodes that met the destination
//     more recently.
// Each message carries a forwarding-quality level f_m; a replica is created
// (and both copies relabelled) whenever a met node beats f_m. Victim of the
// dropper/liar experiments (Fig. 5).
#pragma once

#include <map>
#include <set>

#include "g2g/proto/node.hpp"
#include "g2g/proto/quality.hpp"

namespace g2g::proto {

class DelegationNode final : public ProtocolNode {
 public:
  DelegationNode(Env& env, crypto::NodeIdentity identity, NodeConfig config,
                 BehaviorConfig behavior);

  void generate(const SealedMessage& m);
  static void run_contact(Session& s, DelegationNode& x, DelegationNode& y);

  void note_encounter(NodeId peer, TimePoint t) override;

  /// Forwarding quality toward `dst` as this node *declares* it when asked by
  /// `asker` (liars answer 0; vanilla Delegation uses the current value).
  [[nodiscard]] double declare_quality(NodeId dst, NodeId asker) const;

  // Introspection (tests).
  [[nodiscard]] bool carries(const MessageHash& h) const { return buffer_.contains(h); }
  [[nodiscard]] std::size_t buffer_size() const { return buffer_.size(); }
  [[nodiscard]] const EncounterTable& table() const { return table_; }

 private:
  struct Entry {
    SealedMessage msg;
    double fm = 0.0;
    TimePoint expires;
    std::size_t bytes = 0;
  };

  void offer_all(Session& s, DelegationNode& taker);
  void receive(Session& s, DelegationNode& giver, const SealedMessage& m, double fm,
               TimePoint expires);
  void purge(TimePoint now);
  /// Finite-buffer extension: evict entries closest to expiry when over cap.
  void enforce_buffer_cap();

  std::map<MessageHash, Entry> buffer_;
  std::set<MessageHash> seen_;
  std::set<MessageHash> mine_;  // messages this node originated
  EncounterTable table_;
};

}  // namespace g2g::proto
