// The Network: owns the nodes, drives them from a contact trace, injects
// traffic, relays PoM gossip, and implements the Env services.
//
// Network<NodeT> is typed on the protocol (EpidemicNode, DelegationNode,
// G2GEpidemicNode, G2GDelegationNode); everything protocol-agnostic lives in
// NetworkBase.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "g2g/community/kclique.hpp"
#include "g2g/metrics/collector.hpp"
#include "g2g/proto/node.hpp"
#include "g2g/sim/simulator.hpp"
#include "g2g/sim/traffic.hpp"
#include "g2g/trace/contact.hpp"

namespace g2g::crypto {
class CachingSuite;
}

namespace g2g::proto {

struct NetworkConfig {
  NodeConfig node;
  /// Signature suite; the fast symmetric emulation by default (simulation
  /// sweeps), make_schnorr_suite() for the real public-key path.
  crypto::SuitePtr suite;
  /// Communities for the "selfish with outsiders" behaviours (typically the
  /// k-clique communities detected on the trace).
  community::CommunityMap communities;
  /// Simulation horizon; events past it are dropped. Zero means "end of trace".
  TimePoint horizon = TimePoint::zero();
  std::uint64_t seed = 7;
  std::size_t message_body_size = 64;
  /// Ablation: deliver every PoM to all nodes instantly instead of relying on
  /// epidemic gossip at session start.
  bool instant_pom_broadcast = false;
  /// Radio bandwidth in bytes/second; a contact can carry at most
  /// duration * bandwidth bytes. 0 = unlimited (the paper's assumption).
  double bandwidth_bytes_per_s = 0.0;
  /// Observability bundle to record into (tracer + counters). The context
  /// must outlive the network; nullptr = the network owns a private one
  /// (counters always collected, tracing disabled).
  obs::ObsContext* obs = nullptr;
  /// Wrap the suite in a per-run verification/shared-secret memo
  /// (crypto::CachingSuite). Protocol outcomes and the simulated cost model
  /// are unaffected — only wall clock and the fastpath.* cache counters
  /// change — so this defaults to on; differential tests run both settings.
  bool crypto_fast_path = true;
};

class NetworkBase : public sim::ContactListener, public Env {
 public:
  NetworkBase(const trace::ContactTrace& trace, NetworkConfig config,
              metrics::Collector& collector);
  // The collector records into this network's ObsContext; detach so a
  // collector that outlives the network (results keep copies) never touches
  // a dead context.
  ~NetworkBase() override { collector_->attach_obs(nullptr); }

  // Env ----------------------------------------------------------------------
  [[nodiscard]] TimePoint now() const final { return sim_.now(); }
  [[nodiscard]] Rng& rng() final { return rng_; }
  [[nodiscard]] const Roster& roster() const final { return roster_; }
  [[nodiscard]] metrics::Collector& collector() final { return *collector_; }
  [[nodiscard]] bool outsiders(NodeId a, NodeId b) const final {
    return !config_.communities.same_community(a, b);
  }
  [[nodiscard]] std::size_t node_count() const final { return node_count_; }
  [[nodiscard]] obs::ObsContext& obs() final { return *obs_; }
  [[nodiscard]] Arena& wire_arena() final { return wire_arena_; }
  [[nodiscard]] std::uint64_t msg_ref(const MessageHash& h) const final;
  void notify_delivered(const MessageHash& h, NodeId dst) final;
  void notify_relayed(const MessageHash& h, NodeId from, NodeId to) final;
  void notify_detection(NodeId culprit, NodeId detector, metrics::DetectionMethod method,
                        Duration after_delta1) final;
  void broadcast_pom(const ProofOfMisbehavior& pom) final;

  // ContactListener ------------------------------------------------------------
  void on_contact_down(TimePoint, NodeId, NodeId) final {}

  /// Feed pre-window contact history into the nodes' encounter tables, with
  /// timestamps rebased so the window start is t=0 (history is negative).
  /// The Delegation protocols' forwarding qualities are built from the whole
  /// trace history, not just the 3-hour experiment window.
  void warm_up(const std::vector<trace::ContactEvent>& history, TimePoint window_start);

  /// Schedule the traffic demands (sources seal and inject at the given times).
  void schedule_traffic(const std::vector<sim::TrafficDemand>& demands);
  /// Run the simulation to completion and finalize node accounting.
  void run();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// Wall-clock seconds spent in batched PoM gossip re-verification
  /// (relay::PomGossipBatch::verify); feeds the stage profile.
  [[nodiscard]] double pom_batch_seconds() const { return pom_batch_seconds_; }
  [[nodiscard]] ProtocolNode& base_node(NodeId n) { return *generic_nodes_.at(n.value()); }

 protected:
  /// Subclass hooks.
  virtual void inject(NodeId src, const SealedMessage& m) = 0;
  virtual void contact(TimePoint t, NodeId a, NodeId b, Duration contact_duration) = 0;

  /// Contact byte budget from the configured bandwidth (SIZE_MAX = unlimited).
  [[nodiscard]] std::size_t contact_budget(Duration contact_duration) const;

  /// Shared session plumbing: blacklist check, auth, encounters, PoM gossip.
  /// Returns false if the session must be aborted.
  bool open_session(Session& s, ProtocolNode& a, ProtocolNode& b);

  void register_node(ProtocolNode* node);
  [[nodiscard]] crypto::NodeIdentity make_identity(NodeId n);

  /// Observability hooks for the typed contact() implementations.
  void record_contact_up(NodeId a, NodeId b, Duration contact_duration);
  void record_session(NodeId a, NodeId b, bool opened);
  void record_contact_down(NodeId a, NodeId b, std::size_t bytes_used);

  NetworkConfig config_;
  std::size_t node_count_;
  Rng rng_;
  sim::Simulator sim_;
  Roster roster_;
  /// Per-run wire-path scratch: one arena per network keeps parallel sweep
  /// runs isolated while every contact of a run reuses the same warm chunks.
  Arena wire_arena_;
  metrics::Collector* collector_;
  std::map<MessageHash, MessageId> hash_to_id_;
  std::vector<BehaviorConfig> behaviors_;

 private:
  // Contacts are scheduled internally with their durations; the
  // ContactListener entry points remain for API compatibility.
  void on_contact_up(TimePoint t, NodeId a, NodeId b) final {
    contact(t, a, b, Duration::max());
  }
  /// Sequential fallback of the batched PoM gossip (also the reference
  /// semantics: the batch must transfer exactly what this would).
  void gossip_poms(Session& s, ProtocolNode& from, ProtocolNode& to);

  std::unique_ptr<crypto::Authority> authority_;
  /// Set when config.crypto_fast_path wrapped the suite; run() flushes its
  /// hit/miss stats into the fastpath.* registry counters.
  std::shared_ptr<crypto::CachingSuite> suite_cache_;
  std::vector<ProtocolNode*> generic_nodes_;
  const trace::ContactTrace* trace_;
  double pom_batch_seconds_ = 0.0;
  /// Private fallback when config.obs is null (counters still collected).
  std::unique_ptr<obs::ObsContext> owned_obs_;
  obs::ObsContext* obs_ = nullptr;
};

template <typename NodeT>
class Network final : public NetworkBase {
 public:
  Network(const trace::ContactTrace& trace, NetworkConfig config,
          std::vector<BehaviorConfig> behaviors, metrics::Collector& collector)
      : NetworkBase(trace, std::move(config), collector) {
    behaviors_.resize(node_count_, BehaviorConfig{});
    for (std::size_t i = 0; i < behaviors.size() && i < node_count_; ++i) {
      behaviors_[i] = behaviors[i];
    }
    nodes_.reserve(node_count_);
    for (std::size_t i = 0; i < node_count_; ++i) {
      const NodeId n(static_cast<std::uint32_t>(i));
      nodes_.push_back(std::make_unique<NodeT>(*this, make_identity(n), config_.node,
                                               behaviors_[i]));
      register_node(nodes_.back().get());
    }
  }

  [[nodiscard]] NodeT& node(NodeId n) { return *nodes_.at(n.value()); }

 private:
  void inject(NodeId src, const SealedMessage& m) override { node(src).generate(m); }

  void contact(TimePoint t, NodeId a, NodeId b, Duration contact_duration) override {
    record_contact_up(a, b, contact_duration);
    NodeT& x = node(a);
    NodeT& y = node(b);
    // A blacklisted node gets no session at all — that is the eviction.
    if (!x.accepts_session_with(b) || !y.accepts_session_with(a)) {
      record_session(a, b, false);
      return;
    }
    Session s(*this, x, y, contact_budget(contact_duration));
    if (!open_session(s, x, y)) {
      record_session(a, b, false);
      record_contact_down(a, b, s.bytes_used());
      return;
    }
    record_session(a, b, true);
    (void)t;
    NodeT::run_contact(s, x, y);
    record_contact_down(a, b, s.bytes_used());
  }

  std::vector<std::unique_ptr<NodeT>> nodes_;
};

}  // namespace g2g::proto
