#include "g2g/util/bytes.hpp"

namespace g2g {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (const std::uint8_t v : b) {
    out.push_back(kHexDigits[v >> 4]);
    out.push_back(kHexDigits[v & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw DecodeError("odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw DecodeError("invalid hex digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace g2g
