// Counting replacements for the global operator new/delete family.
//
// Strong definitions here override the (weak) toolchain ones for any binary
// that links g2g_alloc_probe; heap_alloc_count() lives in the same translation
// unit precisely so that referencing it pulls this object — and with it the
// replacement operators — out of the static archive.
#include "g2g/util/alloc_probe.hpp"

#include <cstdlib>
#include <new>

namespace {

thread_local std::size_t g_allocs = 0;

void* counted_malloc(std::size_t n) noexcept {
  ++g_allocs;
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) noexcept {
  ++g_allocs;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : 1) != 0) return nullptr;
  return p;
}

}  // namespace

namespace g2g {

std::size_t heap_alloc_count() { return g_allocs; }

}  // namespace g2g

void* operator new(std::size_t n) {
  void* p = counted_malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = counted_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
