#include "g2g/util/log.hpp"

#include <atomic>
#include <cstdio>

#include "g2g/util/time.hpp"

namespace g2g {

namespace {
// g2g-lint: allow(no-adhoc-atomic) -- log verbosity gate shared across sweep
// workers; diagnostics only, never protocol state or a counter.
std::atomic<LogLevel> g_level{LogLevel::Warn};
thread_local const LogClock* t_clock = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_clock(const LogClock* clock) { t_clock = clock; }
const LogClock* log_clock() { return t_clock; }

void log_line(LogLevel level, const std::string& msg) {
  // One fprintf per line: concurrent sweep workers must not interleave.
  if (t_clock != nullptr) {
    const std::string t = to_string(Duration(t_clock->now_micros()));
    std::fprintf(stderr, "[%s][%s] %s\n", level_name(level), t.c_str(),
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  }
}

std::string to_string(Duration d) {
  const bool neg = d.count() < 0;
  std::int64_t us = neg ? -d.count() : d.count();
  const std::int64_t h = us / 3'600'000'000LL;
  us %= 3'600'000'000LL;
  const std::int64_t m = us / 60'000'000LL;
  us %= 60'000'000LL;
  const double s = static_cast<double>(us) / 1e6;
  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m), s);
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%04.1fs", neg ? "-" : "",
                  static_cast<long long>(m), s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", neg ? "-" : "", s);
  }
  return buf;
}

std::string to_string(TimePoint t) { return to_string(t - TimePoint::zero()); }

}  // namespace g2g
