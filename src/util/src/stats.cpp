#include "g2g/util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace g2g {

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  mean_ += delta * m / (n + m);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(v_.begin(), v_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (v_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v_) s += x;
  return s / static_cast<double>(v_.size());
}

double Samples::stddev() const {
  if (v_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (const double x : v_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v_.size() - 1));
}

double Samples::quantile(double q) const {
  if (v_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0.0) return v_.front();
  if (q >= 1.0) return v_.back();
  const double pos = q * static_cast<double>(v_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= v_.size()) return v_.back();
  return v_[i] * (1.0 - frac) + v_[i + 1] * frac;
}

double Samples::min() const {
  if (v_.empty()) return 0.0;
  ensure_sorted();
  return v_.front();
}

double Samples::max() const {
  if (v_.empty()) return 0.0;
  ensure_sorted();
  return v_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) throw std::invalid_argument("bad histogram bounds");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
    ++counts_[std::min(i, counts_.size() - 1)];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace g2g
