// Minimal leveled logger. Default level is Warn so simulations stay quiet;
// benches and examples raise it explicitly when narrating runs.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace g2g {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Global log threshold; messages below it are discarded. The level is
/// atomic: core::run_parallel workers read it concurrently with possible
/// writes from the driving thread.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Source of the current simulation time, for prefixing log lines emitted
/// while a run is active. Thread-local so parallel sweeps each see their own
/// simulator's clock.
class LogClock {
 public:
  virtual ~LogClock() = default;
  [[nodiscard]] virtual std::int64_t now_micros() const = 0;
};

/// Install `clock` for the calling thread (nullptr clears). While set,
/// log_line prefixes every line with the sim-time, e.g. "[1h02m03.5s]".
void set_log_clock(const LogClock* clock);
[[nodiscard]] const LogClock* log_clock();

/// RAII installer; restores the previously-installed clock on destruction.
class ScopedLogClock {
 public:
  explicit ScopedLogClock(const LogClock* clock) : prev_(log_clock()) {
    set_log_clock(clock);
  }
  ~ScopedLogClock() { set_log_clock(prev_); }
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  const LogClock* prev_;
};

/// Emit a single log line as one fprintf call, so lines from concurrent
/// sweep workers never interleave mid-line.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::Debug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::Info, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::Warn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::Error, args...);
}

}  // namespace g2g
