// Minimal leveled logger. Default level is Warn so simulations stay quiet;
// benches and examples raise it explicitly when narrating runs.
#pragma once

#include <sstream>
#include <string>

namespace g2g {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a single log line (thread-compatible: the library is single-threaded
/// by design; the simulator owns all state).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_line(level, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  log(LogLevel::Debug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  log(LogLevel::Info, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  log(LogLevel::Warn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  log(LogLevel::Error, args...);
}

}  // namespace g2g
