// Strongly-typed identifiers shared across the library.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace g2g {

/// Identifies a node (device / person) in the network.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] static constexpr NodeId invalid() { return NodeId(0xffffffffu); }
  [[nodiscard]] constexpr bool valid() const { return v_ != 0xffffffffu; }

  constexpr auto operator<=>(const NodeId&) const = default;

 private:
  std::uint32_t v_ = 0xffffffffu;
};

/// Identifies an application message end-to-end.
class MessageId {
 public:
  constexpr MessageId() = default;
  constexpr explicit MessageId(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] static constexpr MessageId invalid() { return MessageId(~0ULL); }
  [[nodiscard]] constexpr bool valid() const { return v_ != ~0ULL; }

  constexpr auto operator<=>(const MessageId&) const = default;

 private:
  std::uint64_t v_ = ~0ULL;
};

[[nodiscard]] inline std::string to_string(NodeId id) {
  return "n" + std::to_string(id.value());
}
[[nodiscard]] inline std::string to_string(MessageId id) {
  return "m" + std::to_string(id.value());
}

}  // namespace g2g

template <>
struct std::hash<g2g::NodeId> {
  std::size_t operator()(g2g::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<g2g::MessageId> {
  std::size_t operator()(g2g::MessageId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
