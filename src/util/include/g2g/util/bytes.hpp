// Byte buffers and canonical (de)serialization.
//
// Every signed protocol artefact (proof of relay, forwarding-quality
// declaration, proof of misbehaviour, ...) is signed over a canonical
// little-endian byte encoding produced by Writer and consumed by Reader.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace g2g {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by SpanWriter when an encode disagrees with its wire_size().
/// Unlike DecodeError (hostile input), this is a programming error: every
/// wire type's wire_size() is arithmetic and must match its encode exactly.
class EncodeError : public std::logic_error {
 public:
  explicit EncodeError(const std::string& what) : std::logic_error(what) {}
};

/// Append-only canonical encoder (little-endian, length-prefixed blobs).
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  /// Raw bytes, no length prefix (use for fixed-size fields like hashes).
  void raw(BytesView b) { out_.insert(out_.end(), b.begin(), b.end()); }
  /// Length-prefixed blob.
  void blob(BytesView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }
  void str(std::string_view s) {
    blob(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  [[nodiscard]] const Bytes& bytes() const& { return out_; }
  [[nodiscard]] Bytes take() && { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes out_;
};

/// Canonical encoder writing into a caller-provided, exactly-reserved span
/// (typically an Arena allocation of wire_size() bytes). Identical byte
/// output to Writer, but never allocates and never grows: running past the
/// end of the span throws EncodeError, and expect_full() verifies the encode
/// filled the reservation exactly — together they pin the
/// encode()/wire_size() contract at the seam for every wire type.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<std::uint8_t> out) : out_(out) {}

  void u8(std::uint8_t v) { *grab(1) = v; }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  /// Raw bytes, no length prefix (use for fixed-size fields like hashes).
  void raw(BytesView b) {
    std::uint8_t* p = grab(b.size());
    if (!b.empty()) std::memcpy(p, b.data(), b.size());
  }
  /// Length-prefixed blob.
  void blob(BytesView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }
  void str(std::string_view s) {
    blob(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  [[nodiscard]] std::size_t size() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return out_.size() - pos_; }
  /// View of what has been written so far.
  [[nodiscard]] BytesView view() const { return {out_.data(), pos_}; }
  /// Every canonical encode fills its reservation exactly; anything short
  /// means wire_size() over-reported.
  void expect_full() const {
    if (pos_ != out_.size()) throw EncodeError("encode under-filled its wire_size() reservation");
  }

 private:
  template <typename T>
  void put_le(T v) {
    std::uint8_t* p = grab(sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      p[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >> (8 * i));
    }
  }
  [[nodiscard]] std::uint8_t* grab(std::size_t n) {
    if (remaining() < n) throw EncodeError("encode overran its wire_size() reservation");
    std::uint8_t* p = out_.data() + pos_;
    pos_ += n;
    return p;
  }
  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
};

/// Canonical decoder; throws DecodeError on truncation.
class Reader {
 public:
  explicit Reader(BytesView in) : in_(in) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] BytesView raw(std::size_t n) { return take(n); }
  [[nodiscard]] Bytes blob() {
    const auto n = u32();
    const auto b = take(n);
    return Bytes(b.begin(), b.end());
  }
  /// Non-owning view of a length-prefixed blob: same wire format as blob(),
  /// zero copies. Valid only while the buffer under the Reader lives.
  [[nodiscard]] BytesView blob_view() {
    const auto n = u32();
    return take(n);
  }
  [[nodiscard]] std::string str() {
    const auto b = blob();
    return std::string(b.begin(), b.end());
  }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  [[nodiscard]] T read_le() {
    const auto b = take(sizeof(T));
    // Accumulate in 64 bits: for sub-int T the shift would otherwise promote
    // to int and narrow back on the compound assignment (-Wconversion).
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return static_cast<T>(v);
  }
  [[nodiscard]] BytesView take(std::size_t n) {
    if (remaining() < n) throw DecodeError("truncated input");
    const BytesView out = in_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  // g2g-lint: allow(view-escape) -- transient decode cursor; a Reader never outlives the caller-owned bytes it walks
  BytesView in_;
  std::size_t pos_ = 0;
};

/// Owning encode through the exactly-reserved SpanWriter seam: allocates
/// wire_size() bytes once, encodes in place, verifies the exact fill. Every
/// wire type's owning encode() delegates here, so the encode()/wire_size()
/// contract is asserted on all paths, arena and owning alike.
template <typename T>
[[nodiscard]] Bytes encode_exact(const T& v) {
  Bytes out(v.wire_size());
  SpanWriter w(std::span<std::uint8_t>(out.data(), out.size()));
  v.encode_into(w);
  w.expect_full();
  return out;
}

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string to_hex(BytesView b);
/// Inverse of to_hex; throws DecodeError on bad input.
[[nodiscard]] Bytes from_hex(std::string_view hex);
/// Bytes of a string literal / string view.
[[nodiscard]] Bytes to_bytes(std::string_view s);

}  // namespace g2g
