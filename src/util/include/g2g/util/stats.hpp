// Online and batch statistics used by the metrics layer and the benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace g2g {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with exact quantiles.
class Samples {
 public:
  void add(double x) {
    v_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Quantile in [0,1] by linear interpolation; 0 on empty input.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& values() const { return v_; }

 private:
  mutable std::vector<double> v_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace g2g
