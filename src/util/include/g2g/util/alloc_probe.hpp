// Heap-allocation probe for allocation-count regression tests and benches.
//
// Linking `g2g_alloc_probe` into a binary replaces the global operator
// new/delete family with counting wrappers around malloc/free. The counter is
// thread-local, so a probe read brackets exactly the work of the calling
// thread. Link this library ONLY into binaries that exist to measure
// allocations (the alloc regression test, micro_proto); it is deliberately
// kept out of every simulation and experiment target.
//
// Usage:
//   const std::size_t before = g2g::heap_alloc_count();
//   ... code under test ...
//   EXPECT_EQ(g2g::heap_alloc_count() - before, 0u);
#pragma once

#include <cstddef>

namespace g2g {

/// Allocations (operator new calls, all variants) on this thread since start.
/// Returns 0 forever unless g2g_alloc_probe is linked into the binary.
[[nodiscard]] std::size_t heap_alloc_count();

}  // namespace g2g
