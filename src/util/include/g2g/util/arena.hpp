// Bump-allocated scratch memory for the zero-copy wire path.
//
// An Arena hands out exactly-sized byte spans from a small set of chunks and
// recycles them wholesale with reset(): the chunks are kept, so a warmed-up
// arena services an arbitrary number of alloc()/reset() cycles without ever
// touching the heap again. Encoded wire frames live in arena spans for the
// duration of one handshake attempt (see DESIGN.md "Buffer ownership"); a
// reset() invalidates every span handed out since the previous reset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "g2g/util/bytes.hpp"

namespace g2g {

class Arena {
 public:
  /// `min_chunk` is the smallest chunk the arena will allocate; requests
  /// larger than any free chunk get a dedicated chunk of their exact need
  /// (rounded up to the doubling schedule).
  explicit Arena(std::size_t min_chunk = 4096) : min_chunk_(min_chunk ? min_chunk : 1) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// An uninitialised span of exactly `n` bytes, valid until the next reset().
  [[nodiscard]] std::span<std::uint8_t> alloc(std::size_t n) {
    if (n == 0) return {};
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      if (c.size - used_ >= n) {
        std::uint8_t* p = c.data.get() + used_;
        used_ += n;
        in_use_ += n;
        return {p, n};
      }
      ++active_;
      used_ = 0;
    }
    std::size_t size = chunks_.empty() ? min_chunk_ : chunks_.back().size * 2;
    if (size < n) size = n;
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    ++chunk_allocs_;
    used_ = n;
    in_use_ += n;
    return {chunks_.back().data.get(), n};
  }

  /// Recycle all spans (they become dangling) but keep every chunk, so a
  /// warmed-up arena allocates nothing on subsequent cycles.
  void reset() {
    active_ = 0;
    used_ = 0;
    in_use_ = 0;
  }

  /// Bytes handed out since the last reset().
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Total bytes owned across all chunks.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  /// Lifetime count of heap chunk allocations — flat once warmed up; the
  /// steady-state allocation tests pin this.
  [[nodiscard]] std::uint64_t chunk_allocations() const { return chunk_allocs_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size;
  };
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently being filled
  std::size_t used_ = 0;    ///< bytes used in the active chunk
  std::size_t in_use_ = 0;
  std::size_t min_chunk_;
  std::uint64_t chunk_allocs_ = 0;
};

/// Encode `v` into an exactly-reserved arena span. The returned view stays
/// valid until the arena's next reset(). Verifies the encode()/wire_size()
/// contract: anything but an exact fill throws EncodeError.
template <typename T>
[[nodiscard]] BytesView arena_encode(Arena& arena, const T& v) {
  const std::span<std::uint8_t> out = arena.alloc(v.wire_size());
  SpanWriter w(out);
  v.encode_into(w);
  w.expect_full();
  return {out.data(), out.size()};
}

}  // namespace g2g
