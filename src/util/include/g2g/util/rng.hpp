// Deterministic pseudo-random number generation.
//
// The whole reproduction pipeline (synthetic traces, traffic, protocol
// tie-breaks) must be reproducible from a single seed, so we ship our own
// compact xoshiro256** generator instead of depending on the (unspecified
// across standard libraries) distributions of <random>.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace g2g {

/// splitmix64: used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, fully deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Exponential with the given mean (inter-arrival times of Poisson processes).
  [[nodiscard]] double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed inter-contacts).
  [[nodiscard]] double pareto(double x_m, double alpha) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Log-normal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// Standard normal via Box–Muller (one value per call; simple and stateless).
  [[nodiscard]] double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator (stable given the label).
  [[nodiscard]] Rng fork(std::uint64_t label) {
    std::uint64_t sm = next() ^ (label * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace g2g
