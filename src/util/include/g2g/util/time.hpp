// Simulation time types.
//
// All simulation timestamps are integer microseconds since the start of the
// trace. Integer time keeps the event queue deterministic across platforms
// and makes equality comparisons exact, which the protocol timeout logic
// (Delta1/Delta2 windows, quality timeframes) relies on.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace g2g {

/// A span of simulation time, in microseconds. Signed so differences are safe.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration(v); }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration(v * 1000); }
  [[nodiscard]] static constexpr Duration seconds(double v) {
    return Duration(static_cast<std::int64_t>(v * 1e6));
  }
  [[nodiscard]] static constexpr Duration minutes(double v) { return seconds(v * 60.0); }
  [[nodiscard]] static constexpr Duration hours(double v) { return seconds(v * 3600.0); }
  [[nodiscard]] static constexpr Duration days(double v) { return hours(v * 24.0); }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t count() const { return micros_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(micros_) / 1e6; }
  [[nodiscard]] constexpr double to_minutes() const { return to_seconds() / 60.0; }

  constexpr Duration operator+(Duration o) const { return Duration(micros_ + o.micros_); }
  constexpr Duration operator-(Duration o) const { return Duration(micros_ - o.micros_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(micros_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(micros_ / k); }
  constexpr Duration operator-() const { return Duration(-micros_); }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  std::int64_t micros_ = 0;
};

/// A point in simulation time (microseconds since trace start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint(0); }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }
  [[nodiscard]] static constexpr TimePoint from_seconds(double v) {
    return TimePoint(static_cast<std::int64_t>(v * 1e6));
  }

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(micros_ + d.count()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(micros_ - d.count()); }
  constexpr Duration operator-(TimePoint o) const { return Duration(micros_ - o.micros_); }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  std::int64_t micros_ = 0;
};

/// Human-readable rendering, e.g. "1h02m03.5s".
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(TimePoint t);

}  // namespace g2g
