#include "g2g/crypto/verify_cache.hpp"

#include <cstring>
#include <memory>
#include <vector>

namespace g2g::crypto {

namespace {

// Collision-resistant cache key over length-framed fields: framing prevents
// (pub, msg) boundary ambiguity from ever aliasing two distinct requests.
Digest cache_key(BytesView a, BytesView b, BytesView c) {
  Sha256 h;
  for (const BytesView part : {a, b, c}) {
    std::uint8_t len_le[8];
    const std::uint64_t n = part.size();
    for (int i = 0; i < 8; ++i) len_le[i] = static_cast<std::uint8_t>(n >> (8 * i));
    h.update(BytesView(len_le, 8));
    h.update(part);
  }
  return h.finish();
}

}  // namespace

std::size_t CachingSuite::DigestHash::operator()(const Digest& d) const {
  // The key is already a SHA-256 digest; its first word is uniform.
  std::size_t out;
  std::memcpy(&out, d.data(), sizeof(out));
  return out;
}

CachingSuite::CachingSuite(SuitePtr inner) : inner_(std::move(inner)) {}

KeyPair CachingSuite::keygen(Rng& rng) const { return inner_->keygen(rng); }

Bytes CachingSuite::sign(BytesView secret_key, BytesView message) const {
  return inner_->sign(secret_key, message);
}

bool CachingSuite::verify(BytesView public_key, BytesView message, BytesView signature) const {
  const Digest key = cache_key(public_key, message, signature);
  const auto it = verify_cache_.find(key);
  if (it != verify_cache_.end()) {
    ++stats_.verify_hits;
    return it->second;
  }
  ++stats_.verify_misses;
  const bool ok = inner_->verify(public_key, message, signature);
  verify_cache_.emplace(key, ok);
  return ok;
}

void CachingSuite::verify_batch(std::span<const VerifyRequest> requests, bool* verdicts) const {
  // Answer repeats from the memo, dedupe repeats *within* the batch (the
  // same PoR can appear several times in one audit round), and forward only
  // the distinct misses to the inner suite in one call so it sees the true
  // batch shape.
  constexpr std::size_t kPending = static_cast<std::size_t>(-1);
  std::vector<Digest> keys(requests.size());
  // For each request: kPending + membership in miss_index if it heads a
  // distinct miss, otherwise the index of the earlier duplicate to copy from.
  std::vector<std::size_t> dup_of(requests.size(), kPending);
  std::unordered_map<Digest, std::size_t, DigestHash> first_seen;
  std::vector<std::size_t> miss_index;
  std::vector<VerifyRequest> misses;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    keys[i] = cache_key(requests[i].public_key, requests[i].message, requests[i].signature);
    const auto it = verify_cache_.find(keys[i]);
    if (it != verify_cache_.end()) {
      ++stats_.verify_hits;
      verdicts[i] = it->second;
      continue;
    }
    const auto [seen, fresh] = first_seen.emplace(keys[i], i);
    if (!fresh) {
      ++stats_.verify_hits;
      dup_of[i] = seen->second;
      continue;
    }
    ++stats_.verify_misses;
    miss_index.push_back(i);
    misses.push_back(requests[i]);
  }
  if (!misses.empty()) {
    const auto miss_buf = std::make_unique<bool[]>(misses.size());
    bool* miss_out = miss_buf.get();
    inner_->verify_batch(std::span<const VerifyRequest>(misses.data(), misses.size()),
                         miss_out);
    for (std::size_t j = 0; j < misses.size(); ++j) {
      verdicts[miss_index[j]] = miss_out[j];
      verify_cache_.emplace(keys[miss_index[j]], miss_out[j]);
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (dup_of[i] != kPending) verdicts[i] = verdicts[dup_of[i]];
  }
}

Bytes CachingSuite::shared_secret(BytesView my_secret_key, BytesView peer_public_key) const {
  const Digest key = cache_key(my_secret_key, peer_public_key, BytesView());
  const auto it = secret_cache_.find(key);
  if (it != secret_cache_.end()) {
    ++stats_.secret_hits;
    return it->second;
  }
  ++stats_.secret_misses;
  Bytes secret = inner_->shared_secret(my_secret_key, peer_public_key);
  secret_cache_.emplace(key, secret);
  return secret;
}

std::size_t CachingSuite::signature_size() const { return inner_->signature_size(); }

std::string CachingSuite::name() const { return inner_->name(); }

std::shared_ptr<CachingSuite> make_caching_suite(SuitePtr inner) {
  return std::make_shared<CachingSuite>(std::move(inner));
}

}  // namespace g2g::crypto
