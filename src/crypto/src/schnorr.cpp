#include "g2g/crypto/schnorr.hpp"

#include <algorithm>
#include <stdexcept>

#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/montgomery.hpp"

namespace g2g::crypto {

namespace {

/// Draw a random odd candidate with exactly `bits` bits.
U256 random_odd_with_bits(Rng& rng, std::size_t bits) {
  U256 out;
  const std::size_t limbs = (bits + 63) / 64;
  for (std::size_t i = 0; i < limbs; ++i) out.limb[i] = rng.next();
  const std::size_t top = bits - 1;
  // Clear everything at/above `bits`, then force the top and bottom bits.
  for (std::size_t i = bits; i < 256; ++i) out.limb[i / 64] &= ~(1ULL << (i % 64));
  out.limb[top / 64] |= 1ULL << (top % 64);
  out.limb[0] |= 1;
  return out;
}

U256 challenge(const SchnorrGroup& group, const U256& r, BytesView message) {
  Writer w(96);
  w.raw(r.to_bytes_be());
  w.raw(message);
  const Digest d = sha256(w.bytes());
  return mod(U256::from_bytes_be(digest_view(d)), group.q);
}

}  // namespace

SchnorrGroup SchnorrGroup::generate(std::size_t p_bits, std::size_t q_bits, std::uint64_t seed) {
  if (p_bits > 256 || q_bits + 2 > p_bits) throw std::invalid_argument("bad group sizes");
  Rng rng(seed);

  // 1. Find a q_bits prime q.
  U256 q = random_odd_with_bits(rng, q_bits);
  while (!is_probable_prime(q, rng)) {
    bool carry = false;
    q = add(q, U256(2), carry);
  }

  // 2. Find m (cofactor, even) such that p = q*m + 1 is prime with p_bits bits.
  const std::size_t m_bits = p_bits - q_bits;
  for (;;) {
    U256 m = random_odd_with_bits(rng, m_bits);
    m.limb[0] &= ~1ULL;  // make even so p is odd
    if (m.is_zero()) continue;
    const U512 pm = mul_full(q, m);
    for (int i = 4; i < 8; ++i) {
      if (pm.limb[i] != 0) throw std::logic_error("p overflowed 256 bits");
    }
    U256 p;
    for (int i = 0; i < 4; ++i) p.limb[i] = pm.limb[i];
    bool carry = false;
    p = add(p, U256(1), carry);
    if (p.bit_length() != p_bits) continue;
    if (!is_probable_prime(p, rng)) continue;

    // 3. Find a generator of the order-q subgroup: g = h^m mod p != 1.
    for (;;) {
      const U256 h = add_mod(random_below(rng, sub_mod(p, U256(3), p)), U256(2), p);
      const U256 g = pow_mod_fast(h, m, p);
      if (g != U256(1) && !g.is_zero()) {
        return SchnorrGroup{p, q, g};
      }
    }
  }
}

const SchnorrGroup& SchnorrGroup::default_group() {
  static const SchnorrGroup group = generate(256, 160, 0x67326721ULL);
  return group;
}

const SchnorrGroup& SchnorrGroup::small_group() {
  static const SchnorrGroup group = generate(128, 96, 0x67326722ULL);
  return group;
}

bool SchnorrGroup::valid(Rng& rng) const {
  if (!is_probable_prime(p, rng) || !is_probable_prime(q, rng)) return false;
  bool borrow = false;
  const U256 p_minus_1 = sub(p, U256(1), borrow);
  // q | p-1  <=>  (p-1) mod q == 0
  if (!mod(p_minus_1, q).is_zero()) return false;
  if (g == U256(1) || g.is_zero()) return false;
  return pow_mod_fast(g, q, p) == U256(1);
}

Bytes SchnorrSignature::encode() const {
  Writer w(64);
  w.raw(e.to_bytes_be());
  w.raw(s.to_bytes_be());
  return std::move(w).take();
}

SchnorrSignature SchnorrSignature::decode(BytesView b) {
  if (b.size() != 64) throw DecodeError("bad Schnorr signature length");
  return SchnorrSignature{U256::from_bytes_be(b.subspan(0, 32)),
                          U256::from_bytes_be(b.subspan(32, 32))};
}

Bytes SchnorrSignatureRS::encode() const {
  Writer w(64);
  w.raw(r.to_bytes_be());
  w.raw(s.to_bytes_be());
  return std::move(w).take();
}

SchnorrSignatureRS SchnorrSignatureRS::decode(BytesView b) {
  if (b.size() != 64) throw DecodeError("bad Schnorr (R,s) signature length");
  return SchnorrSignatureRS{U256::from_bytes_be(b.subspan(0, 32)),
                            U256::from_bytes_be(b.subspan(32, 32))};
}

SchnorrKeyPair schnorr_keygen(const SchnorrGroup& group, Rng& rng) {
  bool borrow = false;
  const U256 x = add_mod(random_below(rng, sub(group.q, U256(1), borrow)), U256(1), group.q);
  return SchnorrKeyPair{x, pow_mod_fast(group.g, x, group.p)};
}

SchnorrSignature schnorr_sign(const SchnorrGroup& group, const U256& secret, BytesView message,
                              Rng& rng) {
  bool borrow = false;
  const U256 k = add_mod(random_below(rng, sub(group.q, U256(1), borrow)), U256(1), group.q);
  const U256 r = pow_mod_fast(group.g, k, group.p);
  const U256 e = challenge(group, r, message);
  const U256 s = sub_mod(k, mul_mod(secret, e, group.q), group.q);
  return SchnorrSignature{e, s};
}

bool schnorr_verify(const SchnorrGroup& group, const U256& public_key, BytesView message,
                    const SchnorrSignature& sig) {
  if (sig.e >= group.q || sig.s >= group.q) return false;
  // r' = g^s * y^e mod p;   valid iff H(r' || m) == e
  const U256 gs = pow_mod_fast(group.g, sig.s, group.p);
  const U256 ye = pow_mod_fast(public_key, sig.e, group.p);
  const U256 r = mul_mod(gs, ye, group.p);
  return challenge(group, r, message) == sig.e;
}

SchnorrSignatureRS schnorr_rs_sign(const SchnorrGroup& group, const U256& secret,
                                   BytesView message, Rng& rng) {
  // Same draws and same (k, e, s) as schnorr_sign — only the transmitted pair
  // changes, so the two forms stay interconvertible for the same nonce.
  bool borrow = false;
  const U256 k = add_mod(random_below(rng, sub(group.q, U256(1), borrow)), U256(1), group.q);
  const U256 r = pow_mod_fast(group.g, k, group.p);
  const U256 e = challenge(group, r, message);
  const U256 s = sub_mod(k, mul_mod(secret, e, group.q), group.q);
  return SchnorrSignatureRS{r, s};
}

bool schnorr_rs_verify(const SchnorrGroup& group, const U256& public_key, BytesView message,
                       const SchnorrSignatureRS& sig) {
  if (sig.s >= group.q || sig.r >= group.p || sig.r.is_zero()) return false;
  // e = H(R || m);   valid iff g^s * y^e == R (a group equation, so several
  // signatures can be folded into one randomized combination — verify_batch_rs).
  const U256 e = challenge(group, sig.r, message);
  const U256 gs = pow_mod_fast(group.g, sig.s, group.p);
  const U256 ye = pow_mod_fast(public_key, e, group.p);
  return mul_mod(gs, ye, group.p) == sig.r;
}

U256 dh_shared_secret(const SchnorrGroup& group, const U256& my_secret, const U256& peer_public) {
  return pow_mod_fast(peer_public, my_secret, group.p);
}

FixedBaseTable::FixedBaseTable(const U256& base, const U256& modulus, std::size_t exp_bits)
    : modulus_(modulus) {
  windows_.resize((exp_bits + 3) / 4);
  U256 cur = mod(base, modulus_);  // base^(16^w) as w advances
  for (auto& window : windows_) {
    window[0] = U256(1);
    window[1] = cur;
    for (int d = 2; d < 16; ++d) window[d] = mul_mod(window[d - 1], cur, modulus_);
    cur = mul_mod(window[15], cur, modulus_);
  }
  // Mirror the classically-built windows into Montgomery form (canonical
  // residues map one-to-one, so both digit chains compute identical values).
  if (modulus_.bit(0) && modulus_ != U256(1)) {
    mont_ = MontgomeryParams::for_modulus(modulus_);
    mont_windows_.resize(windows_.size());
    for (std::size_t w = 0; w < windows_.size(); ++w) {
      for (std::size_t d = 0; d < 16; ++d) {
        mont_windows_[w][d] = to_mont(windows_[w][d], *mont_);
      }
    }
  }
}

U256 multi_exp(std::span<const MultiExpTerm> terms, const U256& modulus) {
  if (terms.empty()) return U256(1);
  if (fast_path_enabled() && modulus.bit(0) && modulus != U256(1)) {
    // Same window/squaring schedule as the classic loop below, run entirely
    // in the Montgomery domain: every intermediate is the Montgomery image of
    // the classic intermediate, so the final from_mont is bit-identical.
    const MontgomeryParams params = MontgomeryParams::for_modulus(modulus);
    std::vector<std::array<U256, 16>> pows(terms.size());
    std::size_t max_bits = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      pows[i][1] = to_mont(terms[i].base, params);  // reduces bases >= m
      for (int d = 2; d < 16; ++d) pows[i][d] = mont_mul(pows[i][d - 1], pows[i][1], params);
      max_bits = std::max(max_bits, terms[i].exponent.bit_length());
    }
    U256 result = params.one;
    bool started = false;
    for (std::size_t w = (max_bits + 3) / 4; w-- > 0;) {
      if (started) {
        for (int sq = 0; sq < 4; ++sq) result = mont_mul(result, result, params);
      }
      for (std::size_t i = 0; i < terms.size(); ++i) {
        const std::size_t bit = 4 * w;
        const unsigned digit =
            static_cast<unsigned>(terms[i].exponent.limb[bit / 64] >> (bit % 64)) & 0xF;
        if (digit != 0) {
          result = mont_mul(result, pows[i][digit], params);
          started = true;
        }
      }
    }
    return from_mont(result, params);
  }
  // Per-term odd-and-even window table: pows[i][d] = base_i^d for d in 1..15.
  std::vector<std::array<U256, 16>> pows(terms.size());
  std::size_t max_bits = 0;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    pows[i][1] = mod(terms[i].base, modulus);
    for (int d = 2; d < 16; ++d) pows[i][d] = mul_mod(pows[i][d - 1], pows[i][1], modulus);
    max_bits = std::max(max_bits, terms[i].exponent.bit_length());
  }
  U256 result(1);
  bool started = false;
  for (std::size_t w = (max_bits + 3) / 4; w-- > 0;) {
    if (started) {
      for (int sq = 0; sq < 4; ++sq) result = mul_mod(result, result, modulus);
    }
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const std::size_t bit = 4 * w;
      const unsigned digit =
          static_cast<unsigned>(terms[i].exponent.limb[bit / 64] >> (bit % 64)) & 0xF;
      if (digit != 0) {
        result = mul_mod(result, pows[i][digit], modulus);
        started = true;
      }
    }
  }
  return result;
}

U256 FixedBaseTable::pow(const U256& exponent) const {
  if (fast_path_enabled() && mont_) {
    U256 result = mont_->one;
    for (std::size_t w = 0; w < mont_windows_.size(); ++w) {
      const std::size_t bit = 4 * w;
      const unsigned digit = static_cast<unsigned>(exponent.limb[bit / 64] >> (bit % 64)) & 0xF;
      if (digit != 0) result = mont_mul(result, mont_windows_[w][digit], *mont_);
    }
    return from_mont(result, *mont_);
  }
  U256 result(1);
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    // A 4-bit window never straddles a 64-bit limb.
    const std::size_t bit = 4 * w;
    const unsigned digit = static_cast<unsigned>(exponent.limb[bit / 64] >> (bit % 64)) & 0xF;
    if (digit != 0) result = mul_mod(result, windows_[w][digit], modulus_);
  }
  return result;
}

SchnorrEngine::SchnorrEngine(const SchnorrGroup& group)
    : group_(group), g_table_(group.g, group.p, group.q.bit_length()) {
  if (group.p.bit(0) && group.p != U256(1)) mont_p_ = MontgomeryParams::for_modulus(group.p);
  if (group.q.bit(0) && group.q != U256(1)) mont_q_ = MontgomeryParams::for_modulus(group.q);
}

U256 SchnorrEngine::pow_g(const U256& exponent) const {
  if (fast_path_enabled() && exponent.bit_length() <= g_table_.exp_bits()) {
    return g_table_.pow(exponent);
  }
  return pow_p(group_.g, exponent);
}

U256 SchnorrEngine::pow_p(const U256& base, const U256& exponent) const {
  if (fast_path_enabled() && mont_p_) {
    return from_mont(mont_pow(to_mont(base, *mont_p_), exponent, *mont_p_), *mont_p_);
  }
  return pow_mod(base, exponent, group_.p);
}

U256 SchnorrEngine::mul_p(const U256& a, const U256& b) const {
  // mont_mul(a*R, b) = a*b mod p — one conversion, one product, no divide.
  if (fast_path_enabled() && mont_p_) return mont_mul(to_mont(a, *mont_p_), b, *mont_p_);
  return mul_mod(a, b, group_.p);
}

U256 SchnorrEngine::mul_q(const U256& a, const U256& b) const {
  if (fast_path_enabled() && mont_q_) return mont_mul(to_mont(a, *mont_q_), b, *mont_q_);
  return mul_mod(a, b, group_.q);
}

SchnorrKeyPair SchnorrEngine::keygen(Rng& rng) const {
  // Same RNG draws as schnorr_keygen so keys are reproducible either way.
  bool borrow = false;
  const U256 x = add_mod(random_below(rng, sub(group_.q, U256(1), borrow)), U256(1), group_.q);
  return SchnorrKeyPair{x, pow_g(x)};
}

SchnorrSignature SchnorrEngine::sign(const U256& secret, BytesView message, Rng& rng) const {
  bool borrow = false;
  const U256 k = add_mod(random_below(rng, sub(group_.q, U256(1), borrow)), U256(1), group_.q);
  const U256 r = pow_g(k);
  const U256 e = challenge(group_, r, message);
  const U256 s = sub_mod(k, mul_q(secret, e), group_.q);
  return SchnorrSignature{e, s};
}

bool SchnorrEngine::verify(const U256& public_key, BytesView message,
                           const SchnorrSignature& sig) const {
  if (sig.e >= group_.q || sig.s >= group_.q) return false;
  // g^s from the table (s < q by the check above); y^e stays generic since
  // the base varies per signer.
  const U256 gs = pow_g(sig.s);
  const U256 ye = pow_p(public_key, sig.e);
  const U256 r = mul_p(gs, ye);
  return challenge(group_, r, message) == sig.e;
}

SchnorrSignatureRS SchnorrEngine::sign_rs(const U256& secret, BytesView message, Rng& rng) const {
  bool borrow = false;
  const U256 k = add_mod(random_below(rng, sub(group_.q, U256(1), borrow)), U256(1), group_.q);
  const U256 r = pow_g(k);
  const U256 e = challenge(group_, r, message);
  const U256 s = sub_mod(k, mul_q(secret, e), group_.q);
  return SchnorrSignatureRS{r, s};
}

bool SchnorrEngine::verify_rs(const U256& public_key, BytesView message,
                              const SchnorrSignatureRS& sig) const {
  if (sig.s >= group_.q || sig.r >= group_.p || sig.r.is_zero()) return false;
  const U256 e = challenge(group_, sig.r, message);
  const U256 gs = pow_g(sig.s);
  const U256 ye = pow_p(public_key, e);
  return mul_p(gs, ye) == sig.r;
}

namespace {

/// Deterministic nonzero 64-bit batch coefficients, Fiat–Shamir style: a
/// transcript digest commits to every (y_i, R_i, s_i, H(m_i)) in order, then
/// z_i = first 8 bytes of SHA256(transcript || i). Determinism keeps
/// simulation runs bit-reproducible; an adversary who controls the batch
/// contents still cannot aim for specific coefficients without inverting the
/// hash, which is the standard small-exponent soundness setting.
std::vector<std::uint64_t> batch_coefficients(std::span<const SchnorrRSVerifyItem> items) {
  Writer t(32 + 128 * items.size());
  t.raw(BytesView(reinterpret_cast<const std::uint8_t*>("g2g/batch-rs/v1"), 15));
  t.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& it : items) {
    t.raw(it.public_key.to_bytes_be());
    t.raw(it.sig.r.to_bytes_be());
    t.raw(it.sig.s.to_bytes_be());
    t.raw(digest_view(sha256(it.message)));
  }
  const Digest transcript = sha256(t.bytes());
  std::vector<std::uint64_t> z(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Writer w(36);
    w.raw(digest_view(transcript));
    w.u32(static_cast<std::uint32_t>(i));
    const Digest d = sha256(w.bytes());
    std::uint64_t zi = 0;
    for (int b = 0; b < 8; ++b) zi = (zi << 8) | d[b];
    z[i] = zi == 0 ? 1 : zi;  // zero would drop the term from the combination
  }
  return z;
}

}  // namespace

bool SchnorrEngine::verify_batch_rs(std::span<const SchnorrRSVerifyItem> items) const {
  if (items.empty()) return true;
  if (items.size() == 1) return verify_rs(items[0].public_key, items[0].message, items[0].sig);
  for (const auto& it : items) {
    if (it.sig.s >= group_.q || it.sig.r >= group_.p || it.sig.r.is_zero()) return false;
    if (it.public_key >= group_.p || it.public_key.is_zero()) return false;
  }
  const std::vector<std::uint64_t> z = batch_coefficients(items);
  // Check g^(Σ z_i·s_i) · Π y_i^(z_i·e_i) == Π R_i^(z_i)  (mod p).
  // The g exponent folds mod q (g has order q); the y exponents stay as full
  // z_i·e_i products (< 2^224) so the check never assumes an adversarial y_i
  // lies in the order-q subgroup.
  U256 s_acc(0);
  std::vector<MultiExpTerm> lhs_terms(items.size());
  std::vector<MultiExpTerm> rhs_terms(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const U256 zi(z[i]);
    s_acc = add_mod(s_acc, mul_q(zi, items[i].sig.s), group_.q);
    const U256 e = challenge(group_, items[i].sig.r, items[i].message);
    const U512 ze = mul_full(zi, e);
    U256 ze256;
    for (int l = 0; l < 4; ++l) ze256.limb[l] = ze.limb[l];  // z·e < 2^224
    lhs_terms[i] = MultiExpTerm{items[i].public_key, ze256};
    rhs_terms[i] = MultiExpTerm{items[i].sig.r, zi};
  }
  const U256 lhs = mul_p(pow_g(s_acc), multi_exp(lhs_terms, group_.p));
  return lhs == multi_exp(rhs_terms, group_.p);
}

}  // namespace g2g::crypto
