#include "g2g/crypto/fastpath.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace g2g::crypto {

namespace {

bool initial_fast_path() {
  // g2g-lint: allow(no-getenv) -- process-level kill switch read once at
  // startup (docs/TESTING.md); the fast path is bit-exact either way, so the
  // toggle can never change experiment output.
  const char* env = std::getenv("G2G_FASTPATH");
  if (env != nullptr && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    return false;
  }
  return true;
}

// g2g-lint: allow(no-adhoc-atomic) -- global feature flag, not a counter;
// fastpath.* statistics go through obs::Registry as usual.
std::atomic<bool>& fast_path_flag() {
  // g2g-lint: allow(no-adhoc-atomic) -- same flag (definition line).
  static std::atomic<bool> flag{initial_fast_path()};
  return flag;
}

bool detect_sha_ni() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
#else
  return false;
#endif
}

bool detect_avx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool set_fast_path(bool on) { return fast_path_flag().exchange(on, std::memory_order_relaxed); }

bool fast_path_enabled() { return fast_path_flag().load(std::memory_order_relaxed); }

bool sha_ni_available() {
  static const bool available = detect_sha_ni();
  return available;
}

bool avx2_available() {
  static const bool available = detect_avx2();
  return available;
}

bool sha_accelerated() { return sha_ni_available() && fast_path_enabled(); }

}  // namespace g2g::crypto
