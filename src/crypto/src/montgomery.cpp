#include "g2g/crypto/montgomery.hpp"

#include <array>
#include <stdexcept>

#include "g2g/crypto/fastpath.hpp"

namespace g2g::crypto {

namespace {

// -m0^-1 mod 2^64 by Newton–Hensel lifting: for odd m0, x = m0 is correct
// to 3 bits (odd^2 ≡ 1 mod 8), and each x *= 2 - m0*x doubles the count —
// five iterations reach 96 ≥ 64 bits.
std::uint64_t neg_inv64(std::uint64_t m0) {
  std::uint64_t inv = m0;
  for (int i = 0; i < 5; ++i) inv *= std::uint64_t{2} - m0 * inv;
  return ~inv + std::uint64_t{1};
}

}  // namespace

MontgomeryParams MontgomeryParams::for_modulus(const U256& modulus) {
  if (!modulus.bit(0) || modulus == U256(1)) {
    throw std::invalid_argument("MontgomeryParams: modulus must be odd and > 1");
  }
  MontgomeryParams p;
  p.m = modulus;
  p.n0inv = neg_inv64(modulus.limb[0]);
  U512 r;
  r.limb[4] = 1;  // R = 2^256
  p.one = mod(r, modulus);
  p.rr = mul_mod(p.one, p.one, modulus);
  return p;
}

U256 mont_mul(const U256& a, const U256& b, const MontgomeryParams& params) {
  const std::array<std::uint64_t, 4>& m = params.m.limb;
  // CIOS working value: t < b + m throughout, so with one operand < m the
  // pre-subtraction result is < 2m — 257 bits, t[4] ∈ {0,1}.
  std::array<std::uint64_t, 5> t{};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    const unsigned __int128 top = static_cast<unsigned __int128>(t[4]) + carry;
    t[4] = static_cast<std::uint64_t>(top);
    const std::uint64_t t5 = static_cast<std::uint64_t>(top >> 64);

    // t = (t + u*m) / 2^64 with u chosen so the low limb cancels exactly.
    const std::uint64_t u = t[0] * params.n0inv;
    unsigned __int128 cur = static_cast<unsigned __int128>(u) * m[0] + t[0];
    carry = static_cast<std::uint64_t>(cur >> 64);
    for (int j = 1; j < 4; ++j) {
      cur = static_cast<unsigned __int128>(u) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    cur = static_cast<unsigned __int128>(t[4]) + carry;
    t[3] = static_cast<std::uint64_t>(cur);
    t[4] = t5 + static_cast<std::uint64_t>(cur >> 64);
  }

  // Canonicalize: t < 2m, so one conditional subtract lands in [0, m).
  bool ge = t[4] != 0;
  if (!ge) {
    ge = true;
    for (int i = 3; i >= 0; --i) {
      if (t[i] != m[i]) {
        ge = t[i] > m[i];
        break;
      }
    }
  }
  U256 out;
  if (ge) {
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 d =
          static_cast<unsigned __int128>(t[i]) - m[i] - borrow;
      out.limb[i] = static_cast<std::uint64_t>(d);
      borrow = (d >> 64) & 1;
    }
  } else {
    for (int i = 0; i < 4; ++i) out.limb[i] = t[i];
  }
  return out;
}

U256 to_mont(const U256& x, const MontgomeryParams& params) {
  return mont_mul(x, params.rr, params);
}

U256 from_mont(const U256& x, const MontgomeryParams& params) {
  return mont_mul(x, U256(1), params);
}

U256 mont_pow(const U256& base_mont, const U256& exp, const MontgomeryParams& params) {
  U256 r0 = params.one;
  U256 r1 = base_mont;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    if (exp.bit(i)) {
      r0 = mont_mul(r0, r1, params);
      r1 = mont_mul(r1, r1, params);
    } else {
      r1 = mont_mul(r0, r1, params);
      r0 = mont_mul(r0, r0, params);
    }
  }
  return r0;
}

U256 pow_mod_fast(const U256& base, const U256& exp, const U256& m) {
  if (!fast_path_enabled() || !m.bit(0) || m == U256(1)) {
    return pow_mod(base, exp, m);
  }
  const MontgomeryParams params = MontgomeryParams::for_modulus(m);
  return from_mont(mont_pow(to_mont(base, params), exp, params), params);
}

}  // namespace g2g::crypto
