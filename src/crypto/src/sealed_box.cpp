#include "g2g/crypto/sealed_box.hpp"

#include "g2g/crypto/chacha20.hpp"

namespace g2g::crypto {

SealedBox seal(const Suite& suite, Rng& rng, BytesView recipient_public, BytesView plaintext) {
  const KeyPair eph = suite.keygen(rng);
  const Bytes shared = suite.shared_secret(eph.secret_key, recipient_public);
  const ChaChaKey key = derive_chacha_key(shared);
  const ChaChaNonce nonce = derive_chacha_nonce(shared);
  return SealedBox{eph.public_key, chacha20_xor(key, nonce, plaintext)};
}

Bytes seal_open(const Suite& suite, BytesView my_secret, const SealedBox& box) {
  const Bytes shared = suite.shared_secret(my_secret, box.ephemeral_public);
  const ChaChaKey key = derive_chacha_key(shared);
  const ChaChaNonce nonce = derive_chacha_nonce(shared);
  return chacha20_xor(key, nonce, box.ciphertext);
}

}  // namespace g2g::crypto
