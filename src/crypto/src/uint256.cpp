#include "g2g/crypto/uint256.hpp"

#include <bit>
#include <stdexcept>

#include "g2g/crypto/montgomery.hpp"

namespace g2g::crypto {

namespace {

// Shift a U512 left by one bit and OR in `in_bit` at the bottom.
void shl1(U512& x, bool in_bit) {
  std::uint64_t carry = in_bit ? 1 : 0;
  for (auto& l : x.limb) {
    const std::uint64_t next = l >> 63;
    l = (l << 1) | carry;
    carry = next;
  }
}

// Compare the low 5 limbs of a U512 against a U256 zero-extended by one limb.
// Used by the shift-subtract reducer, whose remainder fits in 257 bits.
int cmp_rem(const U512& r, const U256& m) {
  if (r.limb[4] != 0) return 1;
  for (int i = 3; i >= 0; --i) {
    if (r.limb[i] != m.limb[i]) return r.limb[i] < m.limb[i] ? -1 : 1;
  }
  return 0;
}

void sub_rem(U512& r, const U256& m) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 diff =
        static_cast<unsigned __int128>(r.limb[i]) - m.limb[i] - borrow;
    r.limb[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  r.limb[4] -= static_cast<std::uint64_t>(borrow);
}

}  // namespace

U256 U256::from_hex(std::string_view hex) {
  U256 out;
  std::size_t bit = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, bit += 4) {
    const char c = *it;
    std::uint64_t v = 0;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      throw DecodeError("invalid hex digit in U256");
    }
    if (bit >= 256) {
      if (v != 0) throw DecodeError("U256 hex overflow");
      continue;
    }
    out.limb[bit / 64] |= v << (bit % 64);
  }
  return out;
}

U256 U256::from_bytes_be(BytesView b) {
  if (b.size() > 32) throw DecodeError("U256 buffer too long");
  U256 out;
  std::size_t shift = 0;
  for (auto it = b.rbegin(); it != b.rend(); ++it, shift += 8) {
    out.limb[shift / 64] |= static_cast<std::uint64_t>(*it) << (shift % 64);
  }
  return out;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t shift = 8 * (31 - i);
    out[i] = static_cast<std::uint8_t>(limb[shift / 64] >> (shift % 64));
  }
  return out;
}

std::string U256::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  bool leading = true;
  for (int i = 63; i >= 0; --i) {
    const std::uint64_t nibble = (limb[static_cast<std::size_t>(i) / 16] >>
                                  ((static_cast<std::size_t>(i) % 16) * 4)) &
                                 0xf;
    if (leading && nibble == 0 && i != 0) continue;
    leading = false;
    out.push_back(digits[nibble]);
  }
  return out;
}

std::size_t U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return static_cast<std::size_t>(i) * 64 +
             (64 - static_cast<std::size_t>(std::countl_zero(limb[static_cast<std::size_t>(i)])));
    }
  }
  return 0;
}

std::size_t U512::bit_length() const {
  for (int i = 7; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return static_cast<std::size_t>(i) * 64 +
             (64 - static_cast<std::size_t>(std::countl_zero(limb[static_cast<std::size_t>(i)])));
    }
  }
  return 0;
}

U256 add(const U256& a, const U256& b, bool& carry) {
  U256 out;
  unsigned __int128 c = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 s = static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + c;
    out.limb[i] = static_cast<std::uint64_t>(s);
    c = s >> 64;
  }
  carry = c != 0;
  return out;
}

U256 sub(const U256& a, const U256& b, bool& borrow) {
  U256 out;
  unsigned __int128 brw = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) - b.limb[i] - brw;
    out.limb[i] = static_cast<std::uint64_t>(d);
    brw = (d >> 64) & 1;
  }
  borrow = brw != 0;
  return out;
}

U512 mul_full(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                                    out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U256 mod(const U512& x, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("mod by zero");
  const std::size_t n = x.bit_length();
  U512 rem{};  // remainder always fits in 257 bits (limbs 0..4)
  for (std::size_t i = n; i-- > 0;) {
    shl1(rem, x.bit(i));
    if (cmp_rem(rem, m) >= 0) sub_rem(rem, m);
  }
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = rem.limb[i];
  return out;
}

U256 mod(const U256& x, const U256& m) {
  if (x < m) return x;
  return mod(U512::from_u256(x), m);
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  bool carry = false;
  U256 s = add(a, b, carry);
  if (carry || s >= m) {
    bool borrow = false;
    s = sub(s, m, borrow);
  }
  return s;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  bool borrow = false;
  U256 d = sub(a, b, borrow);
  if (borrow) {
    bool carry = false;
    d = add(d, m, carry);
  }
  return d;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
  return mod(mul_full(a, b), m);
}

U256 pow_mod(const U256& base, const U256& exp, const U256& m) {
  if (m == U256(1)) return U256(0);
  U256 result(1);
  U256 b = mod(base, m);
  const std::size_t n = exp.bit_length();
  for (std::size_t i = n; i-- > 0;) {
    result = mul_mod(result, result, m);
    if (exp.bit(i)) result = mul_mod(result, b, m);
  }
  return result;
}

U256 random_below(Rng& rng, const U256& n) {
  if (n.is_zero()) throw std::invalid_argument("random_below(0)");
  const std::size_t bits = n.bit_length();
  const std::size_t limbs = (bits + 63) / 64;
  const std::size_t top_bits = bits - (limbs - 1) * 64;
  const std::uint64_t top_mask = top_bits >= 64 ? ~0ULL : ((1ULL << top_bits) - 1);
  // Rejection sampling over [0, 2^bits): expected < 2 draws.
  for (;;) {
    U256 out;
    for (std::size_t i = 0; i < limbs; ++i) out.limb[i] = rng.next();
    out.limb[limbs - 1] &= top_mask;
    if (out < n) return out;
  }
}

bool is_probable_prime(const U256& n, Rng& rng, int rounds) {
  static constexpr std::uint64_t kSmallPrimes[] = {
      2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
      53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
  if (n < U256(2)) return false;
  for (const std::uint64_t p : kSmallPrimes) {
    const U256 pv(p);
    if (n == pv) return true;
    if (mod(n, pv).is_zero()) return false;
  }

  // n - 1 = d * 2^r
  bool borrow = false;
  const U256 n_minus_1 = sub(n, U256(1), borrow);
  U256 d = n_minus_1;
  std::size_t r = 0;
  while (!d.bit(0)) {
    // d >>= 1
    for (int i = 0; i < 4; ++i) {
      d.limb[i] >>= 1;
      if (i < 3) d.limb[i] |= d.limb[i + 1] << 63;
    }
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    bool b2 = false;
    const U256 a = add_mod(random_below(rng, sub(n, U256(3), b2)), U256(2), n);
    // is_probable_prime is a consumer of the arithmetic, not one of the
    // oracle primitives above — n is odd here (evens fell to trial division),
    // so the witness power may take the Montgomery ladder.
    U256 x = pow_mod_fast(a, d, n);
    if (x == U256(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = mul_mod(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace g2g::crypto
