#include "g2g/crypto/hmac.hpp"

#include <algorithm>
#include <array>

#include "g2g/crypto/fastpath.hpp"

namespace g2g::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(BytesView key) {
  std::array<std::uint8_t, kBlockSize> out{};
  if (key.size() > kBlockSize) {
    const Digest d = sha256(key);
    std::copy(d.begin(), d.end(), out.begin());
  } else {
    std::copy(key.begin(), key.end(), out.begin());
  }
  return out;
}
}  // namespace

Digest hmac_sha256(BytesView key, BytesView data) {
  return HmacKey(key).mac(data);
}

HmacKey::HmacKey(BytesView key) {
  const auto k = normalize_key(key);
  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(BytesView(ipad.data(), ipad.size()));
  outer_.update(BytesView(opad.data(), opad.size()));
}

Digest HmacKey::mac(BytesView data) const {
  return mac(data, BytesView());
}

Digest HmacKey::mac(BytesView a, BytesView b) const {
  Sha256 inner = inner_;  // copy of the post-ipad state
  inner.update(a);
  inner.update(b);
  const Digest inner_digest = inner.finish();

  Sha256 outer = outer_;  // copy of the post-opad state
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

Digest heavy_hmac(BytesView message, BytesView seed, std::uint32_t iterations) {
  if (!fast_path_enabled()) return heavy_hmac_reference(message, seed, iterations);
  // Hash the message once so each iteration touches a fixed-size state; the
  // cost knob is the iteration count, independent of message length.
  const Digest m_digest = sha256(message);
  const HmacKey key(seed);
  Digest h = key.mac(message);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    h = key.mac(digest_view(h), digest_view(m_digest));
  }
  return h;
}

Digest heavy_hmac_reference(BytesView message, BytesView seed, std::uint32_t iterations) {
  // Original straight-line chain: re-derives the HMAC pads and allocates the
  // concatenation buffer every iteration. Kept as the differential oracle for
  // heavy_hmac (tests/crypto_fastpath_diff_test.cpp).
  const Digest m_digest = sha256(message);
  Digest h = hmac_sha256(seed, message);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    Writer w(64);
    w.raw(digest_view(h));
    w.raw(digest_view(m_digest));
    h = hmac_sha256(seed, w.bytes());
  }
  return h;
}

namespace {

void store_state_be(const std::uint32_t* state, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
}

/// Per-lane chain state. Each iteration of heavy_hmac's fast chain is exactly
/// three compressions with fixed block shapes:
///   inner: data block h || m_digest, then a constant pad block (128 fed bytes)
///   outer: one block inner_digest || 0x80-pad || bit length 768
/// buf_a pre-bakes the m_digest half and the inner pad block, so only the
/// 32-byte h prefix changes per iteration; buf_c pre-bakes the outer padding.
struct HeavyLane {
  std::array<std::uint32_t, 8> inner0{};  // chaining state after the ipad block
  std::array<std::uint32_t, 8> outer0{};  // chaining state after the opad block
  std::array<std::uint32_t, 8> state_inner{};
  std::array<std::uint32_t, 8> state_outer{};
  std::array<std::uint8_t, 128> buf_a{};
  std::array<std::uint8_t, 64> buf_c{};
  Digest h{};
  std::uint32_t iterations = 0;
  std::size_t job = 0;
};

/// Lockstep chunk of at most kSha256MaxLanes chains.
void run_heavy_lanes(std::span<HeavyLane> lanes, std::vector<Digest>& out) {
  std::uint32_t* states[kSha256MaxLanes];
  const std::uint8_t* blocks[kSha256MaxLanes];

  for (std::uint32_t t = 0;; ++t) {
    // Lanes finish in place once their iteration count is reached; the
    // active prefix shrinks as shorter chains complete.
    std::size_t active = 0;
    for (auto& ln : lanes) {
      if (ln.iterations > t) {
        std::copy(ln.h.begin(), ln.h.end(), ln.buf_a.begin());
        ln.state_inner = ln.inner0;
        states[active] = ln.state_inner.data();
        blocks[active] = ln.buf_a.data();
        ++active;
      }
    }
    if (active == 0) break;
    sha256_compress_multi(states, blocks, active, 2);

    std::size_t slot = 0;
    for (auto& ln : lanes) {
      if (ln.iterations > t) {
        store_state_be(ln.state_inner.data(), ln.buf_c.data());
        ln.state_outer = ln.outer0;
        states[slot] = ln.state_outer.data();
        blocks[slot] = ln.buf_c.data();
        ++slot;
      }
    }
    sha256_compress_multi(states, blocks, active, 1);

    for (auto& ln : lanes) {
      if (ln.iterations > t) store_state_be(ln.state_outer.data(), ln.h.data());
    }
  }

  for (const auto& ln : lanes) out[ln.job] = ln.h;
}

}  // namespace

std::vector<Digest> heavy_hmac_batch(std::span<const HeavyHmacJob> jobs) {
  std::vector<Digest> out(jobs.size());
  if (!fast_path_enabled()) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      out[i] = heavy_hmac_reference(jobs[i].message, jobs[i].seed, jobs[i].iterations);
    }
    return out;
  }

  std::array<HeavyLane, kSha256MaxLanes> lanes;
  for (std::size_t base = 0; base < jobs.size(); base += kSha256MaxLanes) {
    const std::size_t n = std::min(kSha256MaxLanes, jobs.size() - base);
    for (std::size_t l = 0; l < n; ++l) {
      const HeavyHmacJob& job = jobs[base + l];
      HeavyLane& ln = lanes[l];
      ln.job = base + l;
      ln.iterations = job.iterations;

      const auto k = normalize_key(job.seed);
      std::array<std::uint8_t, kBlockSize> pad{};
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
      }
      ln.inner0 = kSha256InitState;
      std::uint32_t* st = ln.inner0.data();
      const std::uint8_t* blk = pad.data();
      sha256_compress_multi(&st, &blk, 1, 1);
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
      }
      ln.outer0 = kSha256InitState;
      st = ln.outer0.data();
      sha256_compress_multi(&st, &blk, 1, 1);

      const Digest m_digest = sha256(job.message);
      ln.buf_a.fill(0);
      std::copy(m_digest.begin(), m_digest.end(), ln.buf_a.begin() + 32);
      ln.buf_a[64] = 0x80;
      ln.buf_a[126] = 0x04;  // 128 fed bytes = 1024 bits, big-endian
      ln.buf_c.fill(0);
      ln.buf_c[32] = 0x80;
      ln.buf_c[62] = 0x03;  // 96 fed bytes = 768 bits, big-endian

      ln.h = hmac_sha256(job.seed, job.message);  // H_0
    }
    run_heavy_lanes(std::span<HeavyLane>(lanes.data(), n), out);
  }
  return out;
}

std::size_t HeavyHmacBatch::add(BytesView message, BytesView seed, std::uint32_t iterations) {
  const auto own = [this](BytesView v) {
    const std::span<std::uint8_t> dst = arena_.alloc(v.size());
    std::copy(v.begin(), v.end(), dst.begin());
    return BytesView(dst.data(), dst.size());
  };
  jobs_.push_back(HeavyHmacJob{own(message), own(seed), iterations});
  return jobs_.size() - 1;
}

std::vector<Digest> HeavyHmacBatch::run() {
  std::vector<Digest> out = heavy_hmac_batch(jobs_);
  // The queue drains before the arena resets: the job views point into the
  // arena, and must not survive it.
  jobs_.clear();
  arena_.reset();
  return out;
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace g2g::crypto
