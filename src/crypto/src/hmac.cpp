#include "g2g/crypto/hmac.hpp"

#include <array>

#include "g2g/crypto/fastpath.hpp"

namespace g2g::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

std::array<std::uint8_t, kBlockSize> normalize_key(BytesView key) {
  std::array<std::uint8_t, kBlockSize> out{};
  if (key.size() > kBlockSize) {
    const Digest d = sha256(key);
    std::copy(d.begin(), d.end(), out.begin());
  } else {
    std::copy(key.begin(), key.end(), out.begin());
  }
  return out;
}
}  // namespace

Digest hmac_sha256(BytesView key, BytesView data) {
  return HmacKey(key).mac(data);
}

HmacKey::HmacKey(BytesView key) {
  const auto k = normalize_key(key);
  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(BytesView(ipad.data(), ipad.size()));
  outer_.update(BytesView(opad.data(), opad.size()));
}

Digest HmacKey::mac(BytesView data) const {
  return mac(data, BytesView());
}

Digest HmacKey::mac(BytesView a, BytesView b) const {
  Sha256 inner = inner_;  // copy of the post-ipad state
  inner.update(a);
  inner.update(b);
  const Digest inner_digest = inner.finish();

  Sha256 outer = outer_;  // copy of the post-opad state
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

Digest heavy_hmac(BytesView message, BytesView seed, std::uint32_t iterations) {
  if (!fast_path_enabled()) return heavy_hmac_reference(message, seed, iterations);
  // Hash the message once so each iteration touches a fixed-size state; the
  // cost knob is the iteration count, independent of message length.
  const Digest m_digest = sha256(message);
  const HmacKey key(seed);
  Digest h = key.mac(message);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    h = key.mac(digest_view(h), digest_view(m_digest));
  }
  return h;
}

Digest heavy_hmac_reference(BytesView message, BytesView seed, std::uint32_t iterations) {
  // Original straight-line chain: re-derives the HMAC pads and allocates the
  // concatenation buffer every iteration. Kept as the differential oracle for
  // heavy_hmac (tests/crypto_fastpath_diff_test.cpp).
  const Digest m_digest = sha256(message);
  Digest h = hmac_sha256(seed, message);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    Writer w(64);
    w.raw(digest_view(h));
    w.raw(digest_view(m_digest));
    h = hmac_sha256(seed, w.bytes());
  }
  return h;
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace g2g::crypto
