#include "g2g/crypto/suite.hpp"

#include <algorithm>
#include <vector>

#include "g2g/crypto/fastpath.hpp"
#include "g2g/crypto/hmac.hpp"
#include "g2g/crypto/schnorr.hpp"
#include "g2g/crypto/sha256.hpp"

namespace g2g::crypto {

namespace {

class SchnorrSuite final : public Suite {
 public:
  // The engine carries the per-group fixed-base tables for g; every key,
  // signature, and verdict it produces is byte-identical to the free
  // schnorr_* functions (the differential suite pins this down).
  explicit SchnorrSuite(const SchnorrGroup& group) : engine_(group) {}

  KeyPair keygen(Rng& rng) const override {
    const SchnorrKeyPair kp = engine_.keygen(rng);
    return KeyPair{kp.secret.to_bytes_be(), kp.public_key.to_bytes_be()};
  }

  Bytes sign(BytesView secret_key, BytesView message) const override {
    // Deterministic nonce derivation (RFC-6979 style): the signing nonce is a
    // PRF of the secret and the message, so signing needs no ambient RNG.
    const Digest nd = hmac_sha256(secret_key, message);
    Rng nonce_rng(U256::from_bytes_be(digest_view(nd)).limb[0] ^
                  U256::from_bytes_be(digest_view(nd)).limb[2]);
    return engine_.sign(U256::from_bytes_be(secret_key), message, nonce_rng).encode();
  }

  bool verify(BytesView public_key, BytesView message, BytesView signature) const override {
    if (signature.size() != 64 || public_key.size() != 32) return false;
    return engine_.verify(U256::from_bytes_be(public_key), message,
                          SchnorrSignature::decode(signature));
  }

  Bytes shared_secret(BytesView my_secret_key, BytesView peer_public_key) const override {
    const U256 s = dh_shared_secret(engine_.group(), U256::from_bytes_be(my_secret_key),
                                    U256::from_bytes_be(peer_public_key));
    return s.to_bytes_be();
  }

  std::size_t signature_size() const override { return 64; }
  std::string name() const override { return "schnorr-zp"; }

 private:
  SchnorrEngine engine_;
};

class SchnorrRSSuite final : public Suite {
 public:
  explicit SchnorrRSSuite(const SchnorrGroup& group) : engine_(group) {}

  KeyPair keygen(Rng& rng) const override {
    const SchnorrKeyPair kp = engine_.keygen(rng);
    return KeyPair{kp.secret.to_bytes_be(), kp.public_key.to_bytes_be()};
  }

  Bytes sign(BytesView secret_key, BytesView message) const override {
    // Same deterministic nonce derivation as SchnorrSuite, so the two suites
    // produce the same (k, e, s) triple for the same key/message — only the
    // transmitted pair differs. The cross-suite differential tests pin this.
    const Digest nd = hmac_sha256(secret_key, message);
    Rng nonce_rng(U256::from_bytes_be(digest_view(nd)).limb[0] ^
                  U256::from_bytes_be(digest_view(nd)).limb[2]);
    return engine_.sign_rs(U256::from_bytes_be(secret_key), message, nonce_rng).encode();
  }

  bool verify(BytesView public_key, BytesView message, BytesView signature) const override {
    if (signature.size() != 64 || public_key.size() != 32) return false;
    return engine_.verify_rs(U256::from_bytes_be(public_key), message,
                             SchnorrSignatureRS::decode(signature));
  }

  void verify_batch(std::span<const VerifyRequest> requests, bool* verdicts) const override {
    // The combined check only pays off past one signature, and with the fast
    // path off every verdict must come from the per-signature reference route.
    if (requests.size() > 1 && fast_path_enabled()) {
      std::vector<SchnorrRSVerifyItem> items;
      items.reserve(requests.size());
      bool well_formed = true;
      for (const auto& r : requests) {
        if (r.signature.size() != 64 || r.public_key.size() != 32) {
          well_formed = false;
          break;
        }
        items.push_back(SchnorrRSVerifyItem{U256::from_bytes_be(r.public_key), r.message,
                                            SchnorrSignatureRS::decode(r.signature)});
      }
      if (well_formed && engine_.verify_batch_rs(items)) {
        std::fill_n(verdicts, requests.size(), true);
        return;
      }
      // Batch reject (or malformed input): localize per signature.
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      verdicts[i] = verify(requests[i].public_key, requests[i].message, requests[i].signature);
    }
  }

  Bytes shared_secret(BytesView my_secret_key, BytesView peer_public_key) const override {
    const U256 s = dh_shared_secret(engine_.group(), U256::from_bytes_be(my_secret_key),
                                    U256::from_bytes_be(peer_public_key));
    return s.to_bytes_be();
  }

  std::size_t signature_size() const override { return 64; }
  std::string name() const override { return "schnorr-zp-rs"; }

 private:
  SchnorrEngine engine_;
};

class FastSuite final : public Suite {
 public:
  explicit FastSuite(std::uint64_t seed) {
    Writer w(8);
    w.u64(seed);
    seed_ = std::move(w).take();
  }

  KeyPair keygen(Rng& rng) const override {
    // public key: 32 random bytes; secret key: pub || mac_key(pub).
    Bytes pub(32);
    for (std::size_t i = 0; i < 4; ++i) {
      const std::uint64_t v = rng.next();
      for (std::size_t j = 0; j < 8; ++j) {
        pub[8 * i + j] = static_cast<std::uint8_t>(v >> (8 * j));
      }
    }
    const Digest mac_key = derive_mac_key(pub);
    Bytes secret = pub;
    secret.insert(secret.end(), mac_key.begin(), mac_key.end());
    return KeyPair{std::move(secret), std::move(pub)};
  }

  Bytes sign(BytesView secret_key, BytesView message) const override {
    const Digest d = hmac_sha256(secret_key.subspan(32), message);
    return digest_bytes(d);
  }

  bool verify(BytesView public_key, BytesView message, BytesView signature) const override {
    if (signature.size() != kSha256DigestSize) return false;
    const Digest mac_key = derive_mac_key(public_key);
    const Digest expect = hmac_sha256(digest_view(mac_key), message);
    Digest got{};
    std::copy(signature.begin(), signature.end(), got.begin());
    return digest_equal(expect, got);
  }

  Bytes shared_secret(BytesView my_secret_key, BytesView peer_public_key) const override {
    // Symmetric in the two endpoints: HMAC(seed, sorted(pub_a, pub_b)).
    const BytesView my_pub = my_secret_key.subspan(0, 32);
    Writer w(64);
    const bool mine_first = std::lexicographical_compare(my_pub.begin(), my_pub.end(),
                                                         peer_public_key.begin(),
                                                         peer_public_key.end());
    if (mine_first) {
      w.raw(my_pub);
      w.raw(peer_public_key);
    } else {
      w.raw(peer_public_key);
      w.raw(my_pub);
    }
    return digest_bytes(hmac_sha256(seed_, w.bytes()));
  }

  std::size_t signature_size() const override { return kSha256DigestSize; }
  std::string name() const override { return "fast-hmac"; }

 private:
  [[nodiscard]] Digest derive_mac_key(BytesView pub) const { return hmac_sha256(seed_, pub); }

  Bytes seed_;
};

}  // namespace

SuitePtr make_schnorr_suite() { return make_schnorr_suite(SchnorrGroup::default_group()); }

SuitePtr make_schnorr_suite(const SchnorrGroup& group) {
  return std::make_shared<SchnorrSuite>(group);
}

SuitePtr make_schnorr_rs_suite() { return make_schnorr_rs_suite(SchnorrGroup::default_group()); }

SuitePtr make_schnorr_rs_suite(const SchnorrGroup& group) {
  return std::make_shared<SchnorrRSSuite>(group);
}

SuitePtr make_fast_suite(std::uint64_t seed) { return std::make_shared<FastSuite>(seed); }

SessionKeys derive_session_keys(BytesView shared_secret, BytesView transcript) {
  Writer w(shared_secret.size() + transcript.size());
  w.raw(shared_secret);
  w.raw(transcript);
  SessionKeys keys;
  keys.enc_key = derive_chacha_key(w.bytes());
  keys.nonce = derive_chacha_nonce(w.bytes());
  return keys;
}

}  // namespace g2g::crypto
