#include "g2g/crypto/identity.hpp"

#include "g2g/crypto/sealed_box.hpp"

namespace g2g::crypto {

Bytes Certificate::signed_payload() const {
  Writer w(8 + public_key.size());
  w.str("g2g-cert-v1");
  w.u32(node.value());
  w.blob(public_key);
  return std::move(w).take();
}

Bytes Certificate::encode() const {
  Writer w(16 + public_key.size() + authority_signature.size());
  w.u32(node.value());
  w.blob(public_key);
  w.blob(authority_signature);
  return std::move(w).take();
}

Certificate Certificate::decode(BytesView b) {
  Reader r(b);
  Certificate cert;
  cert.node = NodeId(r.u32());
  cert.public_key = r.blob();
  cert.authority_signature = r.blob();
  return cert;
}

Authority::Authority(SuitePtr suite, Rng& rng)
    : suite_(std::move(suite)), keys_(suite_->keygen(rng)) {}

Certificate Authority::issue(NodeId node, BytesView public_key) const {
  Certificate cert;
  cert.node = node;
  cert.public_key.assign(public_key.begin(), public_key.end());
  cert.authority_signature = suite_->sign(keys_.secret_key, cert.signed_payload());
  return cert;
}

bool check_certificate(const Suite& suite, BytesView authority_public_key,
                       const Certificate& cert) {
  return suite.verify(authority_public_key, cert.signed_payload(), cert.authority_signature);
}

NodeIdentity::NodeIdentity(SuitePtr suite, NodeId node, const Authority& authority, Rng& rng)
    : suite_(std::move(suite)),
      node_(node),
      keys_(suite_->keygen(rng)),
      cert_(authority.issue(node, keys_.public_key)) {}

Bytes NodeIdentity::sign(BytesView message) const {
  return suite_->sign(keys_.secret_key, message);
}

bool NodeIdentity::verify_from(const Certificate& peer, BytesView message,
                               BytesView signature) const {
  return suite_->verify(peer.public_key, message, signature);
}

Bytes NodeIdentity::shared_secret_with(BytesView peer_public_key) const {
  return suite_->shared_secret(keys_.secret_key, peer_public_key);
}

Bytes NodeIdentity::open_box(const SealedBox& box) const {
  return seal_open(*suite_, keys_.secret_key, box);
}

}  // namespace g2g::crypto
