#include "g2g/crypto/sha256.hpp"

#include <cstring>

#include "g2g/crypto/fastpath.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define G2G_HAVE_SHA_NI 1
#include <immintrin.h>
#endif

namespace g2g::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

#if defined(G2G_HAVE_SHA_NI)
// Hardware compression via the SHA-NI extension. The x86 instructions work on
// a transposed state layout — ABEF/CDGH in two vectors — so the state words
// are repacked on entry and exit; the digest is bit-identical to the scalar
// rounds below.
__attribute__((target("sha,sse4.1"))) void compress_blocks_shani(std::uint32_t* state,
                                                                 const std::uint8_t* data,
                                                                 std::size_t count) {
  const __m128i kByteswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));     // DCBA
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                                             // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);                                       // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);                               // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);                                    // CDGH

  while (count-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // msg[] holds the most recent four W groups; each turn of the second loop
    // rewrites the oldest with W[4g..4g+3] via the SHA-NI schedule helpers.
    __m128i msg[4];
    for (int g = 0; g < 4; ++g) {
      msg[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)), kByteswap);
      __m128i wk = _mm_add_epi32(
          msg[g], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }
    for (int g = 4; g < 16; ++g) {
      const __m128i m0 = msg[g & 3];
      const __m128i m1 = msg[(g + 1) & 3];
      const __m128i m2 = msg[(g + 2) & 3];
      const __m128i m3 = msg[(g + 3) & 3];
      __m128i w = _mm_add_epi32(_mm_sha256msg1_epu32(m0, m1), _mm_alignr_epi8(m3, m2, 4));
      w = _mm_sha256msg2_epu32(w, m3);
      msg[g & 3] = w;
      __m128i wk =
          _mm_add_epi32(w, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);                                      // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);                                   // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);                                // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);                                   // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}
#endif  // G2G_HAVE_SHA_NI

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  length_ = 0;
  buffered_ = 0;
}

void Sha256::compress(const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::compress_many(const std::uint8_t* blocks, std::size_t count) {
#if defined(G2G_HAVE_SHA_NI)
  if (sha_accelerated()) {
    compress_blocks_shani(state_.data(), blocks, count);
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) compress(blocks + 64 * i);
}

void Sha256::update(BytesView data) {
  length_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == 64) {
      compress_many(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  const std::size_t whole = (data.size() - pos) / 64;
  if (whole > 0) {
    compress_many(data.data() + pos, whole);
    pos += whole * 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = length_ * 8;
  // One-shot padding: 0x80, zeros up to the length field, then the big-endian
  // bit count — one or two compressions, never a per-byte update loop.
  std::array<std::uint8_t, 128> pad{};
  std::memcpy(pad.data(), buffer_.data(), buffered_);
  pad[buffered_] = 0x80;
  const std::size_t pad_blocks = (buffered_ < 56) ? 1 : 2;
  std::uint8_t* len_be = pad.data() + 64 * pad_blocks - 8;
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  compress_many(pad.data(), pad_blocks);
  buffered_ = 0;

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(BytesView a, BytesView b) {
  Sha256 ctx;
  ctx.update(a);
  ctx.update(b);
  return ctx.finish();
}

}  // namespace g2g::crypto
