#include "g2g/crypto/sha256.hpp"

#include <cstring>

#include "g2g/crypto/fastpath.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define G2G_HAVE_SHA_NI 1
#define G2G_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace g2g::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

/// Scalar FIPS 180-4 compression of one 64-byte block into `state`. The
/// reference rounds every accelerated path must match bit-for-bit.
void compress_block_scalar(std::uint32_t* state, const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

#if defined(G2G_HAVE_SHA_NI)
// Hardware compression via the SHA-NI extension. The x86 instructions work on
// a transposed state layout — ABEF/CDGH in two vectors — so the state words
// are repacked on entry and exit; the digest is bit-identical to the scalar
// rounds below.
__attribute__((target("sha,sse4.1"))) void compress_blocks_shani(std::uint32_t* state,
                                                                 const std::uint8_t* data,
                                                                 std::size_t count) {
  const __m128i kByteswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));     // DCBA
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                                             // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);                                       // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);                               // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);                                    // CDGH

  while (count-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // msg[] holds the most recent four W groups; each turn of the second loop
    // rewrites the oldest with W[4g..4g+3] via the SHA-NI schedule helpers.
    __m128i msg[4];
    for (int g = 0; g < 4; ++g) {
      msg[g] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)), kByteswap);
      __m128i wk = _mm_add_epi32(
          msg[g], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }
    for (int g = 4; g < 16; ++g) {
      const __m128i m0 = msg[g & 3];
      const __m128i m1 = msg[(g + 1) & 3];
      const __m128i m2 = msg[(g + 2) & 3];
      const __m128i m3 = msg[(g + 3) & 3];
      __m128i w = _mm_add_epi32(_mm_sha256msg1_epu32(m0, m1), _mm_alignr_epi8(m3, m2, 4));
      w = _mm_sha256msg2_epu32(w, m3);
      msg[g & 3] = w;
      __m128i wk =
          _mm_add_epi32(w, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);                                      // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);                                   // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);                                // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);                                   // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}
#endif  // G2G_HAVE_SHA_NI

#if defined(G2G_HAVE_SHA_NI)
// Multi-buffer SHA-NI: runs up to kSha256MaxLanes independent chains through
// the hardware rounds with the per-round work interleaved across lanes. One
// chain serializes on the sha256rnds2 latency chain; interleaving independent
// chains fills those latency bubbles, which is where the multi-lane win comes
// from on SHA-NI hardware. Bit-identical to compressing each lane alone.
__attribute__((target("sha,sse4.1"))) void compress_multi_shani(std::uint32_t* const* states,
                                                                const std::uint8_t* const* blocks,
                                                                std::size_t lanes,
                                                                std::size_t count) {
  const __m128i kByteswap = _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  __m128i state0[kSha256MaxLanes];
  __m128i state1[kSha256MaxLanes];
  for (std::size_t l = 0; l < lanes; ++l) {
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[l][0]));     // DCBA
    __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&states[l][4]));      // HGFE
    tmp = _mm_shuffle_epi32(tmp, 0xB1);                                                 // CDAB
    s1 = _mm_shuffle_epi32(s1, 0x1B);                                                   // EFGH
    state0[l] = _mm_alignr_epi8(tmp, s1, 8);                                            // ABEF
    state1[l] = _mm_blend_epi16(s1, tmp, 0xF0);                                         // CDGH
  }

  for (std::size_t blk = 0; blk < count; ++blk) {
    __m128i save0[kSha256MaxLanes];
    __m128i save1[kSha256MaxLanes];
    __m128i msg[kSha256MaxLanes][4];
    for (std::size_t l = 0; l < lanes; ++l) {
      save0[l] = state0[l];
      save1[l] = state1[l];
    }
    for (int g = 0; g < 4; ++g) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::uint8_t* data = blocks[l] + 64 * blk;
        msg[l][g] = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)), kByteswap);
        __m128i wk = _mm_add_epi32(
            msg[l][g], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
        state1[l] = _mm_sha256rnds2_epu32(state1[l], state0[l], wk);
        wk = _mm_shuffle_epi32(wk, 0x0E);
        state0[l] = _mm_sha256rnds2_epu32(state0[l], state1[l], wk);
      }
    }
    for (int g = 4; g < 16; ++g) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const __m128i m0 = msg[l][g & 3];
        const __m128i m1 = msg[l][(g + 1) & 3];
        const __m128i m2 = msg[l][(g + 2) & 3];
        const __m128i m3 = msg[l][(g + 3) & 3];
        __m128i w = _mm_add_epi32(_mm_sha256msg1_epu32(m0, m1), _mm_alignr_epi8(m3, m2, 4));
        w = _mm_sha256msg2_epu32(w, m3);
        msg[l][g & 3] = w;
        __m128i wk =
            _mm_add_epi32(w, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * g])));
        state1[l] = _mm_sha256rnds2_epu32(state1[l], state0[l], wk);
        wk = _mm_shuffle_epi32(wk, 0x0E);
        state0[l] = _mm_sha256rnds2_epu32(state0[l], state1[l], wk);
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      state0[l] = _mm_add_epi32(state0[l], save0[l]);
      state1[l] = _mm_add_epi32(state1[l], save1[l]);
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    __m128i tmp = _mm_shuffle_epi32(state0[l], 0x1B);                                   // FEBA
    __m128i s1 = _mm_shuffle_epi32(state1[l], 0xB1);                                    // DCHG
    const __m128i out0 = _mm_blend_epi16(tmp, s1, 0xF0);                                // DCBA
    const __m128i out1 = _mm_alignr_epi8(s1, tmp, 8);                                   // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[l][0]), out0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&states[l][4]), out1);
  }
}
#endif  // G2G_HAVE_SHA_NI

#if defined(G2G_HAVE_AVX2)
// AVX2 4-lane SIMD kernel: transposed layout, one 32-bit element per lane in
// each vector, so the scalar FIPS 180-4 rounds run verbatim on all lanes at
// once. Lanes beyond `lanes` are padded with lane 0 and never stored back.
// The macros (instead of helper lambdas) keep every intrinsic inside this
// target("avx2") function so nothing fails to inline across target levels.
#define G2G_VROTR(x, n) _mm_or_si128(_mm_srli_epi32((x), (n)), _mm_slli_epi32((x), 32 - (n)))
__attribute__((target("avx2"))) void compress_multi_avx2(std::uint32_t* const* states,
                                                         const std::uint8_t* const* blocks,
                                                         std::size_t lanes, std::size_t count) {
  const std::uint8_t* lane_blocks[kSha256MaxLanes];
  for (std::size_t l = 0; l < kSha256MaxLanes; ++l) {
    lane_blocks[l] = blocks[l < lanes ? l : 0];
  }

  // hs[j] holds state word j for all four lanes.
  __m128i hs[8];
  alignas(16) std::uint32_t tmp[4];
  for (int j = 0; j < 8; ++j) {
    hs[j] = _mm_set_epi32(static_cast<int>(states[3 < lanes ? 3 : 0][j]),
                          static_cast<int>(states[2 < lanes ? 2 : 0][j]),
                          static_cast<int>(states[1 < lanes ? 1 : 0][j]),
                          static_cast<int>(states[0][j]));
  }

  for (std::size_t blk = 0; blk < count; ++blk) {
    __m128i w[64];
    for (int i = 0; i < 16; ++i) {
      std::uint32_t lw[kSha256MaxLanes];
      for (std::size_t l = 0; l < kSha256MaxLanes; ++l) {
        const std::uint8_t* b = lane_blocks[l] + 64 * blk + 4 * i;
        lw[l] = (static_cast<std::uint32_t>(b[0]) << 24) |
                (static_cast<std::uint32_t>(b[1]) << 16) |
                (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
      }
      w[i] = _mm_set_epi32(static_cast<int>(lw[3]), static_cast<int>(lw[2]),
                           static_cast<int>(lw[1]), static_cast<int>(lw[0]));
    }
    for (int i = 16; i < 64; ++i) {
      const __m128i w15 = w[i - 15];
      const __m128i w2 = w[i - 2];
      const __m128i s0 =
          _mm_xor_si128(_mm_xor_si128(G2G_VROTR(w15, 7), G2G_VROTR(w15, 18)),
                        _mm_srli_epi32(w15, 3));
      const __m128i s1 =
          _mm_xor_si128(_mm_xor_si128(G2G_VROTR(w2, 17), G2G_VROTR(w2, 19)),
                        _mm_srli_epi32(w2, 10));
      w[i] = _mm_add_epi32(_mm_add_epi32(w[i - 16], s0), _mm_add_epi32(w[i - 7], s1));
    }

    __m128i a = hs[0], b = hs[1], c = hs[2], d = hs[3];
    __m128i e = hs[4], f = hs[5], g = hs[6], h = hs[7];

    for (int i = 0; i < 64; ++i) {
      const __m128i s1 =
          _mm_xor_si128(_mm_xor_si128(G2G_VROTR(e, 6), G2G_VROTR(e, 11)), G2G_VROTR(e, 25));
      const __m128i ch = _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
      const __m128i t1 = _mm_add_epi32(
          _mm_add_epi32(_mm_add_epi32(h, s1), _mm_add_epi32(ch, w[i])),
          _mm_set1_epi32(static_cast<int>(kK[i])));
      const __m128i s0 =
          _mm_xor_si128(_mm_xor_si128(G2G_VROTR(a, 2), G2G_VROTR(a, 13)), G2G_VROTR(a, 22));
      const __m128i maj = _mm_xor_si128(
          _mm_xor_si128(_mm_and_si128(a, b), _mm_and_si128(a, c)), _mm_and_si128(b, c));
      const __m128i t2 = _mm_add_epi32(s0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm_add_epi32(t1, t2);
    }

    hs[0] = _mm_add_epi32(hs[0], a);
    hs[1] = _mm_add_epi32(hs[1], b);
    hs[2] = _mm_add_epi32(hs[2], c);
    hs[3] = _mm_add_epi32(hs[3], d);
    hs[4] = _mm_add_epi32(hs[4], e);
    hs[5] = _mm_add_epi32(hs[5], f);
    hs[6] = _mm_add_epi32(hs[6], g);
    hs[7] = _mm_add_epi32(hs[7], h);
  }

  for (int j = 0; j < 8; ++j) {
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), hs[j]);
    for (std::size_t l = 0; l < lanes; ++l) states[l][j] = tmp[l];
  }
}
#undef G2G_VROTR
#endif  // G2G_HAVE_AVX2

}  // namespace

bool sha256_multi_backend_available(Sha256MultiBackend backend) {
  switch (backend) {
    case Sha256MultiBackend::kShaNi:
      return sha_ni_available();
    case Sha256MultiBackend::kAvx2:
      return avx2_available();
    case Sha256MultiBackend::kAuto:
    case Sha256MultiBackend::kScalar:
      return true;
  }
  return false;
}

void sha256_compress_multi(std::uint32_t* const* states, const std::uint8_t* const* blocks,
                           std::size_t lanes, std::size_t blocks_per_lane,
                           Sha256MultiBackend backend) {
  if (lanes == 0 || blocks_per_lane == 0) return;

  Sha256MultiBackend resolved = backend;
  if (resolved == Sha256MultiBackend::kAuto) {
    if (!fast_path_enabled()) {
      resolved = Sha256MultiBackend::kScalar;
    } else if (sha_ni_available()) {
      resolved = Sha256MultiBackend::kShaNi;
    } else if (avx2_available() && lanes >= 2) {
      resolved = Sha256MultiBackend::kAvx2;
    } else {
      resolved = Sha256MultiBackend::kScalar;
    }
  }

#if defined(G2G_HAVE_SHA_NI)
  if (resolved == Sha256MultiBackend::kShaNi && sha_ni_available()) {
    compress_multi_shani(states, blocks, lanes, blocks_per_lane);
    return;
  }
#endif
#if defined(G2G_HAVE_AVX2)
  if (resolved == Sha256MultiBackend::kAvx2 && avx2_available()) {
    compress_multi_avx2(states, blocks, lanes, blocks_per_lane);
    return;
  }
#endif
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t b = 0; b < blocks_per_lane; ++b) {
      compress_block_scalar(states[l], blocks[l] + 64 * b);
    }
  }
}

void Sha256::reset() {
  state_ = kSha256InitState;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::compress(const std::uint8_t block[64]) { compress_block_scalar(state_.data(), block); }

void Sha256::compress_many(const std::uint8_t* blocks, std::size_t count) {
#if defined(G2G_HAVE_SHA_NI)
  if (sha_accelerated()) {
    compress_blocks_shani(state_.data(), blocks, count);
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) compress(blocks + 64 * i);
}

void Sha256::update(BytesView data) {
  length_ += data.size();
  std::size_t pos = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    pos = take;
    if (buffered_ == 64) {
      compress_many(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  const std::size_t whole = (data.size() - pos) / 64;
  if (whole > 0) {
    compress_many(data.data() + pos, whole);
    pos += whole * 64;
  }
  if (pos < data.size()) {
    std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
    buffered_ = data.size() - pos;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = length_ * 8;
  // One-shot padding: 0x80, zeros up to the length field, then the big-endian
  // bit count — one or two compressions, never a per-byte update loop.
  std::array<std::uint8_t, 128> pad{};
  std::memcpy(pad.data(), buffer_.data(), buffered_);
  pad[buffered_] = 0x80;
  const std::size_t pad_blocks = (buffered_ < 56) ? 1 : 2;
  std::uint8_t* len_be = pad.data() + 64 * pad_blocks - 8;
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  compress_many(pad.data(), pad_blocks);
  buffered_ = 0;

  Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(BytesView a, BytesView b) {
  Sha256 ctx;
  ctx.update(a);
  ctx.update(b);
  return ctx.finish();
}

}  // namespace g2g::crypto
