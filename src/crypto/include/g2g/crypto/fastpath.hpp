// Global crypto fast-path switch.
//
// The fast path never changes any digest, signature, or verdict — every
// accelerated routine is bit-identical to its reference implementation (the
// differential suite in tests/crypto_fastpath_diff_test.cpp enforces this).
// The switch exists so benchmarks can measure the reference path
// (`--no-fastpath`) and so the differential tests can drive both sides of
// each comparison from one process.
//
// Covered by the switch:
//  - SHA-256 compression: SHA-NI hardware rounds vs the scalar FIPS 180-4 loop
//  - heavy_hmac: precomputed-pad-state chain vs heavy_hmac_reference
//  - Schnorr: fixed-base window tables vs square-and-multiply pow_mod
//  - U256 modular arithmetic: Montgomery-form CIOS kernels (montgomery.hpp —
//    mont window tables, multi_exp chains, the mont_pow ladder behind
//    pow_mod_fast) vs the schoolbook shift-subtract mod in uint256.cpp
//
// NOT covered: the per-run verification cache (CachingSuite), which is gated
// per experiment via ExperimentConfig::crypto_fast_path so cache-on/off runs
// can be compared for bit-identical results.
#pragma once

namespace g2g::crypto {

/// Turn the process-wide fast path on or off. Thread-safe; takes effect on
/// the next crypto call. Returns the previous value.
bool set_fast_path(bool on);

/// True when accelerated implementations should be used. Defaults to true;
/// the environment variable G2G_FASTPATH=0 disables it at startup.
[[nodiscard]] bool fast_path_enabled();

/// True when this CPU exposes the SHA-NI extensions (detection is cached).
[[nodiscard]] bool sha_ni_available();

/// True when this CPU exposes AVX2 (detection is cached). Feeds the
/// multi-lane SHA-256 dispatch (sha256_compress_multi).
[[nodiscard]] bool avx2_available();

/// True when SHA-256 will actually use the hardware rounds right now.
[[nodiscard]] bool sha_accelerated();

/// RAII toggle for tests: forces the fast path on/off for a scope.
class FastPathScope {
 public:
  explicit FastPathScope(bool on) : prev_(set_fast_path(on)) {}
  ~FastPathScope() { set_fast_path(prev_); }
  FastPathScope(const FastPathScope&) = delete;
  FastPathScope& operator=(const FastPathScope&) = delete;

 private:
  bool prev_;
};

}  // namespace g2g::crypto
