// ChaCha20 stream cipher (RFC 8439 core).
//
// Used for (a) the symmetric session encryption negotiated at contact start
// and (b) the E_k(m) step of the relay phase, where the message is handed
// over encrypted under a random key k that the giver reveals only after
// receiving the proof of relay.
#pragma once

#include <array>
#include <cstdint>

#include "g2g/util/bytes.hpp"

namespace g2g::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

using ChaChaKey = std::array<std::uint8_t, kChaChaKeySize>;
using ChaChaNonce = std::array<std::uint8_t, kChaChaNonceSize>;

/// XOR-encrypt/decrypt `data` (the operation is an involution).
[[nodiscard]] Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                                 BytesView data, std::uint32_t initial_counter = 0);

/// Derive a key/nonce pair from arbitrary key material (e.g. a DH shared
/// secret or a randomly drawn 64-bit relay key).
[[nodiscard]] ChaChaKey derive_chacha_key(BytesView material);
[[nodiscard]] ChaChaNonce derive_chacha_nonce(BytesView material);

}  // namespace g2g::crypto
